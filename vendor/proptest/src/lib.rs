//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the slice of proptest's API its property tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map`, range and tuple strategies,
//! [`Just`], [`any`], [`collection::vec`] / [`collection::btree_map`], the
//! [`proptest!`] test macro with `#![proptest_config(..)]`, and the
//! `prop_assert!` family.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its case index and seed; the
//!   run is reproducible because every case is seeded deterministically
//!   from the case index (and `PROPTEST_SEED`, if set).
//! * **No persistence.** `*.proptest-regressions` files are ignored.
//! * `PROPTEST_CASES` still overrides the per-test case count.

use std::fmt;

/// Deterministic RNG handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator; each test case gets its own.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Error type returned by failing property bodies (`prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed property with the given explanation.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-test configuration, settable via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// A generator of random values (upstream's `Strategy`, minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy (used by [`prop_oneof!`]).
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Uniform choice between type-erased strategies ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (upstream `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}
impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.uniform_f64()
    }
}

/// The canonical strategy for a type ([`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<bool>()`, `any::<u64>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $sample:expr),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let sample: fn(&mut TestRng, $t, $t) -> $t = $sample;
                sample(rng, self.start, self.end)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let sample: fn(&mut TestRng, $t, $t) -> $t = $sample;
                // Widen by one when the type allows; saturate otherwise.
                let end = self.end().checked_add(1).unwrap_or(*self.end());
                sample(rng, *self.start(), end.max(self.start().saturating_add(1)))
            }
        }
    )*};
}

macro_rules! int_range_sampler {
    ($t:ty) => {
        |rng, lo, hi| {
            let span = (hi as i128 - lo as i128) as u128;
            lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
        }
    };
}

impl_range_strategy!(
    usize => int_range_sampler!(usize),
    u8 => int_range_sampler!(u8),
    u16 => int_range_sampler!(u16),
    u32 => int_range_sampler!(u32),
    u64 => int_range_sampler!(u64),
);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.uniform_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.uniform_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H),
);

/// Collection strategies (`proptest::collection::{vec, btree_map}`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Size specification for collections; built from `usize` or ranges.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Result of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>` with size drawn from `size`.
    ///
    /// Like upstream, duplicate keys are retried a bounded number of times;
    /// if the key space is too small the map may come out below the target
    /// size (never below 1 when the target is ≥ 1 and a key exists).
    pub fn btree_map<K: Strategy, V: Strategy>(
        keys: K,
        values: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            keys,
            values,
            size: size.into(),
        }
    }

    /// Result of [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut map = BTreeMap::new();
            let mut attempts = 0;
            while map.len() < target && attempts < 10 * (target + 1) {
                attempts += 1;
                let k = self.keys.generate(rng);
                let v = self.values.generate(rng);
                map.insert(k, v);
            }
            map
        }
    }
}

/// Drive a property: run `config.cases` deterministic random cases.
///
/// Used by the [`proptest!`] macro; not part of upstream's public API.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x005E_ED0F_0D15_C0DE);
    for i in 0..config.cases {
        // Scramble (base, i) so consecutive cases are uncorrelated.
        let mut z = base ^ (u64::from(i)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let seed = z ^ (z >> 31);
        let mut rng = TestRng::new(seed);
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest '{test_name}': case {}/{} failed (PROPTEST_SEED={base}): {e}",
                i + 1,
                config.cases
            );
        }
    }
}

/// Assert a condition inside a property body, failing the case (not the
/// whole process) so the runner can report case index and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $name:ident $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $(#[$meta])* fn $name $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_cases(&config, stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })()
            });
        }
    )*};
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, Union,
    };
    /// Re-export of the crate itself, as upstream's prelude provides.
    pub use crate as proptest;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = super::TestRng::new(3);
        for _ in 0..1000 {
            let (a, b, f) = (1usize..5, 0u32..7, -1.0f64..1.0).generate(&mut rng);
            assert!((1..5).contains(&a));
            assert!(b < 7);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn collections_honour_size_ranges() {
        let mut rng = super::TestRng::new(9);
        for _ in 0..200 {
            let v = super::collection::vec(0usize..10, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let m = super::collection::btree_map(0usize..50, 0u32..3, 1..5).generate(&mut rng);
            assert!((1..5).contains(&m.len()));
        }
    }

    #[test]
    fn flat_map_threads_values_through() {
        let mut rng = super::TestRng::new(1);
        let strat = (2usize..5).prop_flat_map(|n| (Just(n), super::collection::vec(0usize..10, n..n + 1)));
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(x in 0usize..10, flag in any::<bool>()) {
            prop_assert!(x < 10);
            if flag {
                return Ok(());
            }
            prop_assert_eq!(x, x, "identity must hold for {}", x);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(kind in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(kind == 1 || kind == 2);
        }
    }
}
