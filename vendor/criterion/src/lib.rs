//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this workspace vendors
//! the slice of criterion's API the repo's benches use: [`Criterion`],
//! benchmark groups with `sample_size` / `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple: each benchmark runs a warm-up pass,
//! then `sample_size` timed samples of an adaptively-chosen iteration
//! count, and reports min / median / mean wall-clock per iteration.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier re-exported for convenience (upstream signature).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Benchmark named only by its parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    /// Benchmark named by a function name and a parameter value.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` repeatedly and record per-iteration wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and iteration-count calibration: aim for ≥ 1 ms/sample.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    fn report(&self) -> Option<(Duration, Duration, Duration)> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        Some((min, median, mean))
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a routine under a plain name.
    pub fn bench_function<S: fmt::Display, R: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut routine: R,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        self.print_line(&id.to_string(), &bencher);
        self
    }

    /// Benchmark a routine that receives an input by reference.
    pub fn bench_with_input<I, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher, input);
        self.print_line(&id.to_string(), &bencher);
        self
    }

    /// Finish the group (prints a trailing newline, mirroring upstream).
    pub fn finish(&mut self) {
        println!();
    }

    fn print_line(&self, id: &str, bencher: &Bencher) {
        match bencher.report() {
            Some((min, median, mean)) => println!(
                "{}/{id}: min {:?}  median {:?}  mean {:?}  ({} samples)",
                self.name, min, median, mean, bencher.sample_size
            ),
            None => println!("{}/{id}: no samples (routine never called iter)", self.name),
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Benchmark a routine outside any group.
    pub fn bench_function<S: fmt::Display, R: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        routine: R,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, routine);
        self
    }
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut group = Criterion::default();
        let mut group = group.benchmark_group("test");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::from_parameter(400).to_string(), "400");
        assert_eq!(BenchmarkId::new("place", 7).to_string(), "place/7");
    }
}
