//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the tiny slice of `rand`'s API the repo actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] and
//! [`Rng::gen_bool`]. The generator is SplitMix64 — deterministic, fast,
//! and statistically solid for trace synthesis and property tests. It is
//! **not** the upstream `StdRng` stream: seeds produce different (but
//! stable) sequences than real `rand 0.8`.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of deterministic generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + uniform_f64(rng) * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + uniform_f64(rng) as f32 * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`] (the upstream `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        uniform_f64(rng)
    }
}
impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        uniform_f64(rng) as f32
    }
}
impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits of one word.
fn uniform_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        uniform_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64 core).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=5);
            assert!((1..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_f64_has_sane_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
