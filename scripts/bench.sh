#!/usr/bin/env bash
# Regenerate results/BENCH_placement.json — the machine-readable placement
# benchmark ledger (JSON Lines, schema in DESIGN.md §3.10).
#
# Runs the two placement-time benchmarks with NETPACK_BENCH_JSON set so
# every measured cell appends a row, then validates the file:
#   * table_mip_vs_dp      — exact bnb vs scratch vs DP per instance
#   * fig10_placement_time — NetPack DP wall-clock per (servers, jobs) cell
#   * fig10_xl             — 100 jobs on a 50K-server fat-tree, both
#                            NETPACK_TOPO modes (flat must stay < 1 s)
#
# Usage: scripts/bench.sh [output.json]   (default results/BENCH_placement.json)
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-results/BENCH_placement.json}
mkdir -p "$(dirname "$out")"

cargo build --release -p netpack-bench

rm -f "$out"
echo "bench: table_mip_vs_dp (bnb + capped scratch + dp)"
NETPACK_BENCH_JSON="$out" ./target/release/table_mip_vs_dp > /dev/null
echo "bench: fig10_placement_time (quick grid)"
NETPACK_BENCH_JSON="$out" NETPACK_QUICK=1 ./target/release/fig10_placement_time > /dev/null
echo "bench: fig10_xl (50K-server warehouse cell, struct + flat)"
NETPACK_BENCH_JSON="$out" ./target/release/fig10_xl > /dev/null

./target/release/bench_json_check "$out"
