#!/usr/bin/env bash
# Regenerate the machine-readable benchmark ledgers (JSON Lines):
#   * results/BENCH_placement.json — placement-time rows (DESIGN.md §3.10)
#   * results/BENCH_service.json   — service-throughput rows (DESIGN.md §3.12)
#
# Placement rows come from the placement-time benchmarks run with
# NETPACK_BENCH_JSON set so every measured cell appends a row:
#   * table_mip_vs_dp      — exact bnb vs scratch vs DP per instance
#   * fig10_placement_time — NetPack DP wall-clock per (servers, jobs) cell
#   * fig10_xl             — 100 jobs on a 50K-server fat-tree, both
#                            NETPACK_TOPO modes (flat must stay < 1 s)
# Service rows come from bench_service — the open-loop Philly replay over
# the Fig. 10 cluster — in both driver modes (threaded + deterministic),
# plus a NETPACK_THREADS={1,2,4,8} sweep of a 200K-job replay in both
# modes (long enough that run-to-run noise stays comparable to the gap
# being measured): the threaded driver runs the deterministic driver's
# exact batch schedule and must stay at or above it wherever real cores
# exist; on a single-core container the producer/consumer hand-off is
# pure overhead, so threaded lands a few percent under deterministic
# there — the batched-drain queue, gather window, and notify threshold
# are what close the seed's 46% inversion (DESIGN.md §3.12,
# EXPERIMENTS.md bench_service).
#
# Usage: scripts/bench.sh [output.json] [service_output.json]
#   (defaults results/BENCH_placement.json, results/BENCH_service.json)
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-results/BENCH_placement.json}
svc_out=${2:-results/BENCH_service.json}
mkdir -p "$(dirname "$out")" "$(dirname "$svc_out")"

cargo build --release -p netpack-bench

rm -f "$out"
echo "bench: table_mip_vs_dp (bnb + capped scratch + dp)"
NETPACK_BENCH_JSON="$out" ./target/release/table_mip_vs_dp > /dev/null
echo "bench: fig10_placement_time (quick grid)"
NETPACK_BENCH_JSON="$out" NETPACK_QUICK=1 ./target/release/fig10_placement_time > /dev/null
echo "bench: fig10_xl (50K-server warehouse cell, struct + flat)"
NETPACK_BENCH_JSON="$out" ./target/release/fig10_xl > /dev/null

rm -f "$svc_out"
echo "bench: bench_service (1M-job open-loop replay, threaded)"
NETPACK_BENCH_JSON="$svc_out" ./target/release/bench_service > /dev/null
echo "bench: bench_service (50K-job open-loop replay, deterministic)"
NETPACK_BENCH_JSON="$svc_out" NETPACK_QUICK=1 NETPACK_SERVICE_MODE=deterministic \
    ./target/release/bench_service > /dev/null
for t in 1 2 4 8; do
    echo "bench: bench_service thread sweep (200K jobs, NETPACK_THREADS=$t, both modes)"
    NETPACK_BENCH_JSON="$svc_out" NETPACK_SERVICE_JOBS=200000 NETPACK_THREADS=$t \
        ./target/release/bench_service > /dev/null
    NETPACK_BENCH_JSON="$svc_out" NETPACK_SERVICE_JOBS=200000 NETPACK_THREADS=$t \
        NETPACK_SERVICE_MODE=deterministic ./target/release/bench_service > /dev/null
done

./target/release/bench_json_check "$out" "$svc_out"
