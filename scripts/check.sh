#!/usr/bin/env bash
# Tier-1 gate: the tree is green iff this script exits 0.
#
#   ./scripts/check.sh
#
# Runs the release build, the full workspace test suite, the doctests,
# and clippy with warnings denied. Keep this list in sync with README.md.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test --workspace --doc -q"
cargo test --workspace --doc -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "check.sh: all green"
