#!/usr/bin/env bash
# Tier-1 gate: the tree is green iff this script exits 0.
#
#   ./scripts/check.sh
#
# Runs the release build, clippy with warnings denied, netpack-lint (the
# determinism/concurrency/mode-gate static pass; any finding not
# grandfathered in lint-baseline.txt fails — including a stale suppression
# pragma (P1) or a NETPACK_* variable missing from the registry, the
# README table, or its declared gate (M1)), the exact-placer two-mode smoke
# (NETPACK_EXACT=bnb vs scratch must be byte-identical), the full
# workspace test suite, the doctests, the fig9/fig10_xl/fig14 two-mode
# smokes, the batch-mode smoke (NETPACK_BATCH=spec vs seq placements must
# be byte-identical — the speculative engine's determinism gate), and the
# service determinism smoke (two identical deterministic 10K-job
# bench_service runs must be byte-identical, stdout + event log, and the
# seq / multi-worker-spec variants must match them byte-for-byte too).
# Keep this list in sync with README.md.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo run -p netpack-lint (new findings, stale pragmas, unregistered NETPACK_* vars fail)"
cargo run -q -p netpack-lint

exact_dir=$(mktemp -d)
pkt_dir=$(mktemp -d)
cleanup() { rm -rf "$exact_dir" "$pkt_dir"; }
trap cleanup EXIT

echo "==> exact smoke: branch-and-bound vs scratch DFS must match (stdout + CSV)"
exact_bnb=$(NETPACK_SMOKE=1 NETPACK_EXACT=bnb NETPACK_CSV_DIR="$exact_dir/bnb" \
    ./target/release/table_mip_vs_dp)
exact_scr=$(NETPACK_SMOKE=1 NETPACK_EXACT=scratch NETPACK_CSV_DIR="$exact_dir/scratch" \
    ./target/release/table_mip_vs_dp)
if ! diff <(printf '%s\n' "$exact_bnb") <(printf '%s\n' "$exact_scr"); then
    echo "check.sh: exact smoke DIVERGED between NETPACK_EXACT modes (stdout)" >&2
    exit 1
fi
if ! diff -r "$exact_dir/bnb" "$exact_dir/scratch"; then
    echo "check.sh: exact smoke DIVERGED between NETPACK_EXACT modes (CSV)" >&2
    exit 1
fi
printf '%s\n' "$exact_bnb"

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test --workspace --doc -q"
cargo test --workspace --doc -q

echo "==> fig9 smoke: incremental vs scratch steady state must match"
smoke_inc=$(NETPACK_SMOKE=1 NETPACK_QUICK=1 NETPACK_REPEATS=1 NETPACK_SIM=incremental \
    ./target/release/fig9_scale)
smoke_scr=$(NETPACK_SMOKE=1 NETPACK_QUICK=1 NETPACK_REPEATS=1 NETPACK_SIM=scratch \
    ./target/release/fig9_scale)
if ! diff <(printf '%s\n' "$smoke_inc") <(printf '%s\n' "$smoke_scr"); then
    echo "check.sh: fig9 smoke DIVERGED between NETPACK_SIM modes" >&2
    exit 1
fi
printf '%s\n' "$smoke_inc"

echo "==> fig10_xl smoke: flat vs struct topology placements must match"
topo_flat=$(NETPACK_SMOKE=1 NETPACK_TOPO=flat ./target/release/fig10_xl)
topo_struct=$(NETPACK_SMOKE=1 NETPACK_TOPO=struct ./target/release/fig10_xl)
if ! diff <(printf '%s\n' "$topo_flat") <(printf '%s\n' "$topo_struct"); then
    echo "check.sh: fig10_xl smoke DIVERGED between NETPACK_TOPO modes" >&2
    exit 1
fi
printf '%s\n' "$topo_flat"

echo "==> batch-mode smoke: speculative vs sequential placements must match"
batch_spec=$(NETPACK_SMOKE=1 NETPACK_BATCH=spec NETPACK_THREADS=4 ./target/release/fig10_xl)
batch_seq=$(NETPACK_SMOKE=1 NETPACK_BATCH=seq ./target/release/fig10_xl)
if ! diff <(printf '%s\n' "$batch_spec") <(printf '%s\n' "$batch_seq"); then
    echo "check.sh: batch-mode smoke DIVERGED between NETPACK_BATCH modes" >&2
    exit 1
fi

echo "==> service smoke: deterministic 10K-job replay must be byte-reproducible"
# NETPACK_SERVICE_MODE is pinned explicitly: this smoke is the registered
# enforcement point for that mode gate (see crates/lint/src/registry.rs).
svc_a=$(NETPACK_SMOKE=1 NETPACK_THREADS=1 NETPACK_SERVICE_MODE=deterministic \
    NETPACK_SERVICE_EVENT_LOG="$exact_dir/svc_a.log" \
    ./target/release/bench_service 2> /dev/null)
svc_b=$(NETPACK_SMOKE=1 NETPACK_THREADS=1 NETPACK_SERVICE_MODE=deterministic \
    NETPACK_SERVICE_EVENT_LOG="$exact_dir/svc_b.log" \
    ./target/release/bench_service 2> /dev/null)
if ! diff <(printf '%s\n' "$svc_a") <(printf '%s\n' "$svc_b"); then
    echo "check.sh: service smoke DIVERGED between identical runs (stdout)" >&2
    exit 1
fi
if ! cmp "$exact_dir/svc_a.log" "$exact_dir/svc_b.log"; then
    echo "check.sh: service smoke DIVERGED between identical runs (event log)" >&2
    exit 1
fi
# Same replay through the sequential reference loop and through the
# speculative engine with real multi-job windows: both must reproduce
# the same bytes — the service-side leg of the spec == seq guarantee.
svc_seq=$(NETPACK_SMOKE=1 NETPACK_THREADS=1 NETPACK_BATCH=seq \
    NETPACK_SERVICE_EVENT_LOG="$exact_dir/svc_seq.log" \
    ./target/release/bench_service 2> /dev/null)
svc_spec4=$(NETPACK_SMOKE=1 NETPACK_THREADS=4 NETPACK_BATCH=spec \
    NETPACK_SERVICE_EVENT_LOG="$exact_dir/svc_spec4.log" \
    ./target/release/bench_service 2> /dev/null)
if ! diff <(printf '%s\n' "$svc_a") <(printf '%s\n' "$svc_seq"); then
    echo "check.sh: service smoke DIVERGED between NETPACK_BATCH modes (stdout)" >&2
    exit 1
fi
if ! diff <(printf '%s\n' "$svc_a") <(printf '%s\n' "$svc_spec4"); then
    echo "check.sh: service smoke DIVERGED at NETPACK_THREADS=4 spec (stdout)" >&2
    exit 1
fi
if ! cmp "$exact_dir/svc_a.log" "$exact_dir/svc_seq.log" \
    || ! cmp "$exact_dir/svc_a.log" "$exact_dir/svc_spec4.log"; then
    echo "check.sh: service smoke DIVERGED across batch modes (event log)" >&2
    exit 1
fi
printf '%s\n' "$svc_a"
echo "service event log: $(wc -l < "$exact_dir/svc_a.log") lines, byte-identical across runs"

echo "==> fig14 smoke: fast vs scratch packet path must match (stdout + CSV)"
pkt_fast=$(NETPACK_PKT=fast NETPACK_CSV_DIR="$pkt_dir/fast" \
    ./target/release/fig14_aggregation_ratio)
pkt_scr=$(NETPACK_PKT=scratch NETPACK_CSV_DIR="$pkt_dir/scratch" \
    ./target/release/fig14_aggregation_ratio)
if ! diff <(printf '%s\n' "$pkt_fast") <(printf '%s\n' "$pkt_scr"); then
    echo "check.sh: fig14 smoke DIVERGED between NETPACK_PKT modes (stdout)" >&2
    exit 1
fi
if ! diff -r "$pkt_dir/fast" "$pkt_dir/scratch"; then
    echo "check.sh: fig14 smoke DIVERGED between NETPACK_PKT modes (CSV)" >&2
    exit 1
fi
printf '%s\n' "$pkt_fast"

echo "check.sh: all green"
