#!/usr/bin/env bash
# Tier-1 gate: the tree is green iff this script exits 0.
#
#   ./scripts/check.sh
#
# Runs the release build, the full workspace test suite, the doctests,
# and clippy with warnings denied. Keep this list in sync with README.md.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test --workspace --doc -q"
cargo test --workspace --doc -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> fig9 smoke: incremental vs scratch steady state must match"
smoke_inc=$(NETPACK_SMOKE=1 NETPACK_QUICK=1 NETPACK_REPEATS=1 NETPACK_SIM=incremental \
    ./target/release/fig9_scale)
smoke_scr=$(NETPACK_SMOKE=1 NETPACK_QUICK=1 NETPACK_REPEATS=1 NETPACK_SIM=scratch \
    ./target/release/fig9_scale)
if ! diff <(printf '%s\n' "$smoke_inc") <(printf '%s\n' "$smoke_scr"); then
    echo "check.sh: fig9 smoke DIVERGED between NETPACK_SIM modes" >&2
    exit 1
fi
printf '%s\n' "$smoke_inc"

echo "check.sh: all green"
