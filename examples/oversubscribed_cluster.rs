//! Placement in an oversubscribed fat-tree: NetPack's cross-rack penalty
//! keeps jobs inside racks as uplinks get scarcer (§5.2, Fig. 12 setting).
//!
//! ```sh
//! cargo run --release --example oversubscribed_cluster
//! ```

use netpack::prelude::*;

fn main() {
    let trace = TraceSpec::new(TraceKind::Real, 60)
        .seed(21)
        .duration_scale(0.05)
        .max_gpus(16)
        .generate();

    let mut table = TextTable::new(vec![
        "oversub",
        "NetPack JCT (s)",
        "GB JCT (s)",
        "GB/NetPack",
        "cross-rack jobs (NetPack)",
    ]);
    for oversub in [1.0, 4.0, 10.0, 20.0] {
        let spec = ClusterSpec {
            racks: 4,
            servers_per_rack: 8,
            gpus_per_server: 4,
            oversubscription: oversub,
            ..ClusterSpec::paper_default()
        };

        // Count cross-rack placements NetPack makes on the first batch.
        let cluster = Cluster::new(spec.clone());
        let mut placer = NetPackPlacer::default();
        let first_batch: Vec<Job> = trace.jobs().iter().take(12).cloned().collect();
        let outcome = placer.place_batch(&cluster, &[], &first_batch);
        let cross = outcome
            .placed
            .iter()
            .filter(|(_, p)| {
                JobHierarchy::from_placement(&cluster, p)
                    .map(|h| h.is_cross_rack())
                    .unwrap_or(false)
            })
            .count();

        let run = |placer: Box<dyn Placer>| {
            Simulation::new(Cluster::new(spec.clone()), placer, SimConfig::default())
                .run(&trace)
                .average_jct_s()
                .expect("jobs finished")
        };
        let netpack = run(Box::<NetPackPlacer>::default());
        let gb = run(Box::new(GpuBalance));
        table.row(vec![
            format!("{oversub:.0}:1"),
            format!("{netpack:.1}"),
            format!("{gb:.1}"),
            format!("{:.2}x", gb / netpack),
            format!("{cross}/{}", outcome.placed.len()),
        ]);
    }
    println!("{table}");
    println!("higher oversubscription widens NetPack's advantage (paper Fig. 12).");
}
