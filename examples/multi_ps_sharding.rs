//! Gradient sharding over multiple parameter servers (§4.1 extension).
//!
//! A fan-in-heavy job bottlenecks on its PS's access link when the switch
//! cannot aggregate. Sharding the gradient over k PSes gives the job k
//! parallel aggregation trees; this example shows the steady-state rates
//! and per-iteration communication times side by side.
//!
//! ```sh
//! cargo run --release --example multi_ps_sharding
//! ```

use netpack::placement::NetPackConfig;
use netpack::prelude::*;

fn main() {
    // One rack, no INA (PAT 0): the PS link is the whole story.
    let cluster = Cluster::new(ClusterSpec {
        racks: 1,
        servers_per_rack: 8,
        gpus_per_server: 4,
        pat_gbps: 0.0,
        ..ClusterSpec::paper_default()
    });
    let job = Job::builder(JobId(0), ModelKind::Vgg16, 16).build();

    let mut table = TextTable::new(vec![
        "PSes",
        "per-shard rate (Gbps)",
        "comm time / iter (s)",
        "speedup",
    ]);
    let mut base_time = None;
    for k in [1usize, 2, 4] {
        let mut placer = NetPackPlacer::new(NetPackConfig {
            pses_per_job: k,
            ina_policy: netpack::placement::InaPolicy::AlwaysOff,
            ..NetPackConfig::default()
        });
        let outcome = placer.place_batch(&cluster, &[], std::slice::from_ref(&job));
        let (job, placement) = &outcome.placed[0];
        let placed = vec![PlacedJob::new(job.id, &cluster, placement)];
        let state = estimate(&cluster, &placed);
        let rate = state.job_rate_gbps(job.id).expect("network job");
        let comm = state
            .comm_time_s(job.id, job.gradient_gbits())
            .expect("network job");
        let speedup = base_time.get_or_insert(comm);
        table.row(vec![
            placement.pses().len().to_string(),
            format!("{rate:.1}"),
            format!("{comm:.3}"),
            format!("{:.2}x", *speedup / comm),
        ]);
    }
    println!("16-worker VGG16 job, no INA — PS fan-in is the bottleneck:\n");
    println!("{table}");
    println!("each shard carries 1/k of the gradient through its own tree, so the");
    println!("same per-tree rate completes the exchange k-times faster until worker");
    println!("links (which carry k flows each) become the new bottleneck.");
}
