//! Quickstart: place one batch of jobs with NetPack and inspect the plan.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use netpack::prelude::*;

fn main() {
    // The paper's testbed: one rack, five 2-GPU servers, 100 Gbps links,
    // a statistical-INA ToR switch.
    let cluster = Cluster::new(ClusterSpec::paper_testbed());
    println!(
        "cluster: {} servers, {} GPUs, {:.0} Gbps links, {:.0} Gbps PAT",
        cluster.num_servers(),
        cluster.total_gpus(),
        cluster.spec().server_link_gbps,
        cluster.spec().pat_gbps,
    );

    // Three jobs: a communication-heavy VGG16, a compute-heavy ResNet50,
    // and a small AlexNet job.
    let batch = vec![
        Job::builder(JobId(0), ModelKind::Vgg16, 4).build(),
        Job::builder(JobId(1), ModelKind::ResNet50, 4).build(),
        Job::builder(JobId(2), ModelKind::AlexNet, 2).build(),
    ];

    let mut placer = NetPackPlacer::default();
    let outcome = placer.place_batch(&cluster, &[], &batch);

    let mut table = TextTable::new(vec!["job", "model", "gpus", "workers", "ps", "ina"]);
    for (job, placement) in &outcome.placed {
        let workers: Vec<String> = placement
            .workers()
            .iter()
            .map(|(s, w)| format!("{s}x{w}"))
            .collect();
        table.row(vec![
            job.id.to_string(),
            job.model.to_string(),
            job.gpus.to_string(),
            workers.join(","),
            placement
                .ps()
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            if placement.is_local() {
                "local".into()
            } else if placement.ina_enabled() {
                "on".into()
            } else {
                "off".into()
            },
        ]);
    }
    println!("\nplacement decisions:\n{table}");

    // Estimate the converged steady state of the placed jobs.
    let placed: Vec<PlacedJob> = outcome
        .placed
        .iter()
        .map(|(j, p)| PlacedJob::new(j.id, &cluster, p))
        .collect();
    let state = estimate(&cluster, &placed);
    println!("steady-state per-worker rates:");
    for (job, _) in &outcome.placed {
        let rate = state.job_rate_gbps(job.id).unwrap();
        if rate.is_infinite() {
            println!("  {}: local (no network traffic)", job.id);
        } else {
            println!("  {}: {rate:.1} Gbps", job.id);
        }
    }
}
