//! Exercise the packet-level switch simulator directly: the PAT law,
//! fair sharing, and the statistical-vs-synchronous comparison.
//!
//! ```sh
//! cargo run --release --example switch_microbench
//! ```

use netpack::packetsim::{MemoryMode, PacketJobSpec, PacketSim, SwitchConfig};
use netpack::prelude::*;

fn streaming_job(id: u64, rate_gbps: f64) -> PacketJobSpec {
    PacketJobSpec {
        id: JobId(id),
        fan_in: 2,
        gradient_gbits: 0.5,
        compute_time_s: 0.0,
        iterations: 0,
        start_s: 0.0,
        target_gbps: Some(rate_gbps),
    }
}

fn main() {
    // --- The PAT law: aggregation ratio tracks pool/(rate x RTT). ---
    println!("PAT law (paper Fig. 14a): aggregation ratio vs PAT ratio");
    let mut table = TextTable::new(vec!["PAT ratio", "measured", "theory (y=x)"]);
    for x in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let base = SwitchConfig::default();
        let window = base.rate_to_pkts(10.0);
        let config = SwitchConfig {
            pool_slots: (x * window as f64).round() as usize,
            ..base
        };
        let mut sim = PacketSim::new(config);
        sim.add_job(streaming_job(0, 10.0));
        let report = sim.run(0.05);
        table.row_f64(format!("{x:.1}"), &[report.per_job[0].aggregation_ratio(), x]);
    }
    println!("{table}");

    // --- Fair sharing between two jobs (Fig. 14b). ---
    println!("fair sharing (Fig. 14b): two jobs, pool sized for one");
    let base = SwitchConfig::default();
    let window = base.rate_to_pkts(10.0);
    let config = SwitchConfig {
        pool_slots: window,
        ..base
    };
    let mut sim = PacketSim::new(config);
    sim.add_job(streaming_job(0, 10.0));
    sim.add_job(streaming_job(1, 10.0));
    let report = sim.run(0.1);
    for s in &report.per_job {
        println!(
            "  job {}: aggregation ratio {:.3} (theory 0.5)",
            s.id,
            s.aggregation_ratio()
        );
    }

    // --- Statistical vs synchronous under scarce memory (Fig. 2). ---
    println!("\nscarce memory (Fig. 2): goodput by memory mode");
    let mut table = TextTable::new(vec!["pool slots", "statistical Gbps", "synchronous Gbps"]);
    for slots in [32usize, 128, 512, 2048] {
        let run = |mode| {
            let config = SwitchConfig {
                pool_slots: slots,
                mode,
                ..SwitchConfig::default()
            };
            let mut sim = PacketSim::new(config);
            sim.add_job(PacketJobSpec {
                target_gbps: None,
                ..streaming_job(0, 0.0)
            });
            let r = sim.run(0.05);
            r.per_job[0].mean_goodput_gbps(r.duration_s)
        };
        table.row_f64(
            slots.to_string(),
            &[run(MemoryMode::Statistical), run(MemoryMode::Synchronous)],
        );
    }
    println!("{table}");
    println!("statistical INA degrades gracefully; synchronous INA is capped at region/RTT.");
}
