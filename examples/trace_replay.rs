//! Replay a production-like trace under every placer and compare the
//! paper's two metrics (average JCT, distribution efficiency).
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use netpack::prelude::*;

fn main() {
    let spec = ClusterSpec {
        racks: 4,
        servers_per_rack: 8,
        gpus_per_server: 4,
        ..ClusterSpec::paper_default()
    };
    let trace = TraceSpec::new(TraceKind::Real, 80)
        .seed(7)
        .duration_scale(0.05)
        .max_gpus(spec.total_gpus() / 4)
        .generate();
    println!(
        "trace: {} jobs, {} total GPUs demanded, cluster of {} GPUs",
        trace.jobs().len(),
        trace.total_gpu_demand(),
        spec.total_gpus(),
    );

    let placers: Vec<Box<dyn Placer>> = vec![
        Box::new(NetPackPlacer::default()),
        Box::new(GpuBalance),
        Box::new(FlowBalance),
        Box::new(LeastFragmentation),
        Box::new(OptimusLike),
        Box::new(TetrisLike),
    ];

    let mut table = TextTable::new(vec!["placer", "avg JCT (s)", "norm JCT", "DE"]);
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for placer in placers {
        let name = placer.name().to_string();
        let sim = Simulation::new(Cluster::new(spec.clone()), placer, SimConfig::default());
        let result = sim.run(&trace);
        assert!(
            result.unfinished.is_empty(),
            "{name}: {} unfinished jobs",
            result.unfinished.len()
        );
        rows.push((
            name,
            result.average_jct_s().expect("jobs finished"),
            result.distribution_efficiency().expect("jobs finished"),
        ));
    }
    let netpack_jct = rows[0].1;
    for (name, jct, de) in rows {
        table.row(vec![
            name,
            format!("{jct:.1}"),
            format!("{:.3}", jct / netpack_jct),
            format!("{de:.3}"),
        ]);
    }
    println!("\n{table}");
    println!("norm JCT is relative to NetPack (lower is worse for NetPack's rivals).");
}
