#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Shared scaffolding for the figure-regeneration binaries.
//!
//! Every table and figure of the paper's evaluation (§6) has a binary in
//! `src/bin/` that reprints the corresponding rows/series:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig2_ina_modes` | Fig. 2 — statistical vs synchronous INA throughput |
//! | `fig5_aggregation_model` | Fig. 5b — FS/FC flow counts vs sending rate |
//! | `fig6_sim_validation` | Fig. 6 — packet-sim vs flow-sim JCT correlation |
//! | `fig7_jct` | Fig. 7 — normalized average JCT, 6 placers × 3 traces |
//! | `fig8_de` | Fig. 8 — distribution efficiency, same matrix |
//! | `fig9_scale` | Fig. 9 — JCT vs cluster scale |
//! | `fig10_placement_time` | Fig. 10 — placement algorithm execution time |
//! | `fig11_switch_memory` | Fig. 11 — JCT vs available switch memory |
//! | `fig12_oversubscription` | Fig. 12 — JCT vs oversubscription ratio |
//! | `fig13_comb` | Fig. 13 — NetPack vs the naive combination |
//! | `fig14_aggregation_ratio` | Fig. 14 — aggregation ratio vs PAT ratio |
//! | `fig15_waterfill_accuracy` | Fig. 15 — estimated vs measured bandwidth |
//! | `table_mip_vs_dp` | §5.1 — exact-search runtime blow-up and DP gap |
//! | `ablation_hotspot` | §5.2 note — Eq. 1 sign variants |
//! | `ablation_ina_enable` | §5.2 step 4 — INA policies |
//! | `ablation_dp_flows` | §5.2 — two-dimensional DP weight |
//! | `ablation_multi_ps` | §4.1 extension — gradient sharding over k PSes |
//! | `ext_fig2_cluster` | extension — memory modes at cluster scale |
//! | `ext_fig5_packet` | extension — Fig. 5 at packet granularity |
//! | `ext_tail_and_utilization` | extension — p95 JCT and GPU occupancy |
//!
//! Scale every binary down or up with `NETPACK_REPEATS` (default 5) and
//! `NETPACK_QUICK=1` (smaller clusters/traces for smoke runs).

use netpack_flowsim::{SimConfig, Simulation};
use netpack_metrics::{Summary, TextTable};
use netpack_packetsim::{PacketJobSpec, SwitchConfig};
use netpack_placement::{
    Comb, FlowBalance, GpuBalance, LeastFragmentation, NetPackPlacer, OptimusLike, Placer,
    TetrisLike,
};
use netpack_topology::{Cluster, ClusterSpec, JobId};
use netpack_workload::{TraceKind, TraceSpec};

/// Number of repetitions (distinct trace seeds) per data point.
pub fn repeats() -> usize {
    std::env::var("NETPACK_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

/// Whether to shrink experiments for a quick smoke run.
pub fn quick() -> bool {
    std::env::var("NETPACK_QUICK").is_ok_and(|v| v != "0")
}

/// The paper's 5-server testbed cluster spec (heavily loaded in our runs
/// so placement quality matters, as the production replay does).
pub fn testbed_spec() -> ClusterSpec {
    ClusterSpec {
        pat_gbps: 200.0,
        ..ClusterSpec::paper_testbed()
    }
}

/// The paper's default simulated cluster (16 racks × 16 servers × 4 GPUs),
/// optionally shrunk by `NETPACK_QUICK`.
pub fn simulator_spec() -> ClusterSpec {
    if quick() {
        ClusterSpec {
            racks: 4,
            servers_per_rack: 4,
            ..ClusterSpec::paper_default()
        }
    } else {
        ClusterSpec::paper_default()
    }
}

/// A loaded trace for a given cluster: arrival pressure and durations
/// tuned so many jobs contend for GPUs and the network simultaneously
/// (the regime the paper's production replay exercises). The inter-arrival
/// time is derived from the cluster's service capacity so that offered
/// load sits slightly above saturation regardless of cluster size.
pub fn loaded_trace(
    kind: TraceKind,
    spec: &ClusterSpec,
    jobs: usize,
    seed: u64,
) -> netpack_workload::Trace {
    let max = (spec.total_gpus() / 2).clamp(2, 64);
    let duration_scale = 0.3;
    // Log-normal mean duration: median 480 s, sigma 1.1 (see TraceSpec).
    let mean_duration_s = 480.0 * (1.1f64 * 1.1 / 2.0).exp() * duration_scale;
    let mean_gpus = match kind {
        TraceKind::Real => 4.5f64.min(max as f64 / 2.0),
        TraceKind::Poisson => 4.0f64.min(max as f64),
        TraceKind::Normal => 8.0f64.min(max as f64),
    };
    let utilization_target = 1.15; // slightly over-saturated
    let interarrival =
        mean_gpus * mean_duration_s / (spec.total_gpus() as f64 * utilization_target);
    TraceSpec::new(kind, jobs)
        .seed(seed)
        .mean_interarrival_s(interarrival)
        .duration_scale(duration_scale)
        .max_gpus(max)
        .generate()
}

/// Jobs per trace for the standard experiments. Small (testbed-scale)
/// clusters get a floor of 120 jobs: their heavy-tailed queueing makes
/// short traces noisy, and averaging over more completions is how the
/// paper's long production replay smooths the same effect.
pub fn standard_jobs(spec: &ClusterSpec) -> usize {
    let base = (spec.total_gpus() / 2).clamp(120, 400);
    if quick() {
        base / 4
    } else {
        base
    }
}

/// The figure roster: NetPack plus the five comparison placers of §6.1.
pub fn roster() -> Vec<Box<dyn Placer>> {
    vec![
        Box::new(NetPackPlacer::default()),
        Box::new(GpuBalance),
        Box::new(FlowBalance),
        Box::new(LeastFragmentation),
        Box::new(OptimusLike),
        Box::new(TetrisLike),
    ]
}

/// The roster's display names, in order.
pub fn roster_names() -> Vec<&'static str> {
    vec!["NetPack", "GB", "FB", "LF", "Optimus", "Tetris"]
}

/// Construct one roster placer by name (placers are stateful, so each
/// repetition builds a fresh one).
pub fn placer_by_name(name: &str) -> Box<dyn Placer> {
    match name {
        "NetPack" => Box::new(NetPackPlacer::default()),
        "GB" => Box::new(GpuBalance),
        "FB" => Box::new(FlowBalance),
        "LF" => Box::new(LeastFragmentation),
        "Optimus" => Box::new(OptimusLike),
        "Tetris" => Box::new(TetrisLike),
        "Comb" => Box::new(Comb),
        other => panic!("unknown placer {other}"),
    }
}

pub use netpack_metrics::parallel_sweep;

/// Worker-thread count recorded in the ledger rows: the raw
/// `NETPACK_THREADS` request when set — so the `scripts/bench.sh` thread
/// sweep produces distinguishable rows even on machines whose core count
/// clamps the effective parallelism — else the machine clamp
/// [`netpack_metrics::sweep_threads`] the run actually used.
pub fn bench_threads() -> u64 {
    std::env::var("NETPACK_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or_else(|| netpack_metrics::sweep_threads() as u64)
}

/// Outcome of repeated trace replays for one placer.
#[derive(Debug, Clone, Copy)]
pub struct ReplayPoint {
    /// Average-JCT summary across repetitions.
    pub jct: Summary,
    /// Distribution-efficiency summary across repetitions.
    pub de: Summary,
}

/// Replay one seeded trace for one placer name on one cluster spec — the
/// unit cell the figure sweeps fan out over [`parallel_sweep`].
pub fn replay_cell(
    name: &str,
    spec: &ClusterSpec,
    kind: TraceKind,
    jobs: usize,
    seed: u64,
) -> netpack_flowsim::SimResult {
    let trace = loaded_trace(kind, spec, jobs, seed);
    Simulation::new(
        Cluster::new(spec.clone()),
        placer_by_name(name),
        SimConfig::default(),
    )
    .run(&trace)
}

/// Replay `repeats()` seeded traces for one placer name on one cluster
/// spec, returning JCT/DE summaries.
pub fn replay(name: &str, spec: &ClusterSpec, kind: TraceKind, jobs: usize) -> ReplayPoint {
    let mut jcts = Vec::new();
    let mut des = Vec::new();
    for rep in 0..repeats() {
        let result = replay_cell(name, spec, kind, jobs, 1000 + rep as u64);
        jcts.push(result.average_jct_s().expect("jobs finished"));
        des.push(result.distribution_efficiency().expect("jobs finished"));
    }
    ReplayPoint {
        jct: Summary::of(&jcts),
        de: Summary::of(&des),
    }
}

/// The packet microbenchmarks' standard continuously-streaming job: 0.5 Gb
/// gradients, no compute phase, unbounded iterations, immediate start
/// (the Fig. 2/14 workload).
pub fn packet_stream_job(id: u64, fan_in: usize, target_gbps: Option<f64>) -> PacketJobSpec {
    PacketJobSpec {
        id: JobId(id),
        fan_in,
        gradient_gbits: 0.5,
        compute_time_s: 0.0,
        iterations: 0,
        start_s: 0.0,
        target_gbps,
    }
}

/// The Fig. 14 switch configuration: an aggregator pool sized to
/// `pat_ratio` times the window of a job pacing at `rate_gbps` — so the
/// pool's PAT is that fraction of one job's offered rate.
pub fn pat_ratio_config(pat_ratio: f64, rate_gbps: f64) -> SwitchConfig {
    let base = SwitchConfig::default();
    let window = base.rate_to_pkts(rate_gbps);
    SwitchConfig {
        pool_slots: (pat_ratio * window as f64).round() as usize,
        ..base
    }
}

/// Print a table to stdout and, when `NETPACK_CSV_DIR` is set, also write
/// it to `$NETPACK_CSV_DIR/<name>.csv` — the shared emission path of the
/// figure binaries (the `scripts/check.sh` two-mode gate diffs the CSVs).
pub fn emit_table(name: &str, table: &TextTable) {
    println!("{table}");
    if let Ok(dir) = std::env::var("NETPACK_CSV_DIR") {
        if !dir.is_empty() {
            let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
            table
                .write_csv(&path)
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        }
    }
}

/// One machine-readable benchmark measurement — a line of
/// `results/BENCH_placement.json`.
///
/// The schema (documented in DESIGN.md §3.10) is JSON Lines: one object
/// per line with exactly the keys `bench`, `instance`, `mode` (strings),
/// `wall_s` (finite non-negative number), `threads` (positive integer)
/// and `evals`, `nodes`, `pruned` (non-negative integers; 0 when a
/// counter does not apply to the bench).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Source binary, e.g. `"table_mip_vs_dp"`.
    pub bench: &'static str,
    /// Instance label, e.g. `"6x2/3+3+3"` or `"servers=400/jobs=100"`.
    pub instance: String,
    /// Algorithm variant, e.g. `"bnb"`, `"scratch"`, `"dp"`, `"fast"`.
    pub mode: String,
    /// Wall-clock seconds for the measured call.
    pub wall_s: f64,
    /// Configured worker-thread count for the measured call (see
    /// [`bench_threads`]; 1 for benches with no parallel region).
    pub threads: u64,
    /// Complete assignments evaluated (exact placers) or plans considered
    /// (the DP placer).
    pub evals: u64,
    /// Search-tree nodes visited (branch-and-bound only; else 0).
    pub nodes: u64,
    /// Subtrees cut by the admissible bound (branch-and-bound only; else 0).
    pub pruned: u64,
}

impl BenchRow {
    /// Serialize as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let wall = if self.wall_s.is_finite() && self.wall_s >= 0.0 {
            self.wall_s
        } else {
            0.0
        };
        format!(
            "{{\"bench\":{},\"instance\":{},\"mode\":{},\"wall_s\":{},\"threads\":{},\"evals\":{},\"nodes\":{},\"pruned\":{}}}",
            json_string(self.bench),
            json_string(&self.instance),
            json_string(&self.mode),
            wall,
            self.threads.max(1),
            self.evals,
            self.nodes,
            self.pruned,
        )
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Append `row` to the file named by `NETPACK_BENCH_JSON` (one JSON object
/// per line). A no-op when the variable is unset or empty, so the figure
/// binaries stay silent outside `scripts/bench.sh` runs.
pub fn emit_bench_row(row: &BenchRow) {
    if let Ok(path) = std::env::var("NETPACK_BENCH_JSON") {
        if !path.is_empty() {
            use std::io::Write;
            let mut line = row.to_json();
            line.push('\n');
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .unwrap_or_else(|e| panic!("opening {path}: {e}"));
            file.write_all(line.as_bytes())
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        }
    }
}

/// One machine-readable service-throughput measurement — a line of
/// `results/BENCH_service.json`.
///
/// The schema (documented in DESIGN.md §3.12) is JSON Lines like
/// [`BenchRow`]'s, with service-shaped columns: the sustained placement
/// throughput of one `bench_service` run plus the submit-to-placement
/// latency percentiles and the backpressure counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRow {
    /// Source binary, e.g. `"bench_service"`.
    pub bench: &'static str,
    /// Instance label, e.g. `"fig10/jobs=1000000"`.
    pub instance: String,
    /// Driver variant: `"threaded"` or `"deterministic"`.
    pub mode: String,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Configured placer worker-thread count for the run (see
    /// [`bench_threads`]).
    pub threads: u64,
    /// Jobs placed.
    pub placed: u64,
    /// Submissions rejected by queue backpressure.
    pub rejected: u64,
    /// Defer events (jobs returning to the queue after a full pass).
    pub deferrals: u64,
    /// Sustained placements per second (`placed / wall_s`).
    pub throughput_per_s: f64,
    /// Median submit-to-placement latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile latency, microseconds.
    pub p999_us: u64,
}

impl ServiceRow {
    /// Serialize as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let clamp = |v: f64| if v.is_finite() && v >= 0.0 { v } else { 0.0 };
        format!(
            "{{\"bench\":{},\"instance\":{},\"mode\":{},\"wall_s\":{},\"threads\":{},\"placed\":{},\"rejected\":{},\"deferrals\":{},\"throughput_per_s\":{},\"p50_us\":{},\"p99_us\":{},\"p999_us\":{}}}",
            json_string(self.bench),
            json_string(&self.instance),
            json_string(&self.mode),
            clamp(self.wall_s),
            self.threads.max(1),
            self.placed,
            self.rejected,
            self.deferrals,
            clamp(self.throughput_per_s),
            self.p50_us,
            self.p99_us,
            self.p999_us,
        )
    }
}

/// Append `row` to the file named by `NETPACK_BENCH_JSON` (one JSON object
/// per line), like [`emit_bench_row`] but for the service schema. A no-op
/// when the variable is unset or empty.
pub fn emit_service_row(row: &ServiceRow) {
    if let Ok(path) = std::env::var("NETPACK_BENCH_JSON") {
        if !path.is_empty() {
            use std::io::Write;
            let mut line = row.to_json();
            line.push('\n');
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .unwrap_or_else(|e| panic!("opening {path}: {e}"));
            file.write_all(line.as_bytes())
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        }
    }
}

/// Validate a `BENCH_service.json` JSON-Lines document against the
/// [`ServiceRow`] schema; returns the row count. Picked by the
/// `bench_json_check` binary for paths whose file name contains
/// `service`.
pub fn validate_service_jsonl(text: &str) -> Result<usize, String> {
    let mut rows = 0;
    for (n, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        validate_service_line(line).map_err(|e| format!("line {}: {e}", n + 1))?;
        rows += 1;
    }
    if rows == 0 {
        return Err("no rows".to_string());
    }
    Ok(rows)
}

fn validate_service_line(line: &str) -> Result<(), String> {
    let fields = parse_flat_json_object(line)?;
    const KEYS: [&str; 12] = [
        "bench",
        "instance",
        "mode",
        "wall_s",
        "threads",
        "placed",
        "rejected",
        "deferrals",
        "throughput_per_s",
        "p50_us",
        "p99_us",
        "p999_us",
    ];
    for key in KEYS {
        if !fields.iter().any(|(k, _)| k == key) {
            return Err(format!("missing key {key:?}"));
        }
    }
    let mut quantiles = [0.0f64; 3];
    for (key, value) in &fields {
        match (key.as_str(), value) {
            ("bench" | "instance" | "mode", JsonValue::Str(s)) => {
                if s.is_empty() {
                    return Err(format!("{key:?} must be a non-empty string"));
                }
            }
            ("wall_s" | "throughput_per_s", JsonValue::Num(v)) => {
                if !v.is_finite() || *v < 0.0 {
                    return Err(format!("{key:?} must be finite and >= 0, got {v}"));
                }
            }
            ("threads", JsonValue::Num(v)) => {
                if !v.is_finite() || *v < 1.0 || v.fract() != 0.0 {
                    return Err(format!("threads must be a positive integer, got {v}"));
                }
            }
            (
                "placed" | "rejected" | "deferrals" | "p50_us" | "p99_us" | "p999_us",
                JsonValue::Num(v),
            ) => {
                if !v.is_finite() || *v < 0.0 || v.fract() != 0.0 {
                    return Err(format!("{key:?} must be a non-negative integer, got {v}"));
                }
                match key.as_str() {
                    "p50_us" => quantiles[0] = *v,
                    "p99_us" => quantiles[1] = *v,
                    "p999_us" => quantiles[2] = *v,
                    _ => {}
                }
            }
            (other, _) if !KEYS.contains(&other) => {
                return Err(format!("unknown key {other:?}"));
            }
            (other, _) => return Err(format!("wrong type for key {other:?}")),
        }
    }
    if !(quantiles[0] <= quantiles[1] && quantiles[1] <= quantiles[2]) {
        return Err(format!(
            "latency percentiles must be non-decreasing, got p50={} p99={} p999={}",
            quantiles[0], quantiles[1], quantiles[2]
        ));
    }
    Ok(())
}

/// Validate a `BENCH_*.json` JSON-Lines document against the schema in
/// [`BenchRow`]; returns the row count. Used by the `bench_json_check`
/// binary at the end of `scripts/bench.sh`.
pub fn validate_bench_jsonl(text: &str) -> Result<usize, String> {
    let mut rows = 0;
    for (n, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        validate_bench_line(line).map_err(|e| format!("line {}: {e}", n + 1))?;
        rows += 1;
    }
    if rows == 0 {
        return Err("no rows".to_string());
    }
    Ok(rows)
}

fn validate_bench_line(line: &str) -> Result<(), String> {
    let fields = parse_flat_json_object(line)?;
    const KEYS: [&str; 8] = [
        "bench", "instance", "mode", "wall_s", "threads", "evals", "nodes", "pruned",
    ];
    for key in KEYS {
        if !fields.iter().any(|(k, _)| k == key) {
            return Err(format!("missing key {key:?}"));
        }
    }
    for (key, value) in &fields {
        match (key.as_str(), value) {
            ("bench" | "instance" | "mode", JsonValue::Str(s)) => {
                if s.is_empty() {
                    return Err(format!("{key:?} must be a non-empty string"));
                }
            }
            ("wall_s", JsonValue::Num(v)) => {
                if !v.is_finite() || *v < 0.0 {
                    return Err(format!("wall_s must be finite and >= 0, got {v}"));
                }
            }
            ("threads", JsonValue::Num(v)) => {
                if !v.is_finite() || *v < 1.0 || v.fract() != 0.0 {
                    return Err(format!("threads must be a positive integer, got {v}"));
                }
            }
            ("evals" | "nodes" | "pruned", JsonValue::Num(v)) => {
                if !v.is_finite() || *v < 0.0 || v.fract() != 0.0 {
                    return Err(format!("{key:?} must be a non-negative integer, got {v}"));
                }
            }
            (other, _) if !KEYS.contains(&other) => {
                return Err(format!("unknown key {other:?}"));
            }
            (other, _) => return Err(format!("wrong type for key {other:?}")),
        }
    }
    Ok(())
}

enum JsonValue {
    Str(String),
    Num(f64),
}

/// Minimal parser for one flat JSON object of string/number values — the
/// only shape the BENCH schema permits, so no external JSON crate needed.
fn parse_flat_json_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut chars = line.chars().peekable();
    let mut fields = Vec::new();
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars>| {
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
    };
    let parse_string = |chars: &mut std::iter::Peekable<std::str::Chars>| -> Result<String, String> {
        if chars.next() != Some('"') {
            return Err("expected '\"'".to_string());
        }
        let mut out = String::new();
        loop {
            match chars.next() {
                Some('"') => return Ok(out),
                Some('\\') => match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    };
    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("expected '{'".to_string());
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some('"') => {}
            other => return Err(format!("expected key, got {other:?}")),
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        skip_ws(&mut chars);
        let value = if chars.peek() == Some(&'"') {
            JsonValue::Str(parse_string(&mut chars)?)
        } else {
            let mut num = String::new();
            while chars
                .peek()
                .is_some_and(|c| c.is_ascii_digit() || "+-.eE".contains(*c))
            {
                num.push(chars.next().unwrap_or_default());
            }
            JsonValue::Num(
                num.parse::<f64>()
                    .map_err(|_| format!("bad number {num:?} for key {key:?}"))?,
            )
        };
        if fields.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate key {key:?}"));
        }
        fields.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => {}
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing characters after object".to_string());
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_names_match_roster() {
        let names = roster_names();
        let roster = roster();
        assert_eq!(names.len(), roster.len());
        for (n, p) in names.iter().zip(&roster) {
            assert_eq!(*n, p.name());
        }
    }

    #[test]
    fn placer_by_name_round_trips() {
        for name in roster_names() {
            assert_eq!(placer_by_name(name).name(), name);
        }
        assert_eq!(placer_by_name("Comb").name(), "Comb");
    }

    #[test]
    #[should_panic(expected = "unknown placer")]
    fn unknown_placer_panics() {
        let _ = placer_by_name("nope");
    }

    #[test]
    fn parallel_sweep_matches_sequential_simulation() {
        // The real use: one simulation per cell must give the same
        // results as running the cells in a plain loop.
        let spec = testbed_spec();
        let cells: Vec<u64> = vec![1, 2, 3];
        let run = |&seed: &u64| {
            let trace = loaded_trace(TraceKind::Real, &spec, 12, seed);
            Simulation::new(
                Cluster::new(spec.clone()),
                placer_by_name("GB"),
                SimConfig::default(),
            )
            .run(&trace)
            .average_jct_s()
            .expect("jobs finished")
        };
        let par = parallel_sweep(&cells, run);
        let seq: Vec<f64> = cells.iter().map(run).collect();
        assert_eq!(par, seq);
    }

    fn sample_row() -> BenchRow {
        BenchRow {
            bench: "table_mip_vs_dp",
            instance: "6x2/3+3+3".to_string(),
            mode: "bnb".to_string(),
            wall_s: 0.125,
            threads: 1,
            evals: 42,
            nodes: 99,
            pruned: 7,
        }
    }

    #[test]
    fn bench_row_json_round_trips_through_the_validator() {
        let json = sample_row().to_json();
        assert!(json.contains("\"bench\":\"table_mip_vs_dp\""));
        assert_eq!(validate_bench_jsonl(&json), Ok(1));
        // Multiple lines count as multiple rows; blanks are skipped.
        let doc = format!("{json}\n\n{json}\n");
        assert_eq!(validate_bench_jsonl(&doc), Ok(2));
    }

    #[test]
    fn fig10_xl_row_shape_passes_the_validator() {
        // The exact row shape the fig10_xl binary emits per topology mode
        // (DESIGN.md §3.11): evals = plans considered, nodes = DP
        // candidates offered, pruned = offered - kept.
        for mode in ["struct", "flat"] {
            let row = BenchRow {
                bench: "fig10_xl",
                instance: "servers=50176/jobs=100".to_string(),
                mode: mode.to_string(),
                wall_s: 0.164,
                threads: 4,
                evals: 1234,
                nodes: 5_017_600,
                pruned: 5_000_000,
            };
            assert_eq!(validate_bench_jsonl(&row.to_json()), Ok(1));
        }
    }

    #[test]
    fn bench_row_json_escapes_strings() {
        let row = BenchRow {
            instance: "weird \"quote\" \\ tab\t".to_string(),
            ..sample_row()
        };
        assert_eq!(validate_bench_jsonl(&row.to_json()), Ok(1));
    }

    #[test]
    fn validator_rejects_schema_violations() {
        // Missing key.
        let missing = r#"{"bench":"b","instance":"i","mode":"m","wall_s":1,"threads":1,"evals":2,"nodes":3}"#;
        assert!(validate_bench_jsonl(missing).is_err());
        // Unknown key.
        let unknown = r#"{"bench":"b","instance":"i","mode":"m","wall_s":1,"threads":1,"evals":2,"nodes":3,"pruned":0,"extra":1}"#;
        assert!(validate_bench_jsonl(unknown).is_err());
        // Wrong type.
        let wrong = r#"{"bench":"b","instance":"i","mode":"m","wall_s":"fast","threads":1,"evals":2,"nodes":3,"pruned":0}"#;
        assert!(validate_bench_jsonl(wrong).is_err());
        // Non-integer counter.
        let fractional = r#"{"bench":"b","instance":"i","mode":"m","wall_s":1,"threads":1,"evals":2.5,"nodes":3,"pruned":0}"#;
        assert!(validate_bench_jsonl(fractional).is_err());
        // Zero threads (the schema demands a positive worker count).
        let zero_threads = r#"{"bench":"b","instance":"i","mode":"m","wall_s":1,"threads":0,"evals":2,"nodes":3,"pruned":0}"#;
        assert!(validate_bench_jsonl(zero_threads)
            .is_err_and(|e| e.contains("positive integer")));
        // Negative wall clock, malformed JSON, empty document.
        let negative = r#"{"bench":"b","instance":"i","mode":"m","wall_s":-1,"threads":1,"evals":2,"nodes":3,"pruned":0}"#;
        assert!(validate_bench_jsonl(negative).is_err());
        assert!(validate_bench_jsonl("not json").is_err());
        assert!(validate_bench_jsonl("").is_err());
    }

    fn sample_service_row() -> ServiceRow {
        ServiceRow {
            bench: "bench_service",
            instance: "fig10/jobs=1000000".to_string(),
            mode: "threaded".to_string(),
            wall_s: 8.25,
            threads: 4,
            placed: 999_000,
            rejected: 120,
            deferrals: 4_500,
            throughput_per_s: 121_090.9,
            p50_us: 180,
            p99_us: 2_400,
            p999_us: 9_100,
        }
    }

    #[test]
    fn service_row_json_round_trips_through_the_validator() {
        let json = sample_service_row().to_json();
        assert!(json.contains("\"throughput_per_s\":121090.9"));
        assert_eq!(validate_service_jsonl(&json), Ok(1));
        let doc = format!("{json}\n\n{json}\n");
        assert_eq!(validate_service_jsonl(&doc), Ok(2));
    }

    #[test]
    fn service_validator_rejects_schema_violations() {
        // A BenchRow is not a ServiceRow.
        assert!(validate_service_jsonl(&sample_row().to_json()).is_err());
        // Missing percentile.
        let missing = sample_service_row().to_json().replace(",\"p999_us\":9100", "");
        assert!(validate_service_jsonl(&missing).is_err());
        // Zero threads.
        let zero_threads = sample_service_row().to_json().replace("\"threads\":4", "\"threads\":0");
        assert!(validate_service_jsonl(&zero_threads)
            .is_err_and(|e| e.contains("positive integer")));
        // Non-monotone percentiles.
        let inverted = ServiceRow {
            p99_us: 10_000,
            ..sample_service_row()
        };
        assert!(validate_service_jsonl(&inverted.to_json())
            .is_err_and(|e| e.contains("non-decreasing")));
        // Fractional counter and empty document.
        let fractional = sample_service_row().to_json().replace("\"placed\":999000", "\"placed\":99.5");
        assert!(validate_service_jsonl(&fractional).is_err());
        assert!(validate_service_jsonl("").is_err());
    }

    #[test]
    fn loaded_trace_respects_cluster_size() {
        let spec = testbed_spec();
        let t = loaded_trace(TraceKind::Real, &spec, 50, 1);
        assert_eq!(t.jobs().len(), 50);
        assert!(t.jobs().iter().all(|j| j.gpus <= spec.total_gpus()));
    }
}
