//! Extension — Fig. 2's claim at cluster scale.
//!
//! Fig. 2 compares statistical vs synchronous INA for one job behind one
//! switch. This extension asks the cluster-level question §2.2 implies:
//! replaying the same trace with the same placer, how much slower is a
//! cluster whose switches run naive synchronous partitions instead of a
//! statistical pool? (INAlloc-style re-partitioning would sit between the
//! two, at the cost of the central controller the paper argues against.)

use netpack_bench::{loaded_trace, repeats, standard_jobs};
use netpack_flowsim::{InaMode, SimConfig, Simulation};
use netpack_metrics::{Summary, TextTable};
use netpack_placement::NetPackPlacer;
use netpack_topology::{Cluster, ClusterSpec};
use netpack_workload::TraceKind;

fn run(spec: &ClusterSpec, mode: InaMode, jobs: usize) -> Summary {
    let mut jcts = Vec::new();
    for rep in 0..repeats() {
        let trace = loaded_trace(TraceKind::Real, spec, jobs, 9500 + rep as u64);
        let config = SimConfig {
            ina_mode: mode,
            ..SimConfig::default()
        };
        let result = Simulation::new(
            Cluster::new(spec.clone()),
            Box::new(NetPackPlacer::default()),
            config,
        )
        .run(&trace);
        jcts.push(result.average_jct_s().expect("jobs finished"));
    }
    Summary::of(&jcts)
}

fn main() {
    println!(
        "Extension — statistical vs synchronous INA at cluster scale ({} reps)\n",
        repeats()
    );
    let mut table = TextTable::new(vec![
        "PAT (Gbps)",
        "statistical JCT (s)",
        "synchronous JCT (s)",
        "sync / stat",
    ]);
    for pat in [1000.0, 200.0, 50.0] {
        let spec = ClusterSpec {
            racks: 2,
            servers_per_rack: 8,
            pat_gbps: pat,
            ..ClusterSpec::paper_default()
        };
        let jobs = standard_jobs(&spec);
        let stat = run(&spec, InaMode::Statistical, jobs);
        let sync = run(&spec, InaMode::Synchronous, jobs);
        table.row(vec![
            format!("{pat:.0}"),
            format!("{:.1} ± {:.1}", stat.mean, stat.std),
            format!("{:.1} ± {:.1}", sync.mean, sync.std),
            format!("{:.3}x", sync.mean / stat.mean),
        ]);
    }
    println!("{table}");
    println!("finding: under the fluid model the modes tie at cluster scale — max-min");
    println!("sharing of a pool and equal static partitions hand out similar rates.");
    println!("statistical INA's real edge is packet-level (fallback instead of halting,");
    println!("per-RTT reuse across compute phases: Fig. 2 / Fig. 14b) plus needing no");
    println!("central reallocation controller (§2.2).");
}
