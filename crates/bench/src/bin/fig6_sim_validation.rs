//! Fig. 6 — simulator validation: flow-level simulator vs the packet-level
//! "testbed".
//!
//! The paper launches identical traces on the testbed and in its simulator
//! and reports a 98% linear correlation between the two normalized JCTs.
//! Our testbed stand-in is the packet-level statistical-INA simulator: we
//! run a set of concurrent-job scenarios through both models and fit the
//! same regression. Each scenario is an independent cell fanned out via
//! [`parallel_sweep`].

use netpack_bench::{emit_table, parallel_sweep};
use netpack_metrics::{linear_fit, TextTable};
use netpack_packetsim::{PacketJobSpec, PacketSim, SwitchConfig};
use netpack_placement::{NetPackPlacer, Placer};
use netpack_topology::{Cluster, ClusterSpec, JobId};
use netpack_workload::{Job, ModelKind, Trace};

/// A scenario: concurrent spanning jobs that all start at t = 0.
struct Scenario {
    name: &'static str,
    jobs: Vec<(ModelKind, usize, u64)>, // (model, gpus, iterations)
}

fn scenarios() -> Vec<Scenario> {
    use ModelKind::*;
    vec![
        Scenario { name: "vgg16-pair", jobs: vec![(Vgg16, 4, 40), (Vgg16, 4, 40)] },
        Scenario { name: "mixed-comm", jobs: vec![(Vgg19, 4, 30), (Vgg11, 4, 50)] },
        Scenario { name: "compute-heavy", jobs: vec![(ResNet101, 4, 60), (ResNet50, 4, 60)] },
        Scenario { name: "alexnet-burst", jobs: vec![(AlexNet, 4, 400), (AlexNet, 4, 400)] },
        Scenario { name: "asymmetric", jobs: vec![(Vgg16, 6, 40), (ResNet50, 3, 80)] },
        Scenario { name: "lone-vgg", jobs: vec![(Vgg16, 4, 60)] },
        Scenario { name: "three-way", jobs: vec![(Vgg11, 3, 40), (ResNet50, 3, 60), (AlexNet, 3, 200)] },
        Scenario { name: "big-fanin", jobs: vec![(Vgg16, 8, 30)] },
    ]
}

/// One scenario through both models: `(fluid JCT, packet JCT)`; the
/// packet side is `None` when the placement came out all-local (nothing
/// for the packet simulator to validate).
fn run_scenario(spec: &ClusterSpec, sc: &Scenario) -> (f64, Option<f64>) {
    // ---- flow-level side: place with NetPack and replay. ----
    let jobs: Vec<Job> = sc
        .jobs
        .iter()
        .enumerate()
        .map(|(i, &(model, gpus, iters))| {
            Job::builder(JobId(i as u64), model, gpus)
                .iterations(iters)
                .build()
        })
        .collect();
    let trace = Trace::from_jobs(jobs.clone());
    let result = netpack_flowsim::Simulation::new(
        Cluster::new(spec.clone()),
        Box::new(NetPackPlacer::default()),
        netpack_flowsim::SimConfig::default(),
    )
    .run(&trace);
    let fluid_jct = result.average_jct_s().expect("scenario finished");

    // ---- packet-level side: same jobs behind one switch. ----
    // fan_in mirrors the flow-level placement's spanning width: every
    // worker streams into the ToR when the job crosses servers.
    let mut placer = NetPackPlacer::default();
    let outcome = placer.place_batch(&Cluster::new(spec.clone()), &[], &jobs);
    let mut sim = PacketSim::new(SwitchConfig {
        pool_slots: {
            let c = SwitchConfig::default();
            (spec.pat_gbps * 1e9 * c.rtt_us * 1e-6 / (c.payload_bytes as f64 * 8.0)) as usize
        },
        ..SwitchConfig::default()
    });
    for (job, placement) in &outcome.placed {
        let fan_in = if placement.is_local() { 0 } else { job.gpus };
        if fan_in == 0 {
            continue;
        }
        sim.add_job(PacketJobSpec {
            id: job.id,
            fan_in,
            gradient_gbits: job.gradient_gbits(),
            compute_time_s: job.compute_time_s(),
            iterations: job.iterations,
            start_s: 0.0,
            target_gbps: None,
        });
    }
    let report = sim.run(600.0);
    let finishes: Vec<f64> = report.per_job.iter().filter_map(|s| s.finish_s).collect();
    let packet_jct =
        (!finishes.is_empty()).then(|| finishes.iter().sum::<f64>() / finishes.len() as f64);
    (fluid_jct, packet_jct)
}

fn main() {
    let spec = ClusterSpec {
        pat_gbps: 200.0,
        ..ClusterSpec::paper_testbed()
    };
    println!("Fig. 6 — normalized JCT: packet-level testbed stand-in vs flow simulator\n");
    let scs = scenarios();
    let results = parallel_sweep(&scs, |sc| run_scenario(&spec, sc));

    let mut fluid = Vec::new();
    let mut packet = Vec::new();
    let mut table = TextTable::new(vec!["scenario", "flow-sim JCT (s)", "packet-sim JCT (s)"]);
    for (sc, &(fluid_jct, packet_jct)) in scs.iter().zip(&results) {
        let Some(packet_jct) = packet_jct else {
            continue; // all-local scenario: nothing to validate
        };
        table.row(vec![
            sc.name.to_string(),
            format!("{fluid_jct:.1}"),
            format!("{packet_jct:.1}"),
        ]);
        fluid.push(fluid_jct);
        packet.push(packet_jct);
    }
    emit_table("fig6", &table);

    // Normalize both to their own means, as the paper's plot does.
    let norm = |v: &[f64]| {
        let m = v.iter().sum::<f64>() / v.len() as f64;
        v.iter().map(|x| x / m).collect::<Vec<_>>()
    };
    let fit = linear_fit(&norm(&packet), &norm(&fluid)).expect("enough scenarios");
    println!(
        "linear fit: fluid = {:.3} x packet + {:.3};  correlation r = {:.3} (r^2 = {:.3})",
        fit.slope,
        fit.intercept,
        fit.r,
        fit.r_squared()
    );
    println!("paper: r = 0.98 between testbed and simulator normalized JCT.");
}
