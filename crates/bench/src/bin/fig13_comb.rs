//! Fig. 13 — joint optimization vs the naive combination `Comb` (§6.4).
//!
//! `Comb` considers the same three resources as NetPack (GPUs, switch
//! memory, link bandwidth) but *separately*: servers are sorted
//! lexicographically by each resource in turn. NetPack's joint valuation
//! should beat it on all three workloads.

use netpack_bench::{repeats, replay, standard_jobs, testbed_spec};
use netpack_metrics::TextTable;
use netpack_workload::TraceKind;

fn main() {
    println!(
        "Fig. 13 — NetPack vs naive combination ({} repetitions)\n",
        repeats()
    );
    let mut table = TextTable::new(vec![
        "cluster",
        "trace",
        "NetPack JCT (s)",
        "Comb JCT (s)",
        "Comb / NetPack",
    ]);
    let multi_rack = netpack_topology::ClusterSpec {
        racks: 4,
        servers_per_rack: 8,
        oversubscription: 4.0,
        ..netpack_topology::ClusterSpec::paper_default()
    };
    for (label, spec) in [("testbed", testbed_spec()), ("4-rack 4:1", multi_rack)] {
        let jobs = standard_jobs(&spec);
        for kind in TraceKind::ALL {
            let np = replay("NetPack", &spec, kind, jobs);
            let comb = replay("Comb", &spec, kind, jobs);
            table.row(vec![
                label.to_string(),
                kind.label().to_string(),
                format!("{:.1}", np.jct.mean),
                format!("{:.1}", comb.jct.mean),
                format!("{:.3}x", comb.jct.mean / np.jct.mean),
            ]);
        }
    }
    println!("{table}");
    println!("paper: NetPack outperforms Comb by up to 63% JCT reduction on all workloads.");
}
