//! Extension ablation — gradient sharding over multiple parameter servers.
//!
//! §4.1 notes that AllReduce with multiple PSes composes one-PS
//! AllReduces. Algorithm 2 places a single PS; this extension shards the
//! gradient over the k best-scoring PS locations. Sharding relieves the
//! PS-side fan-in bottleneck (biggest when INA is scarce) but adds flows
//! everywhere else — this bench quantifies the trade.

use netpack_bench::{loaded_trace, repeats, standard_jobs};
use netpack_flowsim::{SimConfig, Simulation};
use netpack_metrics::{Summary, TextTable};
use netpack_placement::{NetPackConfig, NetPackPlacer};
use netpack_topology::{Cluster, ClusterSpec};
use netpack_workload::TraceKind;

fn run(spec: &ClusterSpec, pses: usize, jobs: usize) -> Summary {
    let mut jcts = Vec::new();
    for rep in 0..repeats() {
        let trace = loaded_trace(TraceKind::Real, spec, jobs, 9000 + rep as u64);
        let placer = NetPackPlacer::new(NetPackConfig {
            pses_per_job: pses,
            ..NetPackConfig::default()
        });
        let result = Simulation::new(
            Cluster::new(spec.clone()),
            Box::new(placer),
            SimConfig::default(),
        )
        .run(&trace);
        jcts.push(result.average_jct_s().expect("jobs finished"));
    }
    Summary::of(&jcts)
}

fn main() {
    println!(
        "Ablation — PSes per job (gradient shards), {} repetitions\n",
        repeats()
    );
    let mut table = TextTable::new(vec![
        "PAT (Gbps)",
        "1 PS JCT (s)",
        "2 PS JCT (s)",
        "4 PS JCT (s)",
    ]);
    for pat in [1000.0, 100.0, 0.0] {
        let spec = ClusterSpec {
            racks: 2,
            servers_per_rack: 8,
            pat_gbps: pat,
            ..ClusterSpec::paper_default()
        };
        let jobs = standard_jobs(&spec);
        let row: Vec<Summary> = [1, 2, 4].iter().map(|&k| run(&spec, k, jobs)).collect();
        table.row(vec![
            format!("{pat:.0}"),
            format!("{:.1} ± {:.1}", row[0].mean, row[0].std),
            format!("{:.1} ± {:.1}", row[1].mean, row[1].std),
            format!("{:.1} ± {:.1}", row[2].mean, row[2].std),
        ]);
    }
    println!("{table}");
    println!("sharding should help most when INA cannot absorb the fan-in (low PAT)");
    println!("and matter least when the switch aggregates everything anyway.");
}
