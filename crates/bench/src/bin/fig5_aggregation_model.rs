//! Fig. 5b — flow counts of the hierarchical aggregation model.
//!
//! Reprints the paper's example: a job spanning four racks (two workers
//! each, PS in rack 1), ToR PATs `A1 < Ap < A3 < A4`; as the per-worker
//! sending rate sweeps upward, `FC` (flows entering the PS rack) and `FS`
//! (flows on the ToR→PS link) leap each time the rate crosses a PAT.
//!
//! The rate points are independent model evaluations, fanned out via
//! [`parallel_sweep`].

use netpack_bench::{emit_table, parallel_sweep};
use netpack_metrics::TextTable;
use netpack_model::{single_job_report, JobHierarchy, Placement};
use netpack_topology::{Cluster, ClusterSpec, RackId, ServerId};

fn main() {
    let cluster = Cluster::new(ClusterSpec {
        racks: 4,
        servers_per_rack: 2,
        gpus_per_server: 2,
        ..ClusterSpec::paper_default()
    });
    // Two workers per rack on separate servers; PS beside rack 1's workers.
    let placement = Placement::new(
        vec![
            (ServerId(0), 2),
            (ServerId(2), 2),
            (ServerId(4), 2),
            (ServerId(6), 2),
        ],
        Some(ServerId(3)),
    );
    let hierarchy = JobHierarchy::from_placement(&cluster, &placement).expect("spanning job");
    let pats = |r: RackId| match r.0 {
        0 => 10.0, // A1
        1 => 20.0, // Ap (the PS rack)
        2 => 30.0, // A3
        _ => 40.0, // A4
    };

    println!("Fig. 5b — number of flows vs per-worker sending rate");
    println!("topology: 4 racks x 2 workers, PS in rack 1; A1=10 < Ap=20 < A3=30 < A4=40 Gbps\n");
    let rates = [
        2.0, 5.0, 8.0, 12.0, 15.0, 18.0, 22.0, 25.0, 28.0, 32.0, 35.0, 38.0, 42.0, 45.0,
    ];
    let rows = parallel_sweep(&rates, |&rate| {
        let report = single_job_report(&cluster, &hierarchy, rate, pats);
        vec![
            format!("{rate:.0}"),
            report.fc.to_string(),
            report.fs.to_string(),
            format!("{:.1}", report.switch_aggregated.last().unwrap().1),
        ]
    });
    let mut table = TextTable::new(vec!["rate (Gbps)", "FC", "FS", "agg@root (Gbps)"]);
    for row in rows {
        table.row(row);
    }
    emit_table("fig5", &table);
    println!("paper series: FC leaps 3→4→5→6 and FS leaps 1→6→7→8 as C crosses each PAT;");
    println!("(FS jumps when C exceeds Ap; paper reports the same endpoints FC=6, FS=8).");
}
