//! Ablation — the DP's two-dimensional `(f, g)` knapsack weight.
//!
//! NetPack tracks the per-plan maximum flow count `f` precisely so the PS
//! step can punish hot-spot plans. Collapsing the dimension turns the DP
//! into a plain GPU knapsack; this bench quantifies what that costs.

use netpack_bench::{loaded_trace, repeats, standard_jobs};
use netpack_flowsim::{SimConfig, Simulation};
use netpack_metrics::{Summary, TextTable};
use netpack_placement::{NetPackConfig, NetPackPlacer};
use netpack_topology::{Cluster, ClusterSpec};
use netpack_workload::TraceKind;

fn run(spec: &ClusterSpec, flow_dimension: bool, jobs: usize) -> Summary {
    let mut jcts = Vec::new();
    for rep in 0..repeats() {
        let trace = loaded_trace(TraceKind::Real, spec, jobs, 8000 + rep as u64);
        let placer = NetPackPlacer::new(NetPackConfig {
            flow_dimension,
            ..NetPackConfig::default()
        });
        let result = Simulation::new(
            Cluster::new(spec.clone()),
            Box::new(placer),
            SimConfig::default(),
        )
        .run(&trace);
        jcts.push(result.average_jct_s().expect("jobs finished"));
    }
    Summary::of(&jcts)
}

fn main() {
    println!(
        "Ablation — two-dimensional DP weight ({} repetitions)\n",
        repeats()
    );
    let mut table = TextTable::new(vec![
        "cluster",
        "with f-dim JCT (s)",
        "without JCT (s)",
        "without / with",
    ]);
    for (label, spec) in [
        (
            "testbed 5x2",
            ClusterSpec {
                pat_gbps: 200.0,
                ..ClusterSpec::paper_testbed()
            },
        ),
        (
            "sim 4x8x4",
            ClusterSpec {
                racks: 4,
                servers_per_rack: 8,
                ..ClusterSpec::paper_default()
            },
        ),
    ] {
        let jobs = standard_jobs(&spec);
        let with = run(&spec, true, jobs);
        let without = run(&spec, false, jobs);
        table.row(vec![
            label.to_string(),
            format!("{:.1} ± {:.1}", with.mean, with.std),
            format!("{:.1} ± {:.1}", without.mean, without.std),
            format!("{:.3}x", without.mean / with.mean),
        ]);
    }
    println!("{table}");
    println!("a ratio above 1.0 means the f-dimension earns its memory cost.");
}
