//! Extension — tail latency and cluster utilization by placer.
//!
//! The paper reports mean JCT; operators also watch the p95 tail and the
//! cluster's GPU utilization. This bench prints all three for the roster
//! under the standard loaded Real trace: a placer that wins the mean by
//! starving stragglers would show up here.
//!
//! Every (placer, repetition) cell is an independent simulation, fanned
//! out via [`parallel_sweep`] with a deterministic ordered merge.

use netpack_bench::{emit_table, parallel_sweep, repeats, replay_cell, roster_names, standard_jobs};
use netpack_metrics::{Summary, TextTable};
use netpack_topology::ClusterSpec;
use netpack_workload::TraceKind;

fn main() {
    let spec = ClusterSpec {
        racks: 4,
        servers_per_rack: 8,
        ..ClusterSpec::paper_default()
    };
    let jobs = standard_jobs(&spec);
    let total_gpus = spec.total_gpus();
    println!(
        "Extension — mean vs p95 JCT and GPU utilization ({} jobs, {} reps)\n",
        jobs,
        repeats()
    );
    let cells: Vec<(&'static str, usize)> = roster_names()
        .into_iter()
        .flat_map(|name| (0..repeats()).map(move |rep| (name, rep)))
        .collect();
    let results = parallel_sweep(&cells, |&(name, rep)| {
        let result = replay_cell(name, &spec, TraceKind::Real, jobs, 9900 + rep as u64);
        (
            result.average_jct_s().expect("jobs finished"),
            result.p95_jct_s().expect("jobs finished"),
            result.gpu_utilization(total_gpus).expect("jobs ran"),
        )
    });

    let mut table = TextTable::new(vec![
        "placer",
        "mean JCT (s)",
        "p95 JCT (s)",
        "p95 / mean",
        "GPU util",
    ]);
    let mut it = results.iter();
    for name in roster_names() {
        let mut means = Vec::new();
        let mut p95s = Vec::new();
        let mut utils = Vec::new();
        for _rep in 0..repeats() {
            let &(m, p, u) = it.next().expect("one result per cell");
            means.push(m);
            p95s.push(p);
            utils.push(u);
        }
        let mean = Summary::of(&means).mean;
        let p95 = Summary::of(&p95s).mean;
        let util = Summary::of(&utils).mean;
        table.row(vec![
            name.to_string(),
            format!("{mean:.1}"),
            format!("{p95:.1}"),
            format!("{:.2}", p95 / mean),
            format!("{util:.3}"),
        ]);
    }
    emit_table("ext_tail", &table);
    println!("NetPack should win both the mean and the p95 tail. Utilization here is");
    println!("GPU *occupancy*: jobs hold their GPUs while communicating, so faster");
    println!("communication completes the same work with LOWER occupancy — NetPack's");
    println!("smaller number is headroom, not idleness.");
}
