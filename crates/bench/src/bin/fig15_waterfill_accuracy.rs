//! Fig. 15 — water-filling estimation vs measured bandwidth.
//!
//! Three identical jobs join a statistical-INA switch at staggered times.
//! At each stage we compare the per-job bandwidth *measured* by the
//! packet-level simulator against the water-filling *estimate* of the
//! steady state for the same active job set.

use netpack_metrics::TextTable;
use netpack_model::Placement;
use netpack_packetsim::{PacketJobSpec, PacketSim, SwitchConfig};
use netpack_topology::{Cluster, ClusterSpec, JobId, ServerId};
use netpack_waterfill::{estimate, PlacedJob};

fn main() {
    // One rack, 9 servers: each job uses 2 worker servers + 1 PS server.
    let pool_pat_gbps = 60.0;
    let spec = ClusterSpec {
        racks: 1,
        servers_per_rack: 9,
        gpus_per_server: 1,
        pat_gbps: pool_pat_gbps,
        ..ClusterSpec::paper_default()
    };
    let cluster = Cluster::new(spec);
    let starts = [0.0, 2.0, 4.0];
    let stage_ends = [2.0, 4.0, 6.0];

    // ---- water-filling estimates per stage ----
    let job_placement = |k: usize| {
        Placement::new(
            vec![(ServerId(3 * k), 1), (ServerId(3 * k + 1), 1)],
            Some(ServerId(3 * k + 2)),
        )
    };
    let mut estimates: Vec<Vec<f64>> = Vec::new(); // stage -> per-job rate
    for stage in 1..=3usize {
        let placed: Vec<PlacedJob> = (0..stage)
            .map(|k| PlacedJob::new(JobId(k as u64), &cluster, &job_placement(k)))
            .collect();
        let state = estimate(&cluster, &placed);
        estimates.push(
            (0..stage)
                .map(|k| state.job_rate_gbps(JobId(k as u64)).unwrap())
                .collect(),
        );
    }

    // ---- packet-level measurement ----
    let config = SwitchConfig::default();
    let pool_slots =
        (pool_pat_gbps * 1e9 * config.rtt_us * 1e-6 / (config.payload_bytes as f64 * 8.0)) as usize;
    let mut sim = PacketSim::new(SwitchConfig {
        pool_slots,
        ..config
    });
    for (k, &start) in starts.iter().enumerate() {
        sim.add_job(PacketJobSpec {
            id: JobId(k as u64),
            fan_in: 2,
            gradient_gbits: 1.0,
            compute_time_s: 0.0,
            iterations: 0,
            start_s: start,
            target_gbps: None,
        });
    }
    let report = sim.run(6.0);

    // Average measured goodput of each job within each stage window,
    // skipping a short convergence margin after each join.
    let margin = 0.8;
    println!("Fig. 15 — per-job bandwidth: water-filling estimate vs packet measurement\n");
    let mut table = TextTable::new(vec!["stage", "active jobs", "job", "estimated (Gbps)", "measured (Gbps)"]);
    let mut abs_err = Vec::new();
    for (stage, (&t0, &t1)) in starts.iter().zip(&stage_ends).enumerate() {
        #[allow(clippy::needless_range_loop)] // k also indexes `estimates[stage]`
        for k in 0..=stage {
            let series = &report.per_job[k].goodput_series;
            let window: Vec<f64> = series
                .iter()
                .filter(|&&(t, _)| t >= t0 + margin && t <= t1)
                .map(|&(_, g)| g)
                .collect();
            if window.is_empty() {
                continue;
            }
            let measured = window.iter().sum::<f64>() / window.len() as f64;
            let estimated = estimates[stage][k];
            abs_err.push((measured - estimated).abs() / estimated);
            table.row(vec![
                format!("{}", stage + 1),
                format!("{}", stage + 1),
                format!("j{k}"),
                format!("{estimated:.1}"),
                format!("{measured:.1}"),
            ]);
        }
    }
    println!("{table}");
    let mape = 100.0 * abs_err.iter().sum::<f64>() / abs_err.len() as f64;
    println!("mean absolute relative error: {mape:.1}%");
    println!("paper: the estimate approximately fits the testbed usage, with a small");
    println!("lag while the data plane converges after each job joins.");
}
