//! Ablation — step 4's selective INA enabling.
//!
//! Compares the paper's aggregation-efficiency-ordered selective policy
//! against enabling INA for every job and disabling it entirely, on a
//! PAT-scarce cluster where the choice matters (the Fig. 12 discussion
//! credits selective enabling for part of NetPack's oversubscribed wins).

use netpack_bench::{loaded_trace, repeats, standard_jobs};
use netpack_flowsim::{SimConfig, Simulation};
use netpack_metrics::{Summary, TextTable};
use netpack_placement::{InaPolicy, NetPackConfig, NetPackPlacer};
use netpack_topology::{Cluster, ClusterSpec};
use netpack_workload::TraceKind;

fn run(spec: &ClusterSpec, policy: InaPolicy, jobs: usize) -> Summary {
    let mut jcts = Vec::new();
    for rep in 0..repeats() {
        let trace = loaded_trace(TraceKind::Real, spec, jobs, 7000 + rep as u64);
        let placer = NetPackPlacer::new(NetPackConfig {
            ina_policy: policy,
            ..NetPackConfig::default()
        });
        let result = Simulation::new(
            Cluster::new(spec.clone()),
            Box::new(placer),
            SimConfig::default(),
        )
        .run(&trace);
        jcts.push(result.average_jct_s().expect("jobs finished"));
    }
    Summary::of(&jcts)
}

fn main() {
    println!(
        "Ablation — INA-enable policy ({} repetitions)\n",
        repeats()
    );
    let mut table = TextTable::new(vec![
        "PAT (Gbps)",
        "Selective JCT (s)",
        "AlwaysOn JCT (s)",
        "AlwaysOff JCT (s)",
    ]);
    for pat in [400.0, 100.0, 25.0] {
        let spec = ClusterSpec {
            racks: 2,
            servers_per_rack: 8,
            pat_gbps: pat,
            oversubscription: 4.0,
            ..ClusterSpec::paper_default()
        };
        let jobs = standard_jobs(&spec);
        let selective = run(&spec, InaPolicy::Selective, jobs);
        let on = run(&spec, InaPolicy::AlwaysOn, jobs);
        let off = run(&spec, InaPolicy::AlwaysOff, jobs);
        table.row(vec![
            format!("{pat:.0}"),
            format!("{:.1} ± {:.1}", selective.mean, selective.std),
            format!("{:.1} ± {:.1}", on.mean, on.std),
            format!("{:.1} ± {:.1}", off.mean, off.std),
        ]);
    }
    println!("{table}");
    println!("selective should match AlwaysOn when PAT is plentiful and beat both");
    println!("when switch memory is the scarce resource.");
}
