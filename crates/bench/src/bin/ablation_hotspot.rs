//! Ablation — the Equation-1 hot-spot term.
//!
//! Equation 1 as printed *subtracts* `C/f_max`, which rewards hot-spot
//! plans; DESIGN.md reads that as a sign typo and scores the bottleneck
//! share as a reward instead. This bench compares the two variants (plus
//! the flat-network/oversubscribed settings where the term matters most).

use netpack_bench::{loaded_trace, repeats, standard_jobs};
use netpack_flowsim::{SimConfig, Simulation};
use netpack_metrics::{Summary, TextTable};
use netpack_placement::{HotSpotTerm, NetPackConfig, NetPackPlacer};
use netpack_topology::{Cluster, ClusterSpec};
use netpack_workload::TraceKind;

fn run(spec: &ClusterSpec, hotspot: HotSpotTerm, jobs: usize) -> Summary {
    let mut jcts = Vec::new();
    for rep in 0..repeats() {
        let trace = loaded_trace(TraceKind::Real, spec, jobs, 6000 + rep as u64);
        let placer = NetPackPlacer::new(NetPackConfig {
            hotspot,
            ..NetPackConfig::default()
        });
        let result = Simulation::new(
            Cluster::new(spec.clone()),
            Box::new(placer),
            SimConfig::default(),
        )
        .run(&trace);
        jcts.push(result.average_jct_s().expect("jobs finished"));
    }
    Summary::of(&jcts)
}

fn main() {
    println!(
        "Ablation — Eq. 1 hot-spot term sign ({} repetitions)\n",
        repeats()
    );
    let mut table = TextTable::new(vec![
        "cluster",
        "reward JCT (s)",
        "literal JCT (s)",
        "literal / reward",
    ]);
    for (label, spec) in [
        (
            "flat 4x8",
            ClusterSpec {
                racks: 4,
                servers_per_rack: 8,
                ..ClusterSpec::paper_default()
            },
        ),
        (
            "oversub 10:1",
            ClusterSpec {
                racks: 4,
                servers_per_rack: 8,
                oversubscription: 10.0,
                ..ClusterSpec::paper_default()
            },
        ),
    ] {
        let jobs = standard_jobs(&spec);
        let reward = run(&spec, HotSpotTerm::RewardBottleneckShare, jobs);
        let literal = run(&spec, HotSpotTerm::PaperLiteral, jobs);
        table.row(vec![
            label.to_string(),
            format!("{:.1} ± {:.1}", reward.mean, reward.std),
            format!("{:.1} ± {:.1}", literal.mean, literal.std),
            format!("{:.3}x", literal.mean / reward.mean),
        ]);
    }
    println!("{table}");
    println!("a ratio above 1.0 supports the typo reading (reward variant wins).");
}
