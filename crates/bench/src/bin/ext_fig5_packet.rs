//! Extension — Fig. 5 validated at packet granularity.
//!
//! `fig5_aggregation_model` prints the closed-form Table-1 series; this
//! bench runs the same two-level topology through the packet-level
//! hierarchy pipeline and compares the measured per-group packet counts on
//! the core→PS-rack link (`FC`) and the ToR→PS link (`FS`) against the
//! closed-form prediction. The rate points are independent cells fanned
//! out via [`parallel_sweep`].

use netpack_bench::{emit_table, parallel_sweep};
use netpack_metrics::TextTable;
use netpack_model::{single_job_report, JobHierarchy, Placement};
use netpack_packetsim::{run_hierarchy, HierarchySpec};
use netpack_topology::{Cluster, ClusterSpec, RackId, ServerId};

fn main() {
    // Fig. 5 topology: 2 workers in each of 4 racks (PS in rack 1, which
    // contributes the "local" workers), PATs A1 < Ap < A3 < A4.
    let cluster = Cluster::new(ClusterSpec {
        racks: 4,
        servers_per_rack: 2,
        gpus_per_server: 2,
        ..ClusterSpec::paper_default()
    });
    let placement = Placement::new(
        vec![
            (ServerId(0), 2),
            (ServerId(2), 2),
            (ServerId(4), 2),
            (ServerId(6), 2),
        ],
        Some(ServerId(3)),
    );
    let hierarchy = JobHierarchy::from_placement(&cluster, &placement).expect("spanning job");
    let pats = [10.0, 20.0, 30.0, 40.0]; // A1, Ap, A3, A4 in Gbps
    let pat_of = |r: RackId| pats[r.0];

    let base = HierarchySpec::default();
    let slots_for = |pat: f64| {
        let bits = pat * 1e9 * base.rtt_us * 1e-6;
        (bits / (base.payload_bytes as f64 * 8.0)).round().max(0.0) as usize
    };

    println!("Extension — Fig. 5 at packet granularity (model vs measured)\n");
    let rates = [5.0, 15.0, 25.0, 35.0, 45.0];
    let rows = parallel_sweep(&rates, |&rate| {
        let report = single_job_report(&cluster, &hierarchy, rate, pat_of);
        let spec = HierarchySpec {
            rack_workers: vec![2, 2, 2],
            local_workers: 2,
            // Leaf pools for the three remote racks (A1, A3, A4); the PS
            // rack's pool is the root (Ap).
            leaf_slots: vec![slots_for(10.0), slots_for(30.0), slots_for(40.0)],
            root_slots: slots_for(20.0),
            rate_gbps: rate,
            ..base.clone()
        };
        let measured = run_hierarchy(&spec, 0.05);
        vec![
            format!("{rate:.0}"),
            report.fc.to_string(),
            format!("{:.2}", measured.core_packets_per_group),
            report.fs.to_string(),
            format!("{:.2}", measured.ps_packets_per_group),
        ]
    });
    let mut table = TextTable::new(vec![
        "rate (Gbps)",
        "FC model",
        "FC packets",
        "FS model",
        "FS packets",
    ]);
    for row in rows {
        table.row(row);
    }
    emit_table("ext_fig5", &table);
    println!("the measured per-group packet counts track the closed-form flow counts;");
    println!("fractional values appear where a pool covers part of the window (the");
    println!("fluid model rounds these to the binary Table-1 regimes).");
}
