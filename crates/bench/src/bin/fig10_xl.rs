//! fig10_xl — warehouse-scale extension of Fig. 10: place a 100-job batch
//! on a 50K-server three-tier fat-tree (32 pods x 49 racks x 32 servers x
//! 4 GPUs = 50 176 servers) and record wall-clock per topology mode.
//!
//! This is the acceptance benchmark for the flat-topology placement path
//! (DESIGN.md §3.11): the `flat` mode must finish the batch in under a
//! second on a single socket, and both modes must produce bit-identical
//! placements. Rows land in the JSON ledger (`bench: "fig10_xl"`) when
//! `NETPACK_BENCH_JSON` is set, via `scripts/bench.sh`.
//!
//! Knobs:
//! * `NETPACK_TOPO=flat|struct` — run only one mode (default: both, with
//!   an in-binary equality assertion across them).
//! * `NETPACK_SMOKE=1` — shrink to a 160-server tree / 30 jobs and print
//!   only a deterministic placement digest (no timings, no counters), so
//!   `scripts/check.sh` can byte-diff the two modes' stdout.

use netpack_bench::{emit_bench_row, BenchRow};
use netpack_metrics::{Stopwatch, TextTable};
use netpack_placement::{
    batch_comm_time_s, BatchOutcome, NetPackConfig, NetPackPlacer, Placer,
};
use netpack_topology::{Cluster, ClusterSpec, JobId, TopoMode};
use netpack_workload::{Job, ModelKind};

/// Deterministic mixed batch of spanning jobs (same generator as Fig. 10).
fn batch(jobs: usize, max_gpus: usize, seed: u64) -> Vec<Job> {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..jobs)
        .map(|i| {
            let gpus = (next() % max_gpus as u64).max(1) as usize;
            let model = ModelKind::ALL[(next() % 6) as usize];
            Job::builder(JobId(i as u64), model, gpus).build()
        })
        .collect()
}

fn modes() -> Vec<(&'static str, TopoMode)> {
    match std::env::var("NETPACK_TOPO").as_deref() {
        Ok("struct") => vec![("struct", TopoMode::Struct)],
        Ok("flat") => vec![("flat", TopoMode::Flat)],
        _ => vec![("struct", TopoMode::Struct), ("flat", TopoMode::Flat)],
    }
}

/// Stable outcome fingerprint used both for the cross-mode assertion and
/// the smoke digest.
fn digest(outcome: &BatchOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "placed={} deferred={}\n",
        outcome.placed.len(),
        outcome.deferred.len()
    ));
    for (job, p) in &outcome.placed {
        let workers: Vec<String> = p
            .workers()
            .iter()
            .map(|&(s, w)| format!("{}x{w}", s.0))
            .collect();
        let pses: Vec<String> = p.pses().iter().map(|s| s.0.to_string()).collect();
        out.push_str(&format!(
            "job {}: workers=[{}] ps=[{}] ina={}\n",
            job.id.0,
            workers.join(","),
            pses.join(","),
            p.ina_enabled()
        ));
    }
    let deferred: Vec<String> = outcome.deferred.iter().map(|j| j.id.0.to_string()).collect();
    out.push_str(&format!("deferred=[{}]\n", deferred.join(",")));
    out
}

fn main() {
    let smoke = std::env::var("NETPACK_SMOKE").is_ok_and(|v| v != "0");
    // 32 pods x 49 racks x 32 servers x 4 GPUs = 50 176 servers; the smoke
    // tree keeps three tiers (4 pods x 5 racks x 8 servers) at 160 servers.
    let (pods, racks_per_pod, servers_per_rack, jobs) =
        if smoke { (4, 5, 8, 30) } else { (32, 49, 32, 100) };
    let spec = ClusterSpec {
        racks: pods * racks_per_pod,
        servers_per_rack,
        gpus_per_server: 4,
        racks_per_pod: Some(racks_per_pod),
        ..ClusterSpec::paper_default()
    };
    let servers = spec.num_servers();
    let b = batch(jobs, 32, 7);

    if smoke {
        // Digest only — `scripts/check.sh` byte-diffs this output between
        // NETPACK_TOPO=flat and NETPACK_TOPO=struct runs, so nothing
        // mode- or time-dependent may print.
        let cluster = Cluster::new(spec);
        let mut placer = NetPackPlacer::default();
        let outcome = placer.place_batch(&cluster, &[], &b);
        let objective = batch_comm_time_s(&cluster, &[], &outcome.placed);
        println!("fig10_xl smoke digest (servers={servers}, jobs={jobs})");
        print!("{}", digest(&outcome));
        println!("objective_bits={:#018x}", objective.to_bits());
        return;
    }

    println!("fig10_xl — 100-job batch on a {servers}-server three-tier fat-tree\n");
    let mut table = TextTable::new(vec!["topo", "total (s)", "per-job (s)", "placed", "deferred"]);
    let modes = modes();
    let mut outcomes: Vec<(&'static str, BatchOutcome)> = Vec::new();
    for &(mode_name, mode) in &modes {
        let cluster = Cluster::new(spec.clone());
        let mut placer = NetPackPlacer::new(NetPackConfig {
            topo: mode,
            ..NetPackConfig::default()
        });
        let start = Stopwatch::start();
        let outcome = placer.place_batch(&cluster, &[], &b);
        let elapsed = start.elapsed().as_secs_f64();
        let placed = outcome.placed.len().max(1);
        emit_bench_row(&BenchRow {
            bench: "fig10_xl",
            instance: format!("servers={servers}/jobs={jobs}"),
            mode: mode_name.to_string(),
            wall_s: elapsed,
            threads: netpack_bench::bench_threads(),
            evals: placer.perf().counter("plans_considered"),
            nodes: placer.perf().counter("dp_candidates_offered"),
            pruned: placer
                .perf()
                .counter("dp_candidates_offered")
                .saturating_sub(placer.perf().counter("dp_candidates_kept")),
        });
        table.row(vec![
            mode_name.to_string(),
            format!("{elapsed:.3}"),
            format!("{:.2e}", elapsed / placed as f64),
            outcome.placed.len().to_string(),
            outcome.deferred.len().to_string(),
        ]);
        println!("perf counters ({mode_name}):");
        println!("{}", placer.take_perf().to_table().render());
        outcomes.push((mode_name, outcome));
    }
    println!("{table}");
    if let [(a_name, a), (b_name, b)] = outcomes.as_slice() {
        assert_eq!(
            digest(a),
            digest(b),
            "placements diverged between {a_name} and {b_name} topology modes"
        );
        println!("cross-check: {a_name} and {b_name} placements are identical");
    }
    println!("paper scale context: Fig. 10 stops at 10K servers; this cell extends the");
    println!("claim to a 50K-server warehouse with the flat indexed topology path.");
}
