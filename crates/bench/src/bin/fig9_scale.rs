//! Fig. 9 — simulator-scale average JCT vs cluster scale.
//!
//! The paper replays a 4K-job real workload on clusters of 100 to 10K
//! servers (16 racks) and reports an average 31% JCT reduction for
//! NetPack. We sweep the same shape; `NETPACK_QUICK=1` trims the sweep.

use netpack_bench::{loaded_trace, placer_by_name, quick, repeats, roster_names};
use netpack_flowsim::{SimConfig, Simulation};
use netpack_metrics::{Summary, TextTable};
use netpack_topology::{Cluster, ClusterSpec};
use netpack_workload::TraceKind;

fn main() {
    let sizes: Vec<usize> = if quick() {
        vec![100, 400]
    } else {
        vec![100, 256, 1024, 4096, 10_000]
    };
    let jobs = if quick() { 100 } else { 1000 };
    println!(
        "Fig. 9 — JCT vs cluster scale (Real trace, {} jobs, {} repetitions)\n",
        jobs,
        repeats()
    );
    let mut table = TextTable::new(
        std::iter::once("servers".to_string())
            .chain(roster_names().iter().map(|s| format!("{s} (norm)")))
            .collect::<Vec<_>>(),
    );
    // The paper replays the SAME workload on every cluster size, so the
    // trace is generated once against the smallest cluster and reused;
    // larger clusters are correspondingly less loaded, as in Fig. 9.
    let base_spec = ClusterSpec {
        racks: 16.min(sizes[0]),
        servers_per_rack: sizes[0] / 16.min(sizes[0]),
        ..ClusterSpec::paper_default()
    };
    for &servers in &sizes {
        let racks = 16.min(servers);
        let spec = ClusterSpec {
            racks,
            servers_per_rack: servers / racks,
            ..ClusterSpec::paper_default()
        };
        let mut means = Vec::new();
        for name in roster_names() {
            let mut jcts = Vec::new();
            for rep in 0..repeats() {
                let trace = loaded_trace(TraceKind::Real, &base_spec, jobs, 3000 + rep as u64);
                let result = Simulation::new(
                    Cluster::new(spec.clone()),
                    placer_by_name(name),
                    SimConfig::default(),
                )
                .run(&trace);
                jcts.push(result.average_jct_s().expect("jobs finished"));
            }
            means.push(Summary::of(&jcts).mean);
        }
        let netpack = means[0];
        let mut row = vec![servers.to_string()];
        row.extend(means.iter().map(|m| format!("{:.3}", m / netpack)));
        table.row(row);
    }
    println!("{table}");
    println!("paper: NetPack provides an average 31% JCT reduction across scales.");
}
