//! Fig. 9 — simulator-scale average JCT vs cluster scale.
//!
//! The paper replays a 4K-job real workload on clusters of 100 to 10K
//! servers (16 racks) and reports an average 31% JCT reduction for
//! NetPack. We sweep the same shape; `NETPACK_QUICK=1` trims the sweep
//! and `NETPACK_SMOKE=1` shrinks it to a single tiny cell (the
//! `scripts/check.sh` equivalence gate). Every (size, placer, repetition)
//! cell is an independent simulation, so the sweep fans out across
//! threads via [`parallel_sweep`]; set `NETPACK_PERF=1` to print the
//! merged event-loop counters afterwards.

use netpack_bench::{loaded_trace, parallel_sweep, placer_by_name, quick, repeats, roster_names};
use netpack_flowsim::{SimConfig, Simulation};
use netpack_metrics::{PerfCounters, Summary, TextTable};
use netpack_topology::{Cluster, ClusterSpec};
use netpack_workload::TraceKind;

fn main() {
    let smoke = std::env::var("NETPACK_SMOKE").is_ok_and(|v| v != "0");
    let sizes: Vec<usize> = if smoke {
        vec![64]
    } else if quick() {
        vec![100, 400]
    } else {
        vec![100, 256, 1024, 4096, 10_000]
    };
    let jobs = if smoke {
        40
    } else if quick() {
        100
    } else {
        1000
    };
    println!(
        "Fig. 9 — JCT vs cluster scale (Real trace, {} jobs, {} repetitions)\n",
        jobs,
        repeats()
    );
    let mut table = TextTable::new(
        std::iter::once("servers".to_string())
            .chain(roster_names().iter().map(|s| format!("{s} (norm)")))
            .chain(std::iter::once("NetPack JCT (s)".to_string()))
            .collect::<Vec<_>>(),
    );
    // The paper replays the SAME workload on every cluster size, so the
    // trace is generated once against the smallest cluster and reused;
    // larger clusters are correspondingly less loaded, as in Fig. 9.
    let base_spec = ClusterSpec {
        racks: 16.min(sizes[0]),
        servers_per_rack: sizes[0] / 16.min(sizes[0]),
        ..ClusterSpec::paper_default()
    };
    // One cell per (cluster size, placer, repetition), fanned out in
    // parallel; results come back in cell order, so the merge below reads
    // them off sequentially.
    let cells: Vec<(usize, &'static str, usize)> = sizes
        .iter()
        .flat_map(|&servers| {
            roster_names()
                .into_iter()
                .flat_map(move |name| (0..repeats()).map(move |rep| (servers, name, rep)))
        })
        .collect();
    let results = parallel_sweep(&cells, |&(servers, name, rep)| {
        let racks = 16.min(servers);
        let spec = ClusterSpec {
            racks,
            servers_per_rack: servers / racks,
            ..ClusterSpec::paper_default()
        };
        let trace = loaded_trace(TraceKind::Real, &base_spec, jobs, 3000 + rep as u64);
        let result = Simulation::new(
            Cluster::new(spec.clone()),
            placer_by_name(name),
            SimConfig::default(),
        )
        .run(&trace);
        let jct = result.average_jct_s().expect("jobs finished");
        (jct, result.perf)
    });
    let mut perf = PerfCounters::new();
    let mut it = results.iter();
    for &servers in &sizes {
        let mut means = Vec::new();
        for _name in roster_names() {
            let mut jcts = Vec::new();
            for _rep in 0..repeats() {
                let (jct, cell_perf) = it.next().expect("one result per cell");
                jcts.push(*jct);
                perf.merge(cell_perf);
            }
            means.push(Summary::of(&jcts).mean);
        }
        let netpack = means[0];
        let mut row = vec![servers.to_string()];
        row.extend(means.iter().map(|m| format!("{:.3}", m / netpack)));
        row.push(format!("{netpack:.1}"));
        table.row(row);
    }
    println!("{table}");
    println!("paper: NetPack provides an average 31% JCT reduction across scales.");
    if std::env::var("NETPACK_PERF").is_ok_and(|v| v != "0") {
        println!("\nEvent-loop perf counters (merged across all cells):");
        println!("{}", perf.to_table());
    }
}
