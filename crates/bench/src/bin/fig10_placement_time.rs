//! Fig. 10 — execution time of the NetPack placement algorithm.
//!
//! Measures wall-clock time to place batches of jobs into clusters of
//! increasing size (placement only — no simulation), reproducing the two
//! paper claims: total time grows linearly with the job count at fixed
//! cluster size, and per-job time grows with cluster size
//! (`3.25e-4 s` at 100 servers to `1.36e-2 s` at 10K in the paper).

use netpack_bench::quick;
use netpack_metrics::TextTable;
use netpack_placement::{NetPackPlacer, Placer};
use netpack_topology::{Cluster, ClusterSpec, JobId};
use netpack_workload::{Job, ModelKind};
use std::time::Instant;

fn batch(jobs: usize, max_gpus: usize, seed: u64) -> Vec<Job> {
    // Deterministic mixed batch of spanning jobs.
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..jobs)
        .map(|i| {
            let gpus = (next() % max_gpus as u64).max(1) as usize;
            let model = ModelKind::ALL[(next() % 6) as usize];
            Job::builder(JobId(i as u64), model, gpus).build()
        })
        .collect()
}

fn main() {
    let sizes: Vec<usize> = if quick() {
        vec![100, 400]
    } else {
        vec![100, 1000, 4000, 10_000]
    };
    let job_counts: Vec<usize> = if quick() {
        vec![50, 100]
    } else {
        vec![200, 400, 800]
    };
    println!("Fig. 10 — NetPack placement algorithm execution time (placement only)\n");
    let mut table = TextTable::new(vec![
        "servers",
        "jobs",
        "total (s)",
        "per-job (s)",
    ]);
    for &servers in &sizes {
        let racks = 16.min(servers);
        let spec = ClusterSpec {
            racks,
            servers_per_rack: servers / racks,
            ..ClusterSpec::paper_default()
        };
        for &jobs in &job_counts {
            let cluster = Cluster::new(spec.clone());
            let b = batch(jobs, 32, 7);
            let mut placer = NetPackPlacer::default();
            let start = Instant::now();
            let outcome = placer.place_batch(&cluster, &[], &b);
            let elapsed = start.elapsed().as_secs_f64();
            let placed = outcome.placed.len().max(1);
            table.row(vec![
                servers.to_string(),
                jobs.to_string(),
                format!("{elapsed:.3}"),
                format!("{:.2e}", elapsed / placed as f64),
            ]);
        }
    }
    println!("{table}");
    println!("paper: 4K jobs placed within 1 minute on 100-10K servers; per-job time");
    println!("grows linearly with cluster size (3.25e-4 s at 100 to 1.36e-2 s at 10K).");
}
