//! Fig. 10 — execution time of the NetPack placement algorithm.
//!
//! Measures wall-clock time to place batches of jobs into clusters of
//! increasing size (placement only — no simulation), reproducing the two
//! paper claims: total time grows linearly with the job count at fixed
//! cluster size, and per-job time grows with cluster size
//! (`3.25e-4 s` at 100 servers to `1.36e-2 s` at 10K in the paper).
//!
//! Both scoring modes are timed side by side — `fast` (incremental
//! water-filling + memoized, parallel plan scoring, the default) and
//! `sequential` (the from-scratch reference) — and the placer's perf
//! counters are printed afterwards so the speedup can be attributed.
//! Set `NETPACK_SCORING=fast` or `NETPACK_SCORING=sequential` to run only
//! one mode.

use netpack_bench::{emit_bench_row, quick, BenchRow};
use netpack_metrics::TextTable;
use netpack_placement::{NetPackConfig, NetPackPlacer, Placer, ScoringMode};
use netpack_topology::{Cluster, ClusterSpec, JobId};
use netpack_workload::{Job, ModelKind};
use netpack_metrics::Stopwatch;

fn batch(jobs: usize, max_gpus: usize, seed: u64) -> Vec<Job> {
    // Deterministic mixed batch of spanning jobs.
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..jobs)
        .map(|i| {
            let gpus = (next() % max_gpus as u64).max(1) as usize;
            let model = ModelKind::ALL[(next() % 6) as usize];
            Job::builder(JobId(i as u64), model, gpus).build()
        })
        .collect()
}

fn modes() -> Vec<(&'static str, ScoringMode)> {
    match std::env::var("NETPACK_SCORING").as_deref() {
        Ok("fast") => vec![("fast", ScoringMode::Fast)],
        Ok("sequential") => vec![("sequential", ScoringMode::Sequential)],
        _ => vec![
            ("sequential", ScoringMode::Sequential),
            ("fast", ScoringMode::Fast),
        ],
    }
}

fn main() {
    let sizes: Vec<usize> = if quick() {
        vec![100, 400]
    } else {
        vec![100, 1000, 4000, 10_000]
    };
    let job_counts: Vec<usize> = if quick() {
        vec![50, 100]
    } else {
        vec![200, 400, 800]
    };
    let modes = modes();
    println!("Fig. 10 — NetPack placement algorithm execution time (placement only)\n");
    let mut table = TextTable::new(vec![
        "servers",
        "jobs",
        "scoring",
        "total (s)",
        "per-job (s)",
    ]);
    // One perf-counter snapshot per mode, aggregated over every cell.
    let mut perf_per_mode: Vec<(&'static str, netpack_metrics::PerfCounters)> = Vec::new();
    for &servers in &sizes {
        let racks = 16.min(servers);
        let spec = ClusterSpec {
            racks,
            servers_per_rack: servers / racks,
            ..ClusterSpec::paper_default()
        };
        for &jobs in &job_counts {
            for &(mode_name, mode) in &modes {
                let cluster = Cluster::new(spec.clone());
                let b = batch(jobs, 32, 7);
                let mut placer = NetPackPlacer::new(NetPackConfig {
                    scoring: mode,
                    ..NetPackConfig::default()
                });
                let start = Stopwatch::start();
                let outcome = placer.place_batch(&cluster, &[], &b);
                let elapsed = start.elapsed().as_secs_f64();
                let placed = outcome.placed.len().max(1);
                emit_bench_row(&BenchRow {
                    bench: "fig10_placement_time",
                    instance: format!("servers={servers}/jobs={jobs}"),
                    mode: mode_name.to_string(),
                    wall_s: elapsed,
                    threads: netpack_bench::bench_threads(),
                    evals: placer.perf().counter("plans_considered"),
                    nodes: 0,
                    pruned: 0,
                });
                table.row(vec![
                    servers.to_string(),
                    jobs.to_string(),
                    mode_name.to_string(),
                    format!("{elapsed:.3}"),
                    format!("{:.2e}", elapsed / placed as f64),
                ]);
                match perf_per_mode.iter_mut().find(|(n, _)| *n == mode_name) {
                    Some((_, agg)) => agg.merge(placer.perf()),
                    None => perf_per_mode.push((mode_name, placer.take_perf())),
                }
            }
        }
    }
    println!("{table}");
    for (mode_name, perf) in &perf_per_mode {
        println!("perf counters ({mode_name}, all cells):");
        println!("{}", perf.to_table().render());
    }
    println!("paper: 4K jobs placed within 1 minute on 100-10K servers; per-job time");
    println!("grows linearly with cluster size (3.25e-4 s at 100 to 1.36e-2 s at 10K).");
}
