//! Fig. 14 — validation of the aggregation-pattern model and fair sharing.
//!
//! (a) One job at 10 Gbps; the pool is sized to `x` times the job's
//! rate-window. Measured aggregation ratio should track `y = x`.
//! (b) Two identical jobs share a pool sized for one (100% PAT is for one
//! job); each job's ratio should track `y = 0.5x`, evidencing max-min fair
//! sharing of switch memory.
//!
//! Each (part, PAT-ratio) cell is an independent packet simulation, so
//! the sweep fans out via [`parallel_sweep`]; set `NETPACK_PERF=1` to
//! print the merged round-loop counters and `NETPACK_PKT=scratch` to run
//! the reference per-packet loop (`scripts/check.sh` diffs the two).

use netpack_bench::{emit_table, packet_stream_job, parallel_sweep, pat_ratio_config};
use netpack_metrics::{PerfCounters, TextTable};
use netpack_packetsim::PacketSim;

const XS: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

fn main() {
    // One cell per (part, PAT ratio): part 0 = Fig. 14a (one job, 0.05 s),
    // part 1 = Fig. 14b (two jobs, 0.1 s).
    let cells: Vec<(usize, f64)> = (0..2).flat_map(|p| XS.iter().map(move |&x| (p, x))).collect();
    let results = parallel_sweep(&cells, |&(part, x)| {
        let mut sim = PacketSim::new(pat_ratio_config(x, 10.0));
        sim.add_job(packet_stream_job(0, 2, Some(10.0)));
        if part == 1 {
            sim.add_job(packet_stream_job(1, 2, Some(10.0)));
        }
        let report = sim.run(if part == 0 { 0.05 } else { 0.1 });
        let ratios: Vec<f64> = report.per_job.iter().map(|s| s.aggregation_ratio()).collect();
        (ratios, report.perf)
    });

    let mut perf = PerfCounters::new();
    let mut it = results.iter();

    println!("Fig. 14a — single job: aggregation ratio vs PAT ratio (theory y = x)\n");
    let mut table = TextTable::new(vec!["PAT ratio", "measured", "theory"]);
    for &x in &XS {
        let (ratios, cell_perf) = it.next().expect("one result per cell");
        perf.merge(cell_perf);
        table.row_f64(format!("{x:.1}"), &[ratios[0], x]);
    }
    emit_table("fig14a", &table);

    println!("Fig. 14b — two jobs, pool sized for one: per-job ratio (theory y = 0.5x)\n");
    let mut table = TextTable::new(vec!["PAT ratio", "job 0", "job 1", "theory"]);
    for &x in &XS {
        let (ratios, cell_perf) = it.next().expect("one result per cell");
        perf.merge(cell_perf);
        table.row_f64(format!("{x:.1}"), &[ratios[0], ratios[1], 0.5 * x]);
    }
    emit_table("fig14b", &table);
    println!("paper: measured tracks theory with small deviation; jobs share memory fairly.");
    if std::env::var("NETPACK_PERF").is_ok_and(|v| v != "0") {
        println!("\nRound-loop perf counters (merged across all cells):");
        println!("{}", perf.to_table());
    }
}
