//! Fig. 14 — validation of the aggregation-pattern model and fair sharing.
//!
//! (a) One job at 10 Gbps; the pool is sized to `x` times the job's
//! rate-window. Measured aggregation ratio should track `y = x`.
//! (b) Two identical jobs share a pool sized for one (100% PAT is for one
//! job); each job's ratio should track `y = 0.5x`, evidencing max-min fair
//! sharing of switch memory.

use netpack_metrics::TextTable;
use netpack_packetsim::{PacketJobSpec, PacketSim, SwitchConfig};
use netpack_topology::JobId;

fn job(id: u64) -> PacketJobSpec {
    PacketJobSpec {
        id: JobId(id),
        fan_in: 2,
        gradient_gbits: 0.5,
        compute_time_s: 0.0,
        iterations: 0,
        start_s: 0.0,
        target_gbps: Some(10.0),
    }
}

fn config_for(pat_ratio: f64) -> SwitchConfig {
    let base = SwitchConfig::default();
    let window = base.rate_to_pkts(10.0);
    SwitchConfig {
        pool_slots: (pat_ratio * window as f64).round() as usize,
        ..base
    }
}

fn main() {
    let xs = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

    println!("Fig. 14a — single job: aggregation ratio vs PAT ratio (theory y = x)\n");
    let mut table = TextTable::new(vec!["PAT ratio", "measured", "theory"]);
    for &x in &xs {
        let mut sim = PacketSim::new(config_for(x));
        sim.add_job(job(0));
        let report = sim.run(0.05);
        table.row_f64(format!("{x:.1}"), &[report.per_job[0].aggregation_ratio(), x]);
    }
    println!("{table}");

    println!("Fig. 14b — two jobs, pool sized for one: per-job ratio (theory y = 0.5x)\n");
    let mut table = TextTable::new(vec!["PAT ratio", "job 0", "job 1", "theory"]);
    for &x in &xs {
        let mut sim = PacketSim::new(config_for(x));
        sim.add_job(job(0));
        sim.add_job(job(1));
        let report = sim.run(0.1);
        table.row_f64(
            format!("{x:.1}"),
            &[
                report.per_job[0].aggregation_ratio(),
                report.per_job[1].aggregation_ratio(),
                0.5 * x,
            ],
        );
    }
    println!("{table}");
    println!("paper: measured tracks theory with small deviation; jobs share memory fairly.");
}
