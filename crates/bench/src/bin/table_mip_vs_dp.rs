//! §5.1 — the MIP is intractable; the DP is near-optimal.
//!
//! The paper reports Gurobi needing over four hours on large instances and
//! motivates the DP heuristic. We reproduce both halves on our exact
//! reference solver: its runtime explodes combinatorially with instance
//! size, while NetPack's DP lands within a few percent of the optimum on
//! every instance small enough to enumerate.
//!
//! The exact solver runs in the mode selected by `NETPACK_EXACT`
//! (`bnb`, the default branch-and-bound, or `scratch`, the legacy
//! exhaustive DFS). The main table deliberately prints only objectives and
//! gaps — never times or evaluation counts — so its bytes are identical
//! across modes; the `scripts/check.sh` two-mode gate diffs exactly that.
//! Under `bnb` (and outside `NETPACK_SMOKE`) a second diagnostics table
//! compares the branch-and-bound against the scratch reference per row,
//! with the scratch search capped on the instances it cannot finish.
//! Every measurement is also appended to `$NETPACK_BENCH_JSON` as a
//! [`BenchRow`] when that variable is set (see `scripts/bench.sh`).

use netpack_bench::{emit_bench_row, emit_table, BenchRow};
use netpack_metrics::Stopwatch;
use netpack_metrics::TextTable;
use netpack_placement::{batch_comm_time_s, ExactMode, ExactPlacer, NetPackPlacer, Placer};
use netpack_topology::{Cluster, ClusterSpec, JobId};
use netpack_workload::{Job, ModelKind};

/// Evaluation cap for the scratch reference on rows it cannot fully
/// enumerate in reasonable time; its timing is then a lower bound.
const SCRATCH_CAP: u64 = 2_000_000;

struct Instance {
    servers: usize,
    gpus: usize,
    sizes: Vec<usize>,
    /// Whether the scratch DFS can fully enumerate this row.
    scratch_full: bool,
}

fn instances(smoke: bool) -> Vec<Instance> {
    let mk = |servers, gpus, sizes: Vec<usize>, scratch_full| Instance {
        servers,
        gpus,
        sizes,
        scratch_full,
    };
    if smoke {
        return vec![mk(4, 2, vec![3, 3], true)];
    }
    vec![
        mk(2, 2, vec![3], true),
        mk(3, 2, vec![2, 3], true),
        mk(4, 2, vec![3, 3], true),
        mk(4, 2, vec![2, 2, 3], true),
        mk(5, 2, vec![3, 3, 2], true),
        mk(6, 2, vec![3, 3, 3], true),
        // Beyond here only the branch-and-bound finishes; the scratch
        // reference is capped at SCRATCH_CAP evaluations for timing.
        mk(8, 2, vec![3, 3, 3], false),
        mk(8, 2, vec![2, 2, 3, 3], false),
        mk(10, 2, vec![3, 3, 3], false),
        mk(10, 2, vec![2, 3, 3, 4], false),
    ]
}

fn mode_name(mode: ExactMode) -> &'static str {
    match mode {
        ExactMode::Bnb => "bnb",
        ExactMode::Scratch => "scratch",
    }
}

fn main() {
    let smoke = std::env::var("NETPACK_SMOKE").is_ok_and(|v| v != "0");
    let mode = ExactMode::from_env();
    let diagnose = mode == ExactMode::Bnb && !smoke;
    println!("§5.1 — exact search vs NetPack DP (objective: total comm time per iteration)\n");
    let mut table = TextTable::new(vec!["servers x gpus", "jobs", "exact obj", "dp obj", "gap"]);
    // Pad the jobs column against the *unfiltered* instance list so the
    // rows the scratch mode does print are byte-identical to the same rows
    // under bnb, even though scratch skips the large instances.
    let jobs_width = instances(smoke)
        .iter()
        .map(|i| i.sizes.iter().map(usize::to_string).collect::<Vec<_>>().join("+").len())
        .max()
        .unwrap_or(0);
    let mut diag = TextTable::new(vec![
        "servers x gpus",
        "jobs",
        "bnb (s)",
        "bnb evals",
        "nodes",
        "pruned",
        "scratch (s)",
        "scratch evals",
        "speedup",
    ]);
    for inst in instances(smoke) {
        if mode == ExactMode::Scratch && !inst.scratch_full {
            // The legacy DFS would need hours here; that blow-up is the
            // point of the diagnostics table under the default mode.
            continue;
        }
        let spec = ClusterSpec {
            racks: 1,
            servers_per_rack: inst.servers,
            gpus_per_server: inst.gpus,
            pat_gbps: 50.0,
            ..ClusterSpec::paper_default()
        };
        let cluster = Cluster::new(spec);
        let batch: Vec<Job> = inst
            .sizes
            .iter()
            .enumerate()
            .map(|(i, &g)| Job::builder(JobId(i as u64), ModelKind::Vgg16, g).build())
            .collect();
        let label = format!("{}x{}", inst.servers, inst.gpus);
        let jobs_label = inst
            .sizes
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join("+");
        let instance_id = format!("{label}/{jobs_label}");

        let mut exact = ExactPlacer::new(50_000_000).mode(mode);
        let t0 = Stopwatch::start();
        let exact_outcome = exact.place_batch(&cluster, &[], &batch);
        let exact_time = t0.elapsed().as_secs_f64();
        let exact_obj = batch_comm_time_s(&cluster, &[], &exact_outcome.placed);
        emit_bench_row(&BenchRow {
            bench: "table_mip_vs_dp",
            instance: instance_id.clone(),
            mode: mode_name(mode).to_string(),
            wall_s: exact_time,
            threads: netpack_bench::bench_threads(),
            evals: exact.evaluations(),
            nodes: exact.perf().counter("exact_nodes"),
            pruned: exact.perf().counter("exact_pruned_subtrees"),
        });

        let mut dp = NetPackPlacer::default();
        let t0 = Stopwatch::start();
        let dp_outcome = dp.place_batch(&cluster, &[], &batch);
        let dp_time = t0.elapsed().as_secs_f64();
        let dp_obj = batch_comm_time_s(&cluster, &[], &dp_outcome.placed);
        emit_bench_row(&BenchRow {
            bench: "table_mip_vs_dp",
            instance: instance_id.clone(),
            mode: "dp".to_string(),
            wall_s: dp_time,
            threads: netpack_bench::bench_threads(),
            evals: dp.perf().counter("plans_considered"),
            nodes: 0,
            pruned: 0,
        });

        let gap = if exact_obj > 0.0 {
            format!("{:+.1}%", 100.0 * (dp_obj - exact_obj) / exact_obj)
        } else if dp_obj <= 1e-12 {
            "+0.0%".to_string()
        } else {
            "inf".to_string()
        };
        table.row(vec![
            label.clone(),
            format!("{jobs_label:<jobs_width$}"),
            format!("{exact_obj:.4}"),
            format!("{dp_obj:.4}"),
            gap,
        ]);

        if diagnose {
            let budget = if inst.scratch_full {
                50_000_000
            } else {
                SCRATCH_CAP
            };
            let mut scratch = ExactPlacer::new(budget).mode(ExactMode::Scratch);
            let t0 = Stopwatch::start();
            let _ = scratch.place_batch(&cluster, &[], &batch);
            let scratch_time = t0.elapsed().as_secs_f64();
            emit_bench_row(&BenchRow {
                bench: "table_mip_vs_dp",
                instance: instance_id.clone(),
                mode: "scratch".to_string(),
                wall_s: scratch_time,
                threads: netpack_bench::bench_threads(),
                evals: scratch.evaluations(),
                nodes: 0,
                pruned: 0,
            });
            let capped = scratch.evaluations() >= budget;
            let prefix = if capped { ">" } else { "" };
            let speedup = if exact_time > 0.0 {
                format!("{prefix}{:.1}x", scratch_time / exact_time)
            } else {
                "-".to_string()
            };
            diag.row(vec![
                label,
                jobs_label,
                format!("{exact_time:.3}"),
                exact.evaluations().to_string(),
                exact.perf().counter("exact_nodes").to_string(),
                exact.perf().counter("exact_pruned_subtrees").to_string(),
                format!("{prefix}{scratch_time:.3}"),
                scratch.evaluations().to_string(),
                speedup,
            ]);
        }
    }
    emit_table("table_mip_vs_dp", &table);
    if diagnose {
        println!(
            "branch-and-bound vs exhaustive scratch reference \
             (scratch capped at {SCRATCH_CAP} evals on the large rows):\n"
        );
        emit_table("table_mip_vs_dp_diag", &diag);
    }
    println!("paper: Gurobi takes >4 hours on 100K jobs / 1K racks; NetPack's DP runs in");
    println!("polynomial time and (here) stays within a few percent of the true optimum.");
}
