//! §5.1 — the MIP is intractable; the DP is near-optimal.
//!
//! The paper reports Gurobi needing over four hours on large instances and
//! motivates the DP heuristic. We reproduce both halves on our exact
//! reference solver: its runtime explodes combinatorially with instance
//! size, while NetPack's DP lands within a few percent of the optimum on
//! every instance small enough to enumerate.

use netpack_metrics::TextTable;
use netpack_placement::{batch_comm_time_s, ExactPlacer, NetPackPlacer, Placer};
use netpack_topology::{Cluster, ClusterSpec, JobId};
use netpack_workload::{Job, ModelKind};
use netpack_metrics::Stopwatch;

fn main() {
    println!("§5.1 — exact search vs NetPack DP (objective: total comm time per iteration)\n");
    let mut table = TextTable::new(vec![
        "servers x gpus",
        "jobs",
        "exact evals",
        "exact (s)",
        "dp (s)",
        "exact obj",
        "dp obj",
        "gap",
    ]);
    let instances: Vec<(usize, usize, Vec<usize>)> = vec![
        (2, 2, vec![3]),
        (3, 2, vec![2, 3]),
        (4, 2, vec![3, 3]),
        (4, 2, vec![2, 2, 3]),
        (5, 2, vec![3, 3, 2]),
        (6, 2, vec![3, 3, 3]),
    ];
    for (servers, gpus, job_sizes) in instances {
        let spec = ClusterSpec {
            racks: 1,
            servers_per_rack: servers,
            gpus_per_server: gpus,
            pat_gbps: 50.0,
            ..ClusterSpec::paper_default()
        };
        let cluster = Cluster::new(spec);
        let batch: Vec<Job> = job_sizes
            .iter()
            .enumerate()
            .map(|(i, &g)| Job::builder(JobId(i as u64), ModelKind::Vgg16, g).build())
            .collect();

        let mut exact = ExactPlacer::new(50_000_000);
        let t0 = Stopwatch::start();
        let exact_outcome = exact.place_batch(&cluster, &[], &batch);
        let exact_time = t0.elapsed().as_secs_f64();
        let exact_obj = batch_comm_time_s(&cluster, &[], &exact_outcome.placed);

        let mut dp = NetPackPlacer::default();
        let t0 = Stopwatch::start();
        let dp_outcome = dp.place_batch(&cluster, &[], &batch);
        let dp_time = t0.elapsed().as_secs_f64();
        let dp_obj = batch_comm_time_s(&cluster, &[], &dp_outcome.placed);

        let gap = if exact_obj > 0.0 {
            format!("{:+.1}%", 100.0 * (dp_obj - exact_obj) / exact_obj)
        } else if dp_obj <= 1e-12 {
            "+0.0%".to_string()
        } else {
            "inf".to_string()
        };
        table.row(vec![
            format!("{servers}x{gpus}"),
            job_sizes
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join("+"),
            exact.evaluations().to_string(),
            format!("{exact_time:.3}"),
            format!("{dp_time:.4}"),
            format!("{exact_obj:.4}"),
            format!("{dp_obj:.4}"),
            gap,
        ]);
    }
    println!("{table}");
    println!("paper: Gurobi takes >4 hours on 100K jobs / 1K racks; NetPack's DP runs in");
    println!("polynomial time and (here) stays within a few percent of the true optimum.");
}
