//! Fig. 11 — testbed-scale JCT with limited switch memory.
//!
//! Other switch functions steal memory in production, so the paper sweeps
//! the available PAT down to zero and finds NetPack's advantage *grows*
//! as memory shrinks (30-92% JCT reduction), because bandwidth becomes
//! the scarce resource NetPack alone manages.
//!
//! Every (PAT, placer, repetition) cell is an independent simulation,
//! fanned out via [`parallel_sweep`] with a deterministic ordered merge.

use netpack_bench::{emit_table, parallel_sweep, repeats, replay_cell, roster_names, standard_jobs};
use netpack_metrics::{Summary, TextTable};
use netpack_topology::ClusterSpec;
use netpack_workload::TraceKind;

fn main() {
    let pats = [1000.0, 200.0, 100.0, 50.0, 25.0, 10.0, 0.0];
    println!(
        "Fig. 11 — JCT vs available switch PAT (Real trace, {} repetitions)\n",
        repeats()
    );
    let cells: Vec<(f64, &'static str, usize)> = pats
        .iter()
        .flat_map(|&pat| {
            roster_names()
                .into_iter()
                .flat_map(move |name| (0..repeats()).map(move |rep| (pat, name, rep)))
        })
        .collect();
    let results = parallel_sweep(&cells, |&(pat, name, rep)| {
        let spec = ClusterSpec {
            pat_gbps: pat,
            ..ClusterSpec::paper_testbed()
        };
        let jobs = standard_jobs(&spec);
        replay_cell(name, &spec, TraceKind::Real, jobs, 4000 + rep as u64)
            .average_jct_s()
            .expect("jobs finished")
    });

    let mut table = TextTable::new(
        std::iter::once("PAT (Gbps)".to_string())
            .chain(roster_names().iter().map(|s| format!("{s} (norm)")))
            .collect::<Vec<_>>(),
    );
    let mut it = results.iter();
    for &pat in &pats {
        let mut means = Vec::new();
        for _name in roster_names() {
            let jcts: Vec<f64> = (0..repeats())
                .map(|_| *it.next().expect("one result per cell"))
                .collect();
            means.push(Summary::of(&jcts).mean);
        }
        let netpack = means[0];
        let mut row = vec![format!("{pat:.0}")];
        row.extend(means.iter().map(|m| format!("{:.3}", m / netpack)));
        table.row(row);
    }
    emit_table("fig11", &table);
    println!("paper: NetPack's advantage grows as switch memory shrinks (30-92%),");
    println!("and persists even with PAT = 0 (pure bandwidth/GPU management).");
}
