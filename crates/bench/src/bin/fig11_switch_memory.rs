//! Fig. 11 — testbed-scale JCT with limited switch memory.
//!
//! Other switch functions steal memory in production, so the paper sweeps
//! the available PAT down to zero and finds NetPack's advantage *grows*
//! as memory shrinks (30-92% JCT reduction), because bandwidth becomes
//! the scarce resource NetPack alone manages.

use netpack_bench::{loaded_trace, placer_by_name, repeats, roster_names, standard_jobs};
use netpack_flowsim::{SimConfig, Simulation};
use netpack_metrics::{Summary, TextTable};
use netpack_topology::{Cluster, ClusterSpec};
use netpack_workload::TraceKind;

fn main() {
    let pats = [1000.0, 200.0, 100.0, 50.0, 25.0, 10.0, 0.0];
    println!(
        "Fig. 11 — JCT vs available switch PAT (Real trace, {} repetitions)\n",
        repeats()
    );
    let mut table = TextTable::new(
        std::iter::once("PAT (Gbps)".to_string())
            .chain(roster_names().iter().map(|s| format!("{s} (norm)")))
            .collect::<Vec<_>>(),
    );
    for &pat in &pats {
        let spec = ClusterSpec {
            pat_gbps: pat,
            ..ClusterSpec::paper_testbed()
        };
        let jobs = standard_jobs(&spec);
        let mut means = Vec::new();
        for name in roster_names() {
            let mut jcts = Vec::new();
            for rep in 0..repeats() {
                let trace = loaded_trace(TraceKind::Real, &spec, jobs, 4000 + rep as u64);
                let result = Simulation::new(
                    Cluster::new(spec.clone()),
                    placer_by_name(name),
                    SimConfig::default(),
                )
                .run(&trace);
                jcts.push(result.average_jct_s().expect("jobs finished"));
            }
            means.push(Summary::of(&jcts).mean);
        }
        let netpack = means[0];
        let mut row = vec![format!("{pat:.0}")];
        row.extend(means.iter().map(|m| format!("{:.3}", m / netpack)));
        table.row(row);
    }
    println!("{table}");
    println!("paper: NetPack's advantage grows as switch memory shrinks (30-92%),");
    println!("and persists even with PAT = 0 (pure bandwidth/GPU management).");
}
