//! Fig. 8 — average distribution efficiency: six placers × three traces.
//!
//! DE isolates the placement effect from model size:
//! `DE = (1/|Jobs|) Σ JCT_1gpu / (JCT × gpus)`; a linearly scaling system
//! with zero network overhead scores 1.0. The placer × trace matrix fans
//! out across threads via [`parallel_sweep`], one replay series per cell.

use netpack_bench::{
    parallel_sweep, repeats, replay, roster_names, simulator_spec, standard_jobs, testbed_spec,
};
use netpack_metrics::TextTable;
use netpack_workload::TraceKind;

fn main() {
    println!(
        "Fig. 8 — average distribution efficiency ({} repetitions per point)\n",
        repeats()
    );
    for (label, spec) in [("[Testbed] 5 servers", testbed_spec()), ("[Simulator] 16 racks", simulator_spec())]
    {
        let jobs = standard_jobs(&spec);
        println!("{label}: {} jobs per trace", jobs);
        let mut table = TextTable::new(vec!["placer", "Real", "Poisson", "Normal", "±std (Real)"]);
        let cells: Vec<(&'static str, TraceKind)> = roster_names()
            .into_iter()
            .flat_map(|name| TraceKind::ALL.into_iter().map(move |kind| (name, kind)))
            .collect();
        let points = parallel_sweep(&cells, |&(name, kind)| replay(name, &spec, kind, jobs));
        let mut it = cells.iter().zip(&points);
        for name in roster_names() {
            let mut row = Vec::new();
            let mut real_std = 0.0;
            for _ in TraceKind::ALL {
                let (&(_, kind), point) = it.next().expect("one point per cell");
                row.push(point.de.mean);
                if kind == TraceKind::Real {
                    real_std = point.de.std;
                }
            }
            table.row(vec![
                name.to_string(),
                format!("{:.3}", row[0]),
                format!("{:.3}", row[1]),
                format!("{:.3}", row[2]),
                format!("{:.3}", real_std),
            ]);
        }
        println!("{table}");
    }
    println!("paper: NetPack improves DE by 13-46% over baselines (up to 2.4x in simulation).");
}
