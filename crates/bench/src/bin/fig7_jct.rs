//! Fig. 7 — average job completion time: six placers × three traces, on
//! the testbed-scale cluster and on the default simulated cluster.
//!
//! JCT is normalized to NetPack (= 1.00) within each group, as the paper
//! plots it; the raw seconds and the std-dev across repetitions are also
//! printed. The placer × trace matrix fans out across threads via
//! [`parallel_sweep`], one replay series per cell.

use netpack_bench::{
    parallel_sweep, repeats, replay, roster_names, simulator_spec, standard_jobs, testbed_spec,
};
use netpack_metrics::TextTable;
use netpack_workload::TraceKind;

fn main() {
    println!(
        "Fig. 7 — normalized average JCT ({} repetitions per point)\n",
        repeats()
    );
    for (label, spec) in [("[Testbed] 5 servers", testbed_spec()), ("[Simulator] 16 racks", simulator_spec())]
    {
        let jobs = standard_jobs(&spec);
        println!("{label}: {} jobs per trace", jobs);
        let mut table = TextTable::new(vec!["placer", "Real", "Poisson", "Normal", "Real JCT (s)", "±std"]);
        let cells: Vec<(&'static str, TraceKind)> = roster_names()
            .into_iter()
            .flat_map(|name| TraceKind::ALL.into_iter().map(move |kind| (name, kind)))
            .collect();
        let points = parallel_sweep(&cells, |&(name, kind)| replay(name, &spec, kind, jobs));
        let mut per_kind: Vec<Vec<f64>> = Vec::new();
        let mut stds: Vec<f64> = Vec::new();
        let mut it = cells.iter().zip(&points);
        for _name in roster_names() {
            let mut row = Vec::new();
            let mut real_std = 0.0;
            for _ in TraceKind::ALL {
                let (&(_, kind), point) = it.next().expect("one point per cell");
                row.push(point.jct.mean);
                if kind == TraceKind::Real {
                    real_std = point.jct.std;
                }
            }
            per_kind.push(row);
            stds.push(real_std);
        }
        let netpack = per_kind[0].clone();
        for (i, name) in roster_names().iter().enumerate() {
            table.row(vec![
                name.to_string(),
                format!("{:.3}", per_kind[i][0] / netpack[0]),
                format!("{:.3}", per_kind[i][1] / netpack[1]),
                format!("{:.3}", per_kind[i][2] / netpack[2]),
                format!("{:.1}", per_kind[i][0]),
                format!("{:.1}", stds[i]),
            ]);
        }
        println!("{table}");
    }
    println!("paper: NetPack = 1.0; baselines 1.13-1.45x on the testbed, larger in simulation.");
}
