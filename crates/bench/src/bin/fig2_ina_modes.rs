//! Fig. 2 — statistical INA's advantage when switch memory is scarce.
//!
//! One training job behind one switch, sweeping the aggregator pool from
//! scarce to generous under both memory modes. Statistical INA (ATP-style)
//! degrades gracefully — collided packets fall back to the PS — while
//! synchronous INA (SwitchML-style) is hard-capped at `region / RTT` and
//! halts entirely at zero memory.

use netpack_metrics::TextTable;
use netpack_packetsim::{MemoryMode, PacketJobSpec, PacketSim, SwitchConfig};
use netpack_topology::JobId;

fn main() {
    println!("Fig. 2 — job throughput vs switch memory, by INA memory mode\n");
    let mut table = TextTable::new(vec![
        "pool slots",
        "PAT (Gbps)",
        "statistical (Gbps)",
        "synchronous (Gbps)",
    ]);
    for slots in [0usize, 16, 64, 128, 256, 512, 1024, 2048, 4096] {
        let run = |mode| {
            let config = SwitchConfig {
                pool_slots: slots,
                mode,
                ..SwitchConfig::default()
            };
            let pat = config.pat_gbps();
            let mut sim = PacketSim::new(config);
            sim.add_job(PacketJobSpec {
                id: JobId(0),
                fan_in: 2,
                gradient_gbits: 0.5,
                compute_time_s: 0.0,
                iterations: 0,
                start_s: 0.0,
                target_gbps: None, // AIMD, as real transports do
            });
            let r = sim.run(0.1);
            (pat, r.per_job[0].mean_goodput_gbps(r.duration_s))
        };
        let (pat, stat) = run(MemoryMode::Statistical);
        let (_, sync) = run(MemoryMode::Synchronous);
        table.row(vec![
            slots.to_string(),
            format!("{pat:.0}"),
            format!("{stat:.1}"),
            format!("{sync:.1}"),
        ]);
    }
    println!("{table}");
    println!("paper: ATP (statistical) >= SwitchML (synchronous) everywhere; the gap");
    println!("widens as memory shrinks, and synchronous INA halts at zero memory.");
}
