//! Fig. 2 — statistical INA's advantage when switch memory is scarce.
//!
//! One training job behind one switch, sweeping the aggregator pool from
//! scarce to generous under both memory modes. Statistical INA (ATP-style)
//! degrades gracefully — collided packets fall back to the PS — while
//! synchronous INA (SwitchML-style) is hard-capped at `region / RTT` and
//! halts entirely at zero memory.
//!
//! Each (pool size, memory mode) cell is an independent packet simulation
//! fanned out via [`parallel_sweep`].

use netpack_bench::{emit_table, packet_stream_job, parallel_sweep};
use netpack_metrics::TextTable;
use netpack_packetsim::{MemoryMode, PacketSim, SwitchConfig};

const SLOTS: [usize; 9] = [0, 16, 64, 128, 256, 512, 1024, 2048, 4096];

fn main() {
    println!("Fig. 2 — job throughput vs switch memory, by INA memory mode\n");
    let cells: Vec<(usize, MemoryMode)> = SLOTS
        .iter()
        .flat_map(|&slots| {
            [MemoryMode::Statistical, MemoryMode::Synchronous]
                .into_iter()
                .map(move |mode| (slots, mode))
        })
        .collect();
    let results = parallel_sweep(&cells, |&(slots, mode)| {
        let config = SwitchConfig {
            pool_slots: slots,
            mode,
            ..SwitchConfig::default()
        };
        let pat = config.pat_gbps();
        let mut sim = PacketSim::new(config);
        sim.add_job(packet_stream_job(0, 2, None)); // AIMD, as real transports do
        let r = sim.run(0.1);
        (pat, r.per_job[0].mean_goodput_gbps(r.duration_s))
    });

    let mut table = TextTable::new(vec![
        "pool slots",
        "PAT (Gbps)",
        "statistical (Gbps)",
        "synchronous (Gbps)",
    ]);
    let mut it = results.iter();
    for &slots in &SLOTS {
        let (pat, stat) = it.next().expect("statistical cell");
        let (_, sync) = it.next().expect("synchronous cell");
        table.row(vec![
            slots.to_string(),
            format!("{pat:.0}"),
            format!("{stat:.1}"),
            format!("{sync:.1}"),
        ]);
    }
    emit_table("fig2", &table);
    println!("paper: ATP (statistical) >= SwitchML (synchronous) everywhere; the gap");
    println!("widens as memory shrinks, and synchronous INA halts at zero memory.");
}
