//! Sustained placement throughput of the continuous placement service.
//!
//! Replays an open-loop Philly-style (`TraceKind::Real`) trace over the
//! Fig. 10 cluster (16 racks × 16 servers × 4 GPUs) through
//! `netpack-service`: submissions arrive in trace order, each job's
//! completion is injected at its ideal finish time, and the two streams
//! are merged in virtual-time order so the service sees the same churn a
//! live cluster would — just as fast as it can drain it. Reported per
//! mode: sustained placements/sec and the submit-to-placement latency
//! percentiles (p50/p99/p999), appended to `results/BENCH_service.json`
//! when `NETPACK_BENCH_JSON` is set.
//!
//! Modes:
//!
//! * `threaded` (default) — the real [`PlacementService`] thread behind
//!   its bounded command channel, adaptive batch sizing on.
//! * `deterministic` (`NETPACK_SERVICE_MODE=deterministic`, forced by
//!   `NETPACK_SMOKE=1`) — the [`ServiceCore`] driven synchronously with a
//!   fixed drain quantum; byte-reproducible, and with
//!   `NETPACK_SERVICE_EVENT_LOG=<path>` the full event log is written for
//!   `scripts/check.sh` to diff across runs.
//!
//! Scale with `NETPACK_QUICK=1` (50K jobs) or `NETPACK_SMOKE=1`
//! (10K jobs, deterministic); the default is the 1M-job acceptance run.
//! `NETPACK_SERVICE_JOBS=<n>` overrides all three — the thread-sweep rows
//! in `scripts/bench.sh` use it to run long enough that throughput noise
//! stays small relative to the threaded-vs-deterministic gap.

use netpack_bench::{emit_service_row, quick, ServiceRow};
use netpack_metrics::{LatencyHistogram, Stopwatch, TextTable};
use netpack_service::{Command, PlacementService, ServiceConfig, ServiceCore, ServiceReport};
use netpack_topology::{Cluster, ClusterSpec, JobId};
use netpack_workload::{Trace, TraceKind, TraceSpec};

fn smoke() -> bool {
    std::env::var("NETPACK_SMOKE").is_ok_and(|v| v != "0")
}

/// The Fig. 10 evaluation cluster: 16 racks × 16 servers × 4 GPUs.
fn spec() -> ClusterSpec {
    ClusterSpec::paper_default()
}

/// Open-loop Philly-style trace tuned to ~85% offered GPU load, so the
/// service churns continuously without the queue diverging.
fn service_trace(spec: &ClusterSpec, jobs: usize, seed: u64) -> Trace {
    let duration_scale = 0.3;
    // Log-normal mean duration: median 480 s, sigma 1.1 (see TraceSpec).
    let mean_duration_s = 480.0 * (1.1f64 * 1.1 / 2.0).exp() * duration_scale;
    let mean_gpus = 4.5;
    let utilization_target = 0.85;
    let interarrival = mean_gpus * mean_duration_s / (spec.total_gpus() as f64 * utilization_target);
    TraceSpec::new(TraceKind::Real, jobs)
        .seed(seed)
        .open_loop()
        .mean_interarrival_s(interarrival)
        .duration_scale(duration_scale)
        .max_gpus(64)
        .generate()
}

/// The merged command schedule: submissions in arrival order interleaved
/// with completions at `arrival + ideal_time` in virtual-time order. The
/// closure receives each command as it becomes due.
fn replay(trace: &Trace, mut issue: impl FnMut(Command)) {
    let jobs = trace.jobs();
    let mut completions: Vec<(f64, JobId)> = jobs
        .iter()
        .map(|j| (j.arrival_s + j.ideal_time_s(), j.id))
        .collect();
    completions.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut next_done = 0usize;
    for job in jobs {
        while next_done < completions.len() && completions[next_done].0 <= job.arrival_s {
            issue(Command::Complete(completions[next_done].1));
            next_done += 1;
        }
        issue(Command::Submit(job.clone()));
    }
    for &(_, id) in &completions[next_done..] {
        issue(Command::Complete(id));
    }
}

fn run_threaded(trace: &Trace, config: ServiceConfig) -> (ServiceReport, f64) {
    // Submit in buffered chunks via the bulk path: one queue lock per
    // chunk instead of per command. Backpressure still applies — a full
    // channel blocks the flush, slowing the open-loop driver down, which
    // is part of the measure.
    let chunk = config.max_batch.max(1);
    let svc = PlacementService::spawn(Cluster::new(spec()), config);
    let wall = Stopwatch::start();
    let mut buf: Vec<Command> = Vec::with_capacity(chunk);
    replay(trace, |cmd| {
        buf.push(cmd);
        if buf.len() >= chunk {
            let _ = svc.send_many(buf.drain(..));
        }
    });
    let _ = svc.send_many(buf.drain(..));
    let report = svc.shutdown();
    let wall_s = wall.elapsed_s();
    (report, wall_s)
}

fn run_deterministic(trace: &Trace, config: ServiceConfig) -> (ServiceReport, f64) {
    // Fixed drain quantum instead of wall-clock-adaptive batching: the
    // command schedule — and therefore the event log — depends only on
    // the trace.
    let quantum = config.max_batch;
    let mut core = ServiceCore::new(Cluster::new(spec()), config);
    let wall = Stopwatch::start();
    let mut since_pass = 0usize;
    replay(trace, |cmd| {
        core.apply(cmd);
        since_pass += 1;
        if since_pass == quantum {
            let _ = core.place_pass();
            since_pass = 0;
        }
    });
    while core.pending_len() > 0 && core.place_pass() > 0 {}
    let wall_s = wall.elapsed_s();
    (core.finish(), wall_s)
}

fn percentiles_us(hist: Option<&LatencyHistogram>) -> (u64, u64, u64) {
    match hist {
        Some(h) => (h.p50() / 1_000, h.p99() / 1_000, h.p999() / 1_000),
        None => (0, 0, 0),
    }
}

fn main() {
    let jobs = std::env::var("NETPACK_SERVICE_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(if smoke() {
            10_000
        } else if quick() {
            50_000
        } else {
            1_000_000
        });
    let mut config = ServiceConfig::from_env();
    if smoke() {
        config.deterministic = true;
    }
    let mode = if config.deterministic { "deterministic" } else { "threaded" };
    let trace = service_trace(&spec(), jobs, 1);

    println!("bench_service — open-loop Philly trace, Fig. 10 cluster ({} GPUs)", spec().total_gpus());
    println!("jobs={jobs} mode={mode}\n");

    let (report, wall_s) = if config.deterministic {
        run_deterministic(&trace, config)
    } else {
        run_threaded(&trace, config)
    };

    let placed = report.counters.placed;
    let throughput = placed as f64 / wall_s.max(1e-9);
    let (p50_us, p99_us, p999_us) = percentiles_us(report.perf.latency("placement_latency"));

    let mut table = TextTable::new(vec!["metric", "value"]);
    let c = &report.counters;
    table.row(vec!["submitted".into(), c.submitted.to_string()]);
    table.row(vec!["placed".into(), placed.to_string()]);
    table.row(vec!["deferrals".into(), c.deferrals.to_string()]);
    table.row(vec!["rejected".into(), c.rejected.to_string()]);
    table.row(vec!["completed".into(), c.completed.to_string()]);
    table.row(vec!["completed pending".into(), c.completed_pending.to_string()]);
    table.row(vec!["batches".into(), c.batches.to_string()]);
    table.row(vec!["max queue depth".into(), c.max_queue_depth.to_string()]);
    table.row(vec!["running at shutdown".into(), report.running_left.to_string()]);
    table.row(vec!["pending at shutdown".into(), report.pending_left.to_string()]);
    if !smoke() {
        // Wall-clock rows stay out of the smoke digest so the determinism
        // gate can byte-diff stdout across runs.
        table.row(vec!["wall (s)".into(), format!("{wall_s:.3}")]);
        table.row(vec!["placements/sec".into(), format!("{throughput:.0}")]);
        table.row(vec!["p50 latency (us)".into(), p50_us.to_string()]);
        table.row(vec!["p99 latency (us)".into(), p99_us.to_string()]);
        table.row(vec!["p999 latency (us)".into(), p999_us.to_string()]);
    }
    println!("{table}");

    if std::env::var("NETPACK_SERVICE_PERF").is_ok_and(|v| v != "0") {
        println!("perf counters (service + placer):");
        println!("{}", report.perf.to_table().render());
    }

    if let Ok(path) = std::env::var("NETPACK_SERVICE_EVENT_LOG") {
        if !path.is_empty() && path != "0" && path != "1" {
            let mut text = report.events.join("\n");
            text.push('\n');
            std::fs::write(&path, text).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            // stderr, not stdout: the determinism gate byte-diffs stdout
            // across runs that write to different log paths.
            eprintln!("event log: {} lines -> {path}", report.events.len());
        }
    }

    emit_service_row(&ServiceRow {
        bench: "bench_service",
        instance: format!("fig10/jobs={jobs}"),
        mode: mode.to_string(),
        wall_s,
        threads: netpack_bench::bench_threads(),
        placed,
        rejected: c.rejected,
        deferrals: c.deferrals,
        throughput_per_s: throughput,
        p50_us,
        p99_us,
        p999_us,
    });
}
