//! Fig. 12 — simulator-scale JCT with limited cross-rack bandwidth.
//!
//! The rack uplinks shrink from 1:1 to 20:1 oversubscription. NetPack's
//! cross-rack penalty and selective INA enabling should widen its lead as
//! the uplinks get scarcer (the paper reports the average reduction
//! growing from 52% at 1:1 to 89% at 20:1). Each (ratio, placer,
//! repetition) cell is an independent simulation, fanned out across
//! threads via [`parallel_sweep`].

use netpack_bench::{loaded_trace, parallel_sweep, placer_by_name, quick, repeats, roster_names};
use netpack_flowsim::{SimConfig, Simulation};
use netpack_metrics::{Summary, TextTable};
use netpack_topology::{Cluster, ClusterSpec};
use netpack_workload::TraceKind;

fn main() {
    let ratios = [1.0, 2.0, 5.0, 10.0, 20.0];
    let jobs = if quick() { 60 } else { 240 };
    println!(
        "Fig. 12 — JCT vs oversubscription (Real trace, {} jobs, {} repetitions)\n",
        jobs,
        repeats()
    );
    let mut table = TextTable::new(
        std::iter::once("oversub".to_string())
            .chain(roster_names().iter().map(|s| format!("{s} (norm)")))
            .collect::<Vec<_>>(),
    );
    let cells: Vec<(f64, &'static str, usize)> = ratios
        .iter()
        .flat_map(|&ratio| {
            roster_names()
                .into_iter()
                .flat_map(move |name| (0..repeats()).map(move |rep| (ratio, name, rep)))
        })
        .collect();
    let results = parallel_sweep(&cells, |&(ratio, name, rep)| {
        let spec = ClusterSpec {
            racks: 8,
            servers_per_rack: 8,
            oversubscription: ratio,
            ..ClusterSpec::paper_default()
        };
        let trace = loaded_trace(TraceKind::Real, &spec, jobs, 5000 + rep as u64);
        Simulation::new(
            Cluster::new(spec.clone()),
            placer_by_name(name),
            SimConfig::default(),
        )
        .run(&trace)
        .average_jct_s()
        .expect("jobs finished")
    });
    let mut it = results.iter();
    for &ratio in &ratios {
        let mut means = Vec::new();
        for _name in roster_names() {
            let jcts: Vec<f64> = (0..repeats())
                .map(|_| *it.next().expect("one result per cell"))
                .collect();
            means.push(Summary::of(&jcts).mean);
        }
        let netpack = means[0];
        let mut row = vec![format!("{ratio:.0}:1")];
        row.extend(means.iter().map(|m| format!("{:.3}", m / netpack)));
        table.row(row);
    }
    println!("{table}");
    println!("paper: the advantage grows with the oversubscription ratio (52% -> 89%).");
}
