//! Validate a `BENCH_*.json` JSON-Lines file — the last step of
//! `scripts/bench.sh`. Exits non-zero with the first violation.
//!
//! The schema is picked by file name: paths whose base name contains
//! `service` are checked against the [`ServiceRow`] schema (DESIGN.md
//! §3.12), everything else against [`BenchRow`] (DESIGN.md §3.10).
//!
//! Usage: `bench_json_check [path...]` (default
//! `results/BENCH_placement.json`).
//!
//! [`ServiceRow`]: netpack_bench::ServiceRow
//! [`BenchRow`]: netpack_bench::BenchRow

use netpack_bench::{validate_bench_jsonl, validate_service_jsonl};

fn check_one(path: &str) -> bool {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("{path}: cannot read: {e}");
            return false;
        }
    };
    let base = std::path::Path::new(path)
        .file_name()
        .map(|n| n.to_string_lossy().to_lowercase())
        .unwrap_or_default();
    let (schema, result) = if base.contains("service") {
        ("service", validate_service_jsonl(&text))
    } else {
        ("placement", validate_bench_jsonl(&text))
    };
    match result {
        Ok(rows) => {
            println!("{path}: {rows} rows OK ({schema} schema)");
            true
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            false
        }
    }
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    let paths = if paths.is_empty() {
        vec!["results/BENCH_placement.json".to_string()]
    } else {
        paths
    };
    if !paths.iter().all(|p| check_one(p)) {
        std::process::exit(1);
    }
}
