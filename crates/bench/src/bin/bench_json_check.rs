//! Validate a `BENCH_*.json` JSON-Lines file against the [`BenchRow`]
//! schema (DESIGN.md §3.10). Exits non-zero with the first violation —
//! the last step of `scripts/bench.sh`.
//!
//! Usage: `bench_json_check [path]` (default
//! `results/BENCH_placement.json`).

use netpack_bench::validate_bench_jsonl;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_placement.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("{path}: cannot read: {e}");
            std::process::exit(1);
        }
    };
    match validate_bench_jsonl(&text) {
        Ok(rows) => println!("{path}: {rows} rows OK"),
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    }
}
