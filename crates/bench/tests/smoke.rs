//! Smoke tests for the figure scaffolding: every roster placer replays a
//! quick loaded trace, and the shared helpers stay in sync.

use netpack_bench::{loaded_trace, placer_by_name, replay, roster_names, testbed_spec};
use netpack_flowsim::{SimConfig, Simulation};
use netpack_topology::Cluster;
use netpack_workload::TraceKind;

#[test]
fn replay_produces_finite_summaries_for_every_roster_placer() {
    std::env::set_var("NETPACK_REPEATS", "2");
    let spec = testbed_spec();
    for name in roster_names() {
        let point = replay(name, &spec, TraceKind::Real, 20);
        assert!(point.jct.mean.is_finite() && point.jct.mean > 0.0, "{name}");
        assert!(point.de.mean > 0.0 && point.de.mean <= 1.0, "{name}");
        assert_eq!(point.jct.n, 2, "{name}");
    }
}

#[test]
fn loaded_traces_saturate_without_overflowing() {
    let spec = testbed_spec();
    for kind in TraceKind::ALL {
        let trace = loaded_trace(kind, &spec, 30, 77);
        assert_eq!(trace.jobs().len(), 30, "{kind}");
        // Demand clamp keeps every job placeable.
        assert!(trace
            .jobs()
            .iter()
            .all(|j| j.gpus <= spec.total_gpus()));
        // And the trace must actually finish under every roster placer.
        let result = Simulation::new(
            Cluster::new(spec.clone()),
            placer_by_name("NetPack"),
            SimConfig::default(),
        )
        .run(&trace);
        assert_eq!(result.outcomes.len(), 30, "{kind}");
    }
}
