//! Criterion bench for the steady-state estimator (Algorithm 1): the inner
//! loop NetPack reruns once per placed job (§4.2 complexity claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netpack_model::Placement;
use netpack_topology::{Cluster, ClusterSpec, JobId, ServerId};
use netpack_waterfill::{estimate, PlacedJob};

/// Build `n_jobs` spanning jobs spread deterministically over the cluster.
fn jobs(cluster: &Cluster, n_jobs: usize) -> Vec<PlacedJob> {
    let ns = cluster.num_servers();
    (0..n_jobs)
        .map(|i| {
            let a = (i * 7) % ns;
            let b = (i * 7 + 3) % ns;
            let ps = (i * 7 + 5) % ns;
            let p = Placement::new(
                vec![(ServerId(a), 2), (ServerId(b), 2)],
                Some(ServerId(ps)),
            );
            PlacedJob::new(JobId(i as u64), cluster, &p)
        })
        .collect()
}

fn bench_waterfill(c: &mut Criterion) {
    let mut group = c.benchmark_group("waterfill_estimate");
    group.sample_size(20);
    for (servers, n_jobs) in [(100usize, 50usize), (400, 100), (1600, 200)] {
        let racks = 16.min(servers);
        let cluster = Cluster::new(ClusterSpec {
            racks,
            servers_per_rack: servers / racks,
            ..ClusterSpec::paper_default()
        });
        let placed = jobs(&cluster, n_jobs);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{servers}srv_{n_jobs}jobs")),
            &servers,
            |b, _| b.iter(|| std::hint::black_box(estimate(&cluster, &placed))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_waterfill);
criterion_main!(benches);
