//! Criterion bench backing Fig. 10: NetPack placement time vs cluster size
//! and batch size, plus the baseline placers for context.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netpack_placement::{
    GpuBalance, NetPackConfig, NetPackPlacer, Placer, ScoringMode, TetrisLike,
};
use netpack_topology::{Cluster, ClusterSpec, JobId};
use netpack_workload::{Job, ModelKind};

fn batch(jobs: usize, max_gpus: usize) -> Vec<Job> {
    let mut state = 99u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..jobs)
        .map(|i| {
            let gpus = (next() % max_gpus as u64).max(1) as usize;
            Job::builder(JobId(i as u64), ModelKind::ALL[(next() % 6) as usize], gpus).build()
        })
        .collect()
}

fn cluster(servers: usize) -> Cluster {
    let racks = 16.min(servers);
    Cluster::new(ClusterSpec {
        racks,
        servers_per_rack: servers / racks,
        ..ClusterSpec::paper_default()
    })
}

fn bench_netpack_scaling(c: &mut Criterion) {
    // Fast (incremental + memoized + parallel) vs sequential reference
    // scoring, at each cluster size — the before/after of the placement
    // fast path. The two modes place identical batches, so any delta is
    // pure scoring-machinery cost.
    for (mode_name, mode) in [
        ("fast", ScoringMode::Fast),
        ("sequential", ScoringMode::Sequential),
    ] {
        let mut group = c.benchmark_group(format!("netpack_place_batch_{mode_name}"));
        group.sample_size(10);
        for servers in [100usize, 400, 1600] {
            let cl = cluster(servers);
            let jobs = batch(32, 32);
            group.bench_with_input(BenchmarkId::from_parameter(servers), &servers, |b, _| {
                b.iter(|| {
                    let mut placer = NetPackPlacer::new(NetPackConfig {
                        scoring: mode,
                        ..NetPackConfig::default()
                    });
                    std::hint::black_box(placer.place_batch(&cl, &[], &jobs))
                })
            });
        }
        group.finish();
    }
}

fn bench_placer_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("placer_comparison_400srv");
    group.sample_size(10);
    let cl = cluster(400);
    let jobs = batch(32, 32);
    type PlacerCtor = fn() -> Box<dyn Placer>;
    let mk: Vec<(&str, PlacerCtor)> = vec![
        ("NetPack", || Box::new(NetPackPlacer::default())),
        ("GB", || Box::new(GpuBalance)),
        ("Tetris", || Box::new(TetrisLike)),
    ];
    for (name, ctor) in mk {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut placer = ctor();
                std::hint::black_box(placer.place_batch(&cl, &[], &jobs))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_netpack_scaling, bench_placer_comparison);
criterion_main!(benches);
