//! The service's warm-state fast path must be indistinguishable from the
//! closed-batch `JobManager` + `NetPackPlacer` reference on the same
//! arrival order — same placements (workers, PSes, INA flags), same
//! deferrals, same ledger. This is the acceptance gate for the persistent
//! [`NetPackSession`](netpack_placement::NetPackSession) state: if any
//! carried-over arena or the warm estimator drifted from what a
//! from-scratch rebuild computes, placements would diverge here.

use netpack_core::{JobManager, ManagerConfig};
use netpack_placement::{BatchMode, NetPackConfig, NetPackPlacer};
use netpack_service::{Command, ServiceConfig, ServiceCore};
use netpack_topology::{Cluster, ClusterSpec, JobId};
use netpack_workload::{TraceKind, TraceSpec};

fn cluster() -> Cluster {
    Cluster::new(ClusterSpec {
        racks: 4,
        servers_per_rack: 8,
        gpus_per_server: 8,
        ..ClusterSpec::paper_default()
    })
}

/// Drive both engines through the same schedule: jobs arrive in trace
/// order, a placement pass runs every `batch` arrivals, and each pass is
/// followed by completing the oldest still-running job (churn keeps the
/// warm state honest). Compare placements after every pass.
fn run_equivalence(seed: u64, kind: TraceKind, jobs: usize, batch: usize) {
    run_equivalence_with(seed, kind, jobs, batch, ServiceConfig::default());
}

fn run_equivalence_with(
    seed: u64,
    kind: TraceKind,
    jobs: usize,
    batch: usize,
    svc_config: ServiceConfig,
) {
    let trace = TraceSpec::new(kind, jobs).seed(seed).open_loop().generate();
    let jobs = trace.jobs();

    let mut manager = JobManager::new(
        cluster(),
        Box::new(NetPackPlacer::default()),
        ManagerConfig::default(),
    );
    let mut core = ServiceCore::new(cluster(), svc_config);

    let mut completion_order: Vec<JobId> = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        manager.submit(job.clone());
        core.apply(Command::Submit(job.clone()));
        if (i + 1) % batch != 0 && i + 1 != jobs.len() {
            continue;
        }

        let placed_ref = manager.run_epoch();
        let placed_svc_before = core.counters().placed;
        core.place_pass();
        let placed_svc = core.counters().placed - placed_svc_before;
        assert_eq!(
            placed_svc,
            placed_ref.len() as u64,
            "pass after job {i}: placement counts diverged"
        );
        for (job, p) in &placed_ref {
            completion_order.push(job.id);
            // The reference's committed placement must be running
            // identically in the service — workers, PSes, INA flag.
            let svc_placement = core
                .session()
                .running()
                .iter()
                .find(|r| r.id == job.id)
                .map(|r| &r.placement);
            assert_eq!(
                svc_placement,
                Some(p),
                "pass after job {i}: placement for {} diverged",
                job.id
            );
        }
        assert_eq!(
            core.free_gpus(),
            manager.cluster().free_gpus(),
            "pass after job {i}: GPU ledgers diverged"
        );
        assert_eq!(core.pending_len(), manager.pending().len());

        // Service running set must mirror the manager's, placement for
        // placement (INA flags included).
        assert_eq!(core.running_len(), manager.running().len());

        // Churn: retire the oldest running job on both sides.
        if let Some(&oldest) = completion_order.first() {
            let (_, p_ref) = manager.finish(oldest).expect("reference finish");
            core.apply(Command::Complete(oldest));
            completion_order.remove(0);
            assert_eq!(
                core.counters().unknown_ops,
                0,
                "service lost track of {oldest} (reference had {p_ref:?})"
            );
        }
    }

    // Final drain: both sides place whatever is still queued.
    let mut guard = 0;
    while !manager.pending().is_empty() || core.pending_len() > 0 {
        let placed_ref = manager.run_epoch();
        let before = core.counters().placed;
        core.place_pass();
        assert_eq!(core.counters().placed - before, placed_ref.len() as u64);
        assert_eq!(core.free_gpus(), manager.cluster().free_gpus());
        guard += 1;
        if placed_ref.is_empty() || guard > 64 {
            break; // nothing placeable without further completions
        }
    }
    assert_eq!(core.running_len(), manager.running().len());
}

#[test]
fn service_matches_job_manager_on_philly_open_loop() {
    run_equivalence(17, TraceKind::Real, 120, 8);
}

#[test]
fn service_matches_job_manager_on_poisson_small_batches() {
    run_equivalence(3, TraceKind::Poisson, 90, 3);
}

#[test]
fn service_matches_job_manager_on_normal_large_batches() {
    run_equivalence(29, TraceKind::Normal, 100, 16);
}

/// The speculative batch engine inside the warm session (`NETPACK_BATCH=
/// spec` with a real multi-worker window) must stay indistinguishable from
/// the closed-batch reference too — speculation may only change *when*
/// jobs are scored, never what they get.
#[test]
fn speculative_service_matches_job_manager() {
    for (seed, kind, threads) in [
        (17, TraceKind::Real, 2),
        (29, TraceKind::Normal, 4),
    ] {
        let config = ServiceConfig {
            placer: NetPackConfig {
                batch: BatchMode::Spec,
                threads: Some(threads),
                ..NetPackConfig::default()
            },
            ..ServiceConfig::default()
        };
        run_equivalence_with(seed, kind, 100, 8, config);
    }
}

/// And the explicit sequential loop must as well — the two `NETPACK_BATCH`
/// modes bracket the same reference.
#[test]
fn sequential_service_matches_job_manager() {
    let config = ServiceConfig {
        placer: NetPackConfig {
            batch: BatchMode::Seq,
            ..NetPackConfig::default()
        },
        ..ServiceConfig::default()
    };
    run_equivalence_with(3, TraceKind::Poisson, 90, 3, config);
}
