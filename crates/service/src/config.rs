//! Service tunables and their `NETPACK_SERVICE_*` environment knobs.

use netpack_placement::NetPackConfig;
use std::time::Duration;

/// Tunables of the placement service (see the [crate docs](crate) for the
/// architecture). Every field has a `NETPACK_SERVICE_*` environment
/// override read by [`ServiceConfig::from_env`]; unset or unparsable
/// variables keep the default.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Smallest command batch the drain loop settles for
    /// (`NETPACK_SERVICE_BATCH_MIN`, default 1).
    pub min_batch: usize,
    /// Hard cap on commands drained per batch
    /// (`NETPACK_SERVICE_BATCH_MAX`, default 256).
    pub max_batch: usize,
    /// Target upper bound on the placement work of one batch; the
    /// adaptive limit divides this by the observed per-job cost
    /// (`NETPACK_SERVICE_LATENCY_BUDGET_US`, default 16000 µs). The
    /// default is throughput-leaning: training jobs run for hours, so a
    /// placement decision a few milliseconds later is immaterial, while
    /// small batches pay the per-pass fixed cost (pending sort, knapsack
    /// admission, estimator-tail reconcile) per handful of jobs. Tighten
    /// it for latency-sensitive deployments.
    pub latency_budget: Duration,
    /// Pending-queue backpressure bound: submissions beyond this are
    /// rejected and counted (`NETPACK_SERVICE_QUEUE_CAP`, default 65536).
    pub queue_cap: usize,
    /// Command-channel depth in threaded mode; a full channel pushes
    /// back on submitters (`NETPACK_SERVICE_CHANNEL_CAP`, default 1024).
    pub channel_cap: usize,
    /// Batching window of the threaded drain loop: after the first
    /// command of a batch arrives, the service thread keeps sleeping up
    /// to this long while the batch is still below the adaptive limit,
    /// so trickling submissions coalesce into one placement pass instead
    /// of a pass per wakeup (`NETPACK_SERVICE_GATHER_US`, default 8000 µs
    /// — half the latency budget; 0 disables gathering).
    pub gather: Duration,
    /// Deterministic mode (`NETPACK_SERVICE_MODE=deterministic`): batch
    /// sizing ignores wall-clock cost so identical command streams drain
    /// identically, making the event log byte-reproducible.
    pub deterministic: bool,
    /// Record one event-log line per submit/place/defer/complete/cancel
    /// (`NETPACK_SERVICE_EVENT_LOG=1`). Off by default: a million-job
    /// bench would otherwise spend its time formatting strings.
    pub event_log: bool,
    /// Additive value bump for every deferred job, re-applied each pass —
    /// the same starvation-avoidance aging the `JobManager` uses.
    pub aging_value_bump: f64,
    /// Placer worker count the adaptive batch limit floors at (default:
    /// [`netpack_metrics::sweep_threads`]): a batch smaller than the
    /// worker count can't keep every speculation worker busy, so the
    /// limit never drops below it in adaptive mode.
    pub threads: usize,
    /// Placer configuration. Topology and scoring mode are forced to the
    /// flat fast path by the session regardless of what is set here.
    pub placer: NetPackConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            min_batch: 1,
            max_batch: 256,
            latency_budget: Duration::from_micros(16_000),
            queue_cap: 65_536,
            channel_cap: 1_024,
            gather: Duration::from_micros(8_000),
            deterministic: false,
            event_log: false,
            aging_value_bump: 0.5,
            threads: netpack_metrics::sweep_threads(),
            placer: NetPackConfig::default(),
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

impl ServiceConfig {
    /// Defaults overridden by the `NETPACK_SERVICE_*` environment
    /// variables (see each field's doc). Unset or malformed variables
    /// fall back silently — the service must come up under a stray
    /// environment, and the effective config is visible via `Debug`.
    pub fn from_env() -> Self {
        let mut cfg = ServiceConfig::default();
        if let Some(v) = env_usize("NETPACK_SERVICE_BATCH_MIN") {
            cfg.min_batch = v.max(1);
        }
        if let Some(v) = env_usize("NETPACK_SERVICE_BATCH_MAX") {
            cfg.max_batch = v.max(1);
        }
        if let Some(v) = env_usize("NETPACK_SERVICE_LATENCY_BUDGET_US") {
            cfg.latency_budget = Duration::from_micros(v as u64);
        }
        if let Some(v) = env_usize("NETPACK_SERVICE_QUEUE_CAP") {
            cfg.queue_cap = v.max(1);
        }
        if let Some(v) = env_usize("NETPACK_SERVICE_CHANNEL_CAP") {
            cfg.channel_cap = v.max(1);
        }
        if let Some(v) = env_usize("NETPACK_SERVICE_GATHER_US") {
            cfg.gather = Duration::from_micros(v as u64);
        }
        if let Ok(mode) = std::env::var("NETPACK_SERVICE_MODE") {
            cfg.deterministic = mode.trim().eq_ignore_ascii_case("deterministic");
        }
        if let Ok(v) = std::env::var("NETPACK_SERVICE_EVENT_LOG") {
            let v = v.trim();
            cfg.event_log = !v.is_empty() && v != "0";
        }
        if cfg.min_batch > cfg.max_batch {
            cfg.min_batch = cfg.max_batch;
        }
        cfg
    }
}

/// Commands the drain loop accepts before placing the next batch: the
/// latency budget divided by the observed per-job placement cost, clamped
/// to `[min_batch, max_batch]`. With no cost estimate yet — or in
/// deterministic mode, where wall-clock must not steer behavior — the
/// limit is `max_batch`, so batch size is then governed purely by queue
/// depth (the drain never waits for commands that aren't there).
pub fn adaptive_batch_limit(cost_ewma_s: f64, cfg: &ServiceConfig) -> usize {
    // NaN and zero both mean "no usable estimate yet".
    let no_estimate = !cost_ewma_s.is_finite() || cost_ewma_s <= 0.0;
    if cfg.deterministic || no_estimate {
        return cfg.max_batch;
    }
    let budget_jobs = cfg.latency_budget.as_secs_f64() / cost_ewma_s;
    // Floor at the placer's worker count: a batch smaller than that can't
    // keep every speculation worker busy, so shrinking further trades
    // throughput for no latency win.
    let floor = cfg.min_batch.max(cfg.threads.max(1)).min(cfg.max_batch);
    if budget_jobs >= cfg.max_batch as f64 {
        cfg.max_batch
    } else {
        (budget_jobs as usize).clamp(floor, cfg.max_batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(min: usize, max: usize, budget_us: u64) -> ServiceConfig {
        ServiceConfig {
            min_batch: min,
            max_batch: max,
            latency_budget: Duration::from_micros(budget_us),
            // Pin the worker count so these tests don't depend on the
            // machine the suite runs on.
            threads: 1,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn limit_scales_inversely_with_cost() {
        let c = cfg(4, 512, 1_000); // 1 ms budget
        // 10 µs/job -> 100 jobs fit the budget.
        assert_eq!(adaptive_batch_limit(10e-6, &c), 100);
        // 2 µs/job -> 500 jobs.
        assert_eq!(adaptive_batch_limit(2e-6, &c), 500);
    }

    #[test]
    fn limit_clamps_to_bounds_and_handles_no_estimate() {
        let c = cfg(4, 512, 1_000);
        assert_eq!(adaptive_batch_limit(0.0, &c), 512, "no estimate yet");
        assert_eq!(adaptive_batch_limit(f64::NAN, &c), 512, "NaN treated as none");
        assert_eq!(adaptive_batch_limit(1.0, &c), 4, "cost above budget -> min");
        assert_eq!(adaptive_batch_limit(1e-12, &c), 512, "tiny cost -> max");
    }

    #[test]
    fn deterministic_mode_ignores_wall_clock_cost() {
        let mut c = cfg(4, 512, 1_000);
        c.deterministic = true;
        assert_eq!(adaptive_batch_limit(1.0, &c), 512);
        assert_eq!(adaptive_batch_limit(1e-9, &c), 512);
    }

    #[test]
    fn adaptive_limit_floors_at_the_worker_count() {
        let mut c = cfg(1, 512, 1_000);
        c.threads = 8;
        // Cost so high the budget admits <1 job: the floor still hands
        // the placer one job per speculation worker.
        assert_eq!(adaptive_batch_limit(1.0, &c), 8);
        // The floor never exceeds max_batch.
        c.max_batch = 4;
        assert_eq!(adaptive_batch_limit(1.0, &c), 4);
    }
}
