#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Long-running NetPack placement service: an open-loop command stream in,
//! a continuously placed cluster out.
//!
//! The batch experiments in this workspace drive the placer in a closed
//! loop — build a trace, place it, measure. A production scheduler instead
//! faces an **open-loop** stream of submissions, cancellations, and
//! completions that does not wait for placement to finish. This crate is
//! that front end, in three layers:
//!
//! * [`ServiceConfig`] — tunables (batch bounds, latency budget, queue
//!   cap), each with a `NETPACK_SERVICE_*` environment override.
//! * [`ServiceCore`] — the deterministic engine: a
//!   [`NetPackSession`](netpack_placement::NetPackSession) kept warm
//!   across batches (no per-batch topology or steady-state rebuild), a
//!   pending queue with backpressure, per-operation counters, a
//!   submit-to-placement latency histogram, and an optional event log.
//!   Driven synchronously it is byte-reproducible: the same command
//!   stream always yields the same event log.
//! * [`PlacementService`] — a thread wrapping the core behind a bounded
//!   command channel. The drain loop adapts its batch size to the
//!   observed per-job placement cost so one pass stays within the
//!   configured latency budget while throughput scales with queue depth.
//!
//! # Example
//!
//! ```
//! use netpack_service::{Command, PlacementService, ServiceConfig};
//! use netpack_topology::{Cluster, ClusterSpec, JobId};
//! use netpack_workload::{Job, ModelKind};
//!
//! let cluster = Cluster::new(ClusterSpec::paper_testbed());
//! let svc = PlacementService::spawn(cluster, ServiceConfig::default());
//! svc.send(Command::Submit(Job::builder(JobId(0), ModelKind::Vgg16, 4).build()));
//! svc.send(Command::Complete(JobId(0)));
//! let report = svc.shutdown();
//! assert_eq!(report.counters.submitted, 1);
//! ```

mod config;
mod core;
mod runtime;

pub use config::{ServiceConfig, adaptive_batch_limit};
pub use core::{Command, JobStatus, ServiceCore, ServiceCounters, ServiceReport};
pub use runtime::PlacementService;
