//! The deterministic service engine: commands in, placements out.
//!
//! [`ServiceCore`] is the whole service minus the thread: it owns a
//! [`NetPackSession`], a pending queue, and the counters, and is driven by
//! [`apply`](ServiceCore::apply) / [`place_pass`](ServiceCore::place_pass)
//! calls. The threaded front end in [`runtime`](crate::runtime) is a thin
//! loop around it; benches and determinism checks drive it directly so the
//! command schedule is exactly the input stream.

use crate::config::ServiceConfig;
use crate::config::adaptive_batch_limit;
use netpack_metrics::{PerfCounters, Stopwatch};
use netpack_model::Placement;
use netpack_placement::NetPackSession;
use netpack_topology::{Cluster, JobId};
use netpack_workload::Job;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::mpsc::SyncSender;

/// Where a job currently stands, as answered by [`Command::Query`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Submitted and waiting in the pending queue for a placement pass.
    Pending,
    /// Placed and holding GPUs.
    Running,
    /// Never submitted, rejected, or already retired.
    Unknown,
}

impl JobStatus {
    fn as_str(self) -> &'static str {
        match self {
            JobStatus::Pending => "pending",
            JobStatus::Running => "running",
            JobStatus::Unknown => "unknown",
        }
    }
}

/// One operation on the service's command stream.
#[derive(Debug)]
pub enum Command {
    /// Enqueue a job for placement (rejected if the queue is at capacity).
    Submit(Job),
    /// Abandon a job wherever it is: drop it from the queue if still
    /// pending, tear it down if running.
    Cancel(JobId),
    /// The job finished training: release its GPUs. Completing a job that
    /// is still pending retires it from the queue unplaced.
    Complete(JobId),
    /// Report the job's [`JobStatus`], optionally over a reply channel.
    Query(JobId, Option<SyncSender<JobStatus>>),
}

/// Monotonic operation counters — the service's backpressure and progress
/// gauges, cheap enough to bump on every command.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServiceCounters {
    /// Submissions accepted into the pending queue.
    pub submitted: u64,
    /// Submissions refused because the queue was at `queue_cap`.
    pub rejected: u64,
    /// Jobs placed (each placement counted once, at the pass it landed).
    pub placed: u64,
    /// Defer events: a job returning to the queue after an unplaceable
    /// pass. One job deferred across five passes counts five.
    pub deferrals: u64,
    /// Placement passes that saw a non-empty queue.
    pub batches: u64,
    /// Cancels that removed a still-pending job from the queue.
    pub cancelled_pending: u64,
    /// Cancels that tore down a running job.
    pub cancelled_running: u64,
    /// Completes that retired a running job.
    pub completed: u64,
    /// Completes that retired a job straight out of the pending queue.
    pub completed_pending: u64,
    /// Cancels/completes for ids the service does not know.
    pub unknown_ops: u64,
    /// Query commands served.
    pub queries: u64,
    /// High-water mark of the pending queue.
    pub max_queue_depth: u64,
}

/// Everything the service hands back at shutdown.
#[derive(Debug, Default)]
pub struct ServiceReport {
    /// Final operation counters.
    pub counters: ServiceCounters,
    /// Merged perf: the service's `placement_latency` histogram and
    /// `place_pass` timer plus every counter the underlying placer kept.
    pub perf: PerfCounters,
    /// Event log, one line per operation (empty unless
    /// [`ServiceConfig::event_log`] was set).
    pub events: Vec<String>,
    /// Jobs still pending when the service stopped.
    pub pending_left: usize,
    /// Jobs still running when the service stopped.
    pub running_left: usize,
}

/// The synchronous placement engine behind the service. See the
/// [module docs](self) for how it relates to the threaded front end.
#[derive(Debug)]
pub struct ServiceCore {
    session: NetPackSession,
    config: ServiceConfig,
    pending: Vec<Job>,
    /// Submit-time stopwatch per queued job, carried across deferrals so
    /// the latency histogram measures submit → eventual placement.
    watches: BTreeMap<JobId, Stopwatch>,
    counters: ServiceCounters,
    perf: PerfCounters,
    events: Vec<String>,
    /// EWMA of per-job placement cost (seconds); drives the adaptive
    /// batch limit in threaded mode.
    cost_ewma_s: f64,
    /// Double buffer for [`place_pass`](Self::place_pass): the drained
    /// batch vec is swapped back in after the pass, so steady-state passes
    /// reallocate neither the queue nor the batch.
    batch_scratch: Vec<Job>,
}

impl ServiceCore {
    /// A fresh engine over `cluster` with nothing pending or running.
    pub fn new(cluster: Cluster, config: ServiceConfig) -> Self {
        let session = NetPackSession::new(cluster, config.placer.clone());
        ServiceCore {
            session,
            config,
            pending: Vec::new(),
            watches: BTreeMap::new(),
            counters: ServiceCounters::default(),
            perf: PerfCounters::new(),
            events: Vec::new(),
            cost_ewma_s: 0.0,
            batch_scratch: Vec::new(),
        }
    }

    /// Current operation counters.
    pub fn counters(&self) -> &ServiceCounters {
        &self.counters
    }

    /// Event-log lines recorded so far (empty unless enabled).
    pub fn events(&self) -> &[String] {
        &self.events
    }

    /// Jobs waiting for the next placement pass.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Jobs currently holding GPUs.
    pub fn running_len(&self) -> usize {
        self.session.running().len()
    }

    /// Free GPUs on the session's ledger.
    pub fn free_gpus(&self) -> usize {
        self.session.free_gpus()
    }

    /// The underlying placement session, for inspecting the running set
    /// and its placements.
    pub fn session(&self) -> &NetPackSession {
        &self.session
    }

    /// How many commands the drain loop should accept before the next
    /// placement pass, given the observed per-job cost so far.
    pub fn batch_limit(&self) -> usize {
        adaptive_batch_limit(self.cost_ewma_s, &self.config)
    }

    /// Where `id` currently stands.
    pub fn status(&self, id: JobId) -> JobStatus {
        if self.pending.iter().any(|j| j.id == id) {
            JobStatus::Pending
        } else if self.session.is_running(id) {
            JobStatus::Running
        } else {
            JobStatus::Unknown
        }
    }

    fn event(&mut self, line: String) {
        if self.config.event_log {
            self.events.push(line);
        }
    }

    /// Apply one command. Placement only happens in
    /// [`place_pass`](Self::place_pass); this mutates the queue and the
    /// running set and keeps the counters honest.
    pub fn apply(&mut self, cmd: Command) {
        match cmd {
            Command::Submit(job) => {
                if self.pending.len() >= self.config.queue_cap {
                    self.counters.rejected += 1;
                    if self.config.event_log {
                        self.event(format!("reject id={} queue={}", job.id, self.pending.len()));
                    }
                    return;
                }
                self.counters.submitted += 1;
                if self.config.event_log {
                    self.event(format!(
                        "submit id={} gpus={} queue={}",
                        job.id,
                        job.gpus,
                        self.pending.len() + 1
                    ));
                }
                self.watches.insert(job.id, Stopwatch::start());
                self.pending.push(job);
                self.counters.max_queue_depth =
                    self.counters.max_queue_depth.max(self.pending.len() as u64);
            }
            Command::Cancel(id) => {
                if let Some(pos) = self.pending.iter().position(|j| j.id == id) {
                    let _ = self.pending.remove(pos);
                    let _ = self.watches.remove(&id);
                    self.counters.cancelled_pending += 1;
                    self.event(format!("cancel id={id} kind=pending"));
                } else if self.session.complete(id).is_ok() {
                    self.counters.cancelled_running += 1;
                    self.event(format!("cancel id={id} kind=running"));
                } else {
                    self.counters.unknown_ops += 1;
                    self.event(format!("cancel id={id} kind=unknown"));
                }
            }
            Command::Complete(id) => {
                if let Some(pos) = self.pending.iter().position(|j| j.id == id) {
                    // Completed before it was ever placed — it simply
                    // leaves the queue; there is nothing to release.
                    let _ = self.pending.remove(pos);
                    let _ = self.watches.remove(&id);
                    self.counters.completed_pending += 1;
                    self.event(format!("complete id={id} kind=pending"));
                } else if self.session.complete(id).is_ok() {
                    self.counters.completed += 1;
                    self.event(format!("complete id={id} kind=running"));
                } else {
                    self.counters.unknown_ops += 1;
                    self.event(format!("complete id={id} kind=unknown"));
                }
            }
            Command::Query(id, reply) => {
                self.counters.queries += 1;
                let status = self.status(id);
                self.event(format!("query id={id} status={}", status.as_str()));
                if let Some(tx) = reply {
                    // A gone or saturated requester is its own problem.
                    let _ = tx.try_send(status);
                }
            }
        }
    }

    /// Run one placement pass over the whole pending queue: canonical
    /// value-descending (ties by id) order, one [`NetPackSession`] batch,
    /// deferred jobs aged by `aging_value_bump` and requeued. Returns the
    /// number of jobs placed.
    pub fn place_pass(&mut self) -> usize {
        if self.pending.is_empty() {
            return 0;
        }
        self.counters.batches += 1;
        let mut batch =
            std::mem::replace(&mut self.pending, std::mem::take(&mut self.batch_scratch));
        batch.sort_by(|a, b| b.value.total_cmp(&a.value).then(a.id.cmp(&b.id)));
        let n = batch.len();

        let pass = Stopwatch::start();
        let outcome = self.session.place_batch(&batch);
        let elapsed = pass.elapsed();
        self.perf.record("place_pass", elapsed);

        let per_job_s = elapsed.as_secs_f64() / n as f64;
        self.cost_ewma_s = if self.cost_ewma_s > 0.0 {
            0.8 * self.cost_ewma_s + 0.2 * per_job_s
        } else {
            per_job_s
        };

        let placed = outcome.placed.len();
        for (job, p) in &outcome.placed {
            self.counters.placed += 1;
            if let Some(watch) = self.watches.remove(&job.id) {
                self.perf.record_latency("placement_latency", watch.elapsed());
            }
            if self.config.event_log {
                self.event(format!("place id={} {}", job.id, placement_digest(p)));
            }
        }
        for mut job in outcome.deferred {
            job.value += self.config.aging_value_bump;
            self.counters.deferrals += 1;
            if self.config.event_log {
                self.event(format!("defer id={} value={:.3}", job.id, job.value));
            }
            self.pending.push(job);
        }
        if self.config.event_log {
            self.event(format!(
                "batch n={n} placed={placed} deferred={} free={}",
                n - placed,
                self.session.free_gpus()
            ));
        }
        batch.clear();
        self.batch_scratch = batch;
        placed
    }

    /// Stop the engine and hand everything back: counters, merged perf
    /// (service-level plus the placer's), the event log, and what was
    /// still in flight.
    pub fn finish(mut self) -> ServiceReport {
        let mut perf = self.perf;
        perf.merge(&self.session.take_perf());
        ServiceReport {
            counters: self.counters,
            perf,
            events: self.events,
            pending_left: self.pending.len(),
            running_left: self.session.running().len(),
        }
    }
}

/// Stable one-line rendering of a placement for the event log.
fn placement_digest(p: &Placement) -> String {
    let mut s = String::from("workers=[");
    for (i, &(srv, w)) in p.workers().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{}x{}", srv.0, w);
    }
    s.push_str("] ps=[");
    for (i, srv) in p.pses().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{}", srv.0);
    }
    let _ = write!(s, "] ina={}", u8::from(p.ina_enabled()));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpack_topology::{ClusterSpec, JobId};
    use netpack_workload::{Job, ModelKind};

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec {
            racks: 2,
            servers_per_rack: 4,
            gpus_per_server: 4,
            ..ClusterSpec::paper_default()
        })
    }

    fn job(id: u64, gpus: usize) -> Job {
        Job::builder(JobId(id), ModelKind::Vgg16, gpus).build()
    }

    fn core_with_events() -> ServiceCore {
        let cfg = ServiceConfig {
            event_log: true,
            deterministic: true,
            ..ServiceConfig::default()
        };
        ServiceCore::new(cluster(), cfg)
    }

    #[test]
    fn submit_place_complete_lifecycle_updates_counters_and_status() {
        let mut core = core_with_events();
        core.apply(Command::Submit(job(0, 4)));
        assert_eq!(core.status(JobId(0)), JobStatus::Pending);
        assert_eq!(core.place_pass(), 1);
        assert_eq!(core.status(JobId(0)), JobStatus::Running);
        assert_eq!(core.free_gpus(), 32 - 4);
        core.apply(Command::Complete(JobId(0)));
        assert_eq!(core.status(JobId(0)), JobStatus::Unknown);
        assert_eq!(core.free_gpus(), 32);
        let c = core.counters();
        assert_eq!((c.submitted, c.placed, c.completed), (1, 1, 1));
        assert_eq!(c.unknown_ops, 0);
    }

    #[test]
    fn queue_cap_rejects_and_counts_backpressure() {
        let cfg = ServiceConfig {
            queue_cap: 2,
            deterministic: true,
            ..ServiceConfig::default()
        };
        let mut core = ServiceCore::new(cluster(), cfg);
        for i in 0..5 {
            core.apply(Command::Submit(job(i, 2)));
        }
        assert_eq!(core.pending_len(), 2);
        let c = *core.counters();
        assert_eq!((c.submitted, c.rejected), (2, 3));
        assert_eq!(c.max_queue_depth, 2);
    }

    #[test]
    fn cancel_and_complete_cover_pending_running_and_unknown() {
        let mut core = core_with_events();
        core.apply(Command::Submit(job(0, 4)));
        core.apply(Command::Submit(job(1, 4)));
        core.apply(Command::Cancel(JobId(0))); // pending
        assert_eq!(core.place_pass(), 1);
        core.apply(Command::Cancel(JobId(1))); // running
        core.apply(Command::Cancel(JobId(9))); // unknown
        core.apply(Command::Submit(job(2, 4)));
        core.apply(Command::Complete(JobId(2))); // pending
        core.apply(Command::Complete(JobId(9))); // unknown
        let c = *core.counters();
        assert_eq!(c.cancelled_pending, 1);
        assert_eq!(c.cancelled_running, 1);
        assert_eq!(c.completed_pending, 1);
        assert_eq!(c.unknown_ops, 2);
        assert_eq!(core.free_gpus(), 32);
        assert_eq!(core.pending_len(), 0);
    }

    #[test]
    fn deferred_jobs_age_and_eventually_place() {
        let mut core = core_with_events();
        // 32 GPUs: the 30-GPU job and the two 8s cannot coexist.
        core.apply(Command::Submit(job(0, 30)));
        core.apply(Command::Submit(job(1, 8)));
        core.apply(Command::Submit(job(2, 8)));
        let placed_first = core.place_pass();
        assert!(placed_first > 0);
        assert!(core.pending_len() > 0, "something must defer");
        assert!(core.counters().deferrals > 0);
        // Free everything, then the deferred remainder places.
        let running: Vec<JobId> = (0..3)
            .map(JobId)
            .filter(|&id| core.status(id) == JobStatus::Running)
            .collect();
        for id in running {
            core.apply(Command::Complete(id));
        }
        let placed_second = core.place_pass();
        assert!(placed_second > 0);
        assert_eq!(core.pending_len(), 0);
    }

    #[test]
    fn query_replies_over_the_channel() {
        let mut core = core_with_events();
        core.apply(Command::Submit(job(0, 4)));
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        core.apply(Command::Query(JobId(0), Some(tx)));
        assert_eq!(rx.recv(), Ok(JobStatus::Pending));
        assert_eq!(core.counters().queries, 1);
    }

    #[test]
    fn identical_command_streams_produce_identical_event_logs() {
        let run = || {
            let mut core = core_with_events();
            for i in 0..20 {
                core.apply(Command::Submit(job(i, (i as usize % 7) + 1)));
                if i % 4 == 3 {
                    let _ = core.place_pass();
                }
                if i % 5 == 4 {
                    core.apply(Command::Complete(JobId(i - 3)));
                }
            }
            let _ = core.place_pass();
            core.finish()
        };
        let a = run();
        let b = run();
        assert!(!a.events.is_empty());
        assert_eq!(a.events, b.events);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn report_merges_placer_perf_and_latency_histogram() {
        let mut core = core_with_events();
        core.apply(Command::Submit(job(0, 4)));
        let _ = core.place_pass();
        let report = core.finish();
        assert_eq!(report.perf.timer_count("place_pass"), 1);
        assert_eq!(report.perf.timer_count("place_batch"), 1, "placer perf merged");
        let hist = report.perf.latency("placement_latency").expect("histogram recorded");
        assert_eq!(hist.count(), 1);
        assert_eq!(report.running_left, 1);
    }
}
