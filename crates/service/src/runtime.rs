//! Threaded front end: a command channel in front of [`ServiceCore`].
//!
//! The shape is a classic multiplexer: submitters push [`Command`]s into a
//! bounded `sync_channel` (a full channel is backpressure the caller sees
//! immediately), and a single service thread drains it in adaptive batches
//! — block for the first command, then take up to
//! [`ServiceCore::batch_limit`] more without waiting — and runs one
//! placement pass per batch. Dropping the handle's sender shuts the thread
//! down; [`PlacementService::shutdown`] also flushes whatever was still
//! queued and returns the final [`ServiceReport`].

use crate::config::ServiceConfig;
use crate::core::{Command, JobStatus, ServiceCore, ServiceReport};
use netpack_topology::{Cluster, JobId};
use netpack_workload::Job;
use std::sync::mpsc::{Receiver, SyncSender, TrySendError, sync_channel};
use std::thread::JoinHandle;

/// Handle to a running placement service thread. Cloneable submission is
/// available via [`sender`](PlacementService::sender); the handle itself
/// owns the shutdown path.
#[derive(Debug)]
pub struct PlacementService {
    tx: Option<SyncSender<Command>>,
    handle: Option<JoinHandle<ServiceReport>>,
}

impl PlacementService {
    /// Start the service thread over `cluster`. The command channel is
    /// bounded at `config.channel_cap`.
    pub fn spawn(cluster: Cluster, config: ServiceConfig) -> Self {
        let (tx, rx) = sync_channel(config.channel_cap);
        let handle = std::thread::spawn(move || run_loop(cluster, config, rx));
        PlacementService {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    /// A clone of the command sender, for handing to producer threads.
    pub fn sender(&self) -> Option<SyncSender<Command>> {
        self.tx.clone()
    }

    /// Submit a job without blocking. On backpressure (channel full) or a
    /// stopped service the job comes back as `Err` so the caller can
    /// retry, shed, or queue it elsewhere.
    pub fn submit(&self, job: Job) -> Result<(), Job> {
        match &self.tx {
            Some(tx) => tx.try_send(Command::Submit(job)).map_err(|e| match e {
                TrySendError::Full(Command::Submit(j))
                | TrySendError::Disconnected(Command::Submit(j)) => j,
                // try_send returns the command we passed in; only Submit
                // goes through this path.
                TrySendError::Full(_) | TrySendError::Disconnected(_) => unreachable!(),
            }),
            None => Err(job),
        }
    }

    /// Send any command, blocking while the channel is full. Returns
    /// `false` if the service has stopped.
    pub fn send(&self, cmd: Command) -> bool {
        match &self.tx {
            Some(tx) => tx.send(cmd).is_ok(),
            None => false,
        }
    }

    /// Ask where a job stands, round-tripping through the service thread
    /// (so the answer reflects every command sent before this call).
    /// `None` if the service has stopped.
    pub fn query(&self, id: JobId) -> Option<JobStatus> {
        let (reply_tx, reply_rx) = sync_channel(1);
        if !self.send(Command::Query(id, Some(reply_tx))) {
            return None;
        }
        reply_rx.recv().ok()
    }

    /// Stop the service: close the channel, let the thread drain and flush
    /// the queue, and return its final report.
    pub fn shutdown(mut self) -> ServiceReport {
        drop(self.tx.take());
        match self.handle.take() {
            Some(handle) => match handle.join() {
                Ok(report) => report,
                Err(panic) => std::panic::resume_unwind(panic),
            },
            None => ServiceReport::default(),
        }
    }
}

/// The service thread: drain, place, repeat; flush on channel close.
fn run_loop(cluster: Cluster, config: ServiceConfig, rx: Receiver<Command>) -> ServiceReport {
    let mut core = ServiceCore::new(cluster, config);
    while let Ok(first) = rx.recv() {
        core.apply(first);
        let limit = core.batch_limit();
        let mut drained = 1;
        while drained < limit {
            match rx.try_recv() {
                Ok(cmd) => {
                    core.apply(cmd);
                    drained += 1;
                }
                Err(_) => break,
            }
        }
        let _ = core.place_pass();
    }
    // Channel closed: flush what is still pending. Repeat while passes
    // make progress — a pass can place jobs that earlier passes deferred
    // only if something else freed capacity, so this converges fast.
    while core.pending_len() > 0 && core.place_pass() > 0 {}
    core.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpack_topology::ClusterSpec;
    use netpack_workload::ModelKind;

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec {
            racks: 2,
            servers_per_rack: 4,
            gpus_per_server: 4,
            ..ClusterSpec::paper_default()
        })
    }

    fn job(id: u64, gpus: usize) -> Job {
        Job::builder(JobId(id), ModelKind::Vgg16, gpus).build()
    }

    #[test]
    fn spawn_submit_query_shutdown_round_trip() {
        let svc = PlacementService::spawn(cluster(), ServiceConfig::default());
        for i in 0..8 {
            assert!(svc.send(Command::Submit(job(i, 2))));
        }
        // Query round-trips through the thread, so by the time it answers
        // all prior submits have been applied (though possibly not placed).
        let status = svc.query(JobId(0)).expect("service alive");
        assert_ne!(status, JobStatus::Unknown);
        assert!(svc.send(Command::Complete(JobId(0))));
        let report = svc.shutdown();
        assert_eq!(report.counters.submitted, 8);
        // Every submission is accounted for: placed, retired straight out
        // of the queue by the Complete, or still pending at shutdown.
        assert_eq!(
            report.counters.placed
                + report.counters.completed_pending
                + report.pending_left as u64,
            8
        );
        assert!(report.counters.batches > 0);
    }

    #[test]
    fn shutdown_flushes_the_pending_queue() {
        let svc = PlacementService::spawn(cluster(), ServiceConfig::default());
        for i in 0..4 {
            assert!(svc.send(Command::Submit(job(i, 4))));
        }
        let report = svc.shutdown();
        // 16 GPUs demanded, 32 available: everything must have landed.
        assert_eq!(report.counters.placed, 4);
        assert_eq!(report.pending_left, 0);
        assert_eq!(report.running_left, 4);
    }

    #[test]
    fn submit_reports_backpressure_instead_of_blocking() {
        let cfg = ServiceConfig {
            channel_cap: 1,
            ..ServiceConfig::default()
        };
        let svc = PlacementService::spawn(cluster(), cfg);
        // Slam the bounded channel; at least everything try_send rejects
        // must come back to us, and nothing may be silently dropped.
        let mut accepted = 0u64;
        let mut bounced = 0u64;
        for i in 0..256 {
            match svc.submit(job(i, 1)) {
                Ok(()) => accepted += 1,
                Err(returned) => {
                    assert_eq!(returned.id, JobId(i));
                    bounced += 1;
                }
            }
        }
        let report = svc.shutdown();
        assert_eq!(accepted + bounced, 256);
        assert_eq!(report.counters.submitted + report.counters.rejected, accepted);
    }
}
