//! Threaded front end: a command queue in front of [`ServiceCore`].
//!
//! The shape is a classic multiplexer: submitters push [`Command`]s into a
//! bounded queue (a full queue is backpressure the caller sees
//! immediately), and a single service thread drains it in adaptive batches
//! and runs one placement pass per batch. Dropping every sender shuts the
//! thread down; [`PlacementService::shutdown`] also flushes whatever was
//! still queued and returns the final [`ServiceReport`].
//!
//! The queue is a hand-rolled `Mutex<VecDeque>` + condvar pair rather than
//! an `mpsc::sync_channel`: the service thread takes **one lock per
//! batch** ([`CommandReceiver::drain_into`] blocks for the first command
//! and moves up to the batch limit out in the same critical section) where
//! the channel paid a synchronized `recv`/`try_recv` round-trip per
//! command. At open-loop replay rates the per-command wakeups were the
//! threaded mode's bottleneck — drain-many is what lets it clear the
//! deterministic loop.

use crate::config::ServiceConfig;
use crate::core::{Command, JobStatus, ServiceCore, ServiceReport};
use netpack_metrics::Stopwatch;
use netpack_topology::{Cluster, JobId};
use netpack_workload::Job;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

#[derive(Debug)]
struct QueueInner {
    buf: VecDeque<Command>,
    closed: bool,
    /// Queue depth the consumer is waiting for. Producers skip the
    /// `not_empty` wakeup below this threshold, so a consumer sleeping
    /// through its gather window is woken once when the batch target is
    /// reached instead of once per push — on a single core every spare
    /// wakeup is a context-switch round-trip charged to the batch.
    wanted: usize,
}

#[derive(Debug)]
struct Shared {
    cap: usize,
    /// Live [`CommandSender`] count; the last one to drop closes the queue.
    senders: AtomicUsize,
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// A poisoned queue lock is still a valid queue (every mutation below
/// keeps the invariants before releasing), so reclaim it instead of
/// propagating the panic into unrelated submitter threads.
fn lock(m: &Mutex<QueueInner>) -> MutexGuard<'_, QueueInner> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn wait<'a>(cv: &Condvar, g: MutexGuard<'a, QueueInner>) -> MutexGuard<'a, QueueInner> {
    match cv.wait(g) {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn wait_for<'a>(
    cv: &Condvar,
    g: MutexGuard<'a, QueueInner>,
    dur: Duration,
) -> MutexGuard<'a, QueueInner> {
    match cv.wait_timeout(g, dur) {
        Ok((g, _)) => g,
        Err(poisoned) => poisoned.into_inner().0,
    }
}

/// Cloneable submission half of the command queue, for handing to
/// producer threads. The queue closes when every sender has dropped.
#[derive(Debug)]
pub struct CommandSender {
    shared: Arc<Shared>,
}

impl Clone for CommandSender {
    fn clone(&self) -> Self {
        // netpack-lint: allow(C2): refcount increment in the style of Arc — only the count matters, and the paired fetch_sub in Drop is AcqRel so the last-drop close is ordered
        self.shared.senders.fetch_add(1, Ordering::Relaxed);
        CommandSender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Drop for CommandSender {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            lock(&self.shared.inner).closed = true;
            self.shared.not_empty.notify_all();
            self.shared.not_full.notify_all();
        }
    }
}

impl CommandSender {
    /// Non-blocking push; gives the command back on a full or closed
    /// queue so the caller can retry, shed, or queue it elsewhere.
    pub fn try_send(&self, cmd: Command) -> Result<(), Command> {
        let mut q = lock(&self.shared.inner);
        if q.closed || q.buf.len() >= self.shared.cap {
            return Err(cmd);
        }
        q.buf.push_back(cmd);
        let ready = q.buf.len() >= q.wanted.min(self.shared.cap);
        drop(q);
        if ready {
            self.shared.not_empty.notify_one();
        }
        Ok(())
    }

    /// Blocking push; returns `false` if the queue has closed.
    pub fn send(&self, cmd: Command) -> bool {
        let mut q = lock(&self.shared.inner);
        while !q.closed && q.buf.len() >= self.shared.cap {
            q = wait(&self.shared.not_full, q);
        }
        if q.closed {
            return false;
        }
        q.buf.push_back(cmd);
        let ready = q.buf.len() >= q.wanted.min(self.shared.cap);
        drop(q);
        if ready {
            self.shared.not_empty.notify_one();
        }
        true
    }

    /// Blocking bulk push: the batched dual of [`send`](Self::send). Moves
    /// as many commands per lock acquisition as the queue has room for,
    /// waiting out backpressure between fills — a producer replaying a
    /// trace pays one lock round-trip per queue's worth instead of one per
    /// command. Returns how many commands were enqueued; short only if the
    /// queue closed mid-stream.
    pub fn send_many<I: IntoIterator<Item = Command>>(&self, cmds: I) -> usize {
        let mut sent = 0usize;
        let mut it = cmds.into_iter().peekable();
        while it.peek().is_some() {
            let mut q = lock(&self.shared.inner);
            while !q.closed && q.buf.len() >= self.shared.cap {
                q = wait(&self.shared.not_full, q);
            }
            if q.closed {
                return sent;
            }
            while q.buf.len() < self.shared.cap {
                match it.next() {
                    Some(cmd) => {
                        q.buf.push_back(cmd);
                        sent += 1;
                    }
                    None => break,
                }
            }
            let ready = q.buf.len() >= q.wanted.min(self.shared.cap);
            drop(q);
            if ready {
                self.shared.not_empty.notify_one();
            }
        }
        sent
    }
}

/// Consuming half; owned by the service thread.
#[derive(Debug)]
struct CommandReceiver {
    shared: Arc<Shared>,
}

impl CommandReceiver {
    /// Block until at least one command is queued (or the queue closes),
    /// then move up to `max` commands into `into` under a single lock.
    /// Returns `false` when the queue is closed and drained — shutdown.
    ///
    /// `gather` is the batching window: once the first command is in,
    /// keep sleeping (up to that long in total) while fewer than `max`
    /// commands are queued, so a slow trickle of submissions coalesces
    /// into one placement pass instead of a pass per wakeup. Without the
    /// window the service thread wakes on every push and runs tiny
    /// batches, paying the per-pass fixed cost (pending sort, knapsack
    /// admission, estimator-tail reconcile) per handful of jobs — the
    /// measured cause of the threaded driver trailing the synchronous
    /// core. Wall-clock here only shapes batch boundaries, never
    /// placement outcomes; deterministic mode bypasses this queue
    /// entirely.
    fn drain_into(&self, into: &mut Vec<Command>, max: usize, gather: Duration) -> bool {
        let mut q = lock(&self.shared.inner);
        while q.buf.is_empty() {
            if q.closed {
                return false;
            }
            q = wait(&self.shared.not_empty, q);
        }
        if q.buf.len() < max && !q.closed && !gather.is_zero() {
            // Raise the producers' notify threshold for the duration of
            // the window: the sleep below then ends on the batch target,
            // the close, or the timeout — not on every push.
            q.wanted = max;
            let started = Stopwatch::start();
            loop {
                let elapsed = started.elapsed();
                if q.buf.len() >= max || q.closed || elapsed >= gather {
                    break;
                }
                q = wait_for(&self.shared.not_empty, q, gather - elapsed);
            }
            q.wanted = 1;
        }
        let take = q.buf.len().min(max);
        into.extend(q.buf.drain(..take));
        drop(q);
        self.shared.not_full.notify_all();
        true
    }
}

fn queue(cap: usize) -> (CommandSender, CommandReceiver) {
    let shared = Arc::new(Shared {
        cap: cap.max(1),
        senders: AtomicUsize::new(1),
        inner: Mutex::new(QueueInner {
            buf: VecDeque::new(),
            closed: false,
            wanted: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        CommandSender {
            shared: Arc::clone(&shared),
        },
        CommandReceiver { shared },
    )
}

/// Handle to a running placement service thread. Cloneable submission is
/// available via [`sender`](PlacementService::sender); the handle itself
/// owns the shutdown path.
#[derive(Debug)]
pub struct PlacementService {
    tx: Option<CommandSender>,
    handle: Option<JoinHandle<ServiceReport>>,
}

impl PlacementService {
    /// Start the service thread over `cluster`. The command queue is
    /// bounded at `config.channel_cap`.
    pub fn spawn(cluster: Cluster, config: ServiceConfig) -> Self {
        let (tx, rx) = queue(config.channel_cap);
        let handle = std::thread::spawn(move || run_loop(cluster, config, rx));
        PlacementService {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    /// A clone of the command sender, for handing to producer threads.
    pub fn sender(&self) -> Option<CommandSender> {
        self.tx.clone()
    }

    /// Submit a job without blocking. On backpressure (queue full) or a
    /// stopped service the job comes back as `Err` so the caller can
    /// retry, shed, or queue it elsewhere.
    pub fn submit(&self, job: Job) -> Result<(), Job> {
        match &self.tx {
            Some(tx) => tx.try_send(Command::Submit(job)).map_err(|cmd| match cmd {
                Command::Submit(j) => j,
                // try_send returns the command we passed in; only Submit
                // goes through this path.
                _ => unreachable!(),
            }),
            None => Err(job),
        }
    }

    /// Send any command, blocking while the queue is full. Returns
    /// `false` if the service has stopped.
    pub fn send(&self, cmd: Command) -> bool {
        match &self.tx {
            Some(tx) => tx.send(cmd),
            None => false,
        }
    }

    /// Bulk [`send`](Self::send): enqueue every command in order, blocking
    /// on backpressure, with one lock acquisition per queue's worth.
    /// Returns how many commands were accepted — all of them unless the
    /// service stopped mid-stream.
    pub fn send_many<I: IntoIterator<Item = Command>>(&self, cmds: I) -> usize {
        match &self.tx {
            Some(tx) => tx.send_many(cmds),
            None => 0,
        }
    }

    /// Ask where a job stands, round-tripping through the service thread
    /// (so the answer reflects every command sent before this call).
    /// `None` if the service has stopped.
    pub fn query(&self, id: JobId) -> Option<JobStatus> {
        let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
        if !self.send(Command::Query(id, Some(reply_tx))) {
            return None;
        }
        reply_rx.recv().ok()
    }

    /// Stop the service: close the queue, let the thread drain and flush
    /// what is pending, and return its final report.
    pub fn shutdown(mut self) -> ServiceReport {
        drop(self.tx.take());
        match self.handle.take() {
            Some(handle) => match handle.join() {
                Ok(report) => report,
                Err(panic) => std::panic::resume_unwind(panic),
            },
            None => ServiceReport::default(),
        }
    }
}

/// The service thread: drain a batch, place, repeat; flush on close. The
/// drain buffer is reused across iterations — the loop allocates nothing
/// per batch.
fn run_loop(cluster: Cluster, config: ServiceConfig, rx: CommandReceiver) -> ServiceReport {
    let gather = config.gather;
    let mut core = ServiceCore::new(cluster, config);
    let mut batch: Vec<Command> = Vec::new();
    loop {
        batch.clear();
        if !rx.drain_into(&mut batch, core.batch_limit().max(1), gather) {
            break;
        }
        for cmd in batch.drain(..) {
            core.apply(cmd);
        }
        let _ = core.place_pass();
    }
    // Queue closed: flush what is still pending. Repeat while passes
    // make progress — a pass can place jobs that earlier passes deferred
    // only if something else freed capacity, so this converges fast.
    while core.pending_len() > 0 && core.place_pass() > 0 {}
    core.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpack_topology::ClusterSpec;
    use netpack_workload::ModelKind;

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec {
            racks: 2,
            servers_per_rack: 4,
            gpus_per_server: 4,
            ..ClusterSpec::paper_default()
        })
    }

    fn job(id: u64, gpus: usize) -> Job {
        Job::builder(JobId(id), ModelKind::Vgg16, gpus).build()
    }

    #[test]
    fn spawn_submit_query_shutdown_round_trip() {
        let svc = PlacementService::spawn(cluster(), ServiceConfig::default());
        for i in 0..8 {
            assert!(svc.send(Command::Submit(job(i, 2))));
        }
        // Query round-trips through the thread, so by the time it answers
        // all prior submits have been applied (though possibly not placed).
        let status = svc.query(JobId(0)).expect("service alive");
        assert_ne!(status, JobStatus::Unknown);
        assert!(svc.send(Command::Complete(JobId(0))));
        let report = svc.shutdown();
        assert_eq!(report.counters.submitted, 8);
        // Every submission is accounted for: placed, retired straight out
        // of the queue by the Complete, or still pending at shutdown.
        assert_eq!(
            report.counters.placed
                + report.counters.completed_pending
                + report.pending_left as u64,
            8
        );
        assert!(report.counters.batches > 0);
    }

    #[test]
    fn shutdown_flushes_the_pending_queue() {
        let svc = PlacementService::spawn(cluster(), ServiceConfig::default());
        for i in 0..4 {
            assert!(svc.send(Command::Submit(job(i, 4))));
        }
        let report = svc.shutdown();
        // 16 GPUs demanded, 32 available: everything must have landed.
        assert_eq!(report.counters.placed, 4);
        assert_eq!(report.pending_left, 0);
        assert_eq!(report.running_left, 4);
    }

    #[test]
    fn submit_reports_backpressure_instead_of_blocking() {
        let cfg = ServiceConfig {
            channel_cap: 1,
            ..ServiceConfig::default()
        };
        let svc = PlacementService::spawn(cluster(), cfg);
        // Slam the bounded queue; at least everything try_send rejects
        // must come back to us, and nothing may be silently dropped.
        let mut accepted = 0u64;
        let mut bounced = 0u64;
        for i in 0..256 {
            match svc.submit(job(i, 1)) {
                Ok(()) => accepted += 1,
                Err(returned) => {
                    assert_eq!(returned.id, JobId(i));
                    bounced += 1;
                }
            }
        }
        let report = svc.shutdown();
        assert_eq!(accepted + bounced, 256);
        assert_eq!(report.counters.submitted + report.counters.rejected, accepted);
    }

    #[test]
    fn send_many_delivers_every_command_through_backpressure() {
        // A 4-slot queue forces send_many to wait out backpressure
        // repeatedly; every command must still arrive, in order.
        let cfg = ServiceConfig {
            channel_cap: 4,
            ..ServiceConfig::default()
        };
        let svc = PlacementService::spawn(cluster(), cfg);
        let sent = svc.send_many((0..64).map(|i| Command::Submit(job(i, 1))));
        assert_eq!(sent, 64);
        let report = svc.shutdown();
        assert_eq!(report.counters.submitted, 64);
    }

    #[test]
    fn cloned_senders_keep_the_queue_open_until_the_last_drop() {
        let svc = PlacementService::spawn(cluster(), ServiceConfig::default());
        let extra = svc.sender().expect("service alive");
        for i in 0..4 {
            assert!(extra.send(Command::Submit(job(i, 2))));
        }
        // Shutdown joins the thread, and the thread only exits once every
        // sender is gone — drop the clone first or the join would wait on
        // it forever.
        drop(extra);
        let report = svc.shutdown();
        assert_eq!(report.counters.submitted, 4);
    }
}
