//! Property tests for the packet-level simulator's conservation laws.

use netpack_packetsim::{
    Addressing, MemoryMode, PacketJobSpec, PacketPath, PacketSim, SwitchConfig,
};
use netpack_topology::JobId;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SwitchConfig> {
    (0usize..2048, any::<bool>(), any::<bool>()).prop_map(|(pool, sync, hash)| SwitchConfig {
        pool_slots: pool,
        mode: if sync {
            MemoryMode::Synchronous
        } else {
            MemoryMode::Statistical
        },
        addressing: if hash {
            Addressing::HashPerPacket
        } else {
            Addressing::JobOffset
        },
        ..SwitchConfig::default()
    })
}

fn arb_jobs() -> impl Strategy<Value = Vec<PacketJobSpec>> {
    proptest::collection::vec(
        (1usize..5, 1u32..40, 0u32..3, any::<bool>()),
        1..4,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (fan_in, grad_dmb, compute_ms, paced))| PacketJobSpec {
                id: JobId(i as u64),
                fan_in,
                gradient_gbits: grad_dmb as f64 / 100.0,
                compute_time_s: compute_ms as f64 * 1e-3,
                iterations: 0,
                start_s: 0.0,
                target_gbps: if paced { Some(10.0) } else { None },
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Goodput can never exceed the link rate, aggregated+fallback groups
    /// are consistent with goodput, and reruns are deterministic.
    #[test]
    fn conservation_and_determinism((config, jobs) in (arb_config(), arb_jobs())) {
        let run = || {
            let mut sim = PacketSim::new(config.clone());
            for j in &jobs {
                sim.add_job(j.clone());
            }
            sim.run(0.02)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b, "packet sim must be deterministic");
        for s in &a.per_job {
            let gbps = s.mean_goodput_gbps(a.duration_s);
            prop_assert!(gbps <= config.link_gbps + 1e-6, "goodput {gbps} over link rate");
            // Acked payload can never exceed what was sent.
            let sent_bits = (s.aggregated_groups + s.fallback_groups) as f64
                * config.payload_bytes as f64 * 8.0;
            prop_assert!(s.goodput_bits <= sent_bits + 1e-6);
            let ratio = s.aggregation_ratio();
            prop_assert!((0.0..=1.0).contains(&ratio));
        }
    }

    /// In synchronous mode nothing ever falls back; in statistical mode a
    /// zero pool aggregates nothing.
    #[test]
    fn mode_invariants((pool, jobs) in (0usize..512, arb_jobs())) {
        let mut sync = PacketSim::new(SwitchConfig {
            pool_slots: pool,
            mode: MemoryMode::Synchronous,
            ..SwitchConfig::default()
        });
        let mut zero = PacketSim::new(SwitchConfig {
            pool_slots: 0,
            ..SwitchConfig::default()
        });
        for j in &jobs {
            sync.add_job(j.clone());
            zero.add_job(j.clone());
        }
        for s in &sync.run(0.02).per_job {
            prop_assert_eq!(s.fallback_groups, 0, "synchronous INA never falls back");
        }
        for s in &zero.run(0.02).per_job {
            prop_assert_eq!(s.aggregated_groups, 0, "no memory, no aggregation");
        }
    }

    /// The PAT law upper-bounds aggregation throughput: aggregated groups
    /// per round can never exceed the pool size.
    #[test]
    fn pat_upper_bound((pool, jobs) in (1usize..256, arb_jobs())) {
        let mut sim = PacketSim::new(SwitchConfig {
            pool_slots: pool,
            ..SwitchConfig::default()
        });
        for j in &jobs {
            sim.add_job(j.clone());
        }
        let report = sim.run(0.02);
        let total_aggregated: u64 = report.per_job.iter().map(|s| s.aggregated_groups).sum();
        prop_assert!(
            total_aggregated <= pool as u64 * report.rounds,
            "aggregated {total_aggregated} exceeds pool x rounds"
        );
    }
}

/// Richer job mix for the cross-path pin: bounded iterations, staggered
/// starts, and pacing rates that land under, at, and over the link rate
/// (120 Gbps > the 100 Gbps link exercises the BDP window cap).
fn arb_rich_jobs() -> impl Strategy<Value = Vec<PacketJobSpec>> {
    proptest::collection::vec(
        (1usize..5, 1u32..40, 0u32..4, 0u32..4, 0u32..30, 0usize..4),
        1..5,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(
                |(i, (fan_in, grad_dmb, compute_ms, iterations, start_ms, rate_pick))| {
                    PacketJobSpec {
                        id: JobId(i as u64),
                        fan_in,
                        gradient_gbits: grad_dmb as f64 / 100.0,
                        compute_time_s: compute_ms as f64 * 1e-3,
                        iterations: iterations as u64,
                        start_s: start_ms as f64 * 1e-3,
                        target_gbps: [None, Some(10.0), Some(25.0), Some(120.0)][rate_pick],
                    }
                },
            )
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fast path (interval collision counting + round batching) is
    /// bit-identical to the literal per-packet scratch loop across random
    /// pools, fan-ins, rate caps, iteration counts, and staggered starts —
    /// the packetsim analogue of flowsim's incremental-vs-scratch pin.
    #[test]
    fn fast_path_is_bit_identical_to_scratch(
        (config, jobs) in (arb_config(), arb_rich_jobs())
    ) {
        let run = |path| {
            let mut sim = PacketSim::new(SwitchConfig { path, ..config.clone() });
            for j in &jobs {
                sim.add_job(j.clone());
            }
            sim.run(0.03)
        };
        let fast = run(PacketPath::Fast);
        let scratch = run(PacketPath::Scratch);
        prop_assert_eq!(&fast, &scratch, "NETPACK_PKT=fast diverged from scratch");
        for (f, s) in fast.per_job.iter().zip(&scratch.per_job) {
            // PartialEq on the report already covers these, but compare the
            // float fields for *bit* equality, not just numeric equality.
            prop_assert_eq!(f.goodput_bits.to_bits(), s.goodput_bits.to_bits());
            prop_assert_eq!(f.goodput_series.len(), s.goodput_series.len());
            for (a, b) in f.goodput_series.iter().zip(&s.goodput_series) {
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
    }
}
