//! Seeded determinism: the packet simulator is a pure function of
//! `(SwitchConfig, jobs, seed)`.

use netpack_packetsim::{
    Addressing, MemoryMode, PacketJobSpec, PacketPath, PacketSim, SwitchConfig,
};
use netpack_topology::JobId;

fn jobs() -> Vec<PacketJobSpec> {
    vec![
        PacketJobSpec {
            id: JobId(0),
            fan_in: 2,
            gradient_gbits: 0.5,
            compute_time_s: 0.0,
            iterations: 0,
            start_s: 0.0,
            target_gbps: Some(10.0),
        },
        PacketJobSpec {
            id: JobId(1),
            fan_in: 4,
            gradient_gbits: 0.2,
            compute_time_s: 0.002,
            iterations: 3,
            start_s: 0.01,
            target_gbps: None,
        },
        PacketJobSpec {
            id: JobId(2),
            fan_in: 3,
            gradient_gbits: 0.1,
            compute_time_s: 0.001,
            iterations: 0,
            start_s: 0.0,
            target_gbps: Some(25.0),
        },
    ]
}

fn run(config: &SwitchConfig, seed: u64) -> netpack_packetsim::PacketSimReport {
    let mut sim = PacketSim::with_seed(config.clone(), seed);
    for j in jobs() {
        sim.add_job(j);
    }
    sim.run(0.06)
}

/// Two fresh simulators with the same config, job set, and seed produce
/// byte-identical reports — across both addressing modes, both memory
/// modes, and both simulation paths.
#[test]
fn same_seed_same_report_across_all_modes() {
    for mode in [MemoryMode::Statistical, MemoryMode::Synchronous] {
        for addressing in [Addressing::JobOffset, Addressing::HashPerPacket] {
            for path in [PacketPath::Fast, PacketPath::Scratch] {
                let config = SwitchConfig {
                    pool_slots: 256,
                    mode,
                    addressing,
                    path,
                    ..SwitchConfig::default()
                };
                let a = run(&config, 7);
                let b = run(&config, 7);
                assert_eq!(
                    a, b,
                    "{mode:?}/{addressing:?}/{path:?}: same seed must reproduce"
                );
                // Bit-level check on the float fields, beyond PartialEq.
                for (x, y) in a.per_job.iter().zip(&b.per_job) {
                    assert_eq!(x.goodput_bits.to_bits(), y.goodput_bits.to_bits());
                    for (p, q) in x.goodput_series.iter().zip(&y.goodput_series) {
                        assert_eq!(p.0.to_bits(), q.0.to_bits());
                        assert_eq!(p.1.to_bits(), q.1.to_bits());
                    }
                }
            }
        }
    }
}

/// Different seeds lay slot bases out differently, which shows up once
/// the pool is contended — but each layout is itself deterministic.
#[test]
fn distinct_seeds_are_deterministic_layouts() {
    let config = SwitchConfig {
        pool_slots: 64,
        ..SwitchConfig::default()
    };
    let a7 = run(&config, 7);
    let a7_again = run(&config, 7);
    let a11 = run(&config, 11);
    assert_eq!(a7, a7_again);
    let a11_again = run(&config, 11);
    assert_eq!(a11, a11_again);
}

/// `PacketSim::new` equals `with_seed` at the default; seed 0 (the
/// xorshift fixed point) is remapped onto the default seed.
#[test]
fn new_matches_default_seed_and_zero_is_remapped() {
    let config = SwitchConfig {
        pool_slots: 256,
        ..SwitchConfig::default()
    };
    let via_new = {
        let mut sim = PacketSim::new(config.clone());
        for j in jobs() {
            sim.add_job(j);
        }
        sim.run(0.06)
    };
    let via_default_seed = run(&config, 0x9E3779B97F4A7C15);
    let via_zero = run(&config, 0);
    assert_eq!(via_new, via_default_seed);
    assert_eq!(via_new, via_zero);
}
