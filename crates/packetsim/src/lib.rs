#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Packet-level statistical-INA switch simulator — the testbed stand-in.
//!
//! The paper's testbed (§6.1) is five GPU servers behind a Tofino switch
//! running ATP-style statistical INA. Its role in the evaluation is to
//! validate the PAT abstraction (Fig. 14), the water-filling estimates
//! (Fig. 15), the flow-level simulator itself (Fig. 6), and to produce
//! small-scale JCT numbers. All of those depend on the *statistical
//! multiplexing semantics* of switch memory, which this crate reproduces
//! at packet granularity:
//!
//! * the switch keeps a shared pool of aggregator slots;
//! * a packet addresses `Hash(JobID, PSN)`; the first packet of a
//!   `(job, PSN)` group reserves the slot, the completed aggregate is
//!   multicast back and the slot is released within the same RTT;
//! * a packet that collides with a busy slot *falls back* to the PS
//!   unaggregated;
//! * senders run windowed AIMD, so jobs converge to max-min shares;
//! * jobs alternate compute and communicate phases, releasing all switch
//!   memory while computing (the effect behind the paper's Fig. 14b note).
//!
//! The synchronous mode (SwitchML-style fixed memory regions, released
//! "one window away") is also implemented for the Fig. 2 motivation
//! comparison.
//!
//! The round loop has a fast path (interval-overlap collision counting
//! plus steady-state round batching) selected by [`PacketPath`] /
//! `NETPACK_PKT`; see the [`sim`](self) module docs and DESIGN.md §3.8.
//! Both paths produce bit-identical [`PacketSimReport`]s, and the
//! report's `perf` block records how much work each path actually did.
//!
//! # Example
//!
//! ```
//! use netpack_packetsim::{PacketSim, SwitchConfig, PacketJobSpec, MemoryMode};
//! use netpack_topology::JobId;
//!
//! let mut sim = PacketSim::new(SwitchConfig::default());
//! sim.add_job(PacketJobSpec {
//!     id: JobId(0),
//!     fan_in: 2,
//!     gradient_gbits: 0.4,
//!     compute_time_s: 0.0,
//!     iterations: 0,       // stream forever
//!     start_s: 0.0,
//!     target_gbps: Some(10.0),
//! });
//! let report = sim.run(0.05);
//! let stats = &report.per_job[0];
//! // With the default generous pool, nearly everything aggregates.
//! assert!(stats.aggregation_ratio() > 0.95);
//! ```

mod hierarchy;
mod sim;
mod stats;

pub use hierarchy::{run_hierarchy, slots_to_pat_gbps, HierarchyReport, HierarchySpec};
pub use sim::{Addressing, MemoryMode, PacketJobSpec, PacketPath, PacketSim, SwitchConfig};
pub use stats::{JobStats, PacketSimReport};
