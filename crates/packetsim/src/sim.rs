//! The per-RTT packet simulation loop.
//!
//! # Fast path
//!
//! [`PacketSim::run`] has two implementations selected by
//! [`SwitchConfig::path`] (env toggle `NETPACK_PKT=fast|scratch`,
//! mirroring the flow simulator's `NETPACK_SIM`):
//!
//! - **Collision counting** — with [`Addressing::JobOffset`] a job's
//!   round window is a contiguous arc `[base + psn, base + psn + window)`
//!   on the slot ring, so the per-packet `slot_owner` stamping collapses
//!   to interval-overlap arithmetic: a job aggregates exactly the slots of
//!   its arc not already claimed by jobs processed earlier in the round
//!   ([`RingOccupancy`]), O(jobs²) per round instead of O(Σ window).
//!   [`Addressing::HashPerPacket`] keeps the exact per-packet loop (each
//!   PSN hashes to an unrelated slot, so there is no arc structure to
//!   exploit) but still reuses the epoch-stamped table without clearing.
//! - **Round batching** — when no job can change phase, finish an
//!   iteration, or cross a goodput bucket within the next K rounds, and
//!   every sender's window and collision outcome are round-invariant
//!   (see [`PacketSim::try_batch`]), all counters advance K rounds at
//!   once. Integer counters multiply exactly; the two float goodput
//!   accumulators go through [`add_cycle`], which proves the repeated
//!   additions exact (integral partial sums below 2⁵³) before replacing
//!   them with a closed form, so the fast path stays *bit-identical* to
//!   the scratch loop — pinned by the `fast_path_is_bit_identical_to_scratch`
//!   property test and the `scripts/check.sh` fig14 two-mode gate.
//!
//! [`PacketSimReport::perf`] records the work: `rounds_simulated`,
//! `rounds_stepped`, `rounds_batched`, `batches`, `packets_modeled`,
//! `packets_touched` counters and a `run` wall-clock timer.

use crate::{JobStats, PacketSimReport};
use netpack_metrics::PerfCounters;
use netpack_topology::JobId;
use netpack_metrics::Stopwatch;

/// How the switch memory is multiplexed (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryMode {
    /// Statistical multiplexing (ATP-style): a shared aggregator pool,
    /// transient per-RTT reservation, fallback to the PS on collision.
    #[default]
    Statistical,
    /// Synchronous multiplexing (SwitchML-style): the pool is split into
    /// fixed per-job regions reserved for the job's lifetime; a job's
    /// in-flight window can never exceed its region, and a zero-size
    /// region halts the job.
    Synchronous,
}

/// How a `(job, PSN)` group is addressed to an aggregator slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Addressing {
    /// `index = base(job) + PSN (mod pool)`: sequential per job, so a job
    /// never collides with itself (ATP's streaming behaviour; default).
    #[default]
    JobOffset,
    /// `index = Hash(job, PSN) (mod pool)`: independent uniform hashing,
    /// which adds birthday-problem self-collisions.
    HashPerPacket,
}

/// Which implementation [`PacketSim::run`] uses. Both produce
/// bit-identical [`PacketSimReport`]s; `Scratch` exists as the reference
/// for equivalence tests and before/after benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PacketPath {
    /// Interval-overlap collision counting plus steady-state round
    /// batching (the fast default).
    #[default]
    Fast,
    /// The literal per-packet slot-stamping loop, one round at a time.
    Scratch,
}

impl PacketPath {
    /// Read the path from the `NETPACK_PKT` environment variable:
    /// `scratch` selects [`PacketPath::Scratch`], anything else (or
    /// unset) selects [`PacketPath::Fast`].
    pub fn from_env() -> Self {
        match std::env::var("NETPACK_PKT").as_deref() {
            Ok("scratch") => PacketPath::Scratch,
            _ => PacketPath::Fast,
        }
    }
}

/// Switch and link configuration for the packet simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchConfig {
    /// Aggregator slots in the switch memory pool.
    pub pool_slots: usize,
    /// Memory multiplexing mode.
    pub mode: MemoryMode,
    /// Slot addressing scheme.
    pub addressing: Addressing,
    /// Packet payload in bytes.
    pub payload_bytes: usize,
    /// Round-trip time in microseconds (one simulation round).
    pub rtt_us: f64,
    /// Capacity of each worker/PS access link, in Gbps.
    pub link_gbps: f64,
    /// Simulation implementation (default: `NETPACK_PKT` env, falling
    /// back to the fast path).
    pub path: PacketPath,
}

impl SwitchConfig {
    /// Packets of payload that fit one link-RTT (the per-flow BDP).
    pub fn bdp_pkts(&self) -> usize {
        let bits = self.link_gbps * 1e9 * self.rtt_us * 1e-6;
        (bits / (self.payload_bytes as f64 * 8.0)).floor().max(1.0) as usize
    }

    /// Packets per round corresponding to a pacing rate in Gbps.
    pub fn rate_to_pkts(&self, gbps: f64) -> usize {
        let bits = gbps * 1e9 * self.rtt_us * 1e-6;
        (bits / (self.payload_bytes as f64 * 8.0)).round().max(0.0) as usize
    }

    /// The pool's Peak Aggregation Throughput in Gbps: `M / RTT` (§4.1).
    pub fn pat_gbps(&self) -> f64 {
        self.pool_slots as f64 * self.payload_bytes as f64 * 8.0 / (self.rtt_us * 1e-6) / 1e9
    }

    /// `(job, PSN)` packet groups in one gradient of `gbits` gigabits —
    /// the single home of the ceil-of-gigabits formula used both at job
    /// registration and at iteration reset.
    pub fn gradient_groups(&self, gbits: f64) -> u64 {
        (gbits * 1e9 / (self.payload_bytes as f64 * 8.0))
            .ceil()
            .max(1.0) as u64
    }
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            pool_slots: 4096,
            mode: MemoryMode::default(),
            addressing: Addressing::default(),
            payload_bytes: 1024,
            rtt_us: 50.0,
            link_gbps: 100.0,
            path: PacketPath::from_env(),
        }
    }
}

/// One training job as the packet simulator sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketJobSpec {
    /// The job.
    pub id: JobId,
    /// Number of workers streaming into the switch.
    pub fan_in: usize,
    /// Gradient volume per worker per iteration, in gigabits.
    pub gradient_gbits: f64,
    /// Computation time per iteration, in seconds (0 = stream
    /// continuously, as the Fig. 14 microbenchmarks do).
    pub compute_time_s: f64,
    /// Iterations to run; 0 = unbounded (run for the whole simulation).
    pub iterations: u64,
    /// When the job starts, in seconds.
    pub start_s: f64,
    /// Fixed pacing rate in Gbps (as in Fig. 14's 10 Gbps jobs); `None`
    /// enables AIMD congestion control.
    pub target_gbps: Option<f64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Waiting,
    Computing { rounds_left: u64 },
    Communicating,
    Finished,
}

#[derive(Debug, Clone)]
struct JobState {
    spec: PacketJobSpec,
    phase: Phase,
    cwnd: f64,
    next_psn: u64,
    /// Packet groups left in the current iteration's gradient.
    remaining_groups: u64,
    iterations_done: u64,
    /// Slot base for `Addressing::JobOffset`.
    base: usize,
    /// Fixed region `(offset, size)` in synchronous mode.
    region: (usize, usize),
    stats: JobStats,
    goodput_bucket_bits: f64,
}

/// Sorted, disjoint, half-open occupied intervals over the slot ring —
/// the fast path's replacement for per-packet `slot_owner` stamping.
///
/// A [`Addressing::JobOffset`] window is a contiguous arc on the ring, so
/// per-round contention reduces to: claim each arc in processing order,
/// counting how many of its slots were still free. Arcs longer than the
/// pool are clamped first (the extra packets revisit slots and always
/// fall back, exactly as the stamping loop behaves).
#[derive(Debug, Default)]
struct RingOccupancy {
    segs: Vec<(usize, usize)>,
}

impl RingOccupancy {
    fn clear(&mut self) {
        self.segs.clear();
    }

    /// Claim the arc of `len` (`<= pool`) slots starting at `start`,
    /// returning how many were previously free.
    fn claim_arc(&mut self, start: usize, len: usize, pool: usize) -> usize {
        debug_assert!(len <= pool && start < pool.max(1));
        if len == 0 {
            return 0;
        }
        let end = start + len;
        if end <= pool {
            self.claim_segment(start, end)
        } else {
            self.claim_segment(start, pool) + self.claim_segment(0, end - pool)
        }
    }

    /// Claim the linear segment `[lo, hi)`, returning its free-slot count.
    fn claim_segment(&mut self, lo: usize, hi: usize) -> usize {
        let mut covered = 0;
        let mut i = 0;
        while i < self.segs.len() && self.segs[i].1 < lo {
            i += 1;
        }
        let mut j = i;
        let mut new_lo = lo;
        let mut new_hi = hi;
        while j < self.segs.len() && self.segs[j].0 <= hi {
            let (a, b) = self.segs[j];
            covered += hi.min(b).saturating_sub(lo.max(a));
            new_lo = new_lo.min(a);
            new_hi = new_hi.max(b);
            j += 1;
        }
        self.segs.splice(i..j, std::iter::once((new_lo, new_hi)));
        hi - lo - covered
    }
}

/// Work counters accumulated by the hot loop (folded into
/// [`PerfCounters`] once per run, so the loop never touches a map).
#[derive(Debug, Default, Clone, Copy)]
struct PerfAcc {
    rounds_stepped: u64,
    rounds_batched: u64,
    batches: u64,
    packets_modeled: u64,
    packets_touched: u64,
}

/// One sender's per-round transmission outcome, as observed over one
/// rotation period by the batcher.
#[derive(Debug, Clone, Copy)]
struct RoundOutcome {
    aggregated: u64,
    fallback: u64,
    acked: f64,
    acked_whole: u64,
}

/// Accumulate `k` rounds of the cyclic per-round increments `vals` onto
/// `acc`, bit-identical to adding them one round at a time.
///
/// When `acc` and every increment are non-negative integers and the grand
/// total stays at or below 2⁵³, every partial sum is an exactly
/// representable integer, so each float addition is exact and the whole
/// sequence equals the closed form. Otherwise the addition sequence is
/// replayed literally — still O(k), but k float additions, not k windows
/// of packet work.
fn add_cycle(acc: f64, vals: &[f64], k: u64) -> f64 {
    const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    let period = vals.len() as u64;
    debug_assert!(period > 0 && k.is_multiple_of(period));
    if acc >= 0.0 && acc.fract() == 0.0 && vals.iter().all(|v| *v >= 0.0 && v.fract() == 0.0) {
        let total = acc + vals.iter().sum::<f64>() * (k / period) as f64;
        if total <= MAX_EXACT {
            return total;
        }
    }
    let mut a = acc;
    for t in 0..k {
        a += vals[(t % period) as usize];
    }
    a
}

/// The packet-level simulator: one statistical-INA (or synchronous-INA)
/// switch, its aggregator pool, and a set of iterative training jobs.
#[derive(Debug, Clone)]
pub struct PacketSim {
    config: SwitchConfig,
    jobs: Vec<JobState>,
    /// Slot reservation table for the current round: stamped with the
    /// round number to avoid clearing each round. Used by the scratch
    /// path and by `HashPerPacket` addressing on either path.
    slot_owner: Vec<u64>,
    round: u64,
    rng: u64,
}

/// The default xorshift seed for [`PacketSim::new`].
const DEFAULT_SEED: u64 = 0x9E3779B97F4A7C15;

impl PacketSim {
    /// A simulator over the given switch.
    pub fn new(config: SwitchConfig) -> Self {
        Self::with_seed(config, DEFAULT_SEED)
    }

    /// A simulator whose slot-base RNG starts from `seed`, so runs are
    /// reproducible per seed and distinct seeds give distinct
    /// (deterministic) slot-base layouts. A zero seed is replaced by the
    /// default (xorshift has a zero fixed point).
    pub fn with_seed(config: SwitchConfig, seed: u64) -> Self {
        let slots = config.pool_slots;
        PacketSim {
            config,
            jobs: Vec::new(),
            slot_owner: vec![0; slots.max(1)],
            round: 0,
            rng: if seed == 0 { DEFAULT_SEED } else { seed },
        }
    }

    /// The switch configuration.
    pub fn config(&self) -> &SwitchConfig {
        &self.config
    }

    /// Register a job.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in` is zero or the gradient is non-positive.
    pub fn add_job(&mut self, spec: PacketJobSpec) {
        assert!(spec.fan_in >= 1, "job needs at least one worker");
        assert!(
            spec.gradient_gbits > 0.0 && spec.gradient_gbits.is_finite(),
            "gradient must be positive"
        );
        let base = self.next_rand() as usize % self.config.pool_slots.max(1);
        let gradient_groups = self.config.gradient_groups(spec.gradient_gbits);
        self.jobs.push(JobState {
            stats: JobStats {
                id: spec.id,
                aggregated_groups: 0,
                fallback_groups: 0,
                goodput_bits: 0.0,
                iterations_done: 0,
                finish_s: None,
                goodput_series: Vec::new(),
            },
            phase: Phase::Waiting,
            cwnd: 1.0,
            next_psn: 0,
            remaining_groups: gradient_groups,
            iterations_done: 0,
            base,
            region: (0, 0),
            spec,
            goodput_bucket_bits: 0.0,
        });
    }

    fn next_rand(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng
    }

    /// Run the simulation for `duration_s` seconds (rounded down to whole
    /// RTT rounds) and return per-job statistics. Goodput is sampled into
    /// 100 buckets across the duration.
    pub fn run(&mut self, duration_s: f64) -> PacketSimReport {
        assert!(duration_s > 0.0, "duration must be positive");
        let start = Stopwatch::start();
        let rtt_s = self.config.rtt_us * 1e-6;
        let rounds = (duration_s / rtt_s).floor().max(1.0) as u64;
        let bucket_rounds = (rounds / 100).max(1);

        // Synchronous mode: carve fixed regions once, evenly.
        if self.config.mode == MemoryMode::Synchronous && !self.jobs.is_empty() {
            let region = self.config.pool_slots / self.jobs.len();
            for (i, job) in self.jobs.iter_mut().enumerate() {
                job.region = (i * region, region);
            }
        }

        let bdp = self.config.bdp_pkts();
        let payload_bits = self.config.payload_bytes as f64 * 8.0;
        let n_jobs = self.jobs.len().max(1);
        let fast = self.config.path == PacketPath::Fast;
        let mut ring = RingOccupancy::default();
        let mut acc = PerfAcc::default();

        let mut local_round = 0u64;
        let mut last_flush = 0u64;
        while local_round < rounds {
            let batched = if fast {
                self.try_batch(
                    local_round,
                    rounds,
                    bucket_rounds,
                    bdp,
                    payload_bits,
                    rtt_s,
                    &mut ring,
                    &mut acc,
                )
            } else {
                0
            };
            if batched > 0 {
                local_round += batched;
            } else {
                self.round += 1;
                let round = self.round;
                let now_s = round as f64 * rtt_s;

                // Phase transitions.
                for job in self.jobs.iter_mut() {
                    match job.phase {
                        Phase::Waiting if job.spec.start_s <= now_s => {
                            job.phase = Phase::Communicating;
                        }
                        Phase::Computing { rounds_left } => {
                            if rounds_left <= 1 {
                                job.phase = Phase::Communicating;
                            } else {
                                job.phase = Phase::Computing {
                                    rounds_left: rounds_left - 1,
                                };
                            }
                        }
                        _ => {}
                    }
                }

                // Transmit: rotate the processing order every round so pool
                // contention is FCFS-fair over time.
                let rotation = (round as usize) % n_jobs;
                ring.clear();
                for k in 0..self.jobs.len() {
                    let ji = (k + rotation) % self.jobs.len();
                    self.step_job(ji, round, bdp, payload_bits, rtt_s, now_s, fast, &mut ring, &mut acc);
                }
                local_round += 1;
                acc.rounds_stepped += 1;
            }

            // Goodput sampling. A batch never crosses a bucket boundary,
            // so at most one flush is due here; the bucket's span is the
            // rounds it actually covers (the final bucket can be short).
            if local_round.is_multiple_of(bucket_rounds) || local_round == rounds {
                let span_s = (local_round - last_flush) as f64 * rtt_s;
                last_flush = local_round;
                let now_s = self.round as f64 * rtt_s;
                for job in self.jobs.iter_mut() {
                    let gbps = job.goodput_bucket_bits / span_s / 1e9;
                    job.stats.goodput_series.push((now_s, gbps));
                    job.goodput_bucket_bits = 0.0;
                }
            }
        }

        let mut perf = PerfCounters::new();
        perf.incr("rounds_simulated", rounds);
        perf.incr("rounds_stepped", acc.rounds_stepped);
        perf.incr("rounds_batched", acc.rounds_batched);
        perf.incr("batches", acc.batches);
        perf.incr("packets_modeled", acc.packets_modeled);
        perf.incr("packets_touched", acc.packets_touched);
        perf.record("run", start.elapsed());

        PacketSimReport {
            per_job: self
                .jobs
                .iter()
                .map(|j| {
                    let mut s = j.stats.clone();
                    s.iterations_done = j.iterations_done;
                    s
                })
                .collect(),
            rounds,
            duration_s: rounds as f64 * rtt_s,
            perf,
        }
    }

    /// The window a communicating job would send this round *before* the
    /// remaining-groups cap: `min(pacing, BDP)` and, in synchronous mode,
    /// the job's fixed region.
    fn free_window(&self, job: &JobState, bdp: usize) -> Option<usize> {
        let rate_window = match job.spec.target_gbps {
            Some(rate) => self.config.rate_to_pkts(rate),
            None => job.cwnd.floor() as usize,
        };
        let mut w = rate_window.min(bdp);
        if self.config.mode == MemoryMode::Synchronous {
            w = w.min(job.region.1);
        }
        (w > 0).then_some(w)
    }

    /// Try to advance many rounds at once. Returns the number of rounds
    /// batched (0 = not batchable right now; the caller steps one exact
    /// round instead).
    ///
    /// A batch of K rounds is sound — bit-identical to K exact rounds —
    /// when, over the whole span:
    ///
    /// 1. no phase transition fires: no waiting job's start time is
    ///    reached, every computing job has more than K rounds left, and
    ///    no sender's iteration can end (its `remaining_groups` stays
    ///    strictly above its window);
    /// 2. no goodput bucket boundary is crossed (K is clamped to the next
    ///    flush);
    /// 3. every sender's window is round-invariant: paced, or AIMD pinned
    ///    at the BDP with an uncongested PS link (`delivered <= cap`, so
    ///    `cwnd` is a fixed point of the additive increase);
    /// 4. the collision outcome is round-invariant up to the processing
    ///    rotation: the pool is irrelevant (synchronous, empty pool, or
    ///    no senders), or all `JobOffset` arcs shift by the same amount
    ///    per round (equal `window % pool`), making overlaps
    ///    translation-invariant. The outcome then cycles with period
    ///    `n_jobs` (the rotation period), which K is a multiple of.
    ///    `HashPerPacket` slots depend on the PSN value itself — no
    ///    translation invariance — so it never batches.
    #[allow(clippy::too_many_arguments)]
    fn try_batch(
        &mut self,
        local_round: u64,
        rounds: u64,
        bucket_rounds: u64,
        bdp: usize,
        payload_bits: f64,
        rtt_s: f64,
        ring: &mut RingOccupancy,
        acc: &mut PerfAcc,
    ) -> u64 {
        let pool = self.config.pool_slots;
        let mode = self.config.mode;
        let n_jobs = self.jobs.len().max(1);

        // Horizon bounds that do not depend on transmission outcomes.
        let mut kmax = (bucket_rounds - local_round % bucket_rounds).min(rounds - local_round);
        let mut senders: Vec<(usize, usize)> = Vec::new(); // (job index, window)
        for (ji, job) in self.jobs.iter().enumerate() {
            match job.phase {
                Phase::Finished => {}
                Phase::Waiting => {
                    // Largest k with start_s > (round + k) * rtt_s, probed
                    // with the scratch loop's own float predicate.
                    let est = ((job.spec.start_s / rtt_s) - self.round as f64).floor();
                    let mut k = if est <= 0.0 { 0 } else { (est as u64).saturating_add(2) }
                        .min(kmax);
                    while k > 0 && job.spec.start_s <= (self.round + k) as f64 * rtt_s {
                        k -= 1;
                    }
                    kmax = kmax.min(k);
                }
                Phase::Computing { rounds_left } => kmax = kmax.min(rounds_left - 1),
                Phase::Communicating => {
                    let Some(w) = self.free_window(job, bdp) else {
                        continue; // sends nothing every round: a no-op
                    };
                    if job.spec.target_gbps.is_none() && job.cwnd != bdp as f64 {
                        return 0; // AIMD still ramping or backing off
                    }
                    if job.remaining_groups <= w as u64 {
                        return 0; // iteration boundary is near
                    }
                    senders.push((ji, w));
                }
            }
        }
        if kmax < 2 {
            return 0;
        }

        // Collision-outcome invariance (condition 4).
        let contended = mode == MemoryMode::Statistical && pool > 0 && !senders.is_empty();
        if contended {
            if self.config.addressing == Addressing::HashPerPacket {
                return 0;
            }
            let shift = senders[0].1 % pool;
            if senders.iter().any(|&(_, w)| w % pool != shift) {
                return 0;
            }
        }
        let period = if contended && senders.len() > 1 {
            n_jobs as u64
        } else {
            1
        };

        // One rotation period of outcomes. Arc positions are taken at the
        // current PSNs: later rounds shift every arc uniformly, which
        // preserves all overlaps, so only the rotation varies.
        let mut outcomes: Vec<Vec<RoundOutcome>> = vec![Vec::new(); senders.len()];
        for p in 0..period {
            let rotation = ((self.round + 1 + p) as usize) % n_jobs;
            ring.clear();
            for k in 0..self.jobs.len() {
                let ji = (k + rotation) % self.jobs.len();
                let Some(si) = senders.iter().position(|&(sj, _)| sj == ji) else {
                    continue;
                };
                let (_, w) = senders[si];
                let job = &self.jobs[ji];
                let (aggregated, fallback) = match mode {
                    MemoryMode::Synchronous => (w as u64, 0),
                    MemoryMode::Statistical if pool == 0 => (0, w as u64),
                    MemoryMode::Statistical => {
                        let s0 = (job.base + job.next_psn as usize) % pool;
                        let a = ring.claim_arc(s0, w.min(pool), pool) as u64;
                        (a, w as u64 - a)
                    }
                };
                let delivered = aggregated + fallback * job.spec.fan_in as u64;
                let cap = bdp as u64;
                if job.spec.target_gbps.is_none() && delivered > cap {
                    return 0; // cwnd would decrease: not steady
                }
                let sent = (aggregated + fallback) as f64;
                let acked = if delivered <= cap {
                    sent
                } else {
                    sent * cap as f64 / delivered as f64
                };
                outcomes[si].push(RoundOutcome {
                    aggregated,
                    fallback,
                    acked,
                    acked_whole: acked.floor() as u64,
                });
            }
        }

        // Iteration-end bound (condition 1): keep every sender's
        // remaining_groups strictly above its window throughout.
        for (si, &(ji, w)) in senders.iter().enumerate() {
            let maxdec = outcomes[si].iter().map(|o| o.acked_whole).max().unwrap_or(0);
            let headroom = self.jobs[ji].remaining_groups - w as u64 - 1;
            if let Some(k) = headroom.checked_div(maxdec) {
                kmax = kmax.min(k + 1);
            }
        }
        let k_total = (kmax / period) * period;
        if k_total < 2 {
            return 0;
        }

        // Apply K rounds at once.
        self.round += k_total;
        for job in self.jobs.iter_mut() {
            if let Phase::Computing { rounds_left } = job.phase {
                job.phase = Phase::Computing {
                    rounds_left: rounds_left - k_total,
                };
            }
        }
        let m = k_total / period;
        for (si, &(ji, w)) in senders.iter().enumerate() {
            let job = &mut self.jobs[ji];
            let os = &outcomes[si];
            let agg_sum: u64 = os.iter().map(|o| o.aggregated).sum();
            let fall_sum: u64 = os.iter().map(|o| o.fallback).sum();
            let dec_sum: u64 = os.iter().map(|o| o.acked_whole).sum();
            job.stats.aggregated_groups += m * agg_sum;
            job.stats.fallback_groups += m * fall_sum;
            job.next_psn += k_total * w as u64;
            job.remaining_groups -= m * dec_sum;
            // AIMD senders hold cwnd == BDP with delivered <= cap in every
            // sub-round, so the additive increase is a no-op; paced
            // senders never touch cwnd.
            let vals: Vec<f64> = os.iter().map(|o| o.acked * payload_bits).collect();
            job.goodput_bucket_bits = add_cycle(job.goodput_bucket_bits, &vals, k_total);
            job.stats.goodput_bits = add_cycle(job.stats.goodput_bits, &vals, k_total);
            acc.packets_modeled += k_total * w as u64;
        }
        acc.rounds_batched += k_total;
        acc.batches += 1;
        k_total
    }

    /// One job's transmissions for one round.
    #[allow(clippy::too_many_arguments)]
    fn step_job(
        &mut self,
        ji: usize,
        round: u64,
        bdp: usize,
        payload_bits: f64,
        rtt_s: f64,
        now_s: f64,
        fast: bool,
        ring: &mut RingOccupancy,
        acc: &mut PerfAcc,
    ) {
        let pool = self.config.pool_slots;
        let mode = self.config.mode;
        let addressing = self.config.addressing;
        let job = &mut self.jobs[ji];
        if job.phase != Phase::Communicating {
            return;
        }
        // Window for this round.
        let mut window = match job.spec.target_gbps {
            Some(rate) => self.config.rate_to_pkts(rate),
            None => job.cwnd.floor() as usize,
        };
        window = window.min(bdp).min(job.remaining_groups as usize);
        if mode == MemoryMode::Synchronous {
            window = window.min(job.region.1);
            if window == 0 {
                return; // zero memory halts a synchronous job (§2.2)
            }
        }
        if window == 0 {
            return;
        }
        acc.packets_modeled += window as u64;

        // Address each (job, PSN) group to a slot.
        let mut aggregated = 0u64;
        let mut fallback = 0u64;
        match mode {
            MemoryMode::Synchronous => {
                // Dedicated region: no contention, everything aggregates.
                aggregated = window as u64;
            }
            MemoryMode::Statistical => {
                if pool == 0 {
                    fallback = window as u64;
                } else if fast && addressing == Addressing::JobOffset {
                    // The window is a contiguous arc on the slot ring:
                    // count its free slots instead of stamping them.
                    let s0 = (job.base + job.next_psn as usize) % pool;
                    aggregated = ring.claim_arc(s0, window.min(pool), pool) as u64;
                    fallback = window as u64 - aggregated;
                } else {
                    // Slots release within the round; a slot is busy only
                    // if some group reserved it *this* round. `round`
                    // starts at 1, so the zero-initialized table is free.
                    let stamp = round;
                    acc.packets_touched += window as u64;
                    for k in 0..window {
                        let psn = job.next_psn + k as u64;
                        let slot = match addressing {
                            Addressing::JobOffset => (job.base + psn as usize) % pool,
                            Addressing::HashPerPacket => {
                                let mut h = psn
                                    .wrapping_mul(0x9E3779B97F4A7C15)
                                    .wrapping_add(job.base as u64);
                                h ^= h >> 31;
                                h = h.wrapping_mul(0xBF58476D1CE4E5B9);
                                h ^= h >> 27;
                                (h % pool as u64) as usize
                            }
                        };
                        if self.slot_owner[slot] == stamp {
                            fallback += 1;
                        } else {
                            self.slot_owner[slot] = stamp;
                            aggregated += 1;
                        }
                    }
                }
            }
        }
        let job = &mut self.jobs[ji];
        job.stats.aggregated_groups += aggregated;
        job.stats.fallback_groups += fallback;

        // PS link admission: results arrive once per aggregated group,
        // `fan_in` times per fallback group.
        let delivered = aggregated + fallback * job.spec.fan_in as u64;
        let cap = bdp as u64;
        let sent = (aggregated + fallback) as f64;
        let acked_groups = if delivered <= cap {
            if job.spec.target_gbps.is_none() {
                job.cwnd = (job.cwnd + 1.0).min(bdp as f64);
            }
            sent
        } else {
            if job.spec.target_gbps.is_none() {
                // DCTCP-style decrease (the paper's endpoints run DCTCP):
                // back off in proportion to the congested fraction rather
                // than halving outright.
                let f = (delivered - cap) as f64 / delivered as f64;
                job.cwnd = (job.cwnd * (1.0 - f / 2.0)).max(1.0);
            }
            sent * cap as f64 / delivered as f64
        };

        // Progress accounting (per-worker goodput = groups x payload).
        job.goodput_bucket_bits += acked_groups * payload_bits;
        job.stats.goodput_bits += acked_groups * payload_bits;
        job.next_psn += window as u64;
        let acked_whole = acked_groups.floor() as u64;
        job.remaining_groups = job.remaining_groups.saturating_sub(acked_whole);

        if job.remaining_groups == 0 {
            job.iterations_done += 1;
            let done_all =
                job.spec.iterations > 0 && job.iterations_done >= job.spec.iterations;
            if done_all {
                job.phase = Phase::Finished;
                job.stats.finish_s = Some(now_s);
            } else {
                job.remaining_groups = self.config.gradient_groups(job.spec.gradient_gbits);
                let compute_rounds = (job.spec.compute_time_s / rtt_s).round() as u64;
                job.phase = if compute_rounds == 0 {
                    Phase::Communicating
                } else {
                    Phase::Computing {
                        rounds_left: compute_rounds,
                    }
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u64, fan_in: usize, rate: Option<f64>) -> PacketJobSpec {
        PacketJobSpec {
            id: JobId(id),
            fan_in,
            gradient_gbits: 0.5,
            compute_time_s: 0.0,
            iterations: 0,
            start_s: 0.0,
            target_gbps: rate,
        }
    }

    /// Fig. 14a setup: pool sized to a fraction `x` of the job's
    /// rate-window; expect aggregation ratio ~= min(1, x).
    fn fig14_config(pat_ratio: f64, rate_gbps: f64) -> SwitchConfig {
        let base = SwitchConfig {
            link_gbps: 100.0,
            ..SwitchConfig::default()
        };
        let window = base.rate_to_pkts(rate_gbps);
        SwitchConfig {
            pool_slots: (pat_ratio * window as f64).round() as usize,
            ..base
        }
    }

    #[test]
    fn aggregation_ratio_tracks_pat_ratio_for_one_job() {
        for x in [0.25, 0.5, 0.75, 1.0] {
            let mut sim = PacketSim::new(fig14_config(x, 10.0));
            sim.add_job(spec(0, 2, Some(10.0)));
            let report = sim.run(0.05);
            let y = report.per_job[0].aggregation_ratio();
            assert!(
                (y - x).abs() < 0.05,
                "PAT ratio {x}: aggregation ratio {y}"
            );
        }
    }

    #[test]
    fn two_jobs_share_the_pool_fairly() {
        // Pool sized for ONE job's full window (the Fig. 14b setup):
        // each of two identical jobs should aggregate ~ x/2.
        for x in [0.5, 1.0] {
            let mut sim = PacketSim::new(fig14_config(x, 10.0));
            sim.add_job(spec(0, 2, Some(10.0)));
            sim.add_job(spec(1, 2, Some(10.0)));
            let report = sim.run(0.1);
            let y0 = report.per_job[0].aggregation_ratio();
            let y1 = report.per_job[1].aggregation_ratio();
            assert!((y0 - y1).abs() < 0.1, "unfair: {y0} vs {y1}");
            assert!(
                (y0 - x / 2.0).abs() < 0.12,
                "PAT ratio {x}: job ratio {y0}, expected ~{}",
                x / 2.0
            );
        }
    }

    #[test]
    fn generous_pool_aggregates_everything() {
        let mut sim = PacketSim::new(SwitchConfig::default());
        sim.add_job(spec(0, 4, Some(10.0)));
        let report = sim.run(0.02);
        assert!(report.per_job[0].aggregation_ratio() > 0.95);
    }

    #[test]
    fn zero_pool_statistical_falls_back_but_progresses() {
        let config = SwitchConfig {
            pool_slots: 0,
            ..SwitchConfig::default()
        };
        let mut sim = PacketSim::new(config);
        sim.add_job(spec(0, 2, Some(10.0)));
        let report = sim.run(0.02);
        let s = &report.per_job[0];
        assert_eq!(s.aggregated_groups, 0);
        assert!(s.fallback_groups > 0);
        assert!(s.goodput_bits > 0.0, "fallback traffic still progresses");
    }

    #[test]
    fn zero_region_synchronous_halts() {
        // Two jobs over a 1-slot pool: regions are 0 slots each.
        let config = SwitchConfig {
            pool_slots: 1,
            mode: MemoryMode::Synchronous,
            ..SwitchConfig::default()
        };
        let mut sim = PacketSim::new(config);
        sim.add_job(spec(0, 2, None));
        sim.add_job(spec(1, 2, None));
        let report = sim.run(0.02);
        for s in &report.per_job {
            assert_eq!(s.goodput_bits, 0.0, "synchronous INA halts at 0 memory");
        }
    }

    #[test]
    fn statistical_beats_synchronous_under_scarce_memory() {
        // The Fig. 2 motivation: scarce memory hurts synchronous INA far
        // more because statistical INA falls back to the PS.
        let scarce = 64;
        let mk = |mode| SwitchConfig {
            pool_slots: scarce,
            mode,
            ..SwitchConfig::default()
        };
        let run = |mode| {
            let mut sim = PacketSim::new(mk(mode));
            sim.add_job(spec(0, 2, None));
            let r = sim.run(0.05);
            r.per_job[0].goodput_bits
        };
        let stat = run(MemoryMode::Statistical);
        let sync = run(MemoryMode::Synchronous);
        assert!(
            stat > sync * 2.0,
            "statistical {stat} should dominate synchronous {sync}"
        );
    }

    #[test]
    fn iterative_jobs_finish_and_record_jct() {
        let mut sim = PacketSim::new(SwitchConfig::default());
        sim.add_job(PacketJobSpec {
            iterations: 5,
            compute_time_s: 0.001,
            ..spec(0, 2, None)
        });
        let report = sim.run(2.0);
        let s = &report.per_job[0];
        assert_eq!(s.iterations_done, 5);
        let finish = s.finish_s.expect("job finished");
        assert!(finish > 0.0 && finish < 2.0);
    }

    #[test]
    fn compute_phase_releases_memory_to_the_other_job() {
        // Job 0 computes most of the time; job 1 streams continuously.
        // With a pool sized for one window, job 1 should aggregate well
        // while job 0 computes (the Fig. 14b turn-taking effect).
        let config = fig14_config(1.0, 10.0);
        let mut sim = PacketSim::new(config);
        sim.add_job(PacketJobSpec {
            compute_time_s: 0.01,
            gradient_gbits: 0.05,
            ..spec(0, 2, Some(10.0))
        });
        sim.add_job(spec(1, 2, Some(10.0)));
        let report = sim.run(0.2);
        let busy = report.per_job[1].aggregation_ratio();
        assert!(busy > 0.6, "turn-taking should lift ratio, got {busy}");
    }

    #[test]
    fn aimd_converges_toward_link_rate_with_full_aggregation() {
        let mut sim = PacketSim::new(SwitchConfig::default());
        sim.add_job(spec(0, 2, None));
        let report = sim.run(0.3);
        let gbps = report.per_job[0].mean_goodput_gbps(report.duration_s);
        // Full aggregation: the PS link admits a full window; AIMD should
        // reach a large fraction of 100 Gbps.
        assert!(gbps > 50.0, "goodput {gbps}");
    }

    #[test]
    fn hash_addressing_self_collides() {
        let config = SwitchConfig {
            addressing: Addressing::HashPerPacket,
            ..fig14_config(1.0, 10.0)
        };
        let mut sim = PacketSim::new(config);
        sim.add_job(spec(0, 2, Some(10.0)));
        let report = sim.run(0.05);
        let y = report.per_job[0].aggregation_ratio();
        // Birthday losses: measurably below the sequential ratio of ~1.0.
        assert!(y < 0.8, "expected hash collisions, ratio {y}");
        assert!(y > 0.4, "hashing should not collapse entirely, ratio {y}");
    }

    #[test]
    fn delayed_start_keeps_job_idle() {
        let mut sim = PacketSim::new(SwitchConfig::default());
        sim.add_job(PacketJobSpec {
            start_s: 10.0,
            ..spec(0, 2, Some(10.0))
        });
        let report = sim.run(0.05);
        assert_eq!(report.per_job[0].goodput_bits, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_fan_in_is_rejected() {
        let mut sim = PacketSim::new(SwitchConfig::default());
        sim.add_job(spec(0, 0, None));
    }

    #[test]
    fn fast_path_batches_the_steady_stream() {
        let config = SwitchConfig {
            path: PacketPath::Fast,
            ..fig14_config(0.5, 10.0)
        };
        let mut sim = PacketSim::new(config);
        sim.add_job(spec(0, 2, Some(10.0)));
        let report = sim.run(0.05);
        assert_eq!(
            report.perf.counter("rounds_batched") + report.perf.counter("rounds_stepped"),
            report.perf.counter("rounds_simulated")
        );
        assert!(
            report.perf.counter("rounds_batched") > report.perf.counter("rounds_stepped"),
            "a paced steady stream should mostly batch: {:?}",
            report.perf
        );
        assert_eq!(
            report.perf.counter("packets_touched"),
            0,
            "JobOffset fast path must not touch packets"
        );
    }

    #[test]
    fn scratch_path_touches_every_packet() {
        let config = SwitchConfig {
            path: PacketPath::Scratch,
            ..fig14_config(0.5, 10.0)
        };
        let mut sim = PacketSim::new(config);
        sim.add_job(spec(0, 2, Some(10.0)));
        let report = sim.run(0.05);
        assert_eq!(report.perf.counter("rounds_batched"), 0);
        assert_eq!(
            report.perf.counter("packets_touched"),
            report.perf.counter("packets_modeled")
        );
    }

    #[test]
    fn final_partial_bucket_uses_its_actual_span() {
        // 205 rounds -> bucket_rounds = 2, so the last bucket covers one
        // round. A steady paced stream must report the same goodput in
        // the final (short) bucket as in the full ones.
        for path in [PacketPath::Fast, PacketPath::Scratch] {
            let config = SwitchConfig { path, ..SwitchConfig::default() };
            let rtt_s = config.rtt_us * 1e-6;
            let mut sim = PacketSim::new(config);
            sim.add_job(spec(0, 2, Some(10.0)));
            let report = sim.run(205.0 * rtt_s);
            assert_eq!(report.rounds, 205);
            let series = &report.per_job[0].goodput_series;
            let first = series[0].1;
            let last = series.last().unwrap().1;
            assert!(
                (last - first).abs() < 0.5,
                "{path:?}: short final bucket misscaled: {first} vs {last}"
            );
        }
    }

    #[test]
    fn ring_occupancy_counts_free_slots_and_wraps() {
        let mut ring = RingOccupancy::default();
        assert_eq!(ring.claim_arc(2, 4, 10), 4); // [2,6) all free
        assert_eq!(ring.claim_arc(4, 4, 10), 2); // [4,8): 4,5 busy
        assert_eq!(ring.claim_arc(8, 4, 10), 4); // wraps to [8,10)+[0,2)
        assert_eq!(ring.claim_arc(0, 10, 10), 0); // ring now full
        ring.clear();
        assert_eq!(ring.claim_arc(9, 3, 10), 3); // [9,10)+[0,2)
        assert_eq!(ring.claim_arc(1, 2, 10), 1); // 1 busy, 2 free
    }

    #[test]
    fn add_cycle_matches_sequential_addition() {
        // Integral fast branch.
        assert_eq!(add_cycle(10.0, &[3.0, 5.0], 6), 10.0 + 3.0 * 3.0 + 3.0 * 5.0);
        // Fractional values take the literal replay branch.
        let vals = [0.3, 0.7];
        let mut want = 1.5;
        for t in 0..8 {
            want += vals[t % 2];
        }
        assert_eq!(add_cycle(1.5, &vals, 8), want);
    }
}
