//! The per-RTT packet simulation loop.

use crate::{JobStats, PacketSimReport};
use netpack_topology::JobId;

/// How the switch memory is multiplexed (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryMode {
    /// Statistical multiplexing (ATP-style): a shared aggregator pool,
    /// transient per-RTT reservation, fallback to the PS on collision.
    #[default]
    Statistical,
    /// Synchronous multiplexing (SwitchML-style): the pool is split into
    /// fixed per-job regions reserved for the job's lifetime; a job's
    /// in-flight window can never exceed its region, and a zero-size
    /// region halts the job.
    Synchronous,
}

/// How a `(job, PSN)` group is addressed to an aggregator slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Addressing {
    /// `index = base(job) + PSN (mod pool)`: sequential per job, so a job
    /// never collides with itself (ATP's streaming behaviour; default).
    #[default]
    JobOffset,
    /// `index = Hash(job, PSN) (mod pool)`: independent uniform hashing,
    /// which adds birthday-problem self-collisions.
    HashPerPacket,
}

/// Switch and link configuration for the packet simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchConfig {
    /// Aggregator slots in the switch memory pool.
    pub pool_slots: usize,
    /// Memory multiplexing mode.
    pub mode: MemoryMode,
    /// Slot addressing scheme.
    pub addressing: Addressing,
    /// Packet payload in bytes.
    pub payload_bytes: usize,
    /// Round-trip time in microseconds (one simulation round).
    pub rtt_us: f64,
    /// Capacity of each worker/PS access link, in Gbps.
    pub link_gbps: f64,
}

impl SwitchConfig {
    /// Packets of payload that fit one link-RTT (the per-flow BDP).
    pub fn bdp_pkts(&self) -> usize {
        let bits = self.link_gbps * 1e9 * self.rtt_us * 1e-6;
        (bits / (self.payload_bytes as f64 * 8.0)).floor().max(1.0) as usize
    }

    /// Packets per round corresponding to a pacing rate in Gbps.
    pub fn rate_to_pkts(&self, gbps: f64) -> usize {
        let bits = gbps * 1e9 * self.rtt_us * 1e-6;
        (bits / (self.payload_bytes as f64 * 8.0)).round().max(0.0) as usize
    }

    /// The pool's Peak Aggregation Throughput in Gbps: `M / RTT` (§4.1).
    pub fn pat_gbps(&self) -> f64 {
        self.pool_slots as f64 * self.payload_bytes as f64 * 8.0 / (self.rtt_us * 1e-6) / 1e9
    }
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            pool_slots: 4096,
            mode: MemoryMode::default(),
            addressing: Addressing::default(),
            payload_bytes: 1024,
            rtt_us: 50.0,
            link_gbps: 100.0,
        }
    }
}

/// One training job as the packet simulator sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketJobSpec {
    /// The job.
    pub id: JobId,
    /// Number of workers streaming into the switch.
    pub fan_in: usize,
    /// Gradient volume per worker per iteration, in gigabits.
    pub gradient_gbits: f64,
    /// Computation time per iteration, in seconds (0 = stream
    /// continuously, as the Fig. 14 microbenchmarks do).
    pub compute_time_s: f64,
    /// Iterations to run; 0 = unbounded (run for the whole simulation).
    pub iterations: u64,
    /// When the job starts, in seconds.
    pub start_s: f64,
    /// Fixed pacing rate in Gbps (as in Fig. 14's 10 Gbps jobs); `None`
    /// enables AIMD congestion control.
    pub target_gbps: Option<f64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Waiting,
    Computing { rounds_left: u64 },
    Communicating,
    Finished,
}

#[derive(Debug, Clone)]
struct JobState {
    spec: PacketJobSpec,
    phase: Phase,
    cwnd: f64,
    next_psn: u64,
    /// Packet groups left in the current iteration's gradient.
    remaining_groups: u64,
    iterations_done: u64,
    /// Slot base for `Addressing::JobOffset`.
    base: usize,
    /// Fixed region `(offset, size)` in synchronous mode.
    region: (usize, usize),
    stats: JobStats,
    goodput_bucket_bits: f64,
}

/// The packet-level simulator: one statistical-INA (or synchronous-INA)
/// switch, its aggregator pool, and a set of iterative training jobs.
#[derive(Debug, Clone)]
pub struct PacketSim {
    config: SwitchConfig,
    jobs: Vec<JobState>,
    /// Slot reservation table for the current round: stamped with
    /// `round * jobs + owner` to avoid clearing each round.
    slot_owner: Vec<u64>,
    round: u64,
    rng: u64,
}

impl PacketSim {
    /// A simulator over the given switch.
    pub fn new(config: SwitchConfig) -> Self {
        let slots = config.pool_slots;
        PacketSim {
            config,
            jobs: Vec::new(),
            slot_owner: vec![0; slots.max(1)],
            round: 0,
            rng: 0x9E3779B97F4A7C15,
        }
    }

    /// The switch configuration.
    pub fn config(&self) -> &SwitchConfig {
        &self.config
    }

    /// Register a job.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in` is zero or the gradient is non-positive.
    pub fn add_job(&mut self, spec: PacketJobSpec) {
        assert!(spec.fan_in >= 1, "job needs at least one worker");
        assert!(
            spec.gradient_gbits > 0.0 && spec.gradient_gbits.is_finite(),
            "gradient must be positive"
        );
        let base = self.next_rand() as usize % self.config.pool_slots.max(1);
        let gradient_groups = self.gradient_groups(&spec);
        self.jobs.push(JobState {
            stats: JobStats {
                id: spec.id,
                aggregated_groups: 0,
                fallback_groups: 0,
                goodput_bits: 0.0,
                iterations_done: 0,
                finish_s: None,
                goodput_series: Vec::new(),
            },
            phase: Phase::Waiting,
            cwnd: 1.0,
            next_psn: 0,
            remaining_groups: gradient_groups,
            iterations_done: 0,
            base,
            region: (0, 0),
            spec,
            goodput_bucket_bits: 0.0,
        });
    }

    fn gradient_groups(&self, spec: &PacketJobSpec) -> u64 {
        let bits = spec.gradient_gbits * 1e9;
        (bits / (self.config.payload_bytes as f64 * 8.0))
            .ceil()
            .max(1.0) as u64
    }

    fn next_rand(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng
    }

    /// Run the simulation for `duration_s` seconds (rounded down to whole
    /// RTT rounds) and return per-job statistics. Goodput is sampled into
    /// 100 buckets across the duration.
    pub fn run(&mut self, duration_s: f64) -> PacketSimReport {
        assert!(duration_s > 0.0, "duration must be positive");
        let rtt_s = self.config.rtt_us * 1e-6;
        let rounds = (duration_s / rtt_s).floor().max(1.0) as u64;
        let bucket_rounds = (rounds / 100).max(1);

        // Synchronous mode: carve fixed regions once, evenly.
        if self.config.mode == MemoryMode::Synchronous && !self.jobs.is_empty() {
            let region = self.config.pool_slots / self.jobs.len();
            for (i, job) in self.jobs.iter_mut().enumerate() {
                job.region = (i * region, region);
            }
        }

        let bdp = self.config.bdp_pkts();
        let payload_bits = self.config.payload_bytes as f64 * 8.0;
        let n_jobs = self.jobs.len().max(1);

        for local_round in 0..rounds {
            self.round += 1;
            let round = self.round;
            let now_s = round as f64 * rtt_s;

            // Phase transitions.
            for job in self.jobs.iter_mut() {
                match job.phase {
                    Phase::Waiting if job.spec.start_s <= now_s => {
                        job.phase = Phase::Communicating;
                    }
                    Phase::Computing { rounds_left } => {
                        if rounds_left <= 1 {
                            job.phase = Phase::Communicating;
                        } else {
                            job.phase = Phase::Computing {
                                rounds_left: rounds_left - 1,
                            };
                        }
                    }
                    _ => {}
                }
            }

            // Transmit: rotate the processing order every round so pool
            // contention is FCFS-fair over time.
            let rotation = (round as usize) % n_jobs;
            for k in 0..self.jobs.len() {
                let ji = (k + rotation) % self.jobs.len();
                self.step_job(ji, round, bdp, payload_bits, rtt_s, now_s);
            }

            // Goodput sampling.
            if (local_round + 1) % bucket_rounds == 0 || local_round + 1 == rounds {
                let span_s = bucket_rounds as f64 * rtt_s;
                for job in self.jobs.iter_mut() {
                    let gbps = job.goodput_bucket_bits / span_s / 1e9;
                    job.stats.goodput_series.push((now_s, gbps));
                    job.goodput_bucket_bits = 0.0;
                }
            }
        }

        PacketSimReport {
            per_job: self
                .jobs
                .iter()
                .map(|j| {
                    let mut s = j.stats.clone();
                    s.iterations_done = j.iterations_done;
                    s
                })
                .collect(),
            rounds,
            duration_s: rounds as f64 * rtt_s,
        }
    }

    /// One job's transmissions for one round.
    fn step_job(
        &mut self,
        ji: usize,
        round: u64,
        bdp: usize,
        payload_bits: f64,
        rtt_s: f64,
        now_s: f64,
    ) {
        let pool = self.config.pool_slots;
        let mode = self.config.mode;
        let addressing = self.config.addressing;
        let job = &mut self.jobs[ji];
        if job.phase != Phase::Communicating {
            return;
        }
        // Window for this round.
        let mut window = match job.spec.target_gbps {
            Some(rate) => self.config.rate_to_pkts(rate),
            None => job.cwnd.floor() as usize,
        };
        window = window.min(bdp).min(job.remaining_groups as usize);
        if mode == MemoryMode::Synchronous {
            window = window.min(job.region.1);
            if window == 0 {
                return; // zero memory halts a synchronous job (§2.2)
            }
        }
        if window == 0 {
            return;
        }

        // Address each (job, PSN) group to a slot.
        let mut aggregated = 0u64;
        let mut fallback = 0u64;
        match mode {
            MemoryMode::Synchronous => {
                // Dedicated region: no contention, everything aggregates.
                aggregated = window as u64;
            }
            MemoryMode::Statistical => {
                if pool == 0 {
                    fallback = window as u64;
                } else {
                    // Slots release within the round; a slot is busy only
                    // if some group reserved it *this* round. `round`
                    // starts at 1, so the zero-initialized table is free.
                    let stamp = round;
                    for k in 0..window {
                        let psn = job.next_psn + k as u64;
                        let slot = match addressing {
                            Addressing::JobOffset => (job.base + psn as usize) % pool,
                            Addressing::HashPerPacket => {
                                let mut h = psn
                                    .wrapping_mul(0x9E3779B97F4A7C15)
                                    .wrapping_add(job.base as u64);
                                h ^= h >> 31;
                                h = h.wrapping_mul(0xBF58476D1CE4E5B9);
                                h ^= h >> 27;
                                (h % pool as u64) as usize
                            }
                        };
                        if self.slot_owner[slot] == stamp {
                            fallback += 1;
                        } else {
                            self.slot_owner[slot] = stamp;
                            aggregated += 1;
                        }
                    }
                }
            }
        }
        let job = &mut self.jobs[ji];
        job.stats.aggregated_groups += aggregated;
        job.stats.fallback_groups += fallback;

        // PS link admission: results arrive once per aggregated group,
        // `fan_in` times per fallback group.
        let delivered = aggregated + fallback * job.spec.fan_in as u64;
        let cap = bdp as u64;
        let sent = (aggregated + fallback) as f64;
        let acked_groups = if delivered <= cap {
            if job.spec.target_gbps.is_none() {
                job.cwnd = (job.cwnd + 1.0).min(bdp as f64);
            }
            sent
        } else {
            if job.spec.target_gbps.is_none() {
                // DCTCP-style decrease (the paper's endpoints run DCTCP):
                // back off in proportion to the congested fraction rather
                // than halving outright.
                let f = (delivered - cap) as f64 / delivered as f64;
                job.cwnd = (job.cwnd * (1.0 - f / 2.0)).max(1.0);
            }
            sent * cap as f64 / delivered as f64
        };

        // Progress accounting (per-worker goodput = groups x payload).
        job.goodput_bucket_bits += acked_groups * payload_bits;
        job.stats.goodput_bits += acked_groups * payload_bits;
        job.next_psn += window as u64;
        let acked_whole = acked_groups.floor() as u64;
        job.remaining_groups = job.remaining_groups.saturating_sub(acked_whole);

        if job.remaining_groups == 0 {
            job.iterations_done += 1;
            let done_all =
                job.spec.iterations > 0 && job.iterations_done >= job.spec.iterations;
            if done_all {
                job.phase = Phase::Finished;
                job.stats.finish_s = Some(now_s);
            } else {
                job.remaining_groups = (job.spec.gradient_gbits * 1e9
                    / payload_bits)
                    .ceil()
                    .max(1.0) as u64;
                let compute_rounds = (job.spec.compute_time_s / rtt_s).round() as u64;
                job.phase = if compute_rounds == 0 {
                    Phase::Communicating
                } else {
                    Phase::Computing {
                        rounds_left: compute_rounds,
                    }
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u64, fan_in: usize, rate: Option<f64>) -> PacketJobSpec {
        PacketJobSpec {
            id: JobId(id),
            fan_in,
            gradient_gbits: 0.5,
            compute_time_s: 0.0,
            iterations: 0,
            start_s: 0.0,
            target_gbps: rate,
        }
    }

    /// Fig. 14a setup: pool sized to a fraction `x` of the job's
    /// rate-window; expect aggregation ratio ~= min(1, x).
    fn fig14_config(pat_ratio: f64, rate_gbps: f64) -> SwitchConfig {
        let base = SwitchConfig {
            link_gbps: 100.0,
            ..SwitchConfig::default()
        };
        let window = base.rate_to_pkts(rate_gbps);
        SwitchConfig {
            pool_slots: (pat_ratio * window as f64).round() as usize,
            ..base
        }
    }

    #[test]
    fn aggregation_ratio_tracks_pat_ratio_for_one_job() {
        for x in [0.25, 0.5, 0.75, 1.0] {
            let mut sim = PacketSim::new(fig14_config(x, 10.0));
            sim.add_job(spec(0, 2, Some(10.0)));
            let report = sim.run(0.05);
            let y = report.per_job[0].aggregation_ratio();
            assert!(
                (y - x).abs() < 0.05,
                "PAT ratio {x}: aggregation ratio {y}"
            );
        }
    }

    #[test]
    fn two_jobs_share_the_pool_fairly() {
        // Pool sized for ONE job's full window (the Fig. 14b setup):
        // each of two identical jobs should aggregate ~ x/2.
        for x in [0.5, 1.0] {
            let mut sim = PacketSim::new(fig14_config(x, 10.0));
            sim.add_job(spec(0, 2, Some(10.0)));
            sim.add_job(spec(1, 2, Some(10.0)));
            let report = sim.run(0.1);
            let y0 = report.per_job[0].aggregation_ratio();
            let y1 = report.per_job[1].aggregation_ratio();
            assert!((y0 - y1).abs() < 0.1, "unfair: {y0} vs {y1}");
            assert!(
                (y0 - x / 2.0).abs() < 0.12,
                "PAT ratio {x}: job ratio {y0}, expected ~{}",
                x / 2.0
            );
        }
    }

    #[test]
    fn generous_pool_aggregates_everything() {
        let mut sim = PacketSim::new(SwitchConfig::default());
        sim.add_job(spec(0, 4, Some(10.0)));
        let report = sim.run(0.02);
        assert!(report.per_job[0].aggregation_ratio() > 0.95);
    }

    #[test]
    fn zero_pool_statistical_falls_back_but_progresses() {
        let config = SwitchConfig {
            pool_slots: 0,
            ..SwitchConfig::default()
        };
        let mut sim = PacketSim::new(config);
        sim.add_job(spec(0, 2, Some(10.0)));
        let report = sim.run(0.02);
        let s = &report.per_job[0];
        assert_eq!(s.aggregated_groups, 0);
        assert!(s.fallback_groups > 0);
        assert!(s.goodput_bits > 0.0, "fallback traffic still progresses");
    }

    #[test]
    fn zero_region_synchronous_halts() {
        // Two jobs over a 1-slot pool: regions are 0 slots each.
        let config = SwitchConfig {
            pool_slots: 1,
            mode: MemoryMode::Synchronous,
            ..SwitchConfig::default()
        };
        let mut sim = PacketSim::new(config);
        sim.add_job(spec(0, 2, None));
        sim.add_job(spec(1, 2, None));
        let report = sim.run(0.02);
        for s in &report.per_job {
            assert_eq!(s.goodput_bits, 0.0, "synchronous INA halts at 0 memory");
        }
    }

    #[test]
    fn statistical_beats_synchronous_under_scarce_memory() {
        // The Fig. 2 motivation: scarce memory hurts synchronous INA far
        // more because statistical INA falls back to the PS.
        let scarce = 64;
        let mk = |mode| SwitchConfig {
            pool_slots: scarce,
            mode,
            ..SwitchConfig::default()
        };
        let run = |mode| {
            let mut sim = PacketSim::new(mk(mode));
            sim.add_job(spec(0, 2, None));
            let r = sim.run(0.05);
            r.per_job[0].goodput_bits
        };
        let stat = run(MemoryMode::Statistical);
        let sync = run(MemoryMode::Synchronous);
        assert!(
            stat > sync * 2.0,
            "statistical {stat} should dominate synchronous {sync}"
        );
    }

    #[test]
    fn iterative_jobs_finish_and_record_jct() {
        let mut sim = PacketSim::new(SwitchConfig::default());
        sim.add_job(PacketJobSpec {
            iterations: 5,
            compute_time_s: 0.001,
            ..spec(0, 2, None)
        });
        let report = sim.run(2.0);
        let s = &report.per_job[0];
        assert_eq!(s.iterations_done, 5);
        let finish = s.finish_s.expect("job finished");
        assert!(finish > 0.0 && finish < 2.0);
    }

    #[test]
    fn compute_phase_releases_memory_to_the_other_job() {
        // Job 0 computes most of the time; job 1 streams continuously.
        // With a pool sized for one window, job 1 should aggregate well
        // while job 0 computes (the Fig. 14b turn-taking effect).
        let config = fig14_config(1.0, 10.0);
        let mut sim = PacketSim::new(config);
        sim.add_job(PacketJobSpec {
            compute_time_s: 0.01,
            gradient_gbits: 0.05,
            ..spec(0, 2, Some(10.0))
        });
        sim.add_job(spec(1, 2, Some(10.0)));
        let report = sim.run(0.2);
        let busy = report.per_job[1].aggregation_ratio();
        assert!(busy > 0.6, "turn-taking should lift ratio, got {busy}");
    }

    #[test]
    fn aimd_converges_toward_link_rate_with_full_aggregation() {
        let mut sim = PacketSim::new(SwitchConfig::default());
        sim.add_job(spec(0, 2, None));
        let report = sim.run(0.3);
        let gbps = report.per_job[0].mean_goodput_gbps(report.duration_s);
        // Full aggregation: the PS link admits a full window; AIMD should
        // reach a large fraction of 100 Gbps.
        assert!(gbps > 50.0, "goodput {gbps}");
    }

    #[test]
    fn hash_addressing_self_collides() {
        let config = SwitchConfig {
            addressing: Addressing::HashPerPacket,
            ..fig14_config(1.0, 10.0)
        };
        let mut sim = PacketSim::new(config);
        sim.add_job(spec(0, 2, Some(10.0)));
        let report = sim.run(0.05);
        let y = report.per_job[0].aggregation_ratio();
        // Birthday losses: measurably below the sequential ratio of ~1.0.
        assert!(y < 0.8, "expected hash collisions, ratio {y}");
        assert!(y > 0.4, "hashing should not collapse entirely, ratio {y}");
    }

    #[test]
    fn delayed_start_keeps_job_idle() {
        let mut sim = PacketSim::new(SwitchConfig::default());
        sim.add_job(PacketJobSpec {
            start_s: 10.0,
            ..spec(0, 2, Some(10.0))
        });
        let report = sim.run(0.05);
        assert_eq!(report.per_job[0].goodput_bits, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_fan_in_is_rejected() {
        let mut sim = PacketSim::new(SwitchConfig::default());
        sim.add_job(spec(0, 0, None));
    }
}
