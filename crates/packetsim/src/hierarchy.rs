//! Two-tier packet-level simulation: per-rack leaf pools feeding a root
//! pool — the hierarchical aggregation of §4.1 at packet granularity.
//!
//! [`PacketSim`](crate::PacketSim) models one switch; multi-rack jobs
//! aggregate twice (worker ToRs, then the PS's ToR). This module simulates
//! that two-level pipeline for a single job so the closed-form hierarchy
//! model (`netpack-model`'s Table 1 / Fig. 5 report) can be validated
//! against packet behaviour:
//!
//! * each rack's workers stream PSN groups into the rack's leaf pool;
//! * a group that wins a leaf slot travels upward as **one** packet, a
//!   collided group travels as `workers-in-rack` packets;
//! * at the root pool the surviving streams aggregate again; collided
//!   groups fan out to the PS individually.
//!
//! Per-RTT windows are paced at a fixed target rate, as in the Fig. 14
//! microbenchmarks.

/// Configuration of the two-tier hierarchy microbenchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchySpec {
    /// Worker count per remote rack (the PS rack may also host workers via
    /// `local_workers`).
    pub rack_workers: Vec<usize>,
    /// Workers inside the PS rack.
    pub local_workers: usize,
    /// Leaf-pool slots per remote rack.
    pub leaf_slots: Vec<usize>,
    /// Root-pool slots (the PS rack's ToR).
    pub root_slots: usize,
    /// Per-worker pacing rate in Gbps.
    pub rate_gbps: f64,
    /// Packet payload in bytes.
    pub payload_bytes: usize,
    /// Round-trip time in microseconds.
    pub rtt_us: f64,
}

impl Default for HierarchySpec {
    fn default() -> Self {
        HierarchySpec {
            rack_workers: vec![2, 2, 2],
            local_workers: 2,
            leaf_slots: vec![4096, 4096, 4096],
            root_slots: 4096,
            rate_gbps: 10.0,
            payload_bytes: 1024,
            rtt_us: 50.0,
        }
    }
}

/// Measured per-round traffic of the two-tier pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyReport {
    /// Average packets per round entering the PS rack from the core
    /// (the paper's `FC` counted in packets, normalized by the window).
    pub core_packets_per_group: f64,
    /// Average packets per round on the root-to-PS link per PSN group
    /// (the paper's `FS` in packets).
    pub ps_packets_per_group: f64,
    /// Fraction of groups fully aggregated at the root.
    pub root_aggregation_ratio: f64,
    /// Rounds simulated.
    pub rounds: u64,
}

/// Run the two-tier microbenchmark for `duration_s` simulated seconds.
///
/// Deterministic: leaf and root pools use sequential (job-offset)
/// addressing with a fixed base, matching
/// [`Addressing::JobOffset`](crate::Addressing).
///
/// # Panics
///
/// Panics if `rack_workers` and `leaf_slots` lengths differ, or if no
/// workers are configured.
pub fn run_hierarchy(spec: &HierarchySpec, duration_s: f64) -> HierarchyReport {
    assert_eq!(
        spec.rack_workers.len(),
        spec.leaf_slots.len(),
        "one leaf pool per remote rack"
    );
    let total_workers: usize = spec.rack_workers.iter().sum::<usize>() + spec.local_workers;
    assert!(total_workers > 0, "hierarchy needs workers");

    let rtt_s = spec.rtt_us * 1e-6;
    let rounds = (duration_s / rtt_s).floor().max(1.0) as u64;
    let window = {
        let bits = spec.rate_gbps * 1e9 * rtt_s;
        (bits / (spec.payload_bytes as f64 * 8.0)).round().max(1.0) as u64
    };

    let mut core_packets = 0u64;
    let mut ps_packets = 0u64;
    let mut root_aggregated = 0u64;
    let mut groups = 0u64;

    let mut psn = 0u64;
    for _round in 0..rounds {
        for k in 0..window {
            let g = psn + k;
            groups += 1;
            // Leaf stage: each remote rack emits 1 packet if the group
            // wins a leaf slot, `workers` packets otherwise. Sequential
            // addressing: the group wins iff its offset fits the pool.
            let mut root_in_packets = 0u64; // packets arriving at root
            let mut root_in_streams = 0u64; // distinct upstream flows
            for (r, &workers) in spec.rack_workers.iter().enumerate() {
                let slots = spec.leaf_slots[r] as u64;
                let aggregated = slots > 0 && (g % window.max(1)) < slots.min(window);
                if aggregated {
                    root_in_packets += 1;
                    root_in_streams += 1;
                } else {
                    root_in_packets += workers as u64;
                    root_in_streams += workers as u64;
                }
            }
            core_packets += root_in_packets;
            // Local workers feed the root directly.
            root_in_packets += spec.local_workers as u64;
            root_in_streams += spec.local_workers as u64;
            let _ = root_in_streams;
            // Root stage.
            let root_slots = spec.root_slots as u64;
            let aggregated = root_slots > 0 && (g % window.max(1)) < root_slots.min(window);
            if aggregated {
                ps_packets += 1;
                root_aggregated += 1;
            } else {
                ps_packets += root_in_packets;
            }
        }
        psn += window;
    }

    HierarchyReport {
        core_packets_per_group: core_packets as f64 / groups as f64,
        ps_packets_per_group: ps_packets as f64 / groups as f64,
        root_aggregation_ratio: root_aggregated as f64 / groups as f64,
        rounds,
    }
}

/// Convenience: the per-switch PAT (in Gbps) a slot count corresponds to.
pub fn slots_to_pat_gbps(spec: &HierarchySpec, slots: usize) -> f64 {
    slots as f64 * spec.payload_bytes as f64 * 8.0 / (spec.rtt_us * 1e-6) / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pools_reproduce_the_fig5_low_rate_point() {
        // Everything aggregates: FC = #remote racks, FS = 1.
        let spec = HierarchySpec::default();
        let report = run_hierarchy(&spec, 0.05);
        assert!((report.core_packets_per_group - 3.0).abs() < 1e-9);
        assert!((report.ps_packets_per_group - 1.0).abs() < 1e-9);
        assert!((report.root_aggregation_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_pools_reproduce_the_fig5_high_rate_point() {
        // Nothing aggregates: FC = 6 worker streams, FS = 6 + 2 local = 8.
        let spec = HierarchySpec {
            leaf_slots: vec![0, 0, 0],
            root_slots: 0,
            ..HierarchySpec::default()
        };
        let report = run_hierarchy(&spec, 0.05);
        assert!((report.core_packets_per_group - 6.0).abs() < 1e-9);
        assert!((report.ps_packets_per_group - 8.0).abs() < 1e-9);
        assert_eq!(report.root_aggregation_ratio, 0.0);
    }

    #[test]
    fn partial_leaf_aggregation_interpolates() {
        // Leaves have half the window in slots: half the groups aggregate
        // per rack => FC averages (1+2)/2 per rack = 4.5 total.
        let spec = HierarchySpec::default();
        let window = {
            let bits = spec.rate_gbps * 1e9 * spec.rtt_us * 1e-6;
            (bits / (spec.payload_bytes as f64 * 8.0)).round() as usize
        };
        let spec = HierarchySpec {
            leaf_slots: vec![window / 2; 3],
            ..spec
        };
        let report = run_hierarchy(&spec, 0.05);
        let expected = 3.0 * (1.0 + 2.0) / 2.0;
        assert!(
            (report.core_packets_per_group - expected).abs() < 0.25,
            "got {}",
            report.core_packets_per_group
        );
    }

    #[test]
    fn partial_root_matches_the_table1_mix() {
        // Root pool covers half the window: half the groups collapse to 1
        // packet, half fan out to 3 (aggregated leaves) + 2 local = 5.
        let spec = HierarchySpec::default();
        let window = {
            let bits = spec.rate_gbps * 1e9 * spec.rtt_us * 1e-6;
            (bits / (spec.payload_bytes as f64 * 8.0)).round() as usize
        };
        let spec = HierarchySpec {
            root_slots: window / 2,
            ..spec
        };
        let report = run_hierarchy(&spec, 0.05);
        assert!((report.root_aggregation_ratio - 0.5).abs() < 0.05);
        let expected = 0.5 * 1.0 + 0.5 * 5.0;
        assert!(
            (report.ps_packets_per_group - expected).abs() < 0.25,
            "got {}",
            report.ps_packets_per_group
        );
    }

    #[test]
    fn matches_the_closed_form_model_across_pat_ratios() {
        // Sweep leaf/root pools; compare measured FS against Table 1 with
        // A = slots/window (aggregating iff pool covers the window).
        let base = HierarchySpec::default();
        let window = {
            let bits = base.rate_gbps * 1e9 * base.rtt_us * 1e-6;
            (bits / (base.payload_bytes as f64 * 8.0)).round() as usize
        };
        for (leaf_frac, root_frac) in [(1.0, 1.0), (0.0, 1.0), (1.0, 0.0), (0.0, 0.0)] {
            let spec = HierarchySpec {
                leaf_slots: vec![(window as f64 * leaf_frac) as usize; 3],
                root_slots: (window as f64 * root_frac) as usize,
                ..base.clone()
            };
            let report = run_hierarchy(&spec, 0.02);
            // Closed form: leaves emit 1 or 2 streams; root emits 1 or all.
            let per_leaf = if leaf_frac >= 1.0 { 1.0 } else { 2.0 };
            let fc = 3.0 * per_leaf;
            let fs = if root_frac >= 1.0 {
                1.0
            } else {
                fc + base.local_workers as f64
            };
            assert!(
                (report.core_packets_per_group - fc).abs() < 1e-6,
                "leaf {leaf_frac}: FC {}",
                report.core_packets_per_group
            );
            assert!(
                (report.ps_packets_per_group - fs).abs() < 1e-6,
                "root {root_frac}: FS {}",
                report.ps_packets_per_group
            );
        }
    }

    #[test]
    #[should_panic(expected = "one leaf pool per remote rack")]
    fn mismatched_lengths_panic() {
        let spec = HierarchySpec {
            rack_workers: vec![2, 2],
            leaf_slots: vec![16],
            ..HierarchySpec::default()
        };
        let _ = run_hierarchy(&spec, 0.01);
    }
}
