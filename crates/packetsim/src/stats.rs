//! Per-job statistics collected by the packet simulator.

use netpack_metrics::PerfCounters;
use netpack_topology::JobId;

/// Statistics of one job over a packet-simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStats {
    /// The job.
    pub id: JobId,
    /// `(job, PSN)` groups that aggregated in the switch.
    pub aggregated_groups: u64,
    /// Groups that fell back to the PS unaggregated (hash collision or
    /// exhausted memory).
    pub fallback_groups: u64,
    /// Gradient payload acknowledged end-to-end, in bits.
    pub goodput_bits: f64,
    /// Iterations completed within the run.
    pub iterations_done: u64,
    /// Completion time of the job's final iteration, if it finished.
    pub finish_s: Option<f64>,
    /// Goodput time series: `(bucket end time, Gbps over the bucket)`.
    pub goodput_series: Vec<(f64, f64)>,
}

impl JobStats {
    /// Portion of `(job, PSN)` groups aggregated in-network — the y-axis
    /// of the paper's Fig. 14. Returns 0 when nothing was sent.
    pub fn aggregation_ratio(&self) -> f64 {
        let total = self.aggregated_groups + self.fallback_groups;
        if total == 0 {
            return 0.0;
        }
        self.aggregated_groups as f64 / total as f64
    }

    /// Mean goodput over the run, in Gbps.
    pub fn mean_goodput_gbps(&self, duration_s: f64) -> f64 {
        if duration_s <= 0.0 {
            return 0.0;
        }
        self.goodput_bits / duration_s / 1e9
    }
}

/// The result of one packet-simulation run.
#[derive(Debug, Clone, Default)]
pub struct PacketSimReport {
    /// Per-job statistics, in registration order.
    pub per_job: Vec<JobStats>,
    /// RTT rounds simulated.
    pub rounds: u64,
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// Work counters and wall-clock timers for the run: rounds simulated
    /// vs. stepped vs. batched, packets modeled vs. actually touched by
    /// the per-packet loop, and the `run` timer.
    pub perf: PerfCounters,
}

/// Equality covers the simulation *outputs* only — `perf` holds
/// wall-clock timers and work counters that legitimately differ between
/// the fast and scratch paths producing the same result.
impl PartialEq for PacketSimReport {
    fn eq(&self, other: &Self) -> bool {
        self.per_job == other.per_job
            && self.rounds == other.rounds
            && self.duration_s == other.duration_s
    }
}

impl PacketSimReport {
    /// Look up one job's statistics.
    pub fn job(&self, id: JobId) -> Option<&JobStats> {
        self.per_job.iter().find(|s| s.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_ratio_divides_groups() {
        let s = JobStats {
            id: JobId(0),
            aggregated_groups: 30,
            fallback_groups: 10,
            goodput_bits: 1e9,
            iterations_done: 1,
            finish_s: None,
            goodput_series: Vec::new(),
        };
        assert!((s.aggregation_ratio() - 0.75).abs() < 1e-12);
        assert!((s.mean_goodput_gbps(2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = JobStats {
            id: JobId(0),
            aggregated_groups: 0,
            fallback_groups: 0,
            goodput_bits: 0.0,
            iterations_done: 0,
            finish_s: None,
            goodput_series: Vec::new(),
        };
        assert_eq!(s.aggregation_ratio(), 0.0);
        assert_eq!(s.mean_goodput_gbps(0.0), 0.0);
    }
}
