//! Property suite pinning the branch-and-bound exact placer to the legacy
//! exhaustive scratch search: on seeded random instances both modes must
//! return the *identical* batch outcome (same placements in the same
//! order, bit-identical objective), with the B&B doing no more leaf
//! evaluations than the scratch reference.

use netpack_placement::{batch_comm_time_s, ExactMode, ExactPlacer, Placer, RunningJob};
use netpack_model::Placement;
use netpack_topology::{Cluster, ClusterSpec, JobId, ServerId};
use netpack_workload::{Job, ModelKind};

/// xorshift64 — deterministic, dependency-free instance generator.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

struct Instance {
    cluster: Cluster,
    running: Vec<RunningJob>,
    batch: Vec<Job>,
    enumerate_ina: bool,
}

/// Draw a small random instance: 2-4 servers over 1-2 racks, 1-2 GPUs per
/// server, a few pre-allocated GPUs (mixed free capacities), 0-2 running
/// jobs pinning servers, and a 1-3 job batch whose demands may be
/// infeasible. Shapes are capped so the scratch reference fully enumerates
/// well inside its evaluation budget.
fn instance(seed: u64) -> Instance {
    let mut rng = XorShift::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let (racks, servers_per_rack) = match rng.below(6) {
        0 => (1, 2),
        1 | 2 => (1, 3),
        3 => (2, 1),
        4 => (2, 2),
        _ => (1, 4),
    };
    let total_servers = racks * servers_per_rack;
    let gpus_per_server = 1 + rng.below(2) as usize;
    let mut cluster = Cluster::new(ClusterSpec {
        racks,
        servers_per_rack,
        gpus_per_server,
        ..ClusterSpec::paper_default()
    });

    // Mixed caps: occupy one GPU on some servers before anyone plans.
    for s in 0..total_servers {
        if gpus_per_server > 1 && rng.below(4) == 0 {
            cluster.allocate_gpus(ServerId(s), 1).unwrap();
        }
    }

    // Running jobs: span two servers with free GPUs, PS on a third (or
    // wherever the draw lands) — their GPUs come out of the ledger, their
    // traffic shapes every water-filling the search performs.
    let mut running = Vec::new();
    for k in 0..rng.below(3) {
        let with_free: Vec<ServerId> = cluster
            .servers()
            .iter()
            .filter(|s| s.gpus_free() > 0)
            .map(|s| s.id())
            .collect();
        if with_free.len() < 2 {
            break;
        }
        let a = with_free[rng.below(with_free.len() as u64) as usize];
        let b = with_free
            .iter()
            .copied()
            .find(|&s| s != a)
            .unwrap();
        cluster.allocate_gpus(a, 1).unwrap();
        cluster.allocate_gpus(b, 1).unwrap();
        let ps = ServerId(rng.below(total_servers as u64) as usize);
        running.push(RunningJob {
            id: JobId(100 + k),
            gradient_gbits: 2.0 + k as f64,
            placement: Placement::new(vec![(a, 1), (b, 1)], Some(ps)),
        });
    }

    let kinds = [ModelKind::Vgg16, ModelKind::ResNet50, ModelKind::AlexNet];
    let mut jobs = 1 + rng.below(3) as usize;
    if total_servers >= 4 {
        jobs = jobs.min(2);
    }
    let batch: Vec<Job> = (0..jobs)
        .map(|i| {
            let kind = kinds[rng.below(3) as usize];
            let gpus = 1 + rng.below(3) as usize;
            Job::builder(JobId(i as u64), kind, gpus).build()
        })
        .collect();

    Instance {
        cluster,
        running,
        batch,
        enumerate_ina: rng.below(2) == 1,
    }
}

#[test]
fn bnb_matches_scratch_on_random_instances() {
    let budget = 2_000_000;
    let mut infeasible = 0;
    for seed in 1..=200u64 {
        let inst = instance(seed);

        let mut scratch = ExactPlacer::new(budget)
            .enumerate_ina(inst.enumerate_ina)
            .mode(ExactMode::Scratch);
        let ref_out = scratch.place_batch(&inst.cluster, &inst.running, &inst.batch);
        assert!(
            scratch.evaluations() < budget,
            "seed {seed}: scratch must fully enumerate for the comparison"
        );

        let mut bnb = ExactPlacer::new(budget)
            .enumerate_ina(inst.enumerate_ina)
            .mode(ExactMode::Bnb);
        let out = bnb.place_batch(&inst.cluster, &inst.running, &inst.batch);

        assert_eq!(out.placed, ref_out.placed, "seed {seed}: placements differ");
        assert_eq!(
            out.deferred, ref_out.deferred,
            "seed {seed}: deferrals differ"
        );
        let obj = batch_comm_time_s(&inst.cluster, &inst.running, &out.placed);
        let ref_obj = batch_comm_time_s(&inst.cluster, &inst.running, &ref_out.placed);
        assert_eq!(
            obj.to_bits(),
            ref_obj.to_bits(),
            "seed {seed}: objective not bit-identical ({obj} vs {ref_obj})"
        );
        assert!(
            bnb.evaluations() <= scratch.evaluations(),
            "seed {seed}: bnb evaluated {} leaves, scratch only {}",
            bnb.evaluations(),
            scratch.evaluations()
        );
        if !ref_out.deferred.is_empty() {
            infeasible += 1;
        }
    }
    // The generator must exercise both outcomes, not just the easy one.
    assert!(infeasible > 0, "no infeasible instances were generated");
    assert!(infeasible < 200, "every instance was infeasible");
}

#[test]
fn exhausted_budget_returns_the_best_incumbent() {
    let cluster = Cluster::new(ClusterSpec {
        racks: 1,
        servers_per_rack: 4,
        gpus_per_server: 2,
        ..ClusterSpec::paper_default()
    });
    let batch: Vec<Job> = (0..3)
        .map(|i| Job::builder(JobId(i), ModelKind::Vgg16, 2).build())
        .collect();

    // Reference optimum with an unconstrained budget.
    let mut full = ExactPlacer::new(50_000_000).mode(ExactMode::Scratch);
    let full_out = full.place_batch(&cluster, &[], &batch);
    let optimum = batch_comm_time_s(&cluster, &[], &full_out.placed);

    for mode in [ExactMode::Bnb, ExactMode::Scratch] {
        let mut p = ExactPlacer::new(40).mode(mode);
        let out = p.place_batch(&cluster, &[], &batch);
        assert!(
            p.evaluations() <= 40,
            "{mode:?} exceeded its evaluation budget: {}",
            p.evaluations()
        );
        assert_eq!(
            out.placed.len(),
            batch.len(),
            "{mode:?} must return its best complete incumbent, not give up"
        );
        let obj = batch_comm_time_s(&cluster, &[], &out.placed);
        assert!(
            obj >= optimum,
            "{mode:?} incumbent {obj} beats the true optimum {optimum}"
        );
        assert!(obj.is_finite(), "{mode:?} incumbent must be a real plan");
    }
}
