//! Property tests: every placer only ever proposes valid placements, and
//! NetPack's DP never loses to a greedy plan on the same server values.

use netpack_placement::{
    Comb, FlowBalance, GpuBalance, LeastFragmentation, NetPackConfig, NetPackPlacer, OptimusLike,
    Placer, RandomPlacer, RunningJob, ScoringMode, ServerStats, TetrisLike, WorkerDp,
};
use netpack_model::Placement;
use netpack_topology::{Cluster, ClusterSpec, JobId, ServerId};
use netpack_workload::{Job, ModelKind};
use proptest::prelude::*;

fn arb_cluster() -> impl Strategy<Value = Cluster> {
    (1usize..3, 2usize..6, 1usize..5).prop_map(|(racks, spr, gps)| {
        Cluster::new(ClusterSpec {
            racks,
            servers_per_rack: spr,
            gpus_per_server: gps,
            ..ClusterSpec::paper_default()
        })
    })
}

fn arb_batch(max_gpus: usize) -> impl Strategy<Value = Vec<Job>> {
    proptest::collection::vec((1usize..9, 1u64..5), 1..6).prop_map(move |raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (gpus, value))| {
                Job::builder(JobId(i as u64), ModelKind::Vgg16, gpus.min(max_gpus.max(1)))
                    .value(value as f64)
                    .build()
            })
            .collect()
    })
}

fn all_placers() -> Vec<Box<dyn Placer>> {
    vec![
        Box::new(NetPackPlacer::default()),
        Box::new(GpuBalance),
        Box::new(FlowBalance),
        Box::new(LeastFragmentation),
        Box::new(OptimusLike),
        Box::new(TetrisLike),
        Box::new(Comb),
        Box::new(RandomPlacer::new(11)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every placement any placer emits validates against the cluster, and
    /// the batch GPU ledger is never over-committed.
    #[test]
    fn placements_are_always_valid(
        (cluster, batch) in arb_cluster().prop_flat_map(|c| {
            let total = c.total_gpus();
            (Just(c), arb_batch(total))
        })
    ) {
        for mut placer in all_placers() {
            let outcome = placer.place_batch(&cluster, &[], &batch);
            let mut scratch = cluster.clone();
            for (job, placement) in &outcome.placed {
                placement
                    .validate(&scratch, job.gpus)
                    .unwrap_or_else(|e| panic!("{}: invalid placement: {e}", placer.name()));
                for &(s, w) in placement.workers() {
                    scratch.allocate_gpus(s, w).expect("ledger over-commit");
                }
            }
            // Every batch job is either placed or deferred, exactly once.
            prop_assert_eq!(
                outcome.placed.len() + outcome.deferred.len(),
                batch.len(),
                "{} lost a job",
                placer.name()
            );
        }
    }

    /// The fast scorer (incremental water-filling, hot-spot memoization,
    /// threaded plan evaluation) must produce **bit-identical** batches to
    /// the sequential reference scorer: the same jobs placed, byte-equal
    /// `Placement`s (workers, PS servers, INA flags), and the same jobs
    /// deferred — across random clusters, batches, and running jobs.
    #[test]
    fn fast_and_sequential_scoring_agree(
        (cluster, batch, seed) in arb_cluster().prop_flat_map(|c| {
            let total = c.total_gpus();
            (Just(c), arb_batch(total), any::<u64>())
        })
    ) {
        // A deterministic pre-existing job, when it fits, exercises the
        // running-jobs path of both scorers.
        let mut scratch = cluster.clone();
        let mut running: Vec<RunningJob> = Vec::new();
        if cluster.num_servers() >= 3 && cluster.spec().gpus_per_server >= 1 {
            let w1 = ServerId(seed as usize % cluster.num_servers());
            let w2 = ServerId((seed as usize + 1) % cluster.num_servers());
            let ps = ServerId((seed as usize + 2) % cluster.num_servers());
            if w1 != w2 && scratch.allocate_gpus(w1, 1).is_ok()
                && scratch.allocate_gpus(w2, 1).is_ok()
            {
                running.push(RunningJob {
                    id: JobId(1_000),
                    gradient_gbits: 4.0,
                    placement: Placement::new(vec![(w1, 1), (w2, 1)], Some(ps)),
                });
            }
        }

        let mut fast = NetPackPlacer::new(NetPackConfig {
            scoring: ScoringMode::Fast,
            ..NetPackConfig::default()
        });
        let mut sequential = NetPackPlacer::new(NetPackConfig {
            scoring: ScoringMode::Sequential,
            ..NetPackConfig::default()
        });
        let out_fast = fast.place_batch(&scratch, &running, &batch);
        let out_seq = sequential.place_batch(&scratch, &running, &batch);

        prop_assert_eq!(out_fast.placed.len(), out_seq.placed.len());
        for ((jf, pf), (js, ps)) in out_fast.placed.iter().zip(&out_seq.placed) {
            prop_assert_eq!(jf.id, js.id);
            prop_assert_eq!(pf, ps, "placements diverged for {:?}", jf.id);
        }
        let ids = |jobs: &[Job]| jobs.iter().map(|j| j.id).collect::<Vec<_>>();
        prop_assert_eq!(ids(&out_fast.deferred), ids(&out_seq.deferred));
    }

    /// The DP's best exact-demand plan is at least as valuable as any
    /// greedy value-descending plan.
    #[test]
    fn dp_beats_greedy_on_value(
        stats in proptest::collection::vec(
            (1usize..5, -10.0f64..50.0, 0u32..10), 1..10),
        demand in 1usize..12,
    ) {
        let servers: Vec<ServerStats> = stats
            .iter()
            .enumerate()
            .map(|(i, &(gpus, value, flows))| ServerStats {
                id: ServerId(i),
                gpus_free: gpus,
                value,
                flows,
            })
            .collect();
        let slack = 4;
        let plans = WorkerDp::new(16).plans(&servers, demand, slack);
        // Greedy: take servers by value desc until demand covered.
        let mut by_value: Vec<&ServerStats> = servers.iter().collect();
        by_value.sort_by(|a, b| b.value.total_cmp(&a.value));
        let mut greedy_gpus = 0;
        let mut greedy_value = 0.0;
        for s in by_value {
            if greedy_gpus >= demand {
                break;
            }
            greedy_gpus += s.gpus_free;
            greedy_value += s.value;
        }
        if greedy_gpus >= demand && greedy_gpus <= demand + slack {
            let best = plans
                .iter()
                .filter(|p| p.gpus >= demand)
                .map(|p| p.value)
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(
                best >= greedy_value - 1e-9,
                "dp {best} < greedy {greedy_value}"
            );
        }
    }
}
