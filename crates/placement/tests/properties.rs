//! Property tests: every placer only ever proposes valid placements, and
//! NetPack's DP never loses to a greedy plan on the same server values.

use netpack_placement::{
    batch_comm_time_s, BatchMode, CandidateFilter, Comb, FlowBalance, GpuBalance,
    LeastFragmentation, NetPackConfig, NetPackPlacer, OptimusLike, Placer, RandomPlacer,
    RunningJob, ScoringMode, ServerStats, TetrisLike, TopoMode, WorkerDp,
};
use netpack_model::Placement;
use netpack_topology::{Cluster, ClusterSpec, JobId, ServerId};
use netpack_workload::{Job, ModelKind};
use proptest::prelude::*;

fn arb_cluster() -> impl Strategy<Value = Cluster> {
    (1usize..3, 2usize..6, 1usize..5).prop_map(|(racks, spr, gps)| {
        Cluster::new(ClusterSpec {
            racks,
            servers_per_rack: spr,
            gpus_per_server: gps,
            ..ClusterSpec::paper_default()
        })
    })
}

/// Random two- or three-tier fat-trees: 1–6 racks of mixed widths, with an
/// optional pod structure whose last pod may be ragged (racks not a
/// multiple of `racks_per_pod`) — the shapes the flat path shards by pod.
fn arb_fat_tree() -> impl Strategy<Value = Cluster> {
    // rpp = 0 encodes "no pod structure" (two-tier); 1..4 declares pods,
    // with the last pod ragged whenever racks % rpp != 0.
    (1usize..7, 2usize..6, 1usize..5, 0usize..4).prop_map(|(racks, spr, gps, rpp)| {
        Cluster::new(ClusterSpec {
            racks,
            servers_per_rack: spr,
            gpus_per_server: gps,
            racks_per_pod: (rpp > 0).then_some(rpp),
            ..ClusterSpec::paper_default()
        })
    })
}

fn arb_batch(max_gpus: usize) -> impl Strategy<Value = Vec<Job>> {
    proptest::collection::vec((1usize..9, 1u64..5), 1..6).prop_map(move |raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (gpus, value))| {
                Job::builder(JobId(i as u64), ModelKind::Vgg16, gpus.min(max_gpus.max(1)))
                    .value(value as f64)
                    .build()
            })
            .collect()
    })
}

fn all_placers() -> Vec<Box<dyn Placer>> {
    vec![
        Box::new(NetPackPlacer::default()),
        Box::new(GpuBalance),
        Box::new(FlowBalance),
        Box::new(LeastFragmentation),
        Box::new(OptimusLike),
        Box::new(TetrisLike),
        Box::new(Comb),
        Box::new(RandomPlacer::new(11)),
    ]
}

/// Acceptance pin for DESIGN.md §3.11: on every existing fig10 quick cell
/// (servers in {100, 400} x jobs in {50, 100}, same spec and deterministic
/// batch generator as the `fig10_placement_time` binary), the flat and
/// struct topology modes place bit-identical batches.
#[test]
fn fig10_quick_cells_agree_across_topo_modes() {
    let batch = |jobs: usize, max_gpus: usize, seed: u64| -> Vec<Job> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..jobs)
            .map(|i| {
                let gpus = (next() % max_gpus as u64).max(1) as usize;
                let model = netpack_workload::ModelKind::ALL[(next() % 6) as usize];
                Job::builder(JobId(i as u64), model, gpus).build()
            })
            .collect()
    };
    for servers in [100usize, 400] {
        let racks = 16.min(servers);
        let spec = ClusterSpec {
            racks,
            servers_per_rack: servers / racks,
            ..ClusterSpec::paper_default()
        };
        for jobs in [50usize, 100] {
            let cluster = Cluster::new(spec.clone());
            let b = batch(jobs, 32, 7);
            let mut flat = NetPackPlacer::new(NetPackConfig {
                topo: TopoMode::Flat,
                ..NetPackConfig::default()
            });
            let mut strct = NetPackPlacer::new(NetPackConfig {
                topo: TopoMode::Struct,
                ..NetPackConfig::default()
            });
            let out_flat = flat.place_batch(&cluster, &[], &b);
            let out_strct = strct.place_batch(&cluster, &[], &b);
            assert_eq!(
                out_flat.placed, out_strct.placed,
                "cell servers={servers}/jobs={jobs} diverged"
            );
            let ids = |jobs: &[Job]| jobs.iter().map(|j| j.id).collect::<Vec<_>>();
            assert_eq!(ids(&out_flat.deferred), ids(&out_strct.deferred));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every placement any placer emits validates against the cluster, and
    /// the batch GPU ledger is never over-committed.
    #[test]
    fn placements_are_always_valid(
        (cluster, batch) in arb_cluster().prop_flat_map(|c| {
            let total = c.total_gpus();
            (Just(c), arb_batch(total))
        })
    ) {
        for mut placer in all_placers() {
            let outcome = placer.place_batch(&cluster, &[], &batch);
            let mut scratch = cluster.clone();
            for (job, placement) in &outcome.placed {
                placement
                    .validate(&scratch, job.gpus)
                    .unwrap_or_else(|e| panic!("{}: invalid placement: {e}", placer.name()));
                for &(s, w) in placement.workers() {
                    scratch.allocate_gpus(s, w).expect("ledger over-commit");
                }
            }
            // Every batch job is either placed or deferred, exactly once.
            prop_assert_eq!(
                outcome.placed.len() + outcome.deferred.len(),
                batch.len(),
                "{} lost a job",
                placer.name()
            );
        }
    }

    /// The fast scorer (incremental water-filling, hot-spot memoization,
    /// threaded plan evaluation) must produce **bit-identical** batches to
    /// the sequential reference scorer: the same jobs placed, byte-equal
    /// `Placement`s (workers, PS servers, INA flags), and the same jobs
    /// deferred — across random clusters, batches, and running jobs.
    #[test]
    fn fast_and_sequential_scoring_agree(
        (cluster, batch, seed) in arb_cluster().prop_flat_map(|c| {
            let total = c.total_gpus();
            (Just(c), arb_batch(total), any::<u64>())
        })
    ) {
        // A deterministic pre-existing job, when it fits, exercises the
        // running-jobs path of both scorers.
        let mut scratch = cluster.clone();
        let mut running: Vec<RunningJob> = Vec::new();
        if cluster.num_servers() >= 3 && cluster.spec().gpus_per_server >= 1 {
            let w1 = ServerId(seed as usize % cluster.num_servers());
            let w2 = ServerId((seed as usize + 1) % cluster.num_servers());
            let ps = ServerId((seed as usize + 2) % cluster.num_servers());
            if w1 != w2 && scratch.allocate_gpus(w1, 1).is_ok()
                && scratch.allocate_gpus(w2, 1).is_ok()
            {
                running.push(RunningJob {
                    id: JobId(1_000),
                    gradient_gbits: 4.0,
                    placement: Placement::new(vec![(w1, 1), (w2, 1)], Some(ps)),
                });
            }
        }

        let mut fast = NetPackPlacer::new(NetPackConfig {
            scoring: ScoringMode::Fast,
            ..NetPackConfig::default()
        });
        let mut sequential = NetPackPlacer::new(NetPackConfig {
            scoring: ScoringMode::Sequential,
            ..NetPackConfig::default()
        });
        let out_fast = fast.place_batch(&scratch, &running, &batch);
        let out_seq = sequential.place_batch(&scratch, &running, &batch);

        prop_assert_eq!(out_fast.placed.len(), out_seq.placed.len());
        for ((jf, pf), (js, ps)) in out_fast.placed.iter().zip(&out_seq.placed) {
            prop_assert_eq!(jf.id, js.id);
            prop_assert_eq!(pf, ps, "placements diverged for {:?}", jf.id);
        }
        let ids = |jobs: &[Job]| jobs.iter().map(|j| j.id).collect::<Vec<_>>();
        prop_assert_eq!(ids(&out_fast.deferred), ids(&out_seq.deferred));
    }

}

proptest! {
    // 100 seeded instances: the acceptance count for the flat-topology
    // equivalence sweep (DESIGN.md §3.11).
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// The flat indexed-topology placement path (DESIGN.md §3.11) must be
    /// **bit-identical** to the struct reference across random fat-trees —
    /// two-tier (no pod structure) and three-tier with mixed/ragged pod
    /// sizes — on both the placements and the batch objective.
    #[test]
    fn flat_and_struct_topo_agree(
        (cluster, batch, seed) in arb_fat_tree().prop_flat_map(|c| {
            let total = c.total_gpus();
            (Just(c), arb_batch(total), any::<u64>())
        })
    ) {
        // A pre-existing running job (when it fits) exercises the
        // running-jobs path of both topology modes.
        let mut scratch = cluster.clone();
        let mut running: Vec<RunningJob> = Vec::new();
        if cluster.num_servers() >= 3 {
            let w1 = ServerId(seed as usize % cluster.num_servers());
            let w2 = ServerId((seed as usize + 1) % cluster.num_servers());
            let ps = ServerId((seed as usize + 2) % cluster.num_servers());
            if w1 != w2 && scratch.allocate_gpus(w1, 1).is_ok()
                && scratch.allocate_gpus(w2, 1).is_ok()
            {
                running.push(RunningJob {
                    id: JobId(1_000),
                    gradient_gbits: 4.0,
                    placement: Placement::new(vec![(w1, 1), (w2, 1)], Some(ps)),
                });
            }
        }

        for scoring in [ScoringMode::Fast, ScoringMode::Sequential] {
            let mut flat = NetPackPlacer::new(NetPackConfig {
                topo: TopoMode::Flat,
                scoring,
                ..NetPackConfig::default()
            });
            let mut strct = NetPackPlacer::new(NetPackConfig {
                topo: TopoMode::Struct,
                scoring,
                ..NetPackConfig::default()
            });
            let out_flat = flat.place_batch(&scratch, &running, &batch);
            let out_strct = strct.place_batch(&scratch, &running, &batch);

            prop_assert_eq!(out_flat.placed.len(), out_strct.placed.len());
            for ((jf, pf), (js, ps)) in out_flat.placed.iter().zip(&out_strct.placed) {
                prop_assert_eq!(jf.id, js.id);
                prop_assert_eq!(pf, ps, "placements diverged for {:?} ({:?})", jf.id, scoring);
            }
            let ids = |jobs: &[Job]| jobs.iter().map(|j| j.id).collect::<Vec<_>>();
            prop_assert_eq!(ids(&out_flat.deferred), ids(&out_strct.deferred));

            let obj_flat = batch_comm_time_s(&scratch, &running, &out_flat.placed);
            let obj_strct = batch_comm_time_s(&scratch, &running, &out_strct.placed);
            prop_assert_eq!(obj_flat.to_bits(), obj_strct.to_bits());
        }
    }

    /// The candidate filter's kept set must not depend on offer order: the
    /// per-pod shards of the flat path offer servers in pod order, the
    /// struct path in global id order, and both must keep the same
    /// candidates (value-desc, id-asc within a class, ties included).
    #[test]
    fn candidate_filter_ignores_insertion_order(
        stats in proptest::collection::vec((1usize..5, 0u32..6, 0usize..4), 1..40),
        demand in 1usize..12,
        seed in any::<u64>(),
    ) {
        // Deliberately coarse value grid so equal values collide often and
        // the (value desc, id asc) tie-break is what keeps the set stable.
        let servers: Vec<ServerStats> = stats
            .iter()
            .enumerate()
            .map(|(i, &(gpus, flows, value_step))| ServerStats {
                id: ServerId(i),
                gpus_free: gpus,
                value: value_step as f64 * 0.25,
                flows,
            })
            .collect();
        let mut shuffled = servers.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            shuffled.swap(i, (state % (i as u64 + 1)) as usize);
        }

        let mut a = CandidateFilter::new(4, demand, 4, Some(3));
        let mut b = CandidateFilter::new(4, demand, 4, Some(3));
        for s in &servers {
            a.offer(*s);
        }
        for s in &shuffled {
            b.offer(*s);
        }
        prop_assert_eq!(a.candidates(), b.candidates());
        prop_assert_eq!(a.offered(), b.offered());
        prop_assert_eq!(a.kept(), b.kept());
    }

}

/// Speculation-conflict stress: one heavily loaded rack, many equal-value
/// small jobs. Every speculated job targets the same least-loaded servers,
/// so commits invalidate the speculations behind them round after round —
/// the worst case for the conflict/re-score protocol (DESIGN.md §3.13).
#[test]
fn speculative_batching_survives_same_rack_conflicts() {
    let cluster = Cluster::new(ClusterSpec {
        racks: 1,
        servers_per_rack: 8,
        gpus_per_server: 4,
        ..ClusterSpec::paper_default()
    });
    // 40 jobs over 32 GPUs: the tail is deferred, covering the
    // deferral-while-stale commit path too.
    let batch: Vec<Job> = (0..40)
        .map(|i| Job::builder(JobId(i), ModelKind::Vgg16, 1 + (i as usize % 2)).build())
        .collect();
    let reference = NetPackPlacer::new(NetPackConfig {
        topo: TopoMode::Flat,
        batch: BatchMode::Seq,
        ..NetPackConfig::default()
    })
    .place_batch(&cluster, &[], &batch);
    for threads in [2usize, 4] {
        let mut placer = NetPackPlacer::new(NetPackConfig {
            topo: TopoMode::Flat,
            batch: BatchMode::Spec,
            threads: Some(threads),
            ..NetPackConfig::default()
        });
        let out = placer.place_batch(&cluster, &[], &batch);
        assert_eq!(out.placed, reference.placed, "threads={threads}");
        let ids = |jobs: &[Job]| jobs.iter().map(|j| j.id).collect::<Vec<_>>();
        assert_eq!(ids(&out.deferred), ids(&reference.deferred));
        // The protocol must actually have speculated here (wide windows),
        // not silently degenerated to the sequential loop.
        assert!(
            placer.perf().counter("spec_rounds") > 0,
            "spec engine never ran a round at threads={threads}"
        );
    }
}

proptest! {
    // 100 seeded instances: the acceptance count for the speculative-batch
    // equivalence sweep (DESIGN.md §3.13).
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// The speculative parallel batch engine (`NETPACK_BATCH=spec`,
    /// DESIGN.md §3.13) must be **bit-identical** to the sequential commit
    /// loop across random fat-trees and worker counts {1, 2, 4}: the same
    /// jobs placed with byte-equal `Placement`s, the same deferrals, and
    /// the same batch-objective bits.
    #[test]
    fn speculative_and_sequential_batching_agree(
        (cluster, batch) in arb_fat_tree().prop_flat_map(|c| {
            let total = c.total_gpus();
            (Just(c), arb_batch(total))
        })
    ) {
        let reference = NetPackPlacer::new(NetPackConfig {
            topo: TopoMode::Flat,
            batch: BatchMode::Seq,
            ..NetPackConfig::default()
        })
        .place_batch(&cluster, &[], &batch);
        let obj_ref = batch_comm_time_s(&cluster, &[], &reference.placed);
        for threads in [1usize, 2, 4] {
            let mut spec = NetPackPlacer::new(NetPackConfig {
                topo: TopoMode::Flat,
                batch: BatchMode::Spec,
                threads: Some(threads),
                ..NetPackConfig::default()
            });
            let out = spec.place_batch(&cluster, &[], &batch);
            prop_assert_eq!(out.placed.len(), reference.placed.len());
            for ((jf, pf), (js, ps)) in out.placed.iter().zip(&reference.placed) {
                prop_assert_eq!(jf.id, js.id);
                prop_assert_eq!(pf, ps, "placements diverged for {:?} at threads={}", jf.id, threads);
            }
            let ids = |jobs: &[Job]| jobs.iter().map(|j| j.id).collect::<Vec<_>>();
            prop_assert_eq!(ids(&out.deferred), ids(&reference.deferred));
            let obj = batch_comm_time_s(&cluster, &[], &out.placed);
            prop_assert_eq!(obj.to_bits(), obj_ref.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The DP's best exact-demand plan is at least as valuable as any
    /// greedy value-descending plan.
    #[test]
    fn dp_beats_greedy_on_value(
        stats in proptest::collection::vec(
            (1usize..5, -10.0f64..50.0, 0u32..10), 1..10),
        demand in 1usize..12,
    ) {
        let servers: Vec<ServerStats> = stats
            .iter()
            .enumerate()
            .map(|(i, &(gpus, value, flows))| ServerStats {
                id: ServerId(i),
                gpus_free: gpus,
                value,
                flows,
            })
            .collect();
        let slack = 4;
        let plans = WorkerDp::new(16).plans(&servers, demand, slack);
        // Greedy: take servers by value desc until demand covered.
        let mut by_value: Vec<&ServerStats> = servers.iter().collect();
        by_value.sort_by(|a, b| b.value.total_cmp(&a.value));
        let mut greedy_gpus = 0;
        let mut greedy_value = 0.0;
        for s in by_value {
            if greedy_gpus >= demand {
                break;
            }
            greedy_gpus += s.gpus_free;
            greedy_value += s.value;
        }
        if greedy_gpus >= demand && greedy_gpus <= demand + slack {
            let best = plans
                .iter()
                .filter(|p| p.gpus >= demand)
                .map(|p| p.value)
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(
                best >= greedy_value - 1e-9,
                "dp {best} < greedy {greedy_value}"
            );
        }
    }
}
