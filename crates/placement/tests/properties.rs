//! Property tests: every placer only ever proposes valid placements, and
//! NetPack's DP never loses to a greedy plan on the same server values.

use netpack_placement::{
    Comb, FlowBalance, GpuBalance, LeastFragmentation, NetPackPlacer, OptimusLike, Placer,
    RandomPlacer, ServerStats, TetrisLike, WorkerDp,
};
use netpack_topology::{Cluster, ClusterSpec, JobId, ServerId};
use netpack_workload::{Job, ModelKind};
use proptest::prelude::*;

fn arb_cluster() -> impl Strategy<Value = Cluster> {
    (1usize..3, 2usize..6, 1usize..5).prop_map(|(racks, spr, gps)| {
        Cluster::new(ClusterSpec {
            racks,
            servers_per_rack: spr,
            gpus_per_server: gps,
            ..ClusterSpec::paper_default()
        })
    })
}

fn arb_batch(max_gpus: usize) -> impl Strategy<Value = Vec<Job>> {
    proptest::collection::vec((1usize..9, 1u64..5), 1..6).prop_map(move |raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (gpus, value))| {
                Job::builder(JobId(i as u64), ModelKind::Vgg16, gpus.min(max_gpus.max(1)))
                    .value(value as f64)
                    .build()
            })
            .collect()
    })
}

fn all_placers() -> Vec<Box<dyn Placer>> {
    vec![
        Box::new(NetPackPlacer::default()),
        Box::new(GpuBalance),
        Box::new(FlowBalance),
        Box::new(LeastFragmentation),
        Box::new(OptimusLike),
        Box::new(TetrisLike),
        Box::new(Comb),
        Box::new(RandomPlacer::new(11)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every placement any placer emits validates against the cluster, and
    /// the batch GPU ledger is never over-committed.
    #[test]
    fn placements_are_always_valid(
        (cluster, batch) in arb_cluster().prop_flat_map(|c| {
            let total = c.total_gpus();
            (Just(c), arb_batch(total))
        })
    ) {
        for mut placer in all_placers() {
            let outcome = placer.place_batch(&cluster, &[], &batch);
            let mut scratch = cluster.clone();
            for (job, placement) in &outcome.placed {
                placement
                    .validate(&scratch, job.gpus)
                    .unwrap_or_else(|e| panic!("{}: invalid placement: {e}", placer.name()));
                for &(s, w) in placement.workers() {
                    scratch.allocate_gpus(s, w).expect("ledger over-commit");
                }
            }
            // Every batch job is either placed or deferred, exactly once.
            prop_assert_eq!(
                outcome.placed.len() + outcome.deferred.len(),
                batch.len(),
                "{} lost a job",
                placer.name()
            );
        }
    }

    /// The DP's best exact-demand plan is at least as valuable as any
    /// greedy value-descending plan.
    #[test]
    fn dp_beats_greedy_on_value(
        stats in proptest::collection::vec(
            (1usize..5, -10.0f64..50.0, 0u32..10), 1..10),
        demand in 1usize..12,
    ) {
        let servers: Vec<ServerStats> = stats
            .iter()
            .enumerate()
            .map(|(i, &(gpus, value, flows))| ServerStats {
                id: ServerId(i),
                gpus_free: gpus,
                value,
                flows,
            })
            .collect();
        let slack = 4;
        let plans = WorkerDp::new(16).plans(&servers, demand, slack);
        // Greedy: take servers by value desc until demand covered.
        let mut by_value: Vec<&ServerStats> = servers.iter().collect();
        by_value.sort_by(|a, b| b.value.total_cmp(&a.value));
        let mut greedy_gpus = 0;
        let mut greedy_value = 0.0;
        for s in by_value {
            if greedy_gpus >= demand {
                break;
            }
            greedy_gpus += s.gpus_free;
            greedy_value += s.value;
        }
        if greedy_gpus >= demand && greedy_gpus <= demand + slack {
            let best = plans
                .iter()
                .filter(|p| p.gpus >= demand)
                .map(|p| p.value)
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(
                best >= greedy_value - 1e-9,
                "dp {best} < greedy {greedy_value}"
            );
        }
    }
}
