//! Job-subset selection (Algorithm 2, step 1): a 0/1 knapsack over GPUs.

use netpack_workload::Job;

/// Select the subset of `batch` to place this epoch: a 0/1 knapsack with
/// the cluster's free GPUs as capacity, each job weighing its GPU demand
/// and valued at its (starvation-aged) user value.
///
/// Returns indices into `batch`, in ascending order. Jobs demanding more
/// GPUs than `free_gpus` can never fit and are excluded outright.
///
/// The DP is the standard `O(|Jobs| × |GPUs|)` table the paper cites
/// (Pisinger); values are compared with a deterministic tie-break toward
/// fewer GPUs used so results are stable across runs.
///
/// # Example
///
/// ```
/// use netpack_placement::select_job_subset;
/// use netpack_workload::{Job, ModelKind};
/// use netpack_topology::JobId;
///
/// let batch = vec![
///     Job::builder(JobId(0), ModelKind::Vgg16, 6).value(1.0).build(),
///     Job::builder(JobId(1), ModelKind::Vgg16, 4).value(2.0).build(),
///     Job::builder(JobId(2), ModelKind::Vgg16, 4).value(2.0).build(),
/// ];
/// // 8 free GPUs: the two high-value 4-GPU jobs beat the 6-GPU job.
/// assert_eq!(select_job_subset(&batch, 8), vec![1, 2]);
/// ```
pub fn select_job_subset(batch: &[Job], free_gpus: usize) -> Vec<usize> {
    if batch.is_empty() || free_gpus == 0 {
        return Vec::new();
    }
    let eligible: Vec<usize> = (0..batch.len())
        .filter(|&i| batch[i].gpus <= free_gpus)
        .collect();
    if eligible.is_empty() {
        return Vec::new();
    }
    // Take-all fast path: when every eligible job fits at once and every
    // value clears the DP's tie-break epsilon, the table provably selects
    // all of them (each row strictly improves at every capacity ≥ its
    // prefix weight), so the O(|Jobs| × |GPUs|) sweep — 20M cells on a
    // 200K-GPU cluster — is skipped without changing a single pick.
    let total: usize = eligible.iter().map(|&i| batch[i].gpus).sum();
    if total <= free_gpus && eligible.iter().all(|&i| batch[i].value > 1e-12) {
        return eligible;
    }
    // value[w]: best total value using capacity exactly <= w.
    // choice[item][w]: whether eligible[item] is taken at capacity w.
    let n = eligible.len();
    let cap = free_gpus;
    let mut value = vec![0.0f64; cap + 1];
    let mut used = vec![0usize; cap + 1];
    let mut choice = vec![false; n * (cap + 1)];
    for (it, &bi) in eligible.iter().enumerate() {
        let w = batch[bi].gpus;
        let v = batch[bi].value;
        for c in (w..=cap).rev() {
            let cand = value[c - w] + v;
            let cand_used = used[c - w] + w;
            let better = cand > value[c] + 1e-12
                || ((cand - value[c]).abs() <= 1e-12 && cand_used < used[c]);
            if better {
                value[c] = cand;
                used[c] = cand_used;
                choice[it * (cap + 1) + c] = true;
            }
        }
    }
    // Backtrack from the full capacity.
    let mut c = cap;
    let mut picked = Vec::new();
    for it in (0..n).rev() {
        if choice[it * (cap + 1) + c] {
            picked.push(eligible[it]);
            c -= batch[eligible[it]].gpus;
        }
    }
    picked.sort_unstable();
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpack_topology::JobId;
    use netpack_workload::ModelKind;

    fn job(id: u64, gpus: usize, value: f64) -> Job {
        Job::builder(JobId(id), ModelKind::AlexNet, gpus)
            .value(value)
            .build()
    }

    #[test]
    fn picks_the_max_value_subset() {
        let batch = vec![job(0, 3, 4.0), job(1, 4, 5.0), job(2, 2, 3.0)];
        // Capacity 5: {0,2} worth 7 beats {1} worth 5.
        assert_eq!(select_job_subset(&batch, 5), vec![0, 2]);
    }

    #[test]
    fn oversized_jobs_are_excluded() {
        let batch = vec![job(0, 10, 100.0), job(1, 2, 1.0)];
        assert_eq!(select_job_subset(&batch, 4), vec![1]);
    }

    #[test]
    fn empty_inputs_yield_empty_subsets() {
        assert!(select_job_subset(&[], 8).is_empty());
        assert!(select_job_subset(&[job(0, 1, 1.0)], 0).is_empty());
    }

    #[test]
    fn everything_fits_when_capacity_allows() {
        let batch = vec![job(0, 2, 1.0), job(1, 2, 1.0), job(2, 2, 1.0)];
        assert_eq!(select_job_subset(&batch, 6), vec![0, 1, 2]);
    }

    #[test]
    fn ties_prefer_fewer_gpus() {
        // Same value, capacity for either; the 2-GPU job wins the tie.
        let batch = vec![job(0, 4, 2.0), job(1, 2, 2.0)];
        let picked = select_job_subset(&batch, 4);
        assert_eq!(picked, vec![1]);
    }

    #[test]
    fn take_all_fast_path_matches_the_dp() {
        // Mixed instances straddling the fast-path condition: whenever
        // everything fits, the answer must equal the DP's (all eligible),
        // including zero-value jobs that the DP's epsilon tie-break drops.
        let all_fit = vec![job(0, 3, 2.0), job(1, 5, 0.5), job(2, 1, 4.0)];
        assert_eq!(select_job_subset(&all_fit, 9), vec![0, 1, 2]);
        // A sub-epsilon value never beats the "fewer GPUs used" tie-break:
        // the slow path drops such a job, so the fast path must not engage.
        let with_eps = vec![job(0, 3, 2.0), job(1, 5, 1e-13)];
        assert_eq!(select_job_subset(&with_eps, 9), vec![0]);
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        // Deterministic pseudo-random small instances.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _case in 0..200 {
            let n = (next() % 7 + 1) as usize;
            let cap = (next() % 12 + 1) as usize;
            let batch: Vec<Job> = (0..n)
                .map(|i| {
                    job(
                        i as u64,
                        (next() % 6 + 1) as usize,
                        ((next() % 9) + 1) as f64,
                    )
                })
                .collect();
            let picked = select_job_subset(&batch, cap);
            let picked_value: f64 = picked.iter().map(|&i| batch[i].value).sum();
            let picked_weight: usize = picked.iter().map(|&i| batch[i].gpus).sum();
            assert!(picked_weight <= cap, "over capacity");
            // Brute force best value.
            let mut best = 0.0f64;
            for mask in 0u32..(1 << n) {
                let (mut w, mut v) = (0usize, 0.0f64);
                for (i, job) in batch.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        w += job.gpus;
                        v += job.value;
                    }
                }
                if w <= cap {
                    best = best.max(v);
                }
            }
            assert!(
                (picked_value - best).abs() < 1e-9,
                "dp {picked_value} vs brute {best}"
            );
        }
    }
}
