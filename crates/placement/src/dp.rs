//! Worker-placement dynamic program (Algorithm 2, `WorkerPlacement`).
//!
//! A knapsack-style DP over servers with a two-dimensional weight
//! `(f, g)`: `V[s][f][g]` is the best total server value achievable by
//! choosing (all free GPUs of) a subset of the first `s` servers whose
//! total GPUs is `g` and whose maximum per-server steady-state flow count
//! is `f`. Tracking `f` is what lets the PS-placement step punish plans
//! with hot-spot servers.

use netpack_topology::ServerId;

/// Per-server inputs to the DP: the server's weight (its free GPUs, taken
/// all-or-none), its heuristic value, and its steady-state flow count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerStats {
    /// Which server this is.
    pub id: ServerId,
    /// Free GPUs (the all-or-none weight).
    pub gpus_free: usize,
    /// Heuristic value `bw̄ − (C − bw̄)/(flows+1)` (Algorithm 2 line 16).
    pub value: f64,
    /// Steady-state flow count on the server's access link.
    pub flows: u32,
}

/// One candidate worker plan produced by the DP: a server subset covering
/// `gpus ≥ demand` GPUs.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerPlan {
    /// Chosen servers (each contributes all of its free GPUs).
    pub servers: Vec<ServerId>,
    /// Total GPUs the plan provides (may exceed the demand by up to the
    /// per-server GPU count; the caller releases the surplus).
    pub gpus: usize,
    /// The plan's `f` coordinate: maximum per-server flow count among the
    /// chosen servers (clamped to the DP's `fs_max`).
    pub max_flows: u32,
    /// Total heuristic value of the chosen servers.
    pub value: f64,
}

/// The worker-placement dynamic program.
///
/// `fs_max` clamps the flow dimension (the paper bounds `FS_max` by a
/// constant); `track_flows = false` collapses the `f` dimension entirely,
/// which is the ablation knob for validating the two-dimensional weight.
///
/// # Example
///
/// ```
/// use netpack_placement::{ServerStats, WorkerDp};
/// use netpack_topology::ServerId;
///
/// let servers = vec![
///     ServerStats { id: ServerId(0), gpus_free: 4, value: 10.0, flows: 0 },
///     ServerStats { id: ServerId(1), gpus_free: 4, value: 5.0, flows: 2 },
///     ServerStats { id: ServerId(2), gpus_free: 4, value: 8.0, flows: 1 },
/// ];
/// let dp = WorkerDp::new(8);
/// let plans = dp.plans(&servers, 8, 4);
/// // The best exact-8-GPU plan picks the two most valuable servers.
/// let best = plans.iter().filter(|p| p.gpus == 8).max_by(|a, b| a.value.total_cmp(&b.value)).unwrap();
/// assert_eq!(best.servers, vec![ServerId(0), ServerId(2)]);
/// ```
#[derive(Debug, Clone)]
pub struct WorkerDp {
    fs_max: u32,
    track_flows: bool,
}

impl WorkerDp {
    /// DP with the flow dimension clamped to `fs_max` (must be ≤ 254).
    ///
    /// # Panics
    ///
    /// Panics if `fs_max > 254` (the decision table stores predecessor `f`
    /// coordinates in a `u8`, reserving 255 as "not chosen").
    pub fn new(fs_max: u32) -> Self {
        assert!(fs_max <= 254, "fs_max must fit in a u8");
        WorkerDp {
            fs_max,
            track_flows: true,
        }
    }

    /// Ablation variant: ignore flow counts (one-dimensional knapsack).
    pub fn without_flow_dimension() -> Self {
        WorkerDp {
            fs_max: 0,
            track_flows: false,
        }
    }

    /// Whether the `f` dimension is tracked.
    pub fn tracks_flows(&self) -> bool {
        self.track_flows
    }

    /// Run the DP and return every feasible plan with
    /// `demand ≤ gpus ≤ demand + slack`, one per reachable `(f, g)` cell.
    ///
    /// Returns an empty vector when no server subset covers the demand.
    pub fn plans(&self, servers: &[ServerStats], demand: usize, slack: usize) -> Vec<WorkerPlan> {
        if demand == 0 {
            return vec![WorkerPlan {
                servers: Vec::new(),
                gpus: 0,
                max_flows: 0,
                value: 0.0,
            }];
        }
        let nf = if self.track_flows {
            self.fs_max as usize + 1
        } else {
            1
        };
        let g_max = demand + slack;
        let width = g_max + 1;
        let cells = nf * width;
        const NOT_CHOSEN: u8 = 0xFF;

        let mut value = vec![f64::NEG_INFINITY; cells];
        value[0] = 0.0;
        // decisions[s][f * width + g] = predecessor f if server s chosen.
        let mut decisions = vec![NOT_CHOSEN; servers.len() * cells];
        // Highest f row holding any finite cell; rows above it are all
        // -inf and can be skipped without changing any result.
        let mut top = 0usize;

        // In-place 0/1 update. Taking server `s` moves (i, g-w) to
        // (max(i, clamped), g), so writes land in rows >= clamped while
        // reads come from rows <= the written row; walking g downward
        // keeps every read a pre-update value, exactly as a double
        // buffer would. Candidates for a cell are applied in ascending
        // `i` order with a strict `>` test, so tie-breaks (and hence the
        // backtracked plans) match the buffered formulation bit for bit.
        for (si, srv) in servers.iter().enumerate() {
            let w = srv.gpus_free;
            if w == 0 || w > g_max {
                continue;
            }
            let clamped = if self.track_flows {
                srv.flows.min(self.fs_max) as usize
            } else {
                0
            };
            let dec = &mut decisions[si * cells..(si + 1) * cells];
            // Rows above `clamped`: the only candidate is i == f.
            for f in clamped + 1..=top.min(nf - 1) {
                let row = f * width;
                for g in (w..=g_max).rev() {
                    let prev = value[row + g - w];
                    if prev == f64::NEG_INFINITY {
                        continue;
                    }
                    let cand = prev + srv.value;
                    if cand > value[row + g] {
                        value[row + g] = cand;
                        dec[row + g] = f as u8;
                    }
                }
            }
            // Row `clamped` collects every i <= clamped (rows above `top`
            // are all -inf and contribute nothing).
            let row = clamped * width;
            for g in (w..=g_max).rev() {
                for i in 0..=clamped.min(top) {
                    let prev = value[i * width + g - w];
                    if prev == f64::NEG_INFINITY {
                        continue;
                    }
                    let cand = prev + srv.value;
                    if cand > value[row + g] {
                        value[row + g] = cand;
                        dec[row + g] = i as u8;
                    }
                }
            }
            top = top.max(clamped);
        }

        // Collect and backtrack every feasible (f, g) cell in range.
        let mut plans = Vec::new();
        for f in 0..nf {
            for g in demand..=g_max {
                let cell = f * width + g;
                if value[cell] == f64::NEG_INFINITY {
                    continue;
                }
                let mut chosen = Vec::new();
                let (mut cf, mut cg) = (f, g);
                for si in (0..servers.len()).rev() {
                    let d = decisions[si * cells + cf * width + cg];
                    if d != NOT_CHOSEN {
                        chosen.push(servers[si].id);
                        cg -= servers[si].gpus_free;
                        cf = d as usize;
                    }
                }
                chosen.reverse();
                plans.push(WorkerPlan {
                    servers: chosen,
                    gpus: g,
                    max_flows: f as u32,
                    value: value[cell],
                });
            }
        }
        plans
    }
}

impl Default for WorkerDp {
    fn default() -> Self {
        WorkerDp::new(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn srv(id: usize, gpus: usize, value: f64, flows: u32) -> ServerStats {
        ServerStats {
            id: ServerId(id),
            gpus_free: gpus,
            value,
            flows,
        }
    }

    fn best_exact(plans: &[WorkerPlan], gpus: usize) -> Option<&WorkerPlan> {
        plans
            .iter()
            .filter(|p| p.gpus == gpus)
            .max_by(|a, b| a.value.total_cmp(&b.value))
    }

    #[test]
    fn picks_highest_value_subset_for_exact_demand() {
        let servers = vec![
            srv(0, 2, 3.0, 0),
            srv(1, 2, 9.0, 0),
            srv(2, 2, 5.0, 0),
            srv(3, 2, 1.0, 0),
        ];
        let plans = WorkerDp::new(8).plans(&servers, 4, 0);
        let best = best_exact(&plans, 4).unwrap();
        assert_eq!(best.servers, vec![ServerId(1), ServerId(2)]);
        assert_eq!(best.value, 14.0);
    }

    #[test]
    fn overshoot_plans_cover_awkward_demands() {
        // Servers hold 4 GPUs each; demand 6 is only coverable with 8.
        let servers = vec![srv(0, 4, 1.0, 0), srv(1, 4, 2.0, 0)];
        let plans = WorkerDp::new(8).plans(&servers, 6, 4);
        assert!(best_exact(&plans, 6).is_none());
        let best = best_exact(&plans, 8).unwrap();
        assert_eq!(best.gpus, 8);
        assert_eq!(best.servers.len(), 2);
    }

    #[test]
    fn infeasible_demand_returns_no_plans() {
        let servers = vec![srv(0, 2, 1.0, 0)];
        assert!(WorkerDp::new(8).plans(&servers, 4, 2).is_empty());
    }

    #[test]
    fn f_dimension_separates_hot_and_cold_plans() {
        // Two ways to get 4 GPUs: hot server (8 flows, value 10) or two
        // cold servers (0 flows, value 4 each).
        let servers = vec![srv(0, 4, 10.0, 8), srv(1, 2, 4.0, 0), srv(2, 2, 4.0, 0)];
        let plans = WorkerDp::new(16).plans(&servers, 4, 0);
        let hot = plans.iter().find(|p| p.max_flows == 8).unwrap();
        let cold = plans.iter().find(|p| p.max_flows == 0).unwrap();
        assert_eq!(hot.servers, vec![ServerId(0)]);
        assert_eq!(cold.servers, vec![ServerId(1), ServerId(2)]);
        assert_eq!(cold.value, 8.0);
        // Both survive so the PS step can weigh value against hot-spots.
    }

    #[test]
    fn flows_clamp_to_fs_max() {
        let servers = vec![srv(0, 2, 1.0, 100)];
        let plans = WorkerDp::new(4).plans(&servers, 2, 0);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].max_flows, 4);
    }

    #[test]
    fn without_flow_dimension_collapses_to_plain_knapsack() {
        let servers = vec![srv(0, 2, 1.0, 9), srv(1, 2, 5.0, 0)];
        let dp = WorkerDp::without_flow_dimension();
        assert!(!dp.tracks_flows());
        let plans = dp.plans(&servers, 2, 0);
        // A single (f=0, g=2) cell holding the better server.
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].servers, vec![ServerId(1)]);
        assert_eq!(plans[0].max_flows, 0);
    }

    #[test]
    fn zero_demand_yields_the_empty_plan() {
        let plans = WorkerDp::new(8).plans(&[], 0, 4);
        assert_eq!(plans.len(), 1);
        assert!(plans[0].servers.is_empty());
    }

    #[test]
    fn negative_values_still_cover_demand() {
        let servers = vec![srv(0, 2, -5.0, 0), srv(1, 2, -1.0, 0)];
        let plans = WorkerDp::new(8).plans(&servers, 4, 0);
        let best = best_exact(&plans, 4).unwrap();
        assert_eq!(best.value, -6.0);
        assert_eq!(best.servers.len(), 2);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut state = 42u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..100 {
            let n = (next() % 6 + 1) as usize;
            let servers: Vec<ServerStats> = (0..n)
                .map(|i| {
                    srv(
                        i,
                        (next() % 4 + 1) as usize,
                        (next() % 20) as f64 - 5.0,
                        (next() % 6) as u32,
                    )
                })
                .collect();
            let demand = (next() % 8 + 1) as usize;
            let slack = 4;
            let plans = WorkerDp::new(8).plans(&servers, demand, slack);
            // Brute force: every subset; compare best value per (f, g).
            let mut best: std::collections::HashMap<(u32, usize), f64> =
                std::collections::HashMap::new();
            for mask in 0u32..(1 << n) {
                let (mut g, mut v, mut f) = (0usize, 0.0f64, 0u32);
                for (i, s) in servers.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        g += s.gpus_free;
                        v += s.value;
                        f = f.max(s.flows.min(8));
                    }
                }
                if g >= demand && g <= demand + slack {
                    let e = best.entry((f, g)).or_insert(f64::NEG_INFINITY);
                    *e = e.max(v);
                }
            }
            assert_eq!(plans.len(), best.len(), "cell count mismatch");
            for p in &plans {
                let b = best[&(p.max_flows, p.gpus)];
                assert!(
                    (p.value - b).abs() < 1e-9,
                    "plan value {} vs brute {b}",
                    p.value
                );
                // The reported server set must reproduce the coordinates.
                let g: usize = p
                    .servers
                    .iter()
                    .map(|id| servers.iter().find(|s| s.id == *id).unwrap().gpus_free)
                    .sum();
                assert_eq!(g, p.gpus);
            }
        }
    }
}
