//! Persistent placement session — the continuous-service fast path.
//!
//! [`Placer::place_batch`] is stateless: every call rebuilds the flat
//! topology mirror and re-solves the water-filled steady state of the
//! whole running set before placing a single job. A closed-batch
//! experiment pays that once; a long-running service placing thousands of
//! small batches pays it on every one, and at warehouse scale the rebuild
//! dwarfs the placement itself. [`NetPackSession`] keeps all of that state
//! warm across batches:
//!
//! * the **authoritative GPU ledger** (the [`Cluster`]) lives inside the
//!   session, debited on placement and credited on completion;
//! * the **flat arenas** ([`FlatBatch`]: topology mirror, free-GPU ledger,
//!   class tables, stamp masks) are built once and mutated in step with
//!   the cluster;
//! * the **warm water-filling estimator** ([`IncrementalEstimator`])
//!   mirrors the running set in insertion order, so a batch starts from
//!   the converged steady state instead of re-solving it.
//!
//! The results are **bit-identical** to driving a `JobManager` +
//! [`NetPackPlacer`] through the same sequence of batches and completions
//! (pinned by the `session_equivalence` integration test): the estimator's
//! push/pop/remove contract guarantees its state matches a from-scratch
//! solve over the surviving insertion order, and the session replays
//! exactly the float-op sequence of
//! [`place_batch_flat`](NetPackPlacer::place_batch) — including the
//! selective-INA step, after which placements whose INA flag changed are
//! popped off the estimator tail and re-pushed with their final flags so
//! the warm state stays equal to the manager's.

use crate::flat::FlatBatch;
use crate::knapsack::select_job_subset;
use crate::netpack::{BatchMode, NetPackConfig, NetPackPlacer, ScoringMode};
use crate::placer::{BatchOutcome, RunningJob};
use crate::spec::{place_batch_spec, SessionWorld};
use netpack_metrics::{PerfCounters, Stopwatch};
use netpack_topology::{Cluster, JobId, TopoMode, TopologyError};
use netpack_waterfill::{IncrementalEstimator, PlacedJob, SteadyState};
use netpack_workload::Job;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors from the session's bookkeeping API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SessionError {
    /// [`NetPackSession::complete`] was called for a job that is not
    /// running in this session.
    UnknownJob(JobId),
    /// The GPU ledger rejected a release (internal inconsistency — the
    /// session's books no longer match the cluster's).
    Ledger(TopologyError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownJob(id) => write!(f, "job {id} is not running"),
            SessionError::Ledger(e) => write!(f, "gpu ledger error: {e}"),
        }
    }
}

impl Error for SessionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SessionError::Ledger(e) => Some(e),
            SessionError::UnknownJob(_) => None,
        }
    }
}

/// A long-lived NetPack placement engine over one cluster: place batches,
/// complete jobs, never rebuild. See the [module docs](self) for what is
/// kept warm and why the results match the stateless path bit for bit.
///
/// # Example
///
/// ```
/// use netpack_placement::{NetPackConfig, NetPackSession};
/// use netpack_topology::{Cluster, ClusterSpec, JobId};
/// use netpack_workload::{Job, ModelKind};
///
/// let cluster = Cluster::new(ClusterSpec::paper_testbed());
/// let mut session = NetPackSession::new(cluster, NetPackConfig::default());
/// let job = Job::builder(JobId(0), ModelKind::Vgg16, 4).build();
/// let outcome = session.place_batch(std::slice::from_ref(&job));
/// assert_eq!(outcome.placed.len(), 1);
/// session.complete(JobId(0)).unwrap();
/// assert!(session.running().is_empty());
/// ```
pub struct NetPackSession {
    placer: NetPackPlacer,
    cluster: Cluster,
    fb: FlatBatch,
    /// Warm estimator; insertion order always mirrors `running` — the
    /// bit-identity contract with a from-scratch solve depends on it.
    tracker: IncrementalEstimator,
    running: Vec<RunningJob>,
    /// Id → position in `running` for O(log n) completion lookup.
    index: BTreeMap<JobId, usize>,
    /// Per-batch scratch: the INA flag each placement carried when it was
    /// pushed onto the estimator, to detect selective-INA toggles.
    pushed_ina: Vec<bool>,
}

impl fmt::Debug for NetPackSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetPackSession")
            .field("running", &self.running.len())
            .field("free_gpus", &self.cluster.free_gpus())
            .finish()
    }
}

impl NetPackSession {
    /// Open a session over `cluster` with no jobs running. The session
    /// always uses the flat-topology fast path with incremental scoring
    /// (`topo` and `scoring` in `config` are overridden) — the other
    /// modes exist as cross-checking references for the stateless path,
    /// and the session's own equivalence is pinned against a `JobManager`
    /// run instead.
    pub fn new(cluster: Cluster, config: NetPackConfig) -> Self {
        let config = NetPackConfig {
            topo: TopoMode::Flat,
            scoring: ScoringMode::Fast,
            ..config
        };
        let fb = FlatBatch::new(&cluster);
        let tracker = IncrementalEstimator::new(&cluster, &[]);
        NetPackSession {
            placer: NetPackPlacer::new(config),
            cluster,
            fb,
            tracker,
            running: Vec::new(),
            index: BTreeMap::new(),
            pushed_ina: Vec::new(),
        }
    }

    /// The cluster; its GPU ledger reflects every running job.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Jobs currently running, in placement (= estimator insertion) order.
    pub fn running(&self) -> &[RunningJob] {
        &self.running
    }

    /// Whether `id` is running in this session.
    pub fn is_running(&self, id: JobId) -> bool {
        self.index.contains_key(&id)
    }

    /// Free GPUs on the authoritative ledger.
    pub fn free_gpus(&self) -> usize {
        self.cluster.free_gpus()
    }

    /// The warm water-filled steady state over the running set.
    pub fn state(&self) -> &SteadyState {
        self.tracker.state()
    }

    /// Perf counters accumulated by the underlying placer (same names as
    /// [`NetPackPlacer::perf`], plus the batch-level phases).
    pub fn perf(&self) -> &PerfCounters {
        self.placer.perf()
    }

    /// Move the accumulated perf counters out, leaving a fresh set.
    pub fn take_perf(&mut self) -> PerfCounters {
        self.placer.take_perf()
    }

    /// Place a batch against the warm state: Algorithm 2's four steps,
    /// identical float-for-float to the stateless flat path, with the
    /// running set, flat arenas, and steady state carried over instead of
    /// rebuilt. Placed jobs join the running set; callers retire them via
    /// [`complete`](Self::complete).
    ///
    /// The caller owns batch policy (ordering is canonicalized internally
    /// exactly as the placer does: value-descending, ties by id) and
    /// deferred-job handling: deferred jobs are returned, not retried.
    pub fn place_batch(&mut self, batch: &[Job]) -> BatchOutcome {
        let mut perf = std::mem::take(&mut self.placer.perf);
        let batch_start = Stopwatch::start();
        let stats_before = *self.tracker.stats();
        let mut outcome = BatchOutcome::default();

        // Step 1: FindSubset over the authoritative free-GPU count.
        let subset = select_job_subset(batch, self.cluster.free_gpus());
        let mut in_subset = vec![false; batch.len()];
        for &i in &subset {
            in_subset[i] = true;
        }
        for (i, job) in batch.iter().enumerate() {
            if !in_subset[i] {
                outcome.deferred.push(job.clone());
            }
        }
        let mut ordered: Vec<&Job> = subset.iter().map(|&i| &batch[i]).collect();
        ordered.sort_by(|a, b| b.value.total_cmp(&a.value).then(a.id.cmp(&b.id)));

        // Steps 2-3 per job against the warm estimator; both ledgers (the
        // flat mirror and the cluster) advance together. The speculative
        // engine and the reference loop are bit-identical by construction
        // (`spec.rs`).
        self.pushed_ina.clear();
        match self.placer.config().batch {
            BatchMode::Spec => {
                let mut world = SessionWorld {
                    cluster: &mut self.cluster,
                    tracker: &mut self.tracker,
                    pushed_ina: &mut self.pushed_ina,
                };
                let out =
                    place_batch_spec(&self.placer, &mut self.fb, &mut world, &ordered, &mut perf);
                outcome.placed.extend(out.placed);
                outcome.deferred.extend(out.deferred);
            }
            BatchMode::Seq => {
                for job in ordered {
                    match self.placer.place_one_flat(
                        &mut self.fb,
                        &self.cluster,
                        self.tracker.state(),
                        job,
                        &mut perf,
                    ) {
                        Some(placement) if self.fb.commit(&placement) => {
                            if !allocate_all(&mut self.cluster, &placement) {
                                // The two ledgers disagreed — refuse the
                                // placement rather than panic, and keep
                                // them in step.
                                self.fb.credit_placement(&placement);
                                outcome.deferred.push(job.clone());
                                continue;
                            }
                            let start = Stopwatch::start();
                            self.tracker.push(
                                &self.cluster,
                                PlacedJob::new(job.id, &self.cluster, &placement),
                            );
                            perf.record("waterfill_solve", start.elapsed());
                            self.pushed_ina.push(placement.ina_enabled());
                            outcome.placed.push((job.clone(), placement));
                        }
                        _ => outcome.deferred.push(job.clone()),
                    }
                }
            }
        }

        // Step 4: selective INA over the final steady state (running +
        // batch, batch still INA-on — exactly what the tracker holds).
        self.placer.enable_ina(
            &self.cluster,
            &self.running,
            &mut outcome.placed,
            Some(self.tracker.state()),
            &mut perf,
        );

        // Reconcile the estimator tail with the post-INA placements: the
        // batch occupies the tail in placement order, so popping down to
        // the first toggled job and re-pushing with final flags leaves the
        // warm state equal to a from-scratch solve over the running set —
        // the invariant every later batch leans on.
        let first_toggled = outcome
            .placed
            .iter()
            .zip(&self.pushed_ina)
            .position(|((_, p), &was)| p.ina_enabled() != was);
        if let Some(first) = first_toggled {
            let start = Stopwatch::start();
            for _ in first..outcome.placed.len() {
                let _ = self.tracker.pop(&self.cluster);
            }
            for (job, p) in &outcome.placed[first..] {
                self.tracker
                    .push(&self.cluster, PlacedJob::new(job.id, &self.cluster, p));
            }
            perf.record("waterfill_solve", start.elapsed());
            perf.incr("ina_reconcile_repushes", (outcome.placed.len() - first) as u64);
        }

        // The batch joins the running set with its final placements.
        for (job, p) in &outcome.placed {
            self.index.insert(job.id, self.running.len());
            self.running.push(RunningJob {
                id: job.id,
                gradient_gbits: job.gradient_gbits(),
                placement: p.clone(),
            });
        }

        let stats = *self.tracker.stats();
        perf.incr("waterfill_pushes", stats.pushes - stats_before.pushes);
        perf.incr(
            "waterfill_jobs_resolved",
            stats.jobs_resolved - stats_before.jobs_resolved,
        );
        perf.incr("waterfill_jobs_reused", stats.jobs_reused - stats_before.jobs_reused);
        perf.incr(
            "waterfill_components_solved",
            stats.components_solved - stats_before.components_solved,
        );
        perf.record("place_batch", batch_start.elapsed());
        self.placer.perf = perf;
        outcome
    }

    /// Retire a running job: release its GPUs on both ledgers and drop it
    /// from the warm estimator, preserving the insertion order of every
    /// other job (an order-preserving remove, like `JobManager::finish`).
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownJob`] if the id is not running;
    /// [`SessionError::Ledger`] if the cluster refuses a release (which
    /// means the session's books were already inconsistent).
    pub fn complete(&mut self, id: JobId) -> Result<RunningJob, SessionError> {
        let idx = self.index.remove(&id).ok_or(SessionError::UnknownJob(id))?;
        let removed = self.running.remove(idx);
        for (i, rj) in self.running.iter().enumerate().skip(idx) {
            self.index.insert(rj.id, i);
        }
        let start = Stopwatch::start();
        self.tracker.remove(&self.cluster, id);
        self.placer.perf.record("waterfill_solve", start.elapsed());
        for &(s, w) in removed.placement.workers() {
            self.cluster.release_gpus(s, w).map_err(SessionError::Ledger)?;
            self.fb.credit(s, w);
        }
        Ok(removed)
    }
}

/// Allocate every worker on the cluster ledger, rolling back on failure.
pub(crate) fn allocate_all(cluster: &mut Cluster, placement: &netpack_model::Placement) -> bool {
    for (i, &(s, w)) in placement.workers().iter().enumerate() {
        if cluster.allocate_gpus(s, w).is_err() {
            for &(s2, w2) in &placement.workers()[..i] {
                // Releasing what this loop just allocated cannot fail.
                let _ = cluster.release_gpus(s2, w2);
            }
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpack_topology::ClusterSpec;
    use netpack_workload::ModelKind;

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec {
            racks: 2,
            servers_per_rack: 4,
            gpus_per_server: 4,
            ..ClusterSpec::paper_default()
        })
    }

    fn job(id: u64, gpus: usize) -> Job {
        Job::builder(JobId(id), ModelKind::Vgg16, gpus).build()
    }

    #[test]
    fn place_and_complete_round_trips_the_ledgers() {
        let mut s = NetPackSession::new(cluster(), NetPackConfig::default());
        let out = s.place_batch(&[job(0, 4), job(1, 6)]);
        assert_eq!(out.placed.len(), 2);
        assert_eq!(s.free_gpus(), 32 - 10);
        assert!(s.is_running(JobId(1)));
        let r = s.complete(JobId(1)).unwrap();
        assert_eq!(r.id, JobId(1));
        assert_eq!(s.free_gpus(), 32 - 4);
        s.complete(JobId(0)).unwrap();
        assert_eq!(s.free_gpus(), 32);
        assert_eq!(s.complete(JobId(0)), Err(SessionError::UnknownJob(JobId(0))));
    }

    #[test]
    fn batches_match_the_stateless_placer_from_cold() {
        // One batch from an idle cluster must equal the stateless path
        // exactly (same subset, same placements, same INA flags).
        let c = cluster();
        let batch: Vec<Job> = vec![job(0, 4), job(1, 6), job(2, 13), job(3, 2), job(4, 40)];
        let mut stateless = NetPackPlacer::default();
        let reference = crate::placer::Placer::place_batch(&mut stateless, &c, &[], &batch);
        let mut s = NetPackSession::new(c, NetPackConfig::default());
        let out = s.place_batch(&batch);
        assert_eq!(out.placed, reference.placed);
        assert_eq!(out.deferred, reference.deferred);
    }

    #[test]
    fn warm_state_matches_rebuilt_state_across_churn() {
        // After batches and completions, the warm estimator must agree
        // bit-for-bit with a from-scratch estimator over the running set
        // in insertion order.
        let mut s = NetPackSession::new(cluster(), NetPackConfig::default());
        s.place_batch(&[job(0, 6), job(1, 4), job(2, 9)]);
        s.complete(JobId(1)).unwrap();
        s.place_batch(&[job(3, 5), job(4, 2)]);
        let placed: Vec<PlacedJob> = s
            .running()
            .iter()
            .map(|r| r.to_placed(s.cluster()))
            .collect();
        let fresh = IncrementalEstimator::new(s.cluster(), &placed);
        for r in s.running() {
            assert_eq!(
                s.state().job_rate_gbps(r.id).map(f64::to_bits),
                fresh.state().job_rate_gbps(r.id).map(f64::to_bits),
                "job {}",
                r.id
            );
        }
    }

    #[test]
    fn deferred_jobs_do_not_leak_gpus() {
        let mut s = NetPackSession::new(cluster(), NetPackConfig::default());
        // 32 GPUs, 46 demanded: the knapsack must defer something, and
        // whatever defers must not touch either ledger.
        let out = s.place_batch(&[job(0, 30), job(1, 8), job(2, 8)]);
        assert!(!out.placed.is_empty());
        assert!(!out.deferred.is_empty());
        let booked: usize = out.placed.iter().map(|(j, _)| j.gpus).sum();
        assert_eq!(s.free_gpus(), 32 - booked);
        for (j, _) in &out.placed {
            s.complete(j.id).unwrap();
        }
        assert_eq!(s.free_gpus(), 32);
    }
}
