//! The paper's heuristic baselines (§6.1): GPU-balance, Flow-balance,
//! Least-fragmentation, plus a random sanity floor.
//!
//! Baselines do not consider INA when placing (the experiments run them
//! with INA "enabled silently and transparently"): every placement they
//! emit keeps the default `ina_enabled = true`.

use crate::placer::{greedy_batch, take_in_order, BatchOutcome, Placer, RunningJob};
use netpack_model::Placement;
use netpack_topology::{Cluster, ServerId};
use netpack_waterfill::{IncrementalEstimator, PlacedJob};
use netpack_workload::Job;

/// Turn an ordered server preference into a placement: fill GPUs in order,
/// put the PS on the first chosen server (colocating makes single-server
/// jobs local, mirroring how the baselines were run in the paper).
fn place_by_order(cluster: &Cluster, order: &[ServerId], job: &Job) -> Option<Placement> {
    let workers = take_in_order(cluster, order, job.gpus)?;
    let ps = if workers.len() > 1 {
        Some(workers[0].0)
    } else {
        None
    };
    Some(Placement::new(workers, ps))
}

/// **GB** — GPU-balance: prefer servers with the most free GPUs, spreading
/// load by GPU count.
#[derive(Debug, Clone, Copy, Default)]
pub struct GpuBalance;

impl Placer for GpuBalance {
    fn name(&self) -> &'static str {
        "GB"
    }

    fn place_batch(
        &mut self,
        cluster: &Cluster,
        _running: &[RunningJob],
        batch: &[Job],
    ) -> BatchOutcome {
        greedy_batch(cluster, batch, |scratch, job, order| {
            order.clear();
            order.extend(scratch.servers().iter().map(|s| s.id()));
            order.sort_by_key(|&s| {
                std::cmp::Reverse(scratch.server(s).expect("server").gpus_free())
            });
            place_by_order(scratch, order, job)
        })
    }
}

/// **FB** — Flow-balance: prefer servers whose access link carries the
/// fewest steady-state flows (requires a water-filling pass to observe
/// flow counts, like NetPack, but uses only that single signal).
#[derive(Debug, Clone, Default)]
pub struct FlowBalance;

impl Placer for FlowBalance {
    fn name(&self) -> &'static str {
        "FB"
    }

    fn place_batch(
        &mut self,
        cluster: &Cluster,
        running: &[RunningJob],
        batch: &[Job],
    ) -> BatchOutcome {
        let active: Vec<PlacedJob> = running.iter().map(|r| r.to_placed(cluster)).collect();
        let mut scratch = cluster.clone();
        // One incremental tracker per batch: each placed job is pushed
        // into the running estimate instead of re-solving from scratch
        // per candidate (bit-identical by the waterfill property tests).
        let mut tracker = IncrementalEstimator::new(&scratch, &active);
        let mut outcome = BatchOutcome::default();
        for job in batch {
            let state = tracker.state();
            let mut order: Vec<ServerId> = scratch.servers().iter().map(|s| s.id()).collect();
            order.sort_by(|&a, &b| {
                state
                    .server_flows(a)
                    .cmp(&state.server_flows(b))
                    .then_with(|| {
                        scratch
                            .server(b)
                            .expect("server")
                            .gpus_free()
                            .cmp(&scratch.server(a).expect("server").gpus_free())
                    })
            });
            match place_by_order(&scratch, &order, job) {
                Some(placement) => {
                    for &(s, w) in placement.workers() {
                        scratch.allocate_gpus(s, w).expect("within free GPUs");
                    }
                    tracker.push(&scratch, PlacedJob::new(job.id, &scratch, &placement));
                    outcome.placed.push((job.clone(), placement));
                }
                None => outcome.deferred.push(job.clone()),
            }
        }
        outcome
    }
}

/// **LF** — Least-fragmentation: pack into already-busy servers first
/// (fewest free GPUs, but more than zero), using up running servers before
/// opening fresh ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastFragmentation;

impl Placer for LeastFragmentation {
    fn name(&self) -> &'static str {
        "LF"
    }

    fn place_batch(
        &mut self,
        cluster: &Cluster,
        _running: &[RunningJob],
        batch: &[Job],
    ) -> BatchOutcome {
        greedy_batch(cluster, batch, |scratch, job, order| {
            order.clear();
            order.extend(
                scratch
                    .servers()
                    .iter()
                    .filter(|s| s.gpus_free() > 0)
                    .map(|s| s.id()),
            );
            // Partially-used servers first (ascending free GPUs among
            // used ones), then untouched servers.
            order.sort_by_key(|&s| {
                let srv = scratch.server(s).expect("server");
                let untouched = srv.gpus_used() == 0;
                (untouched, srv.gpus_free())
            });
            place_by_order(scratch, order, job)
        })
    }
}

/// Uniform-random placement: the sanity floor for every comparison.
#[derive(Debug, Clone)]
pub struct RandomPlacer {
    state: u64,
}

impl RandomPlacer {
    /// Deterministic placer seeded for reproducibility.
    pub fn new(seed: u64) -> Self {
        RandomPlacer {
            state: seed.max(1),
        }
    }

    fn next(&mut self) -> u64 {
        // xorshift64*.
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl Default for RandomPlacer {
    fn default() -> Self {
        RandomPlacer::new(0xC0FFEE)
    }
}

impl Placer for RandomPlacer {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn place_batch(
        &mut self,
        cluster: &Cluster,
        _running: &[RunningJob],
        batch: &[Job],
    ) -> BatchOutcome {
        let mut scratch = cluster.clone();
        let mut outcome = BatchOutcome::default();
        for job in batch {
            let mut order: Vec<ServerId> = scratch.servers().iter().map(|s| s.id()).collect();
            // Fisher-Yates with the internal xorshift.
            for i in (1..order.len()).rev() {
                let j = (self.next() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            match place_by_order(&scratch, &order, job) {
                Some(placement) => {
                    for &(s, w) in placement.workers() {
                        scratch.allocate_gpus(s, w).expect("within free GPUs");
                    }
                    outcome.placed.push((job.clone(), placement));
                }
                None => outcome.deferred.push(job.clone()),
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpack_topology::{ClusterSpec, JobId};
    use netpack_workload::ModelKind;

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec {
            racks: 1,
            servers_per_rack: 4,
            gpus_per_server: 4,
            ..ClusterSpec::paper_default()
        })
    }

    fn job(id: u64, gpus: usize) -> Job {
        Job::builder(JobId(id), ModelKind::ResNet50, gpus).build()
    }

    #[test]
    fn gpu_balance_prefers_the_emptiest_servers() {
        let mut c = cluster();
        c.allocate_gpus(ServerId(0), 3).unwrap();
        c.allocate_gpus(ServerId(1), 2).unwrap();
        let out = GpuBalance.place_batch(&c, &[], &[job(0, 4)]);
        let placement = &out.placed[0].1;
        // Servers 2 and 3 have 4 free each; the job lands on one of them.
        assert_eq!(placement.workers().len(), 1);
        assert!(placement.workers()[0].0 >= ServerId(2));
    }

    #[test]
    fn least_fragmentation_packs_partial_servers_first() {
        let mut c = cluster();
        c.allocate_gpus(ServerId(2), 3).unwrap();
        let out = LeastFragmentation.place_batch(&c, &[], &[job(0, 3)]);
        let placement = &out.placed[0].1;
        // Server 2 (1 free) is used up first, then the next candidates
        // (workers() reports server-id order, not preference order).
        assert!(placement.workers().contains(&(ServerId(2), 1)));
        assert_eq!(placement.total_workers(), 3);
    }

    #[test]
    fn flow_balance_avoids_servers_with_running_flows() {
        let mut c = cluster();
        // A running job loads server 0's link with a PS fan-in.
        let running = RunningJob {
            id: JobId(9),
            gradient_gbits: 4.0,
            placement: Placement::new(
                vec![(ServerId(1), 2), (ServerId(2), 2)],
                Some(ServerId(0)),
            ),
        };
        c.allocate_gpus(ServerId(1), 2).unwrap();
        c.allocate_gpus(ServerId(2), 2).unwrap();
        let out = FlowBalance.place_batch(&c, std::slice::from_ref(&running), &[job(0, 4)]);
        let placement = &out.placed[0].1;
        // Server 3 carries no flows; it must be the first choice.
        assert_eq!(placement.workers()[0].0, ServerId(3));
    }

    #[test]
    fn random_placer_is_deterministic_per_seed() {
        let c = cluster();
        let batch = [job(0, 4), job(1, 4), job(2, 4)];
        let a = RandomPlacer::new(7).place_batch(&c, &[], &batch);
        let b = RandomPlacer::new(7).place_batch(&c, &[], &batch);
        let c2 = RandomPlacer::new(8).place_batch(&c, &[], &batch);
        let key = |o: &BatchOutcome| {
            o.placed
                .iter()
                .map(|(j, p)| (j.id, p.workers().to_vec()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b));
        // Different seeds usually differ (not guaranteed, but this seed
        // pair does).
        assert_ne!(key(&a), key(&c2));
    }

    #[test]
    fn baselines_defer_when_cluster_is_full() {
        let c = cluster();
        let big = job(0, 17);
        for placer in [&mut GpuBalance as &mut dyn Placer, &mut LeastFragmentation] {
            let out = placer.place_batch(&c, &[], std::slice::from_ref(&big));
            assert!(out.placed.is_empty(), "{}", placer.name());
            assert_eq!(out.deferred.len(), 1);
        }
    }

    #[test]
    fn baselines_keep_ina_enabled() {
        let c = cluster();
        let out = GpuBalance.place_batch(&c, &[], &[job(0, 6)]);
        assert!(out.placed.iter().all(|(_, p)| p.ina_enabled()));
    }
}
