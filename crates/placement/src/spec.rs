//! Speculative intra-batch parallelism with deterministic commit
//! (`NETPACK_BATCH=spec`, the default; see `DESIGN.md` §3.13).
//!
//! Algorithm 2's greedy loop is inherently sequential: each job is scored
//! against the steady state left by every previously *placed* job. This
//! engine extracts the parallelism that loop hides without changing a
//! single placement bit:
//!
//! 1. **Speculate.** A window of pending jobs is scored concurrently
//!    against the *current* committed state, each scoring worker on its
//!    own [`FlatBatch`] fork (same GPU ledger snapshot, private scratch).
//! 2. **Commit in order.** Jobs commit strictly in the sequential
//!    reference order. A speculation taken at the current epoch is the
//!    sequential answer by definition. A stale speculation commits only
//!    if it provably still equals what a fresh scoring would produce:
//!    * **Local** placements (single-server shortcut) carry their winning
//!      `(server, fit, avail)` triple. The shortcut scan is a pure argmin
//!      over per-server `(free GPUs − demand, residual bandwidth, id)`
//!      keys, so the stale winner survives exactly when no server touched
//!      by an intervening commit beats that key and the winner itself is
//!      untouched — an exact, cheap check against the commit deltas.
//!    * **Spanning** and **deferred** speculations are revalidated only by
//!      epoch equality. Candidate admission, the DP's plan list, and the
//!      PS scores are all non-monotone in the state (shrinking free GPUs
//!      can make a server *more* attractive to the filter; added flows
//!      *raise* hot-spot scores), so no cheap footprint test is sound —
//!      any intervening commit forces a re-score.
//! 3. **Re-score on conflict.** Invalidated jobs return to the next
//!    round's window and are scored against the new state — the loop
//!    always commits the job at the frontier (scored at the current epoch
//!    by construction), so every round makes progress and the engine
//!    terminates with the sequential loop's exact placements, deferrals,
//!    and objective.
//!
//! Deferrals commit without touching any state, so a run of deferred jobs
//! — the common case in a saturated cluster — validates and commits in a
//! single round no matter how stale. A degenerate window of one job is
//! scored on the master arenas with the placer's *inner* parallelism
//! (pod-sharded selection, plan fan-out), so `spec` never does more work
//! than `seq` even when speculation cannot help.

use crate::flat::{grab_slot, FlatBatch, SpecProbe};
use crate::netpack::NetPackPlacer;
use crate::session::allocate_all;
use netpack_metrics::{parallel_sweep_with, PerfCounters, Stopwatch};
use netpack_model::Placement;
use netpack_topology::{Cluster, ServerId};
use netpack_waterfill::{IncrementalEstimator, PlacedJob, SteadyState};
use netpack_workload::Job;
use std::sync::Mutex;

/// What the engine scores against and commits into: the stateless batch
/// path and the persistent session differ only in how a committed
/// placement lands (estimator push vs. cluster ledger + tracker + INA
/// bookkeeping), abstracted here so both share one engine.
pub(crate) trait SpecWorld {
    /// The cluster the scorer reads (static spec and topology only; the
    /// flat ledger carries the free-GPU state).
    fn cluster(&self) -> &Cluster;
    /// Steady state over everything committed so far.
    fn state(&self) -> &SteadyState;
    /// Apply a committed placement to the bandwidth model (the flat
    /// ledger is already debited). On success, appends every server whose
    /// flows or residual bandwidth the push changed onto `changed` and
    /// returns `true`; returns `false` if the world refused the placement
    /// (the engine then rolls the flat ledger back and defers the job).
    fn push(
        &mut self,
        job: &Job,
        placement: &Placement,
        changed: &mut Vec<u32>,
        perf: &mut PerfCounters,
    ) -> bool;
}

/// [`SpecWorld`] over the stateless batch path's per-call estimator.
pub(crate) struct FastWorld<'a> {
    pub cluster: &'a Cluster,
    pub inc: &'a mut IncrementalEstimator,
}

impl SpecWorld for FastWorld<'_> {
    fn cluster(&self) -> &Cluster {
        self.cluster
    }

    fn state(&self) -> &SteadyState {
        self.inc.state()
    }

    fn push(
        &mut self,
        job: &Job,
        placement: &Placement,
        changed: &mut Vec<u32>,
        perf: &mut PerfCounters,
    ) -> bool {
        let start = Stopwatch::start();
        self.inc
            .push(self.cluster, PlacedJob::new(job.id, self.cluster, placement));
        perf.record("waterfill_solve", start.elapsed());
        collect_dirty_servers(self.cluster, self.inc, changed);
        true
    }
}

/// [`SpecWorld`] over the persistent session: commits also debit the
/// authoritative cluster ledger and record the pushed INA flag.
pub(crate) struct SessionWorld<'a> {
    pub cluster: &'a mut Cluster,
    pub tracker: &'a mut IncrementalEstimator,
    pub pushed_ina: &'a mut Vec<bool>,
}

impl SpecWorld for SessionWorld<'_> {
    fn cluster(&self) -> &Cluster {
        self.cluster
    }

    fn state(&self) -> &SteadyState {
        self.tracker.state()
    }

    fn push(
        &mut self,
        job: &Job,
        placement: &Placement,
        changed: &mut Vec<u32>,
        perf: &mut PerfCounters,
    ) -> bool {
        if !allocate_all(self.cluster, placement) {
            return false;
        }
        let start = Stopwatch::start();
        self.tracker
            .push(self.cluster, PlacedJob::new(job.id, self.cluster, placement));
        perf.record("waterfill_solve", start.elapsed());
        self.pushed_ina.push(placement.ina_enabled());
        collect_dirty_servers(self.cluster, self.tracker, changed);
        true
    }
}

/// Append the server-level dirty set of the estimator's most recent push:
/// node indices below the server count are exactly the access-link slots.
fn collect_dirty_servers(cluster: &Cluster, inc: &IncrementalEstimator, changed: &mut Vec<u32>) {
    let ns = cluster.servers().len();
    for &node in inc.last_dirty_nodes() {
        if node < ns {
            changed.push(node as u32);
        }
    }
}

/// What the engine hands back; the caller splices it into its
/// `BatchOutcome` (both lists are in the sequential commit order).
pub(crate) struct SpecOutcome {
    pub placed: Vec<(Job, Placement)>,
    pub deferred: Vec<Job>,
}

/// One job's speculation: the state epoch it was scored at, the proposed
/// placement, and the [`SpecProbe`] footprint validation keys off.
struct Slot {
    epoch: usize,
    placement: Option<Placement>,
    probe: SpecProbe,
}

const NEVER: usize = usize::MAX;

/// Exact revalidation of a stale Local speculation: the shortcut scan is
/// `argmin` over keys `(free − gpus, Reverse(avail), id)` among fitting
/// servers, so the stale winner holds exactly when it is untouched and no
/// server in the intervening commit deltas now carries a smaller key.
/// Untouched servers keep their old key, which already lost to the winner.
fn local_still_wins(
    fb: &FlatBatch,
    state: &SteadyState,
    deltas: &[Vec<u32>],
    gpus: usize,
    server: usize,
    fit: usize,
    avail: f64,
) -> bool {
    use std::cmp::Ordering;
    for delta in deltas {
        for &s in delta {
            let s = s as usize;
            if s == server {
                return false;
            }
            let free = fb.ledger()[s] as usize;
            if free < gpus {
                continue;
            }
            let d = free - gpus;
            let cmp = state.server_available_gbps(ServerId(s)).total_cmp(&avail);
            if d < fit
                || (d == fit && cmp == Ordering::Greater)
                || (d == fit && cmp == Ordering::Equal && s < server)
            {
                return false;
            }
        }
    }
    true
}

/// Run one batch through the speculative engine. `ordered` is the
/// knapsack-selected subset in the sequential commit order
/// (value-descending, ties by id); the result is bit-identical to feeding
/// `ordered` through the reference loop one job at a time.
pub(crate) fn place_batch_spec<W: SpecWorld>(
    placer: &NetPackPlacer,
    fb: &mut FlatBatch,
    world: &mut W,
    ordered: &[&Job],
    perf: &mut PerfCounters,
) -> SpecOutcome {
    let n = ordered.len();
    let threads = placer.threads();
    // With one worker, speculation is pure overhead: every wasted score is
    // serialized. Pin the window to 1 so `spec` degenerates to the
    // sequential loop's exact cost; with real parallelism, let it stretch
    // to keep the workers fed.
    let max_window = if threads <= 1 { 1 } else { threads * 4 };
    let mut window = threads.max(1).min(max_window);
    let mut slots: Vec<Slot> = (0..n)
        .map(|_| Slot {
            epoch: NEVER,
            placement: None,
            probe: SpecProbe::Deferred,
        })
        .collect();
    // Commit deltas: sorted server sets, one per placed commit. The epoch
    // counter IS `deltas.len()` — deferrals change nothing and bump
    // nothing, which is what lets deferral runs commit while stale.
    let mut deltas: Vec<Vec<u32>> = Vec::new();
    let mut forks: Vec<Mutex<FlatBatch>> = Vec::new();
    let mut out = SpecOutcome {
        placed: Vec::new(),
        deferred: Vec::new(),
    };
    let mut frontier = 0usize;
    while frontier < n {
        let cur = deltas.len();
        // Phase 1: score every stale job in the window against the
        // current state.
        let end = n.min(frontier + window);
        let need: Vec<usize> = (frontier..end).filter(|&j| slots[j].epoch != cur).collect();
        perf.incr("spec_rounds", 1);
        perf.incr("spec_scored", need.len() as u64);
        if need.len() == 1 {
            // Degenerate window: master arenas + inner parallelism, the
            // sequential loop's exact cost profile.
            let j = need[0];
            let one_start = Stopwatch::start();
            let (placement, probe) =
                placer.place_one_flat_traced(fb, world.cluster(), world.state(), ordered[j], perf);
            perf.record("place_one", one_start.elapsed());
            slots[j] = Slot {
                epoch: cur,
                placement,
                probe,
            };
        } else if !need.is_empty() {
            let workers = threads.min(need.len());
            while forks.len() < workers {
                forks.push(Mutex::new(fb.fork()));
            }
            for f in &forks {
                grab_slot(std::slice::from_ref(f)).sync_from(fb);
            }
            let cluster = world.cluster();
            let state = world.state();
            let results = parallel_sweep_with(threads, &need, |&j| {
                let mut fork = grab_slot(&forks);
                let mut local_perf = PerfCounters::new();
                let one_start = Stopwatch::start();
                let r = placer.place_one_flat_traced(
                    &mut fork,
                    cluster,
                    state,
                    ordered[j],
                    &mut local_perf,
                );
                local_perf.record("place_one", one_start.elapsed());
                (r, local_perf)
            });
            for (&j, ((placement, probe), local_perf)) in need.iter().zip(results) {
                perf.merge(&local_perf);
                slots[j] = Slot {
                    epoch: cur,
                    placement,
                    probe,
                };
            }
        }
        // Phase 2: commit from the frontier while speculations hold. The
        // frontier job is always valid after phase 1 (scored at the
        // current epoch), so the loop advances every round.
        let mut committed = 0usize;
        while frontier < n {
            let cur = deltas.len();
            let slot = &slots[frontier];
            if slot.epoch == NEVER {
                break;
            }
            let valid = slot.epoch == cur
                || match slot.probe {
                    SpecProbe::Local { server, fit, avail } => local_still_wins(
                        fb,
                        world.state(),
                        &deltas[slot.epoch..],
                        ordered[frontier].gpus,
                        server,
                        fit,
                        avail,
                    ),
                    SpecProbe::Spanning | SpecProbe::Deferred => false,
                };
            if !valid {
                perf.incr("spec_conflicts", 1);
                break;
            }
            if slot.epoch != cur {
                perf.incr("spec_commits_validated", 1);
            }
            let job = ordered[frontier];
            match slots[frontier].placement.take() {
                Some(p) if fb.commit(&p) => {
                    let mut changed: Vec<u32> =
                        p.workers().iter().map(|&(s, _)| s.0 as u32).collect();
                    if world.push(job, &p, &mut changed, perf) {
                        changed.sort_unstable();
                        changed.dedup();
                        deltas.push(changed);
                        out.placed.push((job.clone(), p));
                    } else {
                        fb.credit_placement(&p);
                        out.deferred.push(job.clone());
                    }
                }
                _ => out.deferred.push(job.clone()),
            }
            frontier += 1;
            committed += 1;
        }
        // Adapt the window to the observed hit rate. This only changes
        // how much speculative work the next round does — never which
        // placements commit.
        window = if committed >= window {
            (window * 2).min(max_window)
        } else {
            committed.max(1)
        };
    }
    SpecOutcome {
        placed: out.placed,
        deferred: out.deferred,
    }
}
