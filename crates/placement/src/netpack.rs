//! The NetPack placer — the paper's Algorithm 2.

use crate::dp::{ServerStats, WorkerDp, WorkerPlan};
use crate::knapsack::select_job_subset;
use crate::placer::{BatchOutcome, Placer, RunningJob};
use crate::select::CandidateFilter;
use netpack_metrics::PerfCounters;
use netpack_model::{JobHierarchy, Placement};
use netpack_topology::{Cluster, RackId, ServerId, TopoMode};
use netpack_waterfill::{estimate, IncrementalEstimator, PlacedJob, SteadyState};
use netpack_workload::Job;
use netpack_metrics::Stopwatch;

/// Minimum candidate-plan count before [`ScoringMode::Fast`] fans scoring
/// out across threads; below this the spawn overhead dominates.
const PARALLEL_PLAN_THRESHOLD: usize = 8;

/// Result of scoring a run of plans: the best `(score, plan index, PS
/// server)` found (if any plan had a candidate), plus the hot-spot memo
/// hit/miss counts accumulated along the way.
type ChunkScore = (Option<(f64, usize, ServerId)>, u64, u64);

/// Per-thread scratch for fast plan scoring (see
/// `NetPackPlacer::score_plan`): reused across plans so the hot loop is
/// allocation-free.
struct ScoreBuffers {
    chosen_mask: Vec<bool>,
    rack_workers: Vec<(RackId, u32)>,
    /// `(rack, f_max) -> hot-spot term` memo, bucketed by rack (outer
    /// index) so each lookup scans only that rack's few distinct `f_max`
    /// values. Cleared per plan.
    memo: Vec<Vec<(u32, f64)>>,
    hits: u64,
    misses: u64,
}

/// How the PS-placement score treats the hot-spot term of Equation 1.
///
/// Equation 1 as printed *subtracts* `C/f_max`, which rewards hot-spots —
/// the opposite of the paper's stated intent ("a penalty to punish plans
/// with hot-spot servers", and in §5.2's oversubscription discussion "the
/// new penalty prevents the algorithm from placing jobs across multiple
/// racks"). We read the sign as a typo; both variants are implemented and
/// the `ablation_hotspot` bench compares them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HotSpotTerm {
    /// Add the job's expected bottleneck share `C/(f_max+1)` (and, across
    /// oversubscribed racks, `min(C_rack/(FC_r + n_r), C/(f_max+1))`) as a
    /// reward — the typo-corrected reading, and the default.
    #[default]
    RewardBottleneckShare,
    /// Subtract `C/f_max` exactly as Equation 1 prints it.
    PaperLiteral,
}

/// How step 4 (selective INA enabling) is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InaPolicy {
    /// The paper's policy: sort placed jobs by aggregation efficiency and
    /// enable INA in that order until switch memory runs out.
    #[default]
    Selective,
    /// Enable INA for every job (what the baselines do implicitly).
    AlwaysOn,
    /// Disable INA for every placed job.
    AlwaysOff,
}

/// How the placer runs the scoring-time machinery of Algorithm 2.
///
/// Both modes produce **bit-identical** [`Placement`]s — the fast path is
/// an implementation optimization, not a heuristic, and the property test
/// `fast_and_sequential_scoring_agree` pins the equivalence. The modes
/// differ only in how much work they do:
///
/// * [`Fast`](ScoringMode::Fast) re-solves only the water-filling
///   component each placed job touches ([`IncrementalEstimator`]),
///   memoizes the Equation-1 hot-spot term per candidate plan, evaluates
///   candidate plans on multiple threads when the host has them, and
///   reuses the final steady state for the INA-enable step;
/// * [`Sequential`](ScoringMode::Sequential) re-runs Algorithm 1 from
///   scratch before every job and scores plans in one nested loop, exactly
///   as Algorithm 2 is written — the reference the fast path is checked
///   against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoringMode {
    /// Incremental water-filling + memoized, parallel plan scoring
    /// (the default).
    #[default]
    Fast,
    /// From-scratch water-filling and straight-line scoring (reference).
    Sequential,
}

/// Batch execution strategy for the flat fast path: how the per-batch
/// greedy loop is driven (see `spec.rs` for the engine).
///
/// Placements and objective are **bit-identical** between the two modes by
/// construction: speculative scores are only committed when provably equal
/// to what the sequential loop would have computed, and re-scored
/// otherwise. Pinned by the `spec_seq_equivalence` property tests and the
/// `scripts/check.sh` smoke byte-diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchMode {
    /// Score pending jobs concurrently against the current state, commit
    /// them in the sequential order, and re-score only jobs whose
    /// speculation a commit invalidated (the default).
    #[default]
    Spec,
    /// The reference one-job-at-a-time loop.
    Seq,
}

impl BatchMode {
    /// Reads `NETPACK_BATCH`: `seq` selects the reference loop; anything
    /// else — including unset — selects the speculative engine.
    pub fn from_env() -> Self {
        match std::env::var("NETPACK_BATCH").as_deref() {
            Ok("seq") => BatchMode::Seq,
            _ => BatchMode::Spec,
        }
    }
}

/// Tunable knobs of [`NetPackPlacer`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetPackConfig {
    /// Hot-spot term variant (see [`HotSpotTerm`]).
    pub hotspot: HotSpotTerm,
    /// INA-enable policy (see [`InaPolicy`]).
    pub ina_policy: InaPolicy,
    /// Clamp for the DP's flow dimension (`FS_max`).
    pub fs_max: u32,
    /// Track the two-dimensional `(f, g)` knapsack weight. Disabling this
    /// is the ablation that collapses the DP to a plain GPU knapsack.
    pub flow_dimension: bool,
    /// Parameter servers per spanning job (gradient shards, §4.1). The
    /// paper's Algorithm 2 places one PS; values above 1 shard the
    /// gradient over the k best-scoring PS locations, relieving PS-side
    /// fan-in bottlenecks at the cost of extra flows.
    pub pses_per_job: usize,
    /// Scoring implementation (see [`ScoringMode`]); placements are
    /// identical either way.
    pub scoring: ScoringMode,
    /// Topology representation the hot path walks (see
    /// [`TopoMode`]); placements are identical either way. Defaults to
    /// the `NETPACK_TOPO` environment variable (flat unless `struct`).
    pub topo: TopoMode,
    /// Batch execution strategy (see [`BatchMode`]); placements are
    /// identical either way. Defaults to the `NETPACK_BATCH` environment
    /// variable (speculative unless `seq`).
    pub batch: BatchMode,
    /// Worker-thread override for the placer's parallel regions. `None`
    /// follows `NETPACK_THREADS` clamped to the machine (see
    /// [`netpack_metrics::sweep_threads`]); equivalence tests pin explicit
    /// counts here to exercise every chunking of the work.
    pub threads: Option<usize>,
}

impl Default for NetPackConfig {
    fn default() -> Self {
        NetPackConfig {
            hotspot: HotSpotTerm::default(),
            ina_policy: InaPolicy::default(),
            fs_max: 16,
            flow_dimension: true,
            pses_per_job: 1,
            scoring: ScoringMode::default(),
            topo: TopoMode::from_env(),
            batch: BatchMode::from_env(),
            threads: None,
        }
    }
}

/// The paper's job-placement system (Algorithm 2):
///
/// 1. **FindSubset** — knapsack over free GPUs, maximizing aged job value;
/// 2. **WorkerPlacement** — `V[s][f][g]` DP over servers valued by their
///    water-filled residual bandwidth;
/// 3. **PSPlacement** — exhaustive scoring of every (plan, PS server) pair
///    with the hot-spot / oversubscription term;
/// 4. **INAEnable** — aggregation-efficiency-ordered selective enabling.
///
/// See the crate-level example for basic usage.
#[derive(Debug, Clone, Default)]
pub struct NetPackPlacer {
    pub(crate) config: NetPackConfig,
    pub(crate) perf: PerfCounters,
}

impl NetPackPlacer {
    /// Placer with explicit configuration.
    pub fn new(config: NetPackConfig) -> Self {
        NetPackPlacer {
            config,
            perf: PerfCounters::new(),
        }
    }

    /// Effective worker count for this placer's parallel regions: the
    /// explicit [`NetPackConfig::threads`] override, or the environment /
    /// hardware default.
    pub(crate) fn threads(&self) -> usize {
        self.config
            .threads
            .unwrap_or_else(netpack_metrics::sweep_threads)
    }

    /// The active configuration.
    pub fn config(&self) -> &NetPackConfig {
        &self.config
    }

    /// Perf counters accumulated over every `place_batch` call so far:
    /// water-fill work (`waterfill_*`), candidate-scoring volume
    /// (`plans_considered`, `ps_candidates_scored`), hot-spot memo
    /// effectiveness (`hotspot_memo_*`), and phase timers
    /// (`place_batch`, `ps_scoring`, `waterfill_solve`).
    pub fn perf(&self) -> &PerfCounters {
        &self.perf
    }

    /// Move the accumulated perf counters out, leaving a fresh set —
    /// what the benches call between measurement windows.
    pub fn take_perf(&mut self) -> PerfCounters {
        std::mem::take(&mut self.perf)
    }

    /// Heuristic value of a server (Algorithm 2 line 16):
    /// `bw̄ − (C − bw̄)/(flows + 1)` — its residual bandwidth minus the
    /// throughput loss the new job would inflict on the flows already there.
    pub(crate) fn server_value(capacity: f64, avail: f64, flows: u32) -> f64 {
        avail - (capacity - avail) / (f64::from(flows) + 1.0)
    }

    /// Place the workers and PS of one job. Requires a fresh steady-state
    /// estimate of the scratch cluster. Returns `None` if the job cannot
    /// be covered by the free GPUs.
    fn place_one(
        &self,
        scratch: &Cluster,
        state: &SteadyState,
        job: &Job,
        perf: &mut PerfCounters,
    ) -> Option<Placement> {
        // Single-server shortcut (lines 4-6): prefer the tightest fit,
        // breaking ties toward the most residual bandwidth.
        let single = scratch
            .servers()
            .iter()
            .filter(|s| s.gpus_free() >= job.gpus)
            .min_by(|a, b| {
                (a.gpus_free() - job.gpus)
                    .cmp(&(b.gpus_free() - job.gpus))
                    .then_with(|| {
                        state
                            .server_available_gbps(b.id())
                            .total_cmp(&state.server_available_gbps(a.id()))
                    })
            });
        if let Some(server) = single {
            return Some(Placement::local(server.id(), job.gpus));
        }

        // WorkerPlacement DP over servers with free GPUs, pruned to the
        // per-class top-K that can appear in any optimal `V[s][f][g]` cell
        // (see [`CandidateFilter`]). Both topology modes run the same
        // filter, so their DP inputs — and hence placements — stay
        // bit-identical by construction.
        let capacity = scratch.spec().server_link_gbps;
        let slack = scratch.spec().gpus_per_server;
        let fs_max = self.config.flow_dimension.then_some(self.config.fs_max);
        let mut filter =
            CandidateFilter::new(scratch.spec().gpus_per_server, job.gpus, slack, fs_max);
        for s in scratch.servers() {
            let avail = state.server_available_gbps(s.id());
            let flows = state.server_flows(s.id());
            filter.offer(ServerStats {
                id: s.id(),
                gpus_free: s.gpus_free(),
                value: Self::server_value(capacity, avail, flows),
                flows,
            });
        }
        perf.incr("dp_candidates_offered", filter.offered());
        perf.incr("dp_candidates_kept", filter.kept() as u64);
        let stats = filter.candidates();
        let dp = if self.config.flow_dimension {
            WorkerDp::new(self.config.fs_max)
        } else {
            WorkerDp::without_flow_dimension()
        };
        let dp_start = Stopwatch::start();
        let plans = dp.plans(&stats, job.gpus, slack);
        perf.record("worker_dp", dp_start.elapsed());
        if plans.is_empty() {
            return None;
        }

        // PSPlacement: exhaust (plan, server) pairs.
        perf.incr("plans_considered", plans.len() as u64);
        perf.incr(
            "ps_candidates_scored",
            (plans.len() * scratch.num_servers()) as u64,
        );
        let scoring_start = Stopwatch::start();
        let best = match self.config.scoring {
            ScoringMode::Sequential => self.score_plans_sequential(scratch, state, capacity, &plans),
            ScoringMode::Fast => {
                let (best, hits, misses) = self.score_plans_fast(scratch, state, capacity, &plans);
                perf.incr("hotspot_memo_hits", hits);
                perf.incr("hotspot_memo_misses", misses);
                best
            }
        };
        perf.record("ps_scoring", scoring_start.elapsed());
        let (_, pi, ps) = best?;
        let plan = &plans[pi];

        // Gradient sharding: rank PS candidates for the winning plan and
        // take the k best distinct locations (k = 1 reproduces Algorithm 2
        // exactly, returning `ps` itself).
        let pses = if self.config.pses_per_job <= 1 {
            vec![ps]
        } else {
            let mut chosen_mask = vec![false; scratch.num_servers()];
            for s in &plan.servers {
                chosen_mask[s.0] = true;
            }
            let rack_workers = Self::plan_rack_workers(scratch, plan);
            let mut scored: Vec<(f64, ServerId)> = scratch
                .servers()
                .iter()
                .map(|server| {
                    let sid = server.id();
                    let eps: u32 = u32::from(!chosen_mask[sid.0]);
                    let own_workers = if chosen_mask[sid.0] {
                        server.gpus_free() as u32
                    } else {
                        0
                    };
                    let s_flows = state.server_flows(sid) + own_workers;
                    let f_max = plan.max_flows.max(s_flows + eps);
                    let avail = state.server_available_gbps(sid);
                    let base = plan.value + avail
                        - (capacity - avail) / (f64::from(s_flows + eps) + 1.0);
                    let term =
                        self.hotspot_term(scratch, state, &rack_workers, sid, f_max);
                    (base + term, sid)
                })
                .collect();
            scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            scored
                .into_iter()
                .take(self.config.pses_per_job)
                .map(|(_, sid)| sid)
                .collect()
        };

        // Materialize: every free GPU of each chosen server, then release
        // the surplus starting from the least-loaded chosen server.
        let mut workers: Vec<(ServerId, usize)> = plan
            .servers
            .iter()
            .map(|&s| (s, scratch.server(s).expect("plan server").gpus_free()))
            .collect();
        let mut surplus = plan.gpus.checked_sub(job.gpus).expect("plan covers demand");
        while surplus > 0 {
            // Release from the PS's own server first — every worker taken
            // off it is one fewer flow sharing the PS's access link — then
            // from the least-loaded (largest-contribution) server.
            let idx = workers
                .iter()
                .position(|&(s, w)| s == ps && w > 0)
                .unwrap_or_else(|| {
                    workers
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, &(_, w))| w)
                        .map(|(i, _)| i)
                        .expect("non-empty plan")
                });
            let take = workers[idx].1.min(surplus);
            workers[idx].1 -= take;
            surplus -= take;
            if workers[idx].1 == 0 {
                workers.remove(idx);
            }
        }
        Some(Placement::new_sharded(workers, pses))
    }

    /// Per-rack worker totals of one candidate plan, in first-seen order
    /// (the oversubscription term's input).
    fn plan_rack_workers(scratch: &Cluster, plan: &WorkerPlan) -> Vec<(RackId, u32)> {
        let mut rack_workers: Vec<(RackId, u32)> = Vec::new();
        for &sid in &plan.servers {
            let r = scratch.rack_of(sid);
            let w = scratch.server(sid).expect("plan server").gpus_free() as u32;
            match rack_workers.iter_mut().find(|(rr, _)| *rr == r) {
                Some(e) => e.1 += w,
                None => rack_workers.push((r, w)),
            }
        }
        rack_workers
    }

    /// Reference PS scoring: one nested loop over (plan, server) pairs,
    /// exactly as Algorithm 2 is written. The first strictly-greater score
    /// wins, so the winner is the earliest maximum in scan order.
    fn score_plans_sequential(
        &self,
        scratch: &Cluster,
        state: &SteadyState,
        capacity: f64,
        plans: &[WorkerPlan],
    ) -> Option<(f64, usize, ServerId)> {
        let mut chosen_mask = vec![false; scratch.num_servers()];
        let mut best: Option<(f64, usize, ServerId)> = None;
        for (pi, plan) in plans.iter().enumerate() {
            for m in chosen_mask.iter_mut() {
                *m = false;
            }
            for s in &plan.servers {
                chosen_mask[s.0] = true;
            }
            let rack_workers = Self::plan_rack_workers(scratch, plan);
            for server in scratch.servers() {
                let sid = server.id();
                let eps: u32 = u32::from(!chosen_mask[sid.0]);
                // Flows the PS would share its access link with: existing
                // steady-state flows plus this plan's own workers on the
                // server (the job's gradient streams are flows too — a PS
                // stacked on the busiest worker server is the hot-spot the
                // paper's penalty is after).
                let own_workers = if chosen_mask[sid.0] {
                    server.gpus_free() as u32
                } else {
                    0
                };
                let s_flows = state.server_flows(sid) + own_workers;
                let f_max = plan.max_flows.max(s_flows + eps);
                let avail = state.server_available_gbps(sid);
                let base = plan.value + avail
                    - (capacity - avail) / (f64::from(s_flows + eps) + 1.0);
                let term = self.hotspot_term(scratch, state, &rack_workers, sid, f_max);
                let score = base + term;
                if best.is_none_or(|(b, _, _)| score > b) {
                    best = Some((score, pi, sid));
                }
            }
        }
        best
    }

    /// Reusable scratch buffers for fast plan scoring — one per scoring
    /// thread, so per-plan work allocates nothing.
    fn scoring_buffers(scratch: &Cluster) -> ScoreBuffers {
        ScoreBuffers {
            chosen_mask: vec![false; scratch.num_servers()],
            rack_workers: Vec::new(),
            memo: vec![Vec::new(); scratch.num_racks()],
            hits: 0,
            misses: 0,
        }
    }

    /// Score every PS candidate of one plan, memoizing the hot-spot term.
    ///
    /// For a fixed plan the Equation-1 term depends on the PS server only
    /// through its rack and the resulting `f_max`, so candidate shapes
    /// repeat heavily (every idle server of a rack shares one
    /// `(rack, f_max)` key). Candidates in the plan's own (single) rack
    /// take a division-only inline path — memoizing there would cost more
    /// than the term. Cross-rack candidates, whose term walks every rack
    /// uplink the job crosses, go through the memo: one bucket per rack,
    /// each a linear-scan `Vec` over that rack's few distinct `f_max`
    /// values (scanning a handful of entries beats hashing, and bucketing
    /// keeps scans short even when flow counts vary across a big
    /// cluster). Returns the plan's best
    /// `(score, server)` under the same first-strictly-greater rule the
    /// reference scorer uses.
    fn score_plan(
        &self,
        scratch: &Cluster,
        state: &SteadyState,
        capacity: f64,
        plan: &WorkerPlan,
        buf: &mut ScoreBuffers,
    ) -> (f64, ServerId) {
        buf.chosen_mask.fill(false);
        for s in &plan.servers {
            buf.chosen_mask[s.0] = true;
        }
        buf.rack_workers.clear();
        for &sid in &plan.servers {
            let r = scratch.rack_of(sid);
            let w = scratch.server(sid).expect("plan server").gpus_free() as u32;
            match buf.rack_workers.iter_mut().find(|(rr, _)| *rr == r) {
                Some(e) => e.1 += w,
                None => buf.rack_workers.push((r, w)),
            }
        }
        for bucket in &mut buf.memo {
            bucket.clear();
        }
        // A PS candidate is "cross-rack" iff some worker sits in another
        // rack; with the single-rack common case precomputed the check is
        // one comparison per candidate.
        let multi_rack = buf.rack_workers.len() > 1;
        let plan_rack = buf.rack_workers.first().map(|&(r, _)| r);
        let link_capacity = scratch.spec().server_link_gbps;
        let mut best: Option<(f64, ServerId)> = None;
        for server in scratch.servers() {
            let sid = server.id();
            let eps: u32 = u32::from(!buf.chosen_mask[sid.0]);
            let own_workers = if buf.chosen_mask[sid.0] {
                server.gpus_free() as u32
            } else {
                0
            };
            let s_flows = state.server_flows(sid) + own_workers;
            let f_max = plan.max_flows.max(s_flows + eps);
            let avail = state.server_available_gbps(sid);
            let base =
                plan.value + avail - (capacity - avail) / (f64::from(s_flows + eps) + 1.0);
            let ps_rack = scratch.rack_of(sid);
            let term = if multi_rack || plan_rack != Some(ps_rack) {
                match buf.memo[ps_rack.0].iter().find(|(k, _)| *k == f_max) {
                    Some(&(_, t)) => {
                        buf.hits += 1;
                        t
                    }
                    None => {
                        buf.misses += 1;
                        let t =
                            self.hotspot_term(scratch, state, &buf.rack_workers, sid, f_max);
                        buf.memo[ps_rack.0].push((f_max, t));
                        t
                    }
                }
            } else {
                self.hotspot_flat(link_capacity, f_max)
            };
            let score = base + term;
            if best.is_none_or(|(b, _)| score > b) {
                best = Some((score, sid));
            }
        }
        best.expect("cluster has at least one server")
    }

    /// Fast PS scoring: plans are scored independently (memoized via
    /// [`score_plan`](Self::score_plan)) and, when the host has multiple
    /// cores and the plan list is long enough, on multiple threads.
    ///
    /// Chunk results are merged in ascending plan order with the same
    /// strictly-greater rule as the reference scorer, so the returned
    /// winner — and therefore the final [`Placement`] — is bit-identical
    /// to [`score_plans_sequential`](Self::score_plans_sequential)
    /// regardless of thread count.
    fn score_plans_fast(
        &self,
        scratch: &Cluster,
        state: &SteadyState,
        capacity: f64,
        plans: &[WorkerPlan],
    ) -> ChunkScore {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(plans.len());
        let mut best: Option<(f64, usize, ServerId)> = None;
        if threads <= 1 || plans.len() < PARALLEL_PLAN_THRESHOLD {
            let mut buf = Self::scoring_buffers(scratch);
            for (pi, plan) in plans.iter().enumerate() {
                let (score, sid) = self.score_plan(scratch, state, capacity, plan, &mut buf);
                if best.is_none_or(|(b, _, _)| score > b) {
                    best = Some((score, pi, sid));
                }
            }
            return (best, buf.hits, buf.misses);
        }
        let chunk = plans.len().div_ceil(threads);
        let results: Vec<ChunkScore> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = plans
                    .chunks(chunk)
                    .enumerate()
                    .map(|(ci, chunk_plans)| {
                        scope.spawn(move || {
                            let mut buf = Self::scoring_buffers(scratch);
                            let mut best: Option<(f64, usize, ServerId)> = None;
                            for (off, plan) in chunk_plans.iter().enumerate() {
                                let (score, sid) =
                                    self.score_plan(scratch, state, capacity, plan, &mut buf);
                                if best.is_none_or(|(b, _, _)| score > b) {
                                    best = Some((score, ci * chunk + off, sid));
                                }
                            }
                            (best, buf.hits, buf.misses)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scoring thread panicked"))
                    .collect()
            });
        let (mut hits, mut misses) = (0u64, 0u64);
        for (chunk_best, h, m) in results {
            hits += h;
            misses += m;
            if let Some((score, pi, sid)) = chunk_best {
                if best.is_none_or(|(b, _, _)| score > b) {
                    best = Some((score, pi, sid));
                }
            }
        }
        (best, hits, misses)
    }

    /// The Equation-1 term when the plan and PS share a rack: a single
    /// division, no uplinks crossed. Split out so the memoized scorer can
    /// answer the common case inline with the exact same float operations
    /// as [`hotspot_term`](Self::hotspot_term).
    fn hotspot_flat(&self, capacity: f64, f_max: u32) -> f64 {
        match self.config.hotspot {
            HotSpotTerm::PaperLiteral => -(capacity / f64::from(f_max.max(1))),
            HotSpotTerm::RewardBottleneckShare => capacity / (f64::from(f_max) + 1.0),
        }
    }

    /// The Equation-1 hot-spot / oversubscription term.
    pub(crate) fn hotspot_term(
        &self,
        cluster: &Cluster,
        state: &SteadyState,
        rack_workers: &[(RackId, u32)],
        ps: ServerId,
        f_max: u32,
    ) -> f64 {
        let capacity = cluster.spec().server_link_gbps;
        let ps_rack = cluster.rack_of(ps);
        let cross_rack = rack_workers.iter().any(|&(r, _)| r != ps_rack);
        if !cross_rack {
            return self.hotspot_flat(capacity, f_max);
        }
        let share = capacity / (f64::from(f_max) + 1.0);
        match self.config.hotspot {
            HotSpotTerm::PaperLiteral => {
                let literal = capacity / f64::from(f_max.max(1));
                let worst = self
                    .rack_shares(cluster, state, rack_workers, ps_rack)
                    .fold(share, f64::max);
                -worst.max(literal)
            }
            HotSpotTerm::RewardBottleneckShare => {
                self.rack_shares(cluster, state, rack_workers, ps_rack)
                    .fold(share, f64::min)
            }
        }
    }

    /// Expected per-flow share on each rack uplink the job would cross:
    /// `C_rack / (FC_r + n_r)` with `FC_r` the existing uplink flows and
    /// `n_r` the flows this job adds.
    fn rack_shares<'a>(
        &self,
        cluster: &'a Cluster,
        state: &'a SteadyState,
        rack_workers: &'a [(RackId, u32)],
        ps_rack: RackId,
    ) -> impl Iterator<Item = f64> + 'a {
        let mut inbound = 0u32;
        let mut shares = Vec::with_capacity(rack_workers.len() + 1);
        for &(r, w) in rack_workers {
            if r == ps_rack {
                continue;
            }
            let uplink = netpack_topology::LinkId::RackUplink(r);
            let fc = state.link_flows(uplink, cluster);
            let c_rack = cluster.rack(r).expect("rack").uplink_gbps();
            // Pessimistic flow estimate: every worker in the rack streams
            // through the uplink unaggregated.
            shares.push(c_rack / f64::from(fc + w));
            inbound += w;
        }
        if inbound > 0 {
            let uplink = netpack_topology::LinkId::RackUplink(ps_rack);
            let fc = state.link_flows(uplink, cluster);
            let c_rack = cluster.rack(ps_rack).expect("rack").uplink_gbps();
            shares.push(c_rack / f64::from(fc + inbound));
        }
        shares.into_iter()
    }

    /// Step 4: selective INA enabling by aggregation efficiency.
    ///
    /// `cached` is the steady state over running + placed jobs with batch
    /// placements still INA-enabled, when the caller already has it (the
    /// fast path's incremental estimator ends the batch holding exactly
    /// this state); `None` recomputes it from scratch.
    pub(crate) fn enable_ina(
        &self,
        cluster: &Cluster,
        running: &[RunningJob],
        placed: &mut [(Job, Placement)],
        cached: Option<&SteadyState>,
        perf: &mut PerfCounters,
    ) {
        match self.config.ina_policy {
            InaPolicy::AlwaysOn => return, // placements start INA-enabled
            InaPolicy::AlwaysOff => {
                for (_, p) in placed.iter_mut() {
                    p.set_ina_enabled(false);
                }
                return;
            }
            InaPolicy::Selective => {}
        }
        // Steady state with everything (running + batch, INA all-on) to
        // obtain each job's throughput for the AE metric.
        let owned: SteadyState;
        let state: &SteadyState = match cached {
            Some(s) => {
                perf.incr("ina_estimate_reused", 1);
                s
            }
            None => {
                let start = Stopwatch::start();
                let mut all: Vec<PlacedJob> =
                    running.iter().map(|r| r.to_placed(cluster)).collect();
                for (job, p) in placed.iter() {
                    all.push(PlacedJob::new(job.id, cluster, p));
                }
                owned = estimate(cluster, &all);
                perf.record("waterfill_solve", start.elapsed());
                &owned
            }
        };

        // Budget per rack: PAT minus what running INA jobs already draw.
        let mut budget: Vec<f64> = cluster.racks().iter().map(|r| r.pat_gbps()).collect();
        for r in running {
            if !r.placement.ina_enabled() {
                continue;
            }
            let components = JobHierarchy::components_from_placement(cluster, &r.placement);
            if let Some(rate) = state.job_rate_gbps(r.id) {
                if rate.is_finite() {
                    for h in &components {
                        for rack in h.switches() {
                            budget[rack.0] -= rate;
                        }
                    }
                }
            }
        }

        // AE = throughput x total incoming flows at the job's switches
        // (summed over gradient shards for multi-PS placements).
        let mut order: Vec<(usize, f64, f64, Vec<RackId>)> = Vec::new();
        for (i, (job, p)) in placed.iter().enumerate() {
            let components = JobHierarchy::components_from_placement(cluster, p);
            if components.is_empty() {
                continue; // local jobs don't use INA
            }
            let rate = state.job_rate_gbps(job.id).unwrap_or(0.0);
            if !rate.is_finite() || rate <= 0.0 {
                continue;
            }
            let mut switches = Vec::new();
            let mut fan_in = 0u32;
            for h in &components {
                for r in h.switches() {
                    fan_in += h.incoming_flows(r, |_| true).unwrap_or(0);
                    switches.push(r);
                }
            }
            order.push((i, rate * f64::from(fan_in), rate, switches));
        }
        order.sort_by(|a, b| b.1.total_cmp(&a.1).then(placed[a.0].0.id.cmp(&placed[b.0].0.id)));

        // "Enable INA for these jobs ... until using up the switch memory":
        // a job keeps INA while every switch it aggregates at still has
        // memory left; the marginal job may overshoot the budget (slots
        // are shared statistically, not reserved), and only jobs arriving
        // after a switch is fully spoken for are turned off.
        for (i, _ae, rate, switches) in order {
            let fits = switches.iter().all(|&r| budget[r.0] > 0.0);
            if fits {
                for &r in &switches {
                    budget[r.0] -= rate;
                }
                placed[i].1.set_ina_enabled(true);
            } else {
                placed[i].1.set_ina_enabled(false);
            }
        }
    }
}

impl Placer for NetPackPlacer {
    fn name(&self) -> &'static str {
        "NetPack"
    }

    fn place_batch(
        &mut self,
        cluster: &Cluster,
        running: &[RunningJob],
        batch: &[Job],
    ) -> BatchOutcome {
        if self.config.topo == TopoMode::Flat {
            return self.place_batch_flat(cluster, running, batch);
        }
        // Counters are taken out of `self` so `place_one` (which borrows
        // `self` immutably) can record into them, then put back.
        let mut perf = std::mem::take(&mut self.perf);
        let batch_start = Stopwatch::start();
        let mut outcome = BatchOutcome::default();
        // Step 1: FindSubset.
        let subset = select_job_subset(batch, cluster.free_gpus());
        let mut in_subset = vec![false; batch.len()];
        for &i in &subset {
            in_subset[i] = true;
        }
        for (i, job) in batch.iter().enumerate() {
            if !in_subset[i] {
                outcome.deferred.push(job.clone());
            }
        }
        // Value-descending placement order (ties by id for determinism).
        let mut ordered: Vec<&Job> = subset.iter().map(|&i| &batch[i]).collect();
        ordered.sort_by(|a, b| b.value.total_cmp(&a.value).then(a.id.cmp(&b.id)));

        let mut scratch = cluster.clone();
        match self.config.scoring {
            ScoringMode::Fast => {
                // Steps 2-3 with the incremental estimator: each placed
                // job re-solves only the water-filling component it
                // touches; everything else stays cached.
                let running_placed: Vec<PlacedJob> =
                    running.iter().map(|r| r.to_placed(cluster)).collect();
                let start = Stopwatch::start();
                let mut inc = IncrementalEstimator::new(&scratch, &running_placed);
                perf.record("waterfill_solve", start.elapsed());
                for job in ordered {
                    match self.place_one(&scratch, inc.state(), job, &mut perf) {
                        Some(placement) => {
                            for &(s, w) in placement.workers() {
                                scratch
                                    .allocate_gpus(s, w)
                                    .expect("DP placed within free GPUs");
                            }
                            let start = Stopwatch::start();
                            inc.push(&scratch, PlacedJob::new(job.id, &scratch, &placement));
                            perf.record("waterfill_solve", start.elapsed());
                            outcome.placed.push((job.clone(), placement));
                        }
                        None => outcome.deferred.push(job.clone()),
                    }
                }
                let stats = *inc.stats();
                perf.incr("waterfill_pushes", stats.pushes);
                perf.incr("waterfill_jobs_resolved", stats.jobs_resolved);
                perf.incr("waterfill_jobs_reused", stats.jobs_reused);
                perf.incr("waterfill_components_solved", stats.components_solved);
                // Step 4: the estimator already holds the steady state over
                // running + placed (batch placements still INA-on) — reuse.
                self.enable_ina(cluster, running, &mut outcome.placed, Some(inc.state()), &mut perf);
            }
            ScoringMode::Sequential => {
                let mut active: Vec<PlacedJob> =
                    running.iter().map(|r| r.to_placed(cluster)).collect();
                for job in ordered {
                    // Steps 2-3 need the current steady state (rerun per
                    // job: the fair shares shift as the batch lands,
                    // Algorithm 2 line 7).
                    perf.incr(
                        "waterfill_jobs_resolved",
                        active.iter().filter(|j| j.is_network()).count() as u64,
                    );
                    let start = Stopwatch::start();
                    let state = estimate(&scratch, &active);
                    perf.record("waterfill_solve", start.elapsed());
                    match self.place_one(&scratch, &state, job, &mut perf) {
                        Some(placement) => {
                            for &(s, w) in placement.workers() {
                                scratch
                                    .allocate_gpus(s, w)
                                    .expect("DP placed within free GPUs");
                            }
                            active.push(PlacedJob::new(job.id, &scratch, &placement));
                            outcome.placed.push((job.clone(), placement));
                        }
                        None => outcome.deferred.push(job.clone()),
                    }
                }
                // Step 4: selective INA enabling across the new placements.
                self.enable_ina(cluster, running, &mut outcome.placed, None, &mut perf);
            }
        }
        perf.record("place_batch", batch_start.elapsed());
        self.perf = perf;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpack_topology::{ClusterSpec, JobId, ServerId};
    use netpack_workload::ModelKind;

    fn cluster(racks: usize, spr: usize, gps: usize) -> Cluster {
        Cluster::new(ClusterSpec {
            racks,
            servers_per_rack: spr,
            gpus_per_server: gps,
            ..ClusterSpec::paper_default()
        })
    }

    fn job(id: u64, gpus: usize) -> Job {
        Job::builder(JobId(id), ModelKind::Vgg16, gpus).build()
    }

    #[test]
    fn single_server_jobs_go_local() {
        let c = cluster(1, 3, 4);
        let mut p = NetPackPlacer::default();
        let out = p.place_batch(&c, &[], &[job(0, 4)]);
        assert_eq!(out.placed.len(), 1);
        let placement = &out.placed[0].1;
        assert!(placement.is_local());
        assert_eq!(placement.total_workers(), 4);
    }

    #[test]
    fn spanning_jobs_get_a_ps_and_exact_gpus() {
        let c = cluster(1, 3, 4);
        let mut p = NetPackPlacer::default();
        let out = p.place_batch(&c, &[], &[job(0, 6)]);
        assert_eq!(out.placed.len(), 1);
        let placement = &out.placed[0].1;
        assert_eq!(placement.total_workers(), 6);
        assert!(placement.ps().is_some());
        placement.validate(&c, 6).unwrap();
    }

    #[test]
    fn batch_respects_gpu_capacity_via_knapsack() {
        let c = cluster(1, 2, 4);
        let mut p = NetPackPlacer::default();
        // 8 GPUs total; jobs demand 6+6: only one fits.
        let out = p.place_batch(&c, &[], &[job(0, 6), job(1, 6)]);
        assert_eq!(out.placed.len(), 1);
        assert_eq!(out.deferred.len(), 1);
    }

    #[test]
    fn oversized_jobs_are_deferred() {
        let c = cluster(1, 2, 2);
        let mut p = NetPackPlacer::default();
        let out = p.place_batch(&c, &[], &[job(0, 100)]);
        assert!(out.placed.is_empty());
        assert_eq!(out.deferred.len(), 1);
    }

    #[test]
    fn placements_avoid_hot_servers() {
        let mut c = cluster(1, 4, 4);
        // Server 0 is busy hosting a running job's PS fan-in.
        let running = RunningJob {
            id: JobId(100),
            gradient_gbits: 4.0,
            placement: Placement::new(
                vec![(ServerId(1), 2), (ServerId(2), 2)],
                Some(ServerId(0)),
            ),
        };
        c.allocate_gpus(ServerId(1), 2).unwrap();
        c.allocate_gpus(ServerId(2), 2).unwrap();
        // New 6-GPU job must span servers; it should prefer 3 (idle) and
        // avoid piling its PS onto server 0.
        let mut p = NetPackPlacer::default();
        let out = p.place_batch(&c, std::slice::from_ref(&running), &[job(0, 6)]);
        assert_eq!(out.placed.len(), 1);
        let placement = &out.placed[0].1;
        placement.validate(&c, 6).unwrap();
        assert!(placement.workers().iter().any(|&(s, _)| s == ServerId(3)));
    }

    #[test]
    fn ina_always_off_policy_disables_every_placement() {
        let c = cluster(1, 4, 2);
        let mut p = NetPackPlacer::new(NetPackConfig {
            ina_policy: InaPolicy::AlwaysOff,
            ..NetPackConfig::default()
        });
        let out = p.place_batch(&c, &[], &[job(0, 6)]);
        assert!(out.placed.iter().all(|(_, pl)| !pl.ina_enabled()));
    }

    #[test]
    fn selective_ina_respects_switch_budget() {
        // PAT so small that at most one job can aggregate.
        let c = Cluster::new(ClusterSpec {
            racks: 1,
            servers_per_rack: 6,
            gpus_per_server: 2,
            pat_gbps: 30.0,
            ..ClusterSpec::paper_default()
        });
        let mut p = NetPackPlacer::default();
        let out = p.place_batch(&c, &[], &[job(0, 4), job(1, 4), job(2, 4)]);
        assert_eq!(out.placed.len(), 3);
        let enabled = out
            .placed
            .iter()
            .filter(|(_, pl)| !pl.is_local() && pl.ina_enabled())
            .count();
        // 3 spanning jobs at ~tens of Gbps each cannot all fit in 30 Gbps
        // of PAT; selective enabling must turn at least one off.
        assert!(enabled < 3, "expected selective disabling, got {enabled}");
    }

    /// Regression pin for the budget arithmetic in `enable_ina`
    /// ("Enable INA ... until using up the switch memory"): the *marginal*
    /// job is allowed to overshoot the remaining PAT budget — slots are
    /// shared statistically, not reserved — but every job ordered after a
    /// fully-spoken-for switch must be turned off. Net effect: per switch,
    /// the enabled jobs' total draw exceeds the PAT budget by strictly
    /// less than one job's rate.
    #[test]
    fn selective_ina_overshoots_by_at_most_one_job() {
        let c = Cluster::new(ClusterSpec {
            racks: 1,
            servers_per_rack: 9,
            gpus_per_server: 4,
            pat_gbps: 50.0,
            ..ClusterSpec::paper_default()
        });
        // Three identical spanning jobs: 2 workers + 1 PS each, disjoint
        // servers, all sharing the one switch's 50 Gbps PAT pool.
        let mk = |i: usize| {
            let job = Job::builder(JobId(i as u64), ModelKind::Vgg16, 2).build();
            let p = Placement::new(
                vec![(ServerId(3 * i), 1), (ServerId(3 * i + 1), 1)],
                Some(ServerId(3 * i + 2)),
            );
            (job, p)
        };
        let mut placed = vec![mk(0), mk(1), mk(2)];
        let placer = NetPackPlacer::default();
        placer.enable_ina(
            &c,
            &[],
            &mut placed,
            None,
            &mut netpack_metrics::PerfCounters::new(),
        );

        // The AE metric uses the all-INA-on steady state; by symmetry all
        // three jobs converge to the same rate, and 50 Gbps of PAT shared
        // three ways exhausts below it, so each job alone exceeds the
        // whole budget.
        let all: Vec<netpack_waterfill::PlacedJob> = (0..3)
            .map(|i| netpack_waterfill::PlacedJob::new(JobId(i), &c, &mk(i as usize).1))
            .collect();
        let state = estimate(&c, &all);
        let rate = state.job_rate_gbps(JobId(0)).unwrap();
        assert!(rate > 50.0, "test premise: one job overshoots alone, rate {rate}");

        // The marginal (first, highest-AE) job must still be enabled —
        // a positive budget admits it even though its draw exceeds the
        // budget — and every later job must be cut.
        let enabled: Vec<f64> = placed
            .iter()
            .filter(|(_, p)| p.ina_enabled())
            .map(|(j, _)| state.job_rate_gbps(j.id).unwrap())
            .collect();
        assert_eq!(enabled.len(), 1, "exactly the marginal job stays on");
        assert!(placed[0].1.ina_enabled(), "ties break toward the lowest id");

        // The pinned invariant: remove the last-admitted job and the rest
        // fits in the budget — overshoot is at most one job deep.
        let total: f64 = enabled.iter().sum();
        let min_enabled = enabled.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(total > 50.0, "the marginal job is allowed to overshoot");
        assert!(total - min_enabled <= 50.0 + 1e-9);

        // With a budget big enough for one-and-a-bit jobs, two are
        // admitted (the second being the overshooting marginal one) and
        // the third is cut: overshoot still at most one job deep.
        let c2 = Cluster::new(ClusterSpec {
            racks: 1,
            servers_per_rack: 9,
            gpus_per_server: 4,
            pat_gbps: 120.0,
            ..ClusterSpec::paper_default()
        });
        let mut placed2 = vec![mk(0), mk(1), mk(2)];
        placer.enable_ina(
            &c2,
            &[],
            &mut placed2,
            None,
            &mut netpack_metrics::PerfCounters::new(),
        );
        let all2: Vec<netpack_waterfill::PlacedJob> = (0..3)
            .map(|i| netpack_waterfill::PlacedJob::new(JobId(i), &c2, &mk(i as usize).1))
            .collect();
        let state2 = estimate(&c2, &all2);
        let enabled2: Vec<f64> = placed2
            .iter()
            .filter(|(_, p)| p.ina_enabled())
            .map(|(j, _)| state2.job_rate_gbps(j.id).unwrap())
            .collect();
        assert_eq!(enabled2.len(), 2, "budget admits one full + one marginal job");
        let total2: f64 = enabled2.iter().sum();
        let min2 = enabled2.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(total2 > 120.0);
        assert!(total2 - min2 <= 120.0 + 1e-9);
    }

    #[test]
    fn paper_literal_hotspot_variant_still_places_validly() {
        let c = cluster(2, 3, 2);
        let mut p = NetPackPlacer::new(NetPackConfig {
            hotspot: HotSpotTerm::PaperLiteral,
            ..NetPackConfig::default()
        });
        let out = p.place_batch(&c, &[], &[job(0, 5)]);
        assert_eq!(out.placed.len(), 1);
        out.placed[0].1.validate(&c, 5).unwrap();
    }

    #[test]
    fn flow_dimension_ablation_places_validly() {
        let c = cluster(2, 3, 2);
        let mut p = NetPackPlacer::new(NetPackConfig {
            flow_dimension: false,
            ..NetPackConfig::default()
        });
        let out = p.place_batch(&c, &[], &[job(0, 5)]);
        assert_eq!(out.placed.len(), 1);
        out.placed[0].1.validate(&c, 5).unwrap();
    }

    #[test]
    fn value_ordering_places_high_value_jobs_first() {
        let c = cluster(1, 2, 4);
        let low = Job::builder(JobId(0), ModelKind::Vgg16, 8).value(1.0).build();
        let high = Job::builder(JobId(1), ModelKind::Vgg16, 8).value(5.0).build();
        let mut p = NetPackPlacer::default();
        // Both want all 8 GPUs; knapsack can satisfy only one: the valuable.
        let out = p.place_batch(&c, &[], &[low, high]);
        assert_eq!(out.placed.len(), 1);
        assert_eq!(out.placed[0].0.id, JobId(1));
    }
}

#[cfg(test)]
mod sharded_tests {
    use super::*;
    use netpack_topology::{ClusterSpec, JobId};
    use netpack_workload::ModelKind;

    #[test]
    fn multi_ps_config_produces_sharded_placements() {
        let c = Cluster::new(ClusterSpec {
            racks: 1,
            servers_per_rack: 6,
            gpus_per_server: 2,
            ..ClusterSpec::paper_default()
        });
        let job = Job::builder(JobId(0), ModelKind::Vgg16, 6).build();
        let mut placer = NetPackPlacer::new(NetPackConfig {
            pses_per_job: 2,
            ..NetPackConfig::default()
        });
        let out = placer.place_batch(&c, &[], std::slice::from_ref(&job));
        assert_eq!(out.placed.len(), 1);
        let placement = &out.placed[0].1;
        placement.validate(&c, 6).unwrap();
        assert_eq!(placement.pses().len(), 2);
        assert_eq!(placement.shards(), 2);
    }

    #[test]
    fn sharding_improves_comm_time_under_ps_bottleneck() {
        // Large fan-in, no INA: the PS access link dominates, so two
        // shards should strictly reduce the evaluated communication time.
        let c = Cluster::new(ClusterSpec {
            racks: 1,
            servers_per_rack: 6,
            gpus_per_server: 4,
            pat_gbps: 0.0,
            ..ClusterSpec::paper_default()
        });
        let job = Job::builder(JobId(0), ModelKind::Vgg16, 16).build();
        let obj = |k: usize| {
            let mut placer = NetPackPlacer::new(NetPackConfig {
                pses_per_job: k,
                ina_policy: InaPolicy::AlwaysOff,
                ..NetPackConfig::default()
            });
            let out = placer.place_batch(&c, &[], std::slice::from_ref(&job));
            assert_eq!(out.placed.len(), 1);
            crate::placer::batch_comm_time_s(&c, &[], &out.placed)
        };
        let one = obj(1);
        let two = obj(2);
        assert!(
            two < one - 1e-9,
            "sharding should cut comm time: 1 PS {one}, 2 PS {two}"
        );
    }

    #[test]
    fn single_server_jobs_stay_local_even_with_sharding() {
        let c = Cluster::new(ClusterSpec {
            racks: 1,
            servers_per_rack: 3,
            gpus_per_server: 4,
            ..ClusterSpec::paper_default()
        });
        let job = Job::builder(JobId(0), ModelKind::AlexNet, 4).build();
        let mut placer = NetPackPlacer::new(NetPackConfig {
            pses_per_job: 3,
            ..NetPackConfig::default()
        });
        let out = placer.place_batch(&c, &[], std::slice::from_ref(&job));
        assert!(out.placed[0].1.is_local());
    }
}
