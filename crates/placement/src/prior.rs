//! Prior-art placement strategies the paper compares against: Optimus,
//! Tetris, and the naive multi-resource combination `Comb` (§6.1, §6.4).

use crate::placer::{BatchOutcome, Placer, RunningJob};
use netpack_model::Placement;
use netpack_topology::{Cluster, ServerId};
use netpack_waterfill::{IncrementalEstimator, PlacedJob, SteadyState};
use netpack_workload::Job;

/// **Optimus** (Peng et al., EuroSys'18): sort candidate servers by
/// available GPUs and distribute workers (and the PS) evenly among the
/// minimal top-k subset that covers the demand.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimusLike;

impl OptimusLike {
    fn place_one(cluster: &Cluster, job: &Job) -> Option<Placement> {
        let mut order: Vec<ServerId> = cluster
            .servers()
            .iter()
            .filter(|s| s.gpus_free() > 0)
            .map(|s| s.id())
            .collect();
        order.sort_by_key(|&s| std::cmp::Reverse(cluster.server(s).expect("srv").gpus_free()));
        // Minimal k whose free GPUs cover the demand.
        let mut k = 0;
        let mut covered = 0;
        for &s in &order {
            k += 1;
            covered += cluster.server(s).expect("srv").gpus_free();
            if covered >= job.gpus {
                break;
            }
        }
        if covered < job.gpus {
            return None;
        }
        let top: &[ServerId] = &order[..k];
        // Round-robin workers across the top-k, respecting free capacity.
        let mut assigned = vec![0usize; k];
        let mut remaining = job.gpus;
        while remaining > 0 {
            let mut progressed = false;
            for (i, &s) in top.iter().enumerate() {
                if remaining == 0 {
                    break;
                }
                if assigned[i] < cluster.server(s).expect("srv").gpus_free() {
                    assigned[i] += 1;
                    remaining -= 1;
                    progressed = true;
                }
            }
            debug_assert!(progressed, "coverage was checked above");
            if !progressed {
                return None;
            }
        }
        let workers: Vec<(ServerId, usize)> = top
            .iter()
            .zip(&assigned)
            .filter(|&(_, &w)| w > 0)
            .map(|(&s, &w)| (s, w))
            .collect();
        // PS on the least-loaded member of the subset (fewest assigned).
        let ps = if workers.len() > 1 {
            workers
                .iter()
                .min_by_key(|&&(_, w)| w)
                .map(|&(s, _)| s)
        } else {
            None
        };
        Some(Placement::new(workers, ps))
    }
}

impl Placer for OptimusLike {
    fn name(&self) -> &'static str {
        "Optimus"
    }

    fn place_batch(
        &mut self,
        cluster: &Cluster,
        _running: &[RunningJob],
        batch: &[Job],
    ) -> BatchOutcome {
        crate::placer::greedy_batch(cluster, batch, |scratch, job, _| {
            Self::place_one(scratch, job)
        })
    }
}

/// **Tetris** (Grandl et al., SIGCOMM'14): assign each worker to the server
/// with the highest alignment score — the dot product between the server's
/// available resource vector (GPUs, bandwidth) and the job's demand vector.
#[derive(Debug, Clone, Copy, Default)]
pub struct TetrisLike;

impl TetrisLike {
    fn place_one(
        cluster: &Cluster,
        state: &SteadyState,
        job: &Job,
    ) -> Option<Placement> {
        let gpu_cap = cluster.spec().gpus_per_server as f64;
        let bw_cap = cluster.spec().server_link_gbps;
        // Per-worker demand: one GPU plus the model's communication
        // pressure (gradient gigabits per compute second), both normalized.
        let demand_gpu = 1.0 / gpu_cap;
        let demand_bw = (job.model.comm_intensity() / bw_cap).min(1.0);
        let mut free: Vec<usize> = cluster.servers().iter().map(|s| s.gpus_free()).collect();
        let mut chosen: Vec<(ServerId, usize)> = Vec::new();
        for _ in 0..job.gpus {
            let best = (0..free.len())
                .filter(|&i| free[i] > 0)
                .max_by(|&a, &b| {
                    let score = |i: usize| {
                        let avail_gpu = free[i] as f64 / gpu_cap;
                        let avail_bw =
                            state.server_available_gbps(ServerId(i)) / bw_cap;
                        avail_gpu * demand_gpu + avail_bw * demand_bw
                    };
                    score(a).total_cmp(&score(b)).then(b.cmp(&a))
                })?;
            free[best] -= 1;
            match chosen.iter_mut().find(|(s, _)| s.0 == best) {
                Some(e) => e.1 += 1,
                None => chosen.push((ServerId(best), 1)),
            }
        }
        let ps = if chosen.len() > 1 {
            // PS on the chosen server with the most residual bandwidth.
            chosen
                .iter()
                .max_by(|a, b| {
                    state
                        .server_available_gbps(a.0)
                        .total_cmp(&state.server_available_gbps(b.0))
                })
                .map(|&(s, _)| s)
        } else {
            None
        };
        Some(Placement::new(chosen, ps))
    }
}

impl Placer for TetrisLike {
    fn name(&self) -> &'static str {
        "Tetris"
    }

    fn place_batch(
        &mut self,
        cluster: &Cluster,
        running: &[RunningJob],
        batch: &[Job],
    ) -> BatchOutcome {
        let active: Vec<PlacedJob> = running.iter().map(|r| r.to_placed(cluster)).collect();
        let mut scratch = cluster.clone();
        // Incremental steady-state across the batch: push each placed job
        // instead of a from-scratch water-fill per candidate.
        let mut tracker = IncrementalEstimator::new(&scratch, &active);
        let mut outcome = BatchOutcome::default();
        for job in batch {
            match Self::place_one(&scratch, tracker.state(), job) {
                Some(placement) => {
                    for &(s, w) in placement.workers() {
                        scratch.allocate_gpus(s, w).expect("within free GPUs");
                    }
                    tracker.push(&scratch, PlacedJob::new(job.id, &scratch, &placement));
                    outcome.placed.push((job.clone(), placement));
                }
                None => outcome.deferred.push(job.clone()),
            }
        }
        outcome
    }
}

/// **Comb** (§6.4): the naive combination strategy — sort servers by free
/// GPUs, then residual ToR switch memory, then residual link bandwidth,
/// all descending, and take servers in that order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Comb;

impl Placer for Comb {
    fn name(&self) -> &'static str {
        "Comb"
    }

    fn place_batch(
        &mut self,
        cluster: &Cluster,
        running: &[RunningJob],
        batch: &[Job],
    ) -> BatchOutcome {
        let active: Vec<PlacedJob> = running.iter().map(|r| r.to_placed(cluster)).collect();
        let mut scratch = cluster.clone();
        // Same incremental-tracker pattern as Tetris above.
        let mut tracker = IncrementalEstimator::new(&scratch, &active);
        let mut outcome = BatchOutcome::default();
        for job in batch {
            let state = tracker.state();
            let mut order: Vec<ServerId> = scratch.servers().iter().map(|s| s.id()).collect();
            order.sort_by(|&a, &b| {
                let sa = scratch.server(a).expect("srv");
                let sb = scratch.server(b).expect("srv");
                sb.gpus_free()
                    .cmp(&sa.gpus_free())
                    .then_with(|| {
                        state
                            .pat_residual_gbps(scratch.rack_of(b))
                            .total_cmp(&state.pat_residual_gbps(scratch.rack_of(a)))
                    })
                    .then_with(|| {
                        state
                            .server_available_gbps(b)
                            .total_cmp(&state.server_available_gbps(a))
                    })
            });
            let placement = crate::placer::take_in_order(&scratch, &order, job.gpus)
                .map(|workers| {
                    let ps = if workers.len() > 1 {
                        Some(workers[0].0)
                    } else {
                        None
                    };
                    Placement::new(workers, ps)
                });
            match placement {
                Some(placement) => {
                    for &(s, w) in placement.workers() {
                        scratch.allocate_gpus(s, w).expect("within free GPUs");
                    }
                    tracker.push(&scratch, PlacedJob::new(job.id, &scratch, &placement));
                    outcome.placed.push((job.clone(), placement));
                }
                None => outcome.deferred.push(job.clone()),
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpack_topology::{ClusterSpec, JobId};
    use netpack_workload::ModelKind;

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec {
            racks: 1,
            servers_per_rack: 4,
            gpus_per_server: 4,
            ..ClusterSpec::paper_default()
        })
    }

    fn job(id: u64, gpus: usize) -> Job {
        Job::builder(JobId(id), ModelKind::Vgg16, gpus).build()
    }

    #[test]
    fn optimus_distributes_evenly_over_top_k() {
        let c = cluster();
        let out = OptimusLike.place_batch(&c, &[], &[job(0, 6)]);
        let placement = &out.placed[0].1;
        // Needs 2 servers (4+4 >= 6); round-robin gives 3+3.
        assert_eq!(placement.workers().len(), 2);
        assert!(placement.workers().iter().all(|&(_, w)| w == 3));
        assert!(placement.ps().is_some());
        placement.validate(&c, 6).unwrap();
    }

    #[test]
    fn optimus_defers_when_short_on_gpus() {
        let c = cluster();
        let out = OptimusLike.place_batch(&c, &[], &[job(0, 17)]);
        assert!(out.placed.is_empty());
        assert_eq!(out.deferred.len(), 1);
    }

    #[test]
    fn tetris_places_exact_worker_counts() {
        let c = cluster();
        let out = TetrisLike.place_batch(&c, &[], &[job(0, 5)]);
        let placement = &out.placed[0].1;
        assert_eq!(placement.total_workers(), 5);
        placement.validate(&c, 5).unwrap();
    }

    #[test]
    fn tetris_prefers_idle_servers_for_comm_heavy_jobs() {
        let mut c = cluster();
        // Load server 0's link with a running job's PS.
        let running = RunningJob {
            id: JobId(9),
            gradient_gbits: 4.4,
            placement: Placement::new(
                vec![(ServerId(1), 4), (ServerId(2), 4)],
                Some(ServerId(0)),
            ),
        };
        c.allocate_gpus(ServerId(1), 4).unwrap();
        c.allocate_gpus(ServerId(2), 4).unwrap();
        let out = TetrisLike.place_batch(&c, std::slice::from_ref(&running), &[job(0, 4)]);
        let placement = &out.placed[0].1;
        // Server 3 is idle in both GPUs and bandwidth: best alignment for
        // the first workers (alignment re-balances as its GPUs fill, so
        // later workers may spill onto server 0).
        let on_s3 = placement
            .workers()
            .iter()
            .find(|&&(s, _)| s == ServerId(3))
            .map(|&(_, w)| w)
            .unwrap_or(0);
        assert!(on_s3 >= 2, "expected most workers on the idle server, got {on_s3}");
    }

    #[test]
    fn comb_takes_servers_in_lexicographic_resource_order() {
        let mut c = cluster();
        c.allocate_gpus(ServerId(0), 2).unwrap();
        let out = Comb.place_batch(&c, &[], &[job(0, 4)]);
        let placement = &out.placed[0].1;
        // Servers 1..3 all have 4 free GPUs; server 0 only 2 — any of the
        // full servers must be first.
        assert_eq!(placement.workers().len(), 1);
        assert!(placement.workers()[0].0 >= ServerId(1));
        placement.validate(&c, 4).unwrap();
    }

    #[test]
    fn all_prior_placers_keep_ina_on() {
        let c = cluster();
        let batch = [job(0, 6)];
        for placer in [
            &mut OptimusLike as &mut dyn Placer,
            &mut TetrisLike,
            &mut Comb,
        ] {
            let out = placer.place_batch(&c, &[], &batch);
            assert!(
                out.placed.iter().all(|(_, p)| p.ina_enabled()),
                "{}",
                placer.name()
            );
        }
    }
}
