//! The placer abstraction shared by NetPack and every baseline.

use netpack_model::Placement;
use netpack_topology::{Cluster, JobId};
use netpack_waterfill::PlacedJob;
use netpack_workload::Job;

/// A job that is currently running in the cluster, as placers see it.
#[derive(Debug, Clone, PartialEq)]
pub struct RunningJob {
    /// The job's identifier.
    pub id: JobId,
    /// Per-worker gradient volume per iteration, in gigabits.
    pub gradient_gbits: f64,
    /// Where the job runs.
    pub placement: Placement,
}

impl RunningJob {
    /// Convert to the estimator's input form.
    pub fn to_placed(&self, cluster: &Cluster) -> PlacedJob {
        PlacedJob::new(self.id, cluster, &self.placement)
    }
}

/// The result of placing one batch.
#[derive(Debug, Clone, Default)]
pub struct BatchOutcome {
    /// Jobs placed this epoch, with their placements, in placement order.
    pub placed: Vec<(Job, Placement)>,
    /// Jobs that could not (or were chosen not to) be placed this epoch;
    /// the job manager re-queues them with an aged value.
    pub deferred: Vec<Job>,
}

impl BatchOutcome {
    /// Look up the placement decided for a job this epoch.
    pub fn placement_of(&self, id: JobId) -> Option<&Placement> {
        self.placed
            .iter()
            .find(|(j, _)| j.id == id)
            .map(|(_, p)| p)
    }
}

/// A batch job-placement strategy.
///
/// Implementations must not mutate the cluster they are given: they clone
/// it into a scratch ledger to track intra-batch GPU consumption, and the
/// job manager applies the returned placements to the authoritative ledger
/// after validation.
pub trait Placer {
    /// Short display name used in figure rows (e.g. `"NetPack"`, `"GB"`).
    fn name(&self) -> &'static str;

    /// Place a batch of jobs given the cluster's current state and the
    /// already-running jobs.
    fn place_batch(
        &mut self,
        cluster: &Cluster,
        running: &[RunningJob],
        batch: &[Job],
    ) -> BatchOutcome;
}

/// The MIP objective of Table 3 evaluated under the water-filling model:
/// total per-iteration communication time `Σ_j d^(j) / v^(j)` of the newly
/// placed jobs, with `running` jobs held fixed. Local jobs contribute 0;
/// a zero-rate job contributes `f64::INFINITY`.
///
/// # Example
///
/// ```
/// use netpack_placement::{batch_comm_time_s, NetPackPlacer, Placer};
/// use netpack_topology::{Cluster, ClusterSpec, JobId};
/// use netpack_workload::{Job, ModelKind};
///
/// let cluster = Cluster::new(ClusterSpec::paper_testbed());
/// let job = Job::builder(JobId(0), ModelKind::Vgg16, 4).build();
/// let outcome = NetPackPlacer::default().place_batch(&cluster, &[], &[job]);
/// let obj = batch_comm_time_s(&cluster, &[], &outcome.placed);
/// assert!(obj.is_finite());
/// ```
pub fn batch_comm_time_s(
    cluster: &Cluster,
    running: &[RunningJob],
    placed: &[(Job, Placement)],
) -> f64 {
    let mut all: Vec<netpack_waterfill::PlacedJob> =
        running.iter().map(|r| r.to_placed(cluster)).collect();
    all.extend(
        placed
            .iter()
            .map(|(j, p)| netpack_waterfill::PlacedJob::new(j.id, cluster, p)),
    );
    let state = netpack_waterfill::estimate(cluster, &all);
    placed
        .iter()
        .map(|(j, _)| {
            state
                .comm_time_s(j.id, j.gradient_gbits())
                .unwrap_or(f64::INFINITY)
        })
        .sum()
}

/// Greedy FIFO batch driver shared by the single-job baselines: places each
/// job in arrival order on a scratch ledger, deferring jobs that do not fit.
///
/// The driver owns a candidate-order arena passed to `place_one` on every
/// call: placers refill (`clear` + `extend`) and sort it in place, so a
/// batch performs one allocation for the order list however many jobs it
/// holds.
pub(crate) fn greedy_batch<F>(
    cluster: &Cluster,
    batch: &[Job],
    mut place_one: F,
) -> BatchOutcome
where
    F: FnMut(&Cluster, &Job, &mut Vec<netpack_topology::ServerId>) -> Option<Placement>,
{
    let mut scratch = cluster.clone();
    let mut outcome = BatchOutcome::default();
    let mut order: Vec<netpack_topology::ServerId> = Vec::with_capacity(cluster.num_servers());
    for job in batch {
        match place_one(&scratch, job, &mut order) {
            Some(placement) if try_allocate(&mut scratch, &placement) => {
                outcome.placed.push((job.clone(), placement));
            }
            // No proposal, or an over-committed one: defer. A buggy
            // placer proposal must not panic the library — the manager
            // re-validates and re-queues deferred jobs anyway.
            _ => outcome.deferred.push(job.clone()),
        }
    }
    outcome
}

/// Allocate every worker of `placement` on the scratch ledger, rolling the
/// ledger back and returning `false` when any server lacks the free GPUs.
fn try_allocate(scratch: &mut Cluster, placement: &Placement) -> bool {
    for (i, &(s, w)) in placement.workers().iter().enumerate() {
        if scratch.allocate_gpus(s, w).is_err() {
            for &(s2, w2) in &placement.workers()[..i] {
                // Releasing what this loop just allocated cannot fail.
                let _ = scratch.release_gpus(s2, w2);
            }
            return false;
        }
    }
    true
}

/// Shared helper: pick servers from a preference-ordered candidate list
/// until the GPU demand is met, taking as many free GPUs per server as
/// needed. Returns `None` when the cluster lacks free GPUs overall.
pub(crate) fn take_in_order(
    cluster: &Cluster,
    order: &[netpack_topology::ServerId],
    gpus: usize,
) -> Option<Vec<(netpack_topology::ServerId, usize)>> {
    let mut remaining = gpus;
    let mut chosen = Vec::new();
    for &s in order {
        if remaining == 0 {
            break;
        }
        let free = cluster.server(s)?.gpus_free();
        if free == 0 {
            continue;
        }
        let take = free.min(remaining);
        chosen.push((s, take));
        remaining -= take;
    }
    if remaining == 0 {
        Some(chosen)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpack_topology::{ClusterSpec, ServerId};
    use netpack_workload::ModelKind;

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec {
            racks: 1,
            servers_per_rack: 3,
            gpus_per_server: 2,
            ..ClusterSpec::paper_default()
        })
    }

    fn job(id: u64, gpus: usize) -> Job {
        Job::builder(JobId(id), ModelKind::ResNet50, gpus).build()
    }

    #[test]
    fn greedy_batch_tracks_intra_batch_consumption() {
        let c = cluster();
        let batch = [job(0, 2), job(1, 2), job(2, 2), job(3, 2)];
        // Place each job on the first server with free GPUs.
        let outcome = greedy_batch(&c, &batch, |scratch, j, order| {
            order.clear();
            order.extend(scratch.servers().iter().map(|s| s.id()));
            let workers = take_in_order(scratch, order, j.gpus)?;
            Some(Placement::new(workers, None))
        });
        // 6 GPUs total: three jobs fit, the fourth defers.
        assert_eq!(outcome.placed.len(), 3);
        assert_eq!(outcome.deferred.len(), 1);
        assert_eq!(outcome.deferred[0].id, JobId(3));
        assert!(outcome.placement_of(JobId(0)).is_some());
        assert!(outcome.placement_of(JobId(3)).is_none());
    }

    #[test]
    fn greedy_batch_defers_overcommitted_proposals_without_panicking() {
        let c = cluster();
        // A buggy single-job placer proposing 5 GPUs on a 2-GPU server:
        // the proposal is deferred, the scratch ledger stays clean, and
        // later feasible proposals still land.
        let batch = [job(0, 5), job(1, 2)];
        let outcome = greedy_batch(&c, &batch, |_, j, _| {
            Some(Placement::new(vec![(ServerId(0), j.gpus)], None))
        });
        assert_eq!(outcome.deferred.len(), 1);
        assert_eq!(outcome.deferred[0].id, JobId(0));
        assert_eq!(outcome.placed.len(), 1);
        assert_eq!(outcome.placed[0].0.id, JobId(1));
    }

    #[test]
    fn greedy_batch_rolls_back_partial_overcommits() {
        let c = cluster();
        // Worker list (2@s0, 2@s1, 2@s2, 1@s0): the first three allocations
        // succeed, the fourth overcommits; all three must be rolled back so
        // the follow-up job still sees a virgin ledger.
        let over = Placement::new(
            vec![(ServerId(0), 2), (ServerId(1), 2), (ServerId(2), 2), (ServerId(0), 1)],
            None,
        );
        let batch = [job(0, 7), job(1, 6)];
        let mut first = true;
        let outcome = greedy_batch(&c, &batch, |_, _, _| {
            if first {
                first = false;
                Some(over.clone())
            } else {
                Some(Placement::new(
                    vec![(ServerId(0), 2), (ServerId(1), 2), (ServerId(2), 2)],
                    Some(ServerId(0)),
                ))
            }
        });
        assert_eq!(outcome.deferred.len(), 1);
        assert_eq!(outcome.placed.len(), 1, "rollback must free the GPUs");
    }

    #[test]
    fn infinite_rate_jobs_contribute_exactly_zero() {
        // Degenerate placement: spanning workers but no PS yields no
        // network components, so the estimator reports an infinite rate
        // and the objective must count exactly 0 s for it (not NaN, not a
        // rounding residue). This pins the tie-break the exact search
        // relies on: a degenerate job can tie with, never beat, a local
        // placement that also scores 0.
        let c = cluster();
        let no_ps = Placement::new(vec![(ServerId(0), 1), (ServerId(1), 1)], None);
        let placed = vec![(job(0, 2), no_ps.clone())];
        let obj = batch_comm_time_s(&c, &[], &placed);
        assert_eq!(obj.to_bits(), 0.0f64.to_bits());

        // Mixed batch: the infinite-rate job's 0.0 must leave the finite
        // job's contribution bit-identical to what it scores alone.
        let spanning = Placement::new(vec![(ServerId(1), 1), (ServerId(2), 1)], Some(ServerId(0)));
        let alone = batch_comm_time_s(&c, &[], &[(job(1, 2), spanning.clone())]);
        let mixed = batch_comm_time_s(
            &c,
            &[],
            &[(job(0, 2), no_ps), (job(1, 2), spanning)],
        );
        assert!(alone.is_finite() && alone > 0.0);
        assert_eq!(mixed.to_bits(), alone.to_bits());
    }

    #[test]
    fn take_in_order_skips_full_servers() {
        let mut c = cluster();
        c.allocate_gpus(ServerId(0), 2).unwrap();
        let order: Vec<ServerId> = c.servers().iter().map(|s| s.id()).collect();
        let chosen = take_in_order(&c, &order, 3).unwrap();
        assert_eq!(chosen, vec![(ServerId(1), 2), (ServerId(2), 1)]);
    }

    #[test]
    fn take_in_order_reports_shortage() {
        let c = cluster();
        let order: Vec<ServerId> = c.servers().iter().map(|s| s.id()).collect();
        assert!(take_in_order(&c, &order, 7).is_none());
    }

    #[test]
    fn running_job_converts_to_placed() {
        let c = cluster();
        let r = RunningJob {
            id: JobId(5),
            gradient_gbits: 4.0,
            placement: Placement::new(vec![(ServerId(0), 1), (ServerId(1), 1)], Some(ServerId(2))),
        };
        let placed = r.to_placed(&c);
        assert_eq!(placed.id(), JobId(5));
        assert!(placed.hierarchy().is_some());
    }
}
