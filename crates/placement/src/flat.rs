//! Flat-topology placement path (`NETPACK_TOPO=flat`, the default).
//!
//! The struct path in `netpack.rs` clones the cluster and walks
//! `&[Server]` slices per candidate; comfortable at 256 servers, hopeless
//! at 50k. This module re-implements the *mechanics* of `place_one` /
//! `place_batch` over [`FlatTopology`]'s integer-indexed arrays while
//! keeping the *algorithm* — every comparison, every float operation, every
//! tie-break — identical, so both modes return bit-identical placements
//! (`DESIGN.md` §3.11; pinned by the `flat_struct_equivalence` property
//! tests and the `scripts/check.sh` smoke byte-diff). Three mechanisms
//! carry the speedup:
//!
//! 1. **Per-pod sharded candidate selection.** Each pod's contiguous
//!    server range runs its own [`CandidateFilter`] via `parallel_sweep`;
//!    shard results merge pod-ascending. Selection is a top-K cut of a
//!    totally ordered set, so sharding is *exactly* equal to the
//!    sequential scan, not merely equivalent.
//! 2. **Class-deduplicated PS scoring.** For a fixed plan, the score of a
//!    PS candidate outside the plan's racks is a pure function of
//!    `(flows, avail, rack uplink flows, rack uplink capacity)`. Servers
//!    are bucketed by that key once per job; each plan then scores one
//!    representative per class plus every server in the plan's own racks,
//!    collapsing ~50k evaluations to a few hundred. The winner under
//!    (max score, min server id) equals the reference's
//!    first-strictly-greater scan.
//! 3. **Arena reuse.** All per-job and per-plan scratch (class tables,
//!    stamp masks, worker lists) lives in [`FlatBatch`] and is reused
//!    across the whole batch; the hot loop allocates nothing and the
//!    cluster is never cloned — worker commitment is a private integer
//!    ledger.

use crate::dp::{ServerStats, WorkerDp, WorkerPlan};
use crate::knapsack::select_job_subset;
use crate::netpack::{BatchMode, NetPackPlacer, ScoringMode};
use crate::placer::{BatchOutcome, RunningJob};
use crate::select::CandidateFilter;
use crate::spec::{place_batch_spec, FastWorld};
use netpack_metrics::{parallel_sweep_reduce, parallel_sweep_with, PerfCounters, Stopwatch};
use netpack_model::Placement;
use netpack_topology::{Cluster, FlatTopology, LinkId, RackId, ServerId};
use netpack_waterfill::{estimate, IncrementalEstimator, PlacedJob, SteadyState};
use netpack_workload::Job;
use std::sync::{Mutex, TryLockError};

/// Minimum plan count before the PS-scoring loop fans out across threads;
/// below this the pool-grab overhead outweighs the dozen scores saved.
const PLAN_PAR_MIN: usize = 16;

/// Mixes a 64-bit word (splitmix64 finalizer) — the class-table hash.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Key under which two servers are interchangeable as *ordinary* PS
/// candidates (outside every plan rack) for one steady state: the score is
/// a pure function of these four fields plus plan-wide constants.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ClassKey {
    /// Steady-state flows on the server's access link.
    flows: u32,
    /// Bit pattern of the server's residual access bandwidth.
    avail_bits: u64,
    /// Existing flows on the server's rack uplink.
    fc_up: u32,
    /// Bit pattern of the rack uplink capacity (uniform today; keyed so
    /// heterogeneous racks can never silently break the dedup).
    up_bits: u64,
}

impl ClassKey {
    fn hash(&self) -> u64 {
        let a = mix64(u64::from(self.flows) ^ self.avail_bits.rotate_left(17));
        mix64(a ^ u64::from(self.fc_up).rotate_left(43) ^ self.up_bits)
    }
}

/// Batch-lifetime state of the flat placement path: the lowered topology,
/// the private GPU ledger, and every scratch arena the hot loops reuse.
pub(crate) struct FlatBatch {
    topo: FlatTopology,
    /// Free GPUs per server — the flat path's own ledger; the `Cluster`
    /// is never cloned or mutated.
    gpus_free: Vec<u32>,
    /// `0..num_pods`, the `parallel_sweep` cell list.
    pods: Vec<usize>,
    // -- per-job class table (rebuilt by `build_classes`) --
    /// Existing uplink flows per rack for the current steady state.
    rack_fc: Vec<u32>,
    /// Open-addressing slots holding `class id + 1` (0 = empty).
    class_slots: Vec<u32>,
    slot_mask: usize,
    classes: Vec<ClassKey>,
    /// Member count per class (build scratch), then reused as cursors.
    class_count: Vec<u32>,
    class_of: Vec<u32>,
    /// Prefix offsets into `members`, one past the end per class.
    class_start: Vec<u32>,
    /// Server ids grouped by class, ascending within each class.
    members: Vec<u32>,
    // -- per-plan scratch (stamped, never cleared) --
    /// The master [`PlanScratch`], used by every sequential plan loop.
    scratch: PlanScratch,
    /// Extra scratches for the parallel plan loop, lazily grown to the
    /// worker count; workers grab a free one per plan via `try_lock`.
    plan_pool: Vec<Mutex<PlanScratch>>,
    /// Gradient-sharding arena: per-server PS scores for the winning plan,
    /// reused across jobs instead of a fresh length-`n` `Vec` each time.
    ps_scored: Vec<(f64, ServerId)>,
}

/// Per-plan stamped scratch: which servers and racks the current plan
/// touches, plus its per-rack worker totals. Extracted from [`FlatBatch`]
/// so the parallel plan loop can hand each worker an independent copy; the
/// stamp trick (bump a counter instead of clearing arrays) is unchanged,
/// and scores are a pure function of the plan — never of which scratch, or
/// whose stamp history, computed them.
#[derive(Debug, Default)]
struct PlanScratch {
    chosen_stamp: Vec<u32>,
    rack_stamp: Vec<u32>,
    stamp: u32,
    rack_workers: Vec<(RackId, u32)>,
}

impl PlanScratch {
    /// Size the stamp arenas for a topology (idempotent).
    fn ensure(&mut self, ns: usize, nr: usize) {
        if self.chosen_stamp.len() != ns || self.rack_stamp.len() != nr {
            self.chosen_stamp = vec![0; ns];
            self.rack_stamp = vec![0; nr];
            self.stamp = 0;
        }
    }

    /// Stamp one plan's chosen servers and racks and rebuild the per-rack
    /// worker totals (first-seen order, as the reference computes them).
    /// Returns the stamp identifying this plan in the stamp arenas.
    fn begin(&mut self, topo: &FlatTopology, gpus_free: &[u32], plan: &WorkerPlan) -> u32 {
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            self.chosen_stamp.fill(0);
            self.rack_stamp.fill(0);
            self.stamp = 1;
        }
        let stamp = self.stamp;
        self.rack_workers.clear();
        for &sid in &plan.servers {
            self.chosen_stamp[sid.0] = stamp;
            let r = RackId(topo.rack_of(sid.0));
            let w = gpus_free[sid.0];
            match self.rack_workers.iter_mut().find(|(rr, _)| *rr == r) {
                Some(e) => e.1 += w,
                None => {
                    self.rack_workers.push((r, w));
                    self.rack_stamp[r.0] = stamp;
                }
            }
        }
        stamp
    }
}

/// Grab any free slot from a scratch pool, spinning across entries until
/// one unlocks. Pools are sized to the worker count, so a free entry
/// always exists; a poisoned entry is reclaimed (its contents are scratch,
/// valid in any state).
pub(crate) fn grab_slot<T>(pool: &[Mutex<T>]) -> std::sync::MutexGuard<'_, T> {
    loop {
        for m in pool {
            match m.try_lock() {
                Ok(g) => return g,
                Err(TryLockError::Poisoned(p)) => return p.into_inner(),
                Err(TryLockError::WouldBlock) => {}
            }
        }
        std::hint::spin_loop();
    }
}

/// What kind of decision [`NetPackPlacer::place_one_flat_traced`] reached —
/// the footprint the speculation engine validates against later commits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum SpecProbe {
    /// Single-server shortcut hit: the job fits whole on `server`, with
    /// `fit` GPUs left over and `avail` residual bandwidth — the winning
    /// triple of the tightest-fit scan, kept for exact revalidation.
    Local { server: usize, fit: usize, avail: f64 },
    /// Spanning placement via the DP / PS-scoring pipeline.
    Spanning,
    /// No feasible plan; the job defers.
    Deferred,
}

impl FlatBatch {
    pub(crate) fn new(cluster: &Cluster) -> Self {
        let topo = FlatTopology::new(cluster);
        let gpus_free: Vec<u32> = cluster
            .servers()
            .iter()
            .map(|s| s.gpus_free() as u32)
            .collect();
        Self::with_topo(topo, gpus_free)
    }

    fn with_topo(topo: FlatTopology, gpus_free: Vec<u32>) -> Self {
        let ns = topo.num_servers();
        let nr = topo.num_racks();
        let pods: Vec<usize> = (0..topo.num_pods()).collect();
        let cap = (2 * ns.max(1)).next_power_of_two();
        let mut scratch = PlanScratch::default();
        scratch.ensure(ns, nr);
        FlatBatch {
            topo,
            gpus_free,
            pods,
            rack_fc: Vec::with_capacity(nr),
            class_slots: vec![0; cap],
            slot_mask: cap - 1,
            classes: Vec::new(),
            class_count: Vec::new(),
            class_of: vec![0; ns],
            class_start: Vec::new(),
            members: vec![0; ns],
            scratch,
            plan_pool: Vec::new(),
            ps_scored: Vec::new(),
        }
    }

    /// An independent copy for a speculative scoring worker: same topology
    /// and GPU-ledger snapshot, fresh scratch. Forks are explicit (no
    /// derived `Clone`) and never copy the plan pool.
    pub(crate) fn fork(&self) -> FlatBatch {
        Self::with_topo(self.topo.clone(), self.gpus_free.clone())
    }

    /// Re-align a fork's GPU ledger with the master's before a scoring
    /// round — the only state a fork shares with its master.
    pub(crate) fn sync_from(&mut self, master: &FlatBatch) {
        self.gpus_free.copy_from_slice(&master.gpus_free);
    }

    /// The per-server free-GPU ledger (speculation validation reads it).
    pub(crate) fn ledger(&self) -> &[u32] {
        &self.gpus_free
    }

    /// Grow the plan-scoring scratch pool to `workers` entries.
    fn ensure_plan_pool(&mut self, workers: usize) {
        let ns = self.topo.num_servers();
        let nr = self.topo.num_racks();
        while self.plan_pool.len() < workers {
            let mut s = PlanScratch::default();
            s.ensure(ns, nr);
            self.plan_pool.push(Mutex::new(s));
        }
    }

    /// Debit the ledger for a placement. Returns `false` (committing
    /// nothing) if any worker would overdraw — the DP guarantees this
    /// never happens, but the ledger refuses rather than panics.
    pub(crate) fn commit(&mut self, placement: &Placement) -> bool {
        let fits = placement
            .workers()
            .iter()
            .all(|&(s, w)| w <= self.gpus_free[s.0] as usize);
        if !fits {
            return false;
        }
        for &(s, w) in placement.workers() {
            self.gpus_free[s.0] -= w as u32;
        }
        true
    }

    /// Credit `w` GPUs back to `server` — the inverse of one
    /// [`commit`](Self::commit) entry, used by the persistent session when
    /// a running job completes.
    pub(crate) fn credit(&mut self, server: ServerId, w: usize) {
        self.gpus_free[server.0] += w as u32;
    }

    /// Credit every worker of `placement` back — the full inverse of
    /// [`commit`](Self::commit), for rollback.
    pub(crate) fn credit_placement(&mut self, placement: &Placement) {
        for &(s, w) in placement.workers() {
            self.credit(s, w);
        }
    }

    /// Bucket every server by [`ClassKey`] for the current steady state.
    /// Two passes plus one open-addressing probe per server; members end
    /// up grouped per class in ascending server-id order.
    fn build_classes(&mut self, cluster: &Cluster, state: &SteadyState) {
        let ns = self.topo.num_servers();
        let nr = self.topo.num_racks();
        self.rack_fc.clear();
        for r in 0..nr {
            self.rack_fc
                .push(state.link_flows(LinkId::RackUplink(RackId(r)), cluster));
        }
        self.class_slots.fill(0);
        self.classes.clear();
        self.class_count.clear();
        for s in 0..ns {
            let rack = self.topo.rack_of(s);
            let key = ClassKey {
                flows: state.server_flows(ServerId(s)),
                avail_bits: state.server_available_gbps(ServerId(s)).to_bits(),
                fc_up: self.rack_fc[rack],
                up_bits: self.topo.rack_uplink_gbps(rack).to_bits(),
            };
            let mut slot = key.hash() as usize & self.slot_mask;
            let cid = loop {
                match self.class_slots[slot] {
                    0 => {
                        let cid = self.classes.len() as u32;
                        self.class_slots[slot] = cid + 1;
                        self.classes.push(key);
                        self.class_count.push(0);
                        break cid;
                    }
                    v => {
                        let cid = v - 1;
                        if self.classes[cid as usize] == key {
                            break cid;
                        }
                        slot = (slot + 1) & self.slot_mask;
                    }
                }
            };
            self.class_count[cid as usize] += 1;
            self.class_of[s] = cid;
        }
        self.class_start.clear();
        let mut acc = 0u32;
        for cursor in &mut self.class_count {
            self.class_start.push(acc);
            let count = *cursor;
            // Reuse the count slot as the fill cursor for pass two.
            *cursor = acc;
            acc += count;
        }
        self.class_start.push(acc);
        for s in 0..ns {
            let cid = self.class_of[s] as usize;
            self.members[self.class_count[cid] as usize] = s as u32;
            self.class_count[cid] += 1;
        }
    }

}

impl NetPackPlacer {
    /// Score one PS candidate for one plan — the exact float operations of
    /// the reference scorer, fed from the flat ledger and stamp arenas.
    #[allow(clippy::too_many_arguments)]
    fn score_candidate_flat(
        &self,
        fb: &FlatBatch,
        ps: &PlanScratch,
        cluster: &Cluster,
        state: &SteadyState,
        capacity: f64,
        plan: &WorkerPlan,
        sid: usize,
        stamp: u32,
    ) -> f64 {
        let chosen = ps.chosen_stamp[sid] == stamp;
        let eps = u32::from(!chosen);
        let own_workers = if chosen { fb.gpus_free[sid] } else { 0 };
        let s_flows = state.server_flows(ServerId(sid)) + own_workers;
        let f_max = plan.max_flows.max(s_flows + eps);
        let avail = state.server_available_gbps(ServerId(sid));
        let base = plan.value + avail - (capacity - avail) / (f64::from(s_flows + eps) + 1.0);
        let term = self.hotspot_term(cluster, state, &ps.rack_workers, ServerId(sid), f_max);
        base + term
    }

    /// Best `(score, PS server)` of one plan under (max score, min id) —
    /// equal to the reference's ascending first-strictly-greater scan.
    /// Servers in the plan's racks are scored individually; everyone else
    /// is covered by one representative per [`ClassKey`] class (the
    /// lowest-id member outside the plan's racks). `evals` counts actual
    /// score evaluations.
    #[allow(clippy::too_many_arguments)]
    fn score_plan_flat(
        &self,
        fb: &FlatBatch,
        ps: &mut PlanScratch,
        cluster: &Cluster,
        state: &SteadyState,
        capacity: f64,
        plan: &WorkerPlan,
        evals: &mut u64,
    ) -> Option<(f64, ServerId)> {
        let stamp = ps.begin(&fb.topo, &fb.gpus_free, plan);
        let mut best: Option<(f64, usize)> = None;
        let consider = |score: f64, sid: usize, best: &mut Option<(f64, usize)>| {
            let wins = match *best {
                None => true,
                Some((b, bsid)) => score > b || (score == b && sid < bsid),
            };
            if wins {
                *best = Some((score, sid));
            }
        };
        // Servers in the plan's racks: hot-spot geometry varies per
        // server, score each one.
        for ri in 0..ps.rack_workers.len() {
            let rack = ps.rack_workers[ri].0;
            for sid in fb.topo.rack_server_range(rack.0) {
                let score =
                    self.score_candidate_flat(fb, ps, cluster, state, capacity, plan, sid, stamp);
                *evals += 1;
                consider(score, sid, &mut best);
            }
        }
        // Everyone else: one representative per class. All members of a
        // class outside the plan's racks share one score bit pattern, and
        // the lowest-id one is the only candidate (min id) among them.
        for cid in 0..fb.classes.len() {
            let start = fb.class_start[cid] as usize;
            let end = fb.class_start[cid + 1] as usize;
            let rep = fb.members[start..end]
                .iter()
                .map(|&m| m as usize)
                .find(|&m| ps.rack_stamp[fb.topo.rack_of(m)] != stamp);
            if let Some(sid) = rep {
                let score =
                    self.score_candidate_flat(fb, ps, cluster, state, capacity, plan, sid, stamp);
                *evals += 1;
                consider(score, sid, &mut best);
            }
        }
        best.map(|(score, sid)| (score, ServerId(sid)))
    }

    /// `place_one` over the flat arrays: identical algorithm, integer
    /// indices, pod-sharded selection, deduplicated scoring.
    pub(crate) fn place_one_flat(
        &self,
        fb: &mut FlatBatch,
        cluster: &Cluster,
        state: &SteadyState,
        job: &Job,
        perf: &mut PerfCounters,
    ) -> Option<Placement> {
        self.place_one_flat_traced(fb, cluster, state, job, perf).0
    }

    /// [`place_one_flat`](Self::place_one_flat) plus the [`SpecProbe`]
    /// describing what kind of decision was reached — the footprint the
    /// speculation engine revalidates after intervening commits.
    pub(crate) fn place_one_flat_traced(
        &self,
        fb: &mut FlatBatch,
        cluster: &Cluster,
        state: &SteadyState,
        job: &Job,
        perf: &mut PerfCounters,
    ) -> (Option<Placement>, SpecProbe) {
        let n = fb.topo.num_servers();
        let threads = self.threads();
        // Single-server shortcut: tightest fit, ties toward the most
        // residual bandwidth, first wins (= the reference's `min_by`).
        let scan_start = Stopwatch::start();
        let mut single: Option<(usize, f64, usize)> = None;
        for s in 0..n {
            let free = fb.gpus_free[s] as usize;
            if free < job.gpus {
                continue;
            }
            let d = free - job.gpus;
            let avail = state.server_available_gbps(ServerId(s));
            let wins = match single {
                None => true,
                Some((bd, bavail, _)) => {
                    d < bd
                        || (d == bd
                            && avail.total_cmp(&bavail) == std::cmp::Ordering::Greater)
                }
            };
            if wins {
                single = Some((d, avail, s));
            }
        }
        perf.record("single_scan", scan_start.elapsed());
        if let Some((fit, avail, s)) = single {
            return (
                Some(Placement::local(ServerId(s), job.gpus)),
                SpecProbe::Local { server: s, fit, avail },
            );
        }

        // Pod-sharded candidate selection feeding the same pruned DP as
        // the struct path (see `CandidateFilter` for why sharding and
        // pruning are exactly placement-preserving).
        let capacity = cluster.spec().server_link_gbps;
        let gps = cluster.spec().gpus_per_server;
        let slack = gps;
        let fs_max = self.config.flow_dimension.then_some(self.config.fs_max);
        let select_start = Stopwatch::start();
        let filter = {
            let topo = &fb.topo;
            let gpus_free = &fb.gpus_free;
            let shards = parallel_sweep_with(threads, &fb.pods, |&pod| {
                let mut shard = CandidateFilter::new(gps, job.gpus, slack, fs_max);
                for s in topo.pod_server_range(pod) {
                    let avail = state.server_available_gbps(ServerId(s));
                    let flows = state.server_flows(ServerId(s));
                    shard.offer(ServerStats {
                        id: ServerId(s),
                        gpus_free: gpus_free[s] as usize,
                        value: Self::server_value(capacity, avail, flows),
                        flows,
                    });
                }
                shard
            });
            let mut merged = CandidateFilter::new(gps, job.gpus, slack, fs_max);
            for shard in &shards {
                merged.merge(shard);
            }
            merged
        };
        perf.record("candidate_select", select_start.elapsed());
        perf.incr("dp_candidates_offered", filter.offered());
        perf.incr("dp_candidates_kept", filter.kept() as u64);
        let stats = filter.candidates();
        let dp = if self.config.flow_dimension {
            WorkerDp::new(self.config.fs_max)
        } else {
            WorkerDp::without_flow_dimension()
        };
        let dp_start = Stopwatch::start();
        let plans = dp.plans(&stats, job.gpus, slack);
        perf.record("worker_dp", dp_start.elapsed());
        if plans.is_empty() {
            return (None, SpecProbe::Deferred);
        }

        // PSPlacement with class-deduplicated scoring.
        perf.incr("plans_considered", plans.len() as u64);
        let class_start = Stopwatch::start();
        fb.build_classes(cluster, state);
        perf.record("class_build", class_start.elapsed());
        let scoring_start = Stopwatch::start();
        let (best, evals) = if plans.len() >= PLAN_PAR_MIN && threads > 1 {
            // Workers score disjoint plan ranges concurrently on pooled
            // scratches; the ordered fold re-applies the sequential
            // tie-break (strictly greater wins, lowest plan index keeps
            // ties) in plan order, so the winner is bit-identical to the
            // loop below for any worker count.
            fb.ensure_plan_pool(threads);
            let fbr: &FlatBatch = fb;
            let cells: Vec<usize> = (0..plans.len()).collect();
            parallel_sweep_reduce(
                threads,
                &cells,
                |&pi| {
                    let mut scratch = grab_slot(&fbr.plan_pool);
                    let mut e = 0u64;
                    let r = self.score_plan_flat(
                        fbr, &mut scratch, cluster, state, capacity, &plans[pi], &mut e,
                    );
                    (pi, r, e)
                },
                (None, 0u64),
                |(best, evals): (Option<(f64, usize, ServerId)>, u64), (pi, r, e)| {
                    let best = match r {
                        Some((score, sid))
                            if best.is_none_or(|(b, _, _)| score > b) =>
                        {
                            Some((score, pi, sid))
                        }
                        _ => best,
                    };
                    (best, evals + e)
                },
            )
        } else {
            let mut scratch = std::mem::take(&mut fb.scratch);
            let mut best: Option<(f64, usize, ServerId)> = None;
            let mut evals = 0u64;
            for (pi, plan) in plans.iter().enumerate() {
                if let Some((score, sid)) =
                    self.score_plan_flat(fb, &mut scratch, cluster, state, capacity, plan, &mut evals)
                {
                    if best.is_none_or(|(b, _, _)| score > b) {
                        best = Some((score, pi, sid));
                    }
                }
            }
            fb.scratch = scratch;
            (best, evals)
        };
        perf.incr("ps_candidates_scored", evals);
        perf.record("ps_scoring", scoring_start.elapsed());
        let Some((_, pi, ps)) = best else {
            return (None, SpecProbe::Deferred);
        };
        let plan = &plans[pi];

        // Gradient sharding (k > 1): rank every server for the winning
        // plan, exactly as the struct path does, into the reused arena.
        let pses = if self.config.pses_per_job <= 1 {
            vec![ps]
        } else {
            let mut scratch = std::mem::take(&mut fb.scratch);
            let mut scored = std::mem::take(&mut fb.ps_scored);
            let stamp = scratch.begin(&fb.topo, &fb.gpus_free, plan);
            scored.clear();
            for sid in 0..n {
                let score =
                    self.score_candidate_flat(fb, &scratch, cluster, state, capacity, plan, sid, stamp);
                scored.push((score, ServerId(sid)));
            }
            scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            let pses: Vec<ServerId> = scored
                .iter()
                .take(self.config.pses_per_job)
                .map(|&(_, sid)| sid)
                .collect();
            fb.ps_scored = scored;
            fb.scratch = scratch;
            pses
        };

        // Materialize and release surplus: PS's own server first, then the
        // least-loaded (largest, last on ties — the reference's
        // `max_by_key`) chosen server. Drained entries stay in place at
        // zero instead of paying an O(n) `remove` each: a zero can never
        // win `w >= bw` while a positive worker remains (and one always
        // does while surplus > 0), and compaction preserves the survivors'
        // relative order, so the last-max pick is exactly the reference's.
        let mut workers: Vec<(ServerId, usize)> = plan
            .servers
            .iter()
            .map(|&s| (s, fb.gpus_free[s.0] as usize))
            .collect();
        let Some(mut surplus) = plan.gpus.checked_sub(job.gpus) else {
            return (None, SpecProbe::Deferred);
        };
        while surplus > 0 {
            let idx = match workers.iter().position(|&(s, w)| s == ps && w > 0) {
                Some(i) => i,
                None => {
                    let mut max: Option<(usize, usize)> = None;
                    for (i, &(_, w)) in workers.iter().enumerate() {
                        if max.is_none_or(|(_, bw)| w >= bw) {
                            max = Some((i, w));
                        }
                    }
                    match max {
                        Some((i, _)) => i,
                        None => return (None, SpecProbe::Deferred),
                    }
                }
            };
            let take = workers[idx].1.min(surplus);
            workers[idx].1 -= take;
            surplus -= take;
        }
        workers.retain(|&(_, w)| w > 0);
        (Some(Placement::new_sharded(workers, pses)), SpecProbe::Spanning)
    }

    /// `place_batch` over the flat arrays: same four steps, no cluster
    /// clone (the GPU ledger lives in [`FlatBatch`]).
    pub(crate) fn place_batch_flat(
        &mut self,
        cluster: &Cluster,
        running: &[RunningJob],
        batch: &[Job],
    ) -> BatchOutcome {
        let mut perf = std::mem::take(&mut self.perf);
        let batch_start = Stopwatch::start();
        let mut outcome = BatchOutcome::default();
        // Step 1: FindSubset.
        let subset = select_job_subset(batch, cluster.free_gpus());
        let mut in_subset = vec![false; batch.len()];
        for &i in &subset {
            in_subset[i] = true;
        }
        for (i, job) in batch.iter().enumerate() {
            if !in_subset[i] {
                outcome.deferred.push(job.clone());
            }
        }
        let mut ordered: Vec<&Job> = subset.iter().map(|&i| &batch[i]).collect();
        ordered.sort_by(|a, b| b.value.total_cmp(&a.value).then(a.id.cmp(&b.id)));

        let mut fb = FlatBatch::new(cluster);
        match self.config.scoring {
            ScoringMode::Fast => {
                let running_placed: Vec<PlacedJob> =
                    running.iter().map(|r| r.to_placed(cluster)).collect();
                let start = Stopwatch::start();
                let mut inc = IncrementalEstimator::new(cluster, &running_placed);
                perf.record("waterfill_solve", start.elapsed());
                match self.config.batch {
                    BatchMode::Spec => {
                        let mut world = FastWorld {
                            cluster,
                            inc: &mut inc,
                        };
                        let out =
                            place_batch_spec(self, &mut fb, &mut world, &ordered, &mut perf);
                        outcome.placed.extend(out.placed);
                        outcome.deferred.extend(out.deferred);
                    }
                    BatchMode::Seq => {
                        for job in ordered {
                            let one_start = Stopwatch::start();
                            let placed =
                                self.place_one_flat(&mut fb, cluster, inc.state(), job, &mut perf);
                            perf.record("place_one", one_start.elapsed());
                            match placed {
                                Some(placement) if fb.commit(&placement) => {
                                    let start = Stopwatch::start();
                                    inc.push(cluster, PlacedJob::new(job.id, cluster, &placement));
                                    perf.record("waterfill_solve", start.elapsed());
                                    outcome.placed.push((job.clone(), placement));
                                }
                                _ => outcome.deferred.push(job.clone()),
                            }
                        }
                    }
                }
                let stats = *inc.stats();
                perf.incr("waterfill_pushes", stats.pushes);
                perf.incr("waterfill_jobs_resolved", stats.jobs_resolved);
                perf.incr("waterfill_jobs_reused", stats.jobs_reused);
                perf.incr("waterfill_components_solved", stats.components_solved);
                let ina_start = Stopwatch::start();
                self.enable_ina(cluster, running, &mut outcome.placed, Some(inc.state()), &mut perf);
                perf.record("ina_enable", ina_start.elapsed());
            }
            ScoringMode::Sequential => {
                let mut active: Vec<PlacedJob> =
                    running.iter().map(|r| r.to_placed(cluster)).collect();
                for job in ordered {
                    perf.incr(
                        "waterfill_jobs_resolved",
                        active.iter().filter(|j| j.is_network()).count() as u64,
                    );
                    let start = Stopwatch::start();
                    let state = estimate(cluster, &active);
                    perf.record("waterfill_solve", start.elapsed());
                    match self.place_one_flat(&mut fb, cluster, &state, job, &mut perf) {
                        Some(placement) if fb.commit(&placement) => {
                            active.push(PlacedJob::new(job.id, cluster, &placement));
                            outcome.placed.push((job.clone(), placement));
                        }
                        _ => outcome.deferred.push(job.clone()),
                    }
                }
                self.enable_ina(cluster, running, &mut outcome.placed, None, &mut perf);
            }
        }
        perf.record("place_batch", batch_start.elapsed());
        self.perf = perf;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netpack::NetPackConfig;
    use crate::placer::Placer;
    use netpack_topology::{ClusterSpec, JobId, TopoMode};
    use netpack_workload::ModelKind;

    fn cluster(racks: usize, spr: usize, gps: usize) -> Cluster {
        Cluster::new(ClusterSpec {
            racks,
            servers_per_rack: spr,
            gpus_per_server: gps,
            racks_per_pod: Some(2),
            ..ClusterSpec::paper_default()
        })
    }

    fn job(id: u64, gpus: usize) -> Job {
        Job::builder(JobId(id), ModelKind::Vgg16, gpus).build()
    }

    fn placer(topo: TopoMode, scoring: ScoringMode) -> NetPackPlacer {
        NetPackPlacer::new(NetPackConfig {
            topo,
            scoring,
            ..NetPackConfig::default()
        })
    }

    /// Both topology modes, both scoring modes: identical placements on a
    /// mixed batch that exercises local jobs, spanning jobs, and deferral.
    #[test]
    fn flat_matches_struct_on_a_mixed_batch() {
        let c = cluster(6, 4, 4);
        let batch: Vec<Job> = vec![
            job(0, 4),
            job(1, 6),
            job(2, 13),
            job(3, 2),
            job(4, 9),
            job(5, 40),
        ];
        let reference = placer(TopoMode::Struct, ScoringMode::Sequential)
            .place_batch(&c, &[], &batch);
        for (topo, scoring) in [
            (TopoMode::Flat, ScoringMode::Fast),
            (TopoMode::Flat, ScoringMode::Sequential),
            (TopoMode::Struct, ScoringMode::Fast),
        ] {
            let out = placer(topo, scoring).place_batch(&c, &[], &batch);
            assert_eq!(out.placed, reference.placed, "{topo:?}/{scoring:?}");
            assert_eq!(out.deferred, reference.deferred, "{topo:?}/{scoring:?}");
        }
    }

    /// The flat ledger tracks commitments across a batch: two spanning
    /// jobs can't double-book the same GPUs.
    #[test]
    fn flat_ledger_prevents_double_booking() {
        let c = cluster(2, 2, 4);
        let batch: Vec<Job> = vec![job(0, 6), job(1, 6), job(2, 6)];
        let out = placer(TopoMode::Flat, ScoringMode::Fast).place_batch(&c, &[], &batch);
        let booked: usize = out
            .placed
            .iter()
            .map(|(_, p)| p.total_workers())
            .sum();
        assert!(booked <= c.free_gpus());
        for (_, p) in &out.placed {
            p.validate(&c, p.total_workers()).unwrap();
        }
    }

    /// Gradient sharding (k > 1) agrees between the paths too.
    #[test]
    fn flat_matches_struct_with_sharded_ps() {
        let c = cluster(4, 4, 4);
        let batch: Vec<Job> = vec![job(0, 10), job(1, 7)];
        let mk = |topo| {
            NetPackPlacer::new(NetPackConfig {
                topo,
                pses_per_job: 3,
                ..NetPackConfig::default()
            })
            .place_batch(&c, &[], &batch)
        };
        let flat = mk(TopoMode::Flat);
        let sref = mk(TopoMode::Struct);
        assert_eq!(flat.placed, sref.placed);
        assert_eq!(flat.deferred, sref.deferred);
    }

    /// Class keys separate servers whose racks differ in uplink load.
    #[test]
    fn class_table_groups_interchangeable_servers() {
        let c = cluster(4, 4, 4);
        let fb_state = estimate(&c, &[]);
        let mut fb = FlatBatch::new(&c);
        fb.build_classes(&c, &fb_state);
        // Idle cluster: every server is interchangeable — one class.
        assert_eq!(fb.classes.len(), 1);
        assert_eq!(fb.class_start, vec![0, 16]);
        let members: Vec<u32> = fb.members.clone();
        let mut sorted = members.clone();
        sorted.sort_unstable();
        assert_eq!(members, sorted, "members ascending within the class");
    }
}
