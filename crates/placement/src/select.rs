//! Bounded candidate selection for the `V[s][f][g]` worker-placement DP.
//!
//! At warehouse scale the DP cannot afford to consider every server: a
//! 50k-server sweep per job dominates the placement time long before the
//! table itself does. This module prunes the server list *before* the DP
//! runs, keeping only servers that can appear in some optimal plan.
//!
//! # The pruning bound, and why it is loss-free
//!
//! The DP's weight is two-dimensional: a server contributes all `w` of its
//! free GPUs and its flow count clamped to `f = min(flows, FS_max)`.
//! Servers with equal `(w, f)` are interchangeable for every DP cell —
//! only their values differ. Any feasible plan carries at most
//! `g_max = demand + slack` GPUs, so it uses at most `K_w = ⌊g_max / w⌋`
//! servers of weight `w` in total — and a fortiori at most `K_w` members
//! of any single `(w, f)` class. Keeping the top `K_w` members of each
//! class by `(value desc, server id asc)` therefore preserves every cell's
//! optimum: a plan using a dropped member also leaves some kept member of
//! the same class unused (there are `K_w` kept and the plan uses fewer),
//! and exchanging the two keeps the plan's `(f, g)` coordinates while not
//! decreasing its value (exact arithmetic).
//!
//! Floating-point caveat, and why both topology modes share this filter:
//! an exchange re-orders the value summation, which can move the float sum
//! by an ulp when a class holds exact value ties; a pruned and an unpruned
//! DP could then back-track different (equal-value) plans. The `NETPACK_TOPO`
//! equivalence contract is therefore established *by construction*: the
//! flat and struct paths run this **same** filter over the same inputs and
//! feed the DP identical candidate lists, rather than by comparing a
//! pruned run against an unpruned one. See `DESIGN.md` §3.11.
//!
//! # Determinism
//!
//! Selection is a top-`K` cut of a totally ordered set — `(value desc,
//! id asc)` has no ties because ids are unique — so the kept set is
//! independent of both the order servers are offered in and any sharding
//! of the scan. The flat path exploits this: each pod runs its own filter
//! over its contiguous server range (via `parallel_sweep`) and the
//! per-pod results are merged pod-ascending; the regression test
//! `selection_is_insertion_order_independent` pins the property.

use crate::dp::ServerStats;

/// Bounded per-class candidate filter for the worker-placement DP.
///
/// Classes are `(w, f)` pairs — free-GPU weight times clamped flow count —
/// and each class keeps its top `⌊g_max / w⌋` servers by
/// `(value desc, id asc)`. See the [module docs](self) for the loss-free
/// argument.
///
/// # Example
///
/// ```
/// use netpack_placement::{CandidateFilter, ServerStats};
/// use netpack_topology::ServerId;
///
/// // demand 4, slack 0 => g_max 4 => a 4-GPU class keeps exactly 1 server.
/// let mut filter = CandidateFilter::new(4, 4, 0, Some(16));
/// for (id, value) in [(0, 1.0), (1, 9.0), (2, 5.0)] {
///     filter.offer(ServerStats { id: ServerId(id), gpus_free: 4, value, flows: 0 });
/// }
/// let kept = filter.candidates();
/// assert_eq!(kept.len(), 1);
/// assert_eq!(kept[0].id, ServerId(1));
/// ```
#[derive(Debug, Clone)]
pub struct CandidateFilter {
    /// `classes[(w-1) * nf + f]`, each sorted `(value desc, id asc)` and
    /// capped at `⌊g_max / w⌋` entries.
    classes: Vec<Vec<ServerStats>>,
    /// Flow-dimension width: `fs_max + 1`, or 1 when flows are untracked.
    nf: usize,
    /// Flow clamp; 0 when the flow dimension is disabled.
    fs_max: u32,
    /// Largest admissible plan size in GPUs (`demand + slack`).
    g_max: usize,
    /// Servers offered (kept or not) — the pruning denominator.
    offered: u64,
}

impl CandidateFilter {
    /// Filter for one job: `demand` GPUs with up to `slack` surplus on a
    /// cluster with `gpus_per_server` GPUs per server. `fs_max` is the
    /// DP's flow clamp, or `None` when the flow dimension is disabled
    /// (every server then lands in the `f = 0` class, exactly like
    /// [`WorkerDp::without_flow_dimension`](crate::WorkerDp::without_flow_dimension)
    /// ignores flows).
    pub fn new(gpus_per_server: usize, demand: usize, slack: usize, fs_max: Option<u32>) -> Self {
        let g_max = demand + slack;
        let nf = fs_max.map_or(1, |f| f as usize + 1);
        let widths = gpus_per_server.min(g_max);
        CandidateFilter {
            classes: vec![Vec::new(); widths * nf],
            nf,
            fs_max: fs_max.unwrap_or(0),
            g_max,
            offered: 0,
        }
    }

    /// Offer one server. Servers with no free GPUs or more free GPUs than
    /// any plan can carry are rejected outright (the DP would skip them
    /// anyway); the rest compete within their `(w, f)` class.
    pub fn offer(&mut self, stats: ServerStats) {
        self.offered += 1;
        let w = stats.gpus_free;
        if w == 0 || w > self.g_max {
            return;
        }
        let f = stats.flows.min(self.fs_max) as usize;
        let cap = self.g_max / w;
        let class = &mut self.classes[(w - 1) * self.nf + f];
        if class.len() == cap {
            // Full class: reject unless strictly better than the worst.
            match class.last() {
                Some(worst) if !Self::better(&stats, worst) => return,
                _ => {}
            }
        }
        let pos = class.partition_point(|e| Self::better(e, &stats));
        class.insert(pos, stats);
        if class.len() > cap {
            class.pop();
        }
    }

    /// Merge another filter built with the same parameters (a pod shard's
    /// result) into this one. Because selection is a top-`K` cut of a
    /// totally ordered set, merging shard filters in any order yields the
    /// same kept set as one sequential scan.
    pub fn merge(&mut self, other: &CandidateFilter) {
        self.offered += other.offered;
        // `offer` re-counts, so compensate before re-offering kept entries.
        for class in &other.classes {
            for &stats in class {
                self.offered -= 1;
                self.offer(stats);
            }
        }
    }

    /// The kept candidates in ascending server-id order — the order the
    /// DP consumes (its tie-breaks depend on it).
    pub fn candidates(&self) -> Vec<ServerStats> {
        let mut out: Vec<ServerStats> = self.classes.iter().flatten().copied().collect();
        out.sort_by_key(|s| s.id);
        out
    }

    /// Servers offered so far (kept or rejected).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Servers currently kept.
    pub fn kept(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }

    /// Strict total order: `a` before `b` under `(value desc, id asc)`.
    fn better(a: &ServerStats, b: &ServerStats) -> bool {
        match a.value.total_cmp(&b.value) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => a.id < b.id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::WorkerDp;
    use netpack_topology::ServerId;

    fn stats(id: usize, w: usize, value: f64, flows: u32) -> ServerStats {
        ServerStats {
            id: ServerId(id),
            gpus_free: w,
            value,
            flows,
        }
    }

    /// Deterministic xorshift so instances are seeded and reproducible.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    fn random_servers(seed: u64, n: usize, gps: usize) -> Vec<ServerStats> {
        let mut rng = Rng(seed | 1);
        (0..n)
            .map(|i| {
                // Well-separated distinct values: pruning is then exactly
                // plan-preserving, not just value-preserving.
                let value = (rng.next() % 1000) as f64 + i as f64 * 1e-6;
                stats(i, (rng.next() % (gps as u64 + 1)) as usize, value, (rng.next() % 20) as u32)
            })
            .collect()
    }

    #[test]
    fn keeps_top_k_per_class() {
        // g_max = 6: weight-2 classes keep 3, weight-3 classes keep 2.
        let mut f = CandidateFilter::new(4, 4, 2, Some(16));
        for (i, v) in [5.0, 1.0, 9.0, 7.0, 3.0].iter().enumerate() {
            f.offer(stats(i, 2, *v, 0));
        }
        let kept = f.candidates();
        let ids: Vec<usize> = kept.iter().map(|s| s.id.0).collect();
        assert_eq!(ids, vec![0, 2, 3], "top 3 by value, listed id-ascending");
        assert_eq!(f.offered(), 5);
        assert_eq!(f.kept(), 3);
    }

    #[test]
    fn zero_and_oversized_weights_are_rejected() {
        let mut f = CandidateFilter::new(8, 2, 1, Some(16));
        f.offer(stats(0, 0, 9.0, 0));
        f.offer(stats(1, 4, 9.0, 0)); // w=4 > g_max=3
        f.offer(stats(2, 3, 1.0, 0));
        assert_eq!(f.candidates().len(), 1);
        assert_eq!(f.offered(), 3);
    }

    #[test]
    fn equal_values_keep_the_lowest_ids() {
        let mut f = CandidateFilter::new(4, 4, 0, Some(16));
        for i in [7, 3, 9, 1] {
            f.offer(stats(i, 4, 5.0, 2));
        }
        // K = 1: the lowest id among the tied values survives.
        let kept = f.candidates();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].id, ServerId(1));
    }

    #[test]
    fn flow_classes_are_separate_and_clamped() {
        let mut f = CandidateFilter::new(4, 4, 0, Some(2));
        f.offer(stats(0, 4, 1.0, 0));
        f.offer(stats(1, 4, 2.0, 1));
        f.offer(stats(2, 4, 3.0, 2));
        f.offer(stats(3, 4, 4.0, 9)); // clamps to f = 2, beats id 2
        let ids: Vec<usize> = f.candidates().iter().map(|s| s.id.0).collect();
        assert_eq!(ids, vec![0, 1, 3]);
    }

    #[test]
    fn untracked_flows_collapse_to_one_class() {
        let mut f = CandidateFilter::new(4, 4, 0, None);
        f.offer(stats(0, 4, 1.0, 0));
        f.offer(stats(1, 4, 2.0, 17));
        let kept = f.candidates();
        assert_eq!(kept.len(), 1, "one class, K = 1");
        assert_eq!(kept[0].id, ServerId(1));
    }

    #[test]
    fn selection_is_insertion_order_independent() {
        // The property the pod-shard merge rests on: a top-K cut of a
        // totally ordered set does not depend on scan order.
        for seed in 1..=20u64 {
            let servers = random_servers(seed, 60, 4);
            let mut forward = CandidateFilter::new(4, 9, 4, Some(8));
            for &s in &servers {
                forward.offer(s);
            }
            let mut shuffled: Vec<ServerStats> = servers.clone();
            // Deterministic shuffle.
            let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
            for i in (1..shuffled.len()).rev() {
                let j = (rng.next() % (i as u64 + 1)) as usize;
                shuffled.swap(i, j);
            }
            let mut backward = CandidateFilter::new(4, 9, 4, Some(8));
            for &s in &shuffled {
                backward.offer(s);
            }
            assert_eq!(forward.candidates(), backward.candidates(), "seed {seed}");
        }
    }

    #[test]
    fn sharded_merge_equals_sequential_scan() {
        // Simulate the pod shards: split the server range at arbitrary
        // boundaries, filter each chunk independently, merge ascending.
        for seed in 1..=20u64 {
            let servers = random_servers(seed ^ 0xABCD, 80, 4);
            let mut sequential = CandidateFilter::new(4, 7, 4, Some(8));
            for &s in &servers {
                sequential.offer(s);
            }
            let mut rng = Rng(seed.wrapping_add(77) | 1);
            let mut cut1 = (rng.next() % 80) as usize;
            let mut cut2 = (rng.next() % 80) as usize;
            if cut1 > cut2 {
                std::mem::swap(&mut cut1, &mut cut2);
            }
            let mut merged = CandidateFilter::new(4, 7, 4, Some(8));
            for chunk in [&servers[..cut1], &servers[cut1..cut2], &servers[cut2..]] {
                let mut shard = CandidateFilter::new(4, 7, 4, Some(8));
                for &s in chunk {
                    shard.offer(s);
                }
                merged.merge(&shard);
            }
            assert_eq!(sequential.candidates(), merged.candidates(), "seed {seed}");
            assert_eq!(sequential.offered(), merged.offered(), "seed {seed}");
        }
    }

    #[test]
    fn pruned_dp_matches_full_dp_on_separated_values() {
        // With well-separated values (no exact ties) pruning is exactly
        // plan-preserving: every (f, g) cell the full DP reaches, the
        // pruned DP reaches with the same value and the same servers.
        for seed in 1..=15u64 {
            let servers = random_servers(seed.wrapping_mul(31), 40, 4);
            let demand = 6 + (seed % 8) as usize;
            let slack = 4;
            let dp = WorkerDp::new(8);
            let full = dp.plans(&servers, demand, slack);
            let mut filter = CandidateFilter::new(4, demand, slack, Some(8));
            for &s in &servers {
                filter.offer(s);
            }
            let pruned = dp.plans(&filter.candidates(), demand, slack);
            assert_eq!(full, pruned, "seed {seed} demand {demand}");
        }
    }
}
