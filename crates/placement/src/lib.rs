#![warn(missing_docs)]
//! Job-placement algorithms: NetPack (Algorithm 2), six baselines, and an
//! exact reference solver.
//!
//! Every placer answers the same question: *given the cluster's current GPU
//! ledger and the jobs already running, where should this batch of jobs
//! go?* Placers only propose; the job manager (in `netpack-core`) owns the
//! GPU ledger and applies the proposals.
//!
//! Implemented placers:
//!
//! * [`NetPackPlacer`] — the paper's contribution: knapsack job-subset
//!   selection, a `V[s][f][g]` dynamic program over server subsets valued
//!   by water-filled residual bandwidth, PS placement with a hot-spot term,
//!   and selective INA enabling by aggregation efficiency.
//! * [`GpuBalance`], [`FlowBalance`], [`LeastFragmentation`] — the paper's
//!   three heuristic baselines (§6.1).
//! * [`OptimusLike`], [`TetrisLike`] — the two prior-art strategies the
//!   paper compares against.
//! * [`Comb`] — the naive multi-resource combination of §6.4 (Fig. 13).
//! * [`RandomPlacer`] — a sanity floor.
//! * [`ExactPlacer`] — exhaustive search over the Table-3 decision space,
//!   feasible only at toy scale; stands in for the paper's Gurobi MIP.
//!
//! # Example
//!
//! ```
//! use netpack_topology::{Cluster, ClusterSpec, JobId};
//! use netpack_workload::{Job, ModelKind};
//! use netpack_placement::{NetPackPlacer, Placer};
//!
//! let cluster = Cluster::new(ClusterSpec::paper_testbed());
//! let job = Job::builder(JobId(0), ModelKind::Vgg16, 4).build();
//! let mut placer = NetPackPlacer::default();
//! let outcome = placer.place_batch(&cluster, &[], std::slice::from_ref(&job));
//! assert_eq!(outcome.placed.len(), 1);
//! assert!(outcome.deferred.is_empty());
//! ```

mod baselines;
mod dp;
mod exact;
mod knapsack;
mod netpack;
mod placer;
mod prior;

pub use baselines::{FlowBalance, GpuBalance, LeastFragmentation, RandomPlacer};
pub use dp::{ServerStats, WorkerDp, WorkerPlan};
pub use exact::ExactPlacer;
pub use knapsack::select_job_subset;
pub use netpack::{HotSpotTerm, InaPolicy, NetPackConfig, NetPackPlacer};
pub use placer::{batch_comm_time_s, BatchOutcome, Placer, RunningJob};
pub use prior::{Comb, OptimusLike, TetrisLike};
