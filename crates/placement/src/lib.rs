#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Job-placement algorithms: NetPack (Algorithm 2), six baselines, and an
//! exact reference solver.
//!
//! Every placer answers the same question: *given the cluster's current GPU
//! ledger and the jobs already running, where should this batch of jobs
//! go?* Placers only propose; the job manager (in `netpack-core`) owns the
//! GPU ledger and applies the proposals.
//!
//! Implemented placers:
//!
//! * [`NetPackPlacer`] — the paper's contribution: knapsack job-subset
//!   selection, a `V[s][f][g]` dynamic program over server subsets valued
//!   by water-filled residual bandwidth, PS placement with a hot-spot term,
//!   and selective INA enabling by aggregation efficiency.
//! * [`GpuBalance`], [`FlowBalance`], [`LeastFragmentation`] — the paper's
//!   three heuristic baselines (§6.1).
//! * [`OptimusLike`], [`TetrisLike`] — the two prior-art strategies the
//!   paper compares against.
//! * [`Comb`] — the naive multi-resource combination of §6.4 (Fig. 13).
//! * [`RandomPlacer`] — a sanity floor.
//! * [`ExactPlacer`] — exact search over the Table-3 decision space,
//!   feasible only at toy scale; stands in for the paper's Gurobi MIP.
//!   Runs as a pruned branch-and-bound by default, with the legacy
//!   exhaustive DFS kept as a bit-identical reference
//!   (`NETPACK_EXACT=bnb|scratch`, see [`ExactMode`]).
//!
//! # Example
//!
//! ```
//! use netpack_topology::{Cluster, ClusterSpec, JobId};
//! use netpack_workload::{Job, ModelKind};
//! use netpack_placement::{NetPackPlacer, Placer};
//!
//! let cluster = Cluster::new(ClusterSpec::paper_testbed());
//! let job = Job::builder(JobId(0), ModelKind::Vgg16, 4).build();
//! let mut placer = NetPackPlacer::default();
//! let outcome = placer.place_batch(&cluster, &[], std::slice::from_ref(&job));
//! assert_eq!(outcome.placed.len(), 1);
//! assert!(outcome.deferred.is_empty());
//! ```
//!
//! # Placement-time fast path
//!
//! Scoring a batch is the scheduler's hot loop: Algorithm 2 re-estimates
//! the water-filled steady state before every job and scores every
//! `(plan, PS server)` pair. [`NetPackPlacer`] therefore defaults to
//! [`ScoringMode::Fast`], which keeps the steady state warm between jobs
//! (re-solving only the resource component each placement touches),
//! memoizes the Equation-1 hot-spot term per candidate plan, and fans plan
//! scoring out across threads — all **bit-identical** to the
//! [`ScoringMode::Sequential`] reference, as pinned by the
//! `fast_and_sequential_scoring_agree` property test. The work saved is
//! visible through [`NetPackPlacer::perf`]:
//!
//! ```
//! use netpack_topology::{Cluster, ClusterSpec, JobId};
//! use netpack_workload::{Job, ModelKind};
//! use netpack_placement::{NetPackPlacer, Placer};
//!
//! let cluster = Cluster::new(ClusterSpec::paper_testbed());
//! let batch: Vec<Job> = (0..3)
//!     .map(|i| Job::builder(JobId(i), ModelKind::Vgg16, 4).build())
//!     .collect();
//! let mut placer = NetPackPlacer::default();
//! placer.place_batch(&cluster, &[], &batch);
//! let perf = placer.perf();
//! assert!(perf.counter("plans_considered") > 0);
//! assert_eq!(perf.timer_count("place_batch"), 1);
//! println!("{}", perf.to_table().render());
//! ```

mod baselines;
mod dp;
mod exact;
mod flat;
mod knapsack;
mod netpack;
mod placer;
mod prior;
mod select;
mod session;
mod spec;

pub use baselines::{FlowBalance, GpuBalance, LeastFragmentation, RandomPlacer};
pub use dp::{ServerStats, WorkerDp, WorkerPlan};
pub use exact::{ExactMode, ExactPlacer};
pub use knapsack::select_job_subset;
pub use netpack::{BatchMode, HotSpotTerm, InaPolicy, NetPackConfig, NetPackPlacer, ScoringMode};
pub use netpack_topology::TopoMode;
pub use select::CandidateFilter;
pub use placer::{batch_comm_time_s, BatchOutcome, Placer, RunningJob};
pub use prior::{Comb, OptimusLike, TetrisLike};
pub use session::{NetPackSession, SessionError};
