//! Exact joint placement by exhaustive search — the optimality reference
//! standing in for the paper's Gurobi MIP (§5.1).
//!
//! The paper formulates batch placement as a MIP (Table 3) whose objective
//! is the total communication time `Σ_j d^(j) / v^(j)` and reports that
//! Gurobi needs hours at scale. This module explores the same decision
//! space — per-server worker counts, PS location, per-job INA flag — by
//! depth-first enumeration and evaluates each complete assignment with the
//! water-filling steady-state model. It is exact with respect to our
//! evaluation model and only feasible at toy scale, which is precisely its
//! role: measuring the DP heuristic's optimality gap, and demonstrating
//! the exponential blow-up that motivates the DP.

use crate::placer::{BatchOutcome, Placer, RunningJob};
use netpack_model::Placement;
use netpack_topology::{Cluster, ServerId};
use netpack_workload::Job;

/// Exhaustive-search placer for toy instances.
#[derive(Debug, Clone)]
pub struct ExactPlacer {
    max_evaluations: u64,
    enumerate_ina: bool,
    evaluations: u64,
}

impl ExactPlacer {
    /// Exact placer that gives up (deferring the whole batch) after
    /// `max_evaluations` candidate assignments.
    pub fn new(max_evaluations: u64) -> Self {
        ExactPlacer {
            max_evaluations,
            enumerate_ina: false,
            evaluations: 0,
        }
    }

    /// Also branch on each job's INA flag (doubles the space per job;
    /// off by default because INA-on dominates whenever PAT is plentiful).
    pub fn enumerate_ina(mut self, yes: bool) -> Self {
        self.enumerate_ina = yes;
        self
    }

    /// Number of complete assignments evaluated by the last
    /// [`Placer::place_batch`] call.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Enumerate worker distributions of `gpus` workers over servers with
    /// the scratch cluster's free capacities.
    fn worker_splits(cluster: &Cluster, gpus: usize) -> Vec<Vec<(ServerId, usize)>> {
        let caps: Vec<usize> = cluster.servers().iter().map(|s| s.gpus_free()).collect();
        let mut out = Vec::new();
        let mut current: Vec<(ServerId, usize)> = Vec::new();
        fn rec(
            caps: &[usize],
            idx: usize,
            remaining: usize,
            current: &mut Vec<(ServerId, usize)>,
            out: &mut Vec<Vec<(ServerId, usize)>>,
        ) {
            if remaining == 0 {
                out.push(current.clone());
                return;
            }
            if idx == caps.len() {
                return;
            }
            // Feasibility prune: the rest must be able to cover remaining.
            let rest: usize = caps[idx..].iter().sum();
            if rest < remaining {
                return;
            }
            for take in (0..=caps[idx].min(remaining)).rev() {
                if take > 0 {
                    current.push((ServerId(idx), take));
                }
                rec(caps, idx + 1, remaining - take, current, out);
                if take > 0 {
                    current.pop();
                }
            }
        }
        rec(&caps, 0, gpus, &mut current, &mut out);
        out
    }

    fn search(
        &mut self,
        cluster: &mut Cluster,
        running: &[RunningJob],
        batch: &[Job],
        idx: usize,
        current: &mut Vec<(Job, Placement)>,
        best: &mut Option<(f64, Vec<(Job, Placement)>)>,
    ) {
        if self.evaluations >= self.max_evaluations {
            return;
        }
        if idx == batch.len() {
            self.evaluations += 1;
            let obj = crate::placer::batch_comm_time_s(cluster, running, current);
            if best.as_ref().is_none_or(|(b, _)| obj < *b) {
                *best = Some((obj, current.clone()));
            }
            return;
        }
        let job = &batch[idx];
        for split in Self::worker_splits(cluster, job.gpus) {
            // PS candidates: every server for spanning placements, or the
            // lone worker server / no PS for single-server placements.
            let ps_candidates: Vec<Option<ServerId>> = if split.len() == 1 {
                vec![None]
            } else {
                (0..cluster.num_servers()).map(|s| Some(ServerId(s))).collect()
            };
            for ps in ps_candidates {
                let ina_options: &[bool] = if self.enumerate_ina && split.len() > 1 {
                    &[true, false]
                } else {
                    &[true]
                };
                for &ina in ina_options {
                    let mut placement = Placement::new(split.clone(), ps);
                    placement.set_ina_enabled(ina);
                    for &(s, w) in placement.workers() {
                        cluster.allocate_gpus(s, w).expect("split within caps");
                    }
                    current.push((job.clone(), placement));
                    self.search(cluster, running, batch, idx + 1, current, best);
                    let (_, placement) = current.pop().expect("pushed above");
                    for &(s, w) in placement.workers() {
                        cluster.release_gpus(s, w).expect("was allocated");
                    }
                    if self.evaluations >= self.max_evaluations {
                        return;
                    }
                }
            }
        }
    }
}

impl Default for ExactPlacer {
    fn default() -> Self {
        ExactPlacer::new(2_000_000)
    }
}

impl Placer for ExactPlacer {
    fn name(&self) -> &'static str {
        "Exact"
    }

    fn place_batch(
        &mut self,
        cluster: &Cluster,
        running: &[RunningJob],
        batch: &[Job],
    ) -> BatchOutcome {
        self.evaluations = 0;
        let mut scratch = cluster.clone();
        let mut best: Option<(f64, Vec<(Job, Placement)>)> = None;
        let mut current = Vec::new();
        self.search(&mut scratch, running, batch, 0, &mut current, &mut best);
        match best {
            Some((_, placed)) => BatchOutcome {
                placed,
                deferred: Vec::new(),
            },
            None => BatchOutcome {
                placed: Vec::new(),
                deferred: batch.to_vec(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpack_topology::{ClusterSpec, JobId};
    use netpack_workload::ModelKind;

    fn cluster(servers: usize, gpus: usize) -> Cluster {
        Cluster::new(ClusterSpec {
            racks: 1,
            servers_per_rack: servers,
            gpus_per_server: gpus,
            ..ClusterSpec::paper_default()
        })
    }

    fn job(id: u64, gpus: usize) -> Job {
        Job::builder(JobId(id), ModelKind::Vgg16, gpus).build()
    }

    #[test]
    fn exact_prefers_local_placement_when_possible() {
        let c = cluster(3, 4);
        let mut p = ExactPlacer::default();
        let out = p.place_batch(&c, &[], &[job(0, 4)]);
        assert_eq!(out.placed.len(), 1);
        // A local placement has zero communication time: strictly optimal.
        assert!(out.placed[0].1.is_local());
        assert!(p.evaluations() > 0);
    }

    #[test]
    fn exact_separates_two_jobs_onto_disjoint_bottlenecks() {
        let c = cluster(4, 1);
        let mut p = ExactPlacer::default();
        // Two 2-GPU jobs on four 1-GPU servers: each must span two servers
        // with a PS; the optimum avoids stacking both PSes on one link.
        let out = p.place_batch(&c, &[], &[job(0, 2), job(1, 2)]);
        assert_eq!(out.placed.len(), 2);
        let ps0 = out.placed[0].1.ps().unwrap();
        let ps1 = out.placed[1].1.ps().unwrap();
        assert_ne!(ps0, ps1, "optimal plan spreads PS load");
        for (j, placement) in &out.placed {
            placement.validate(&c, j.gpus).unwrap();
        }
    }

    #[test]
    fn worker_splits_enumerate_all_compositions() {
        let c = cluster(3, 2);
        let splits = ExactPlacer::worker_splits(&c, 2);
        // Compositions of 2 over caps (2,2,2): (2),(1,1) over 3 servers =
        // 3 singles + 3 pairs = 6.
        assert_eq!(splits.len(), 6);
    }

    #[test]
    fn evaluation_budget_is_respected() {
        let c = cluster(4, 2);
        let mut p = ExactPlacer::new(10);
        let _ = p.place_batch(&c, &[], &[job(0, 2), job(1, 2)]);
        assert!(p.evaluations() <= 10);
    }

    #[test]
    fn infeasible_batch_is_deferred() {
        let c = cluster(2, 1);
        let mut p = ExactPlacer::default();
        let out = p.place_batch(&c, &[], &[job(0, 5)]);
        assert!(out.placed.is_empty());
        assert_eq!(out.deferred.len(), 1);
    }
}
