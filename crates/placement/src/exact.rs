//! Exact joint placement — the optimality reference standing in for the
//! paper's Gurobi MIP (§5.1).
//!
//! The paper formulates batch placement as a MIP (Table 3) whose objective
//! is the total communication time `Σ_j d^(j) / v^(j)` and reports that
//! Gurobi needs hours at scale. This module explores the same decision
//! space — per-server worker counts, PS location, per-job INA flag — and
//! evaluates complete assignments with the water-filling steady-state
//! model. It is exact with respect to our evaluation model and only
//! feasible at toy scale, which is precisely its role: measuring the DP
//! heuristic's optimality gap, and demonstrating the exponential blow-up
//! that motivates the DP.
//!
//! Two search strategies are provided, selected by [`ExactMode`] (env var
//! `NETPACK_EXACT=bnb|scratch`, same convention as `NETPACK_SIM` /
//! `NETPACK_PKT`):
//!
//! * [`ExactMode::Scratch`] — the legacy exhaustive DFS: every leaf runs a
//!   from-scratch water-filling via
//!   [`batch_comm_time_s`](crate::batch_comm_time_s). Slow, but the
//!   transparently-correct reference.
//! * [`ExactMode::Bnb`] (default) — branch-and-bound over the same space:
//!   the objective is maintained incrementally
//!   ([`IncrementalEstimator`] push/pop per decision), subtrees whose
//!   admissible lower bound cannot beat the incumbent are cut, symmetric
//!   assignments (permutations over interchangeable servers) are collapsed
//!   to canonical representatives, and the first decision level fans out
//!   across threads via [`parallel_sweep`] with a shared best bound.
//!
//! Both modes return the **same** placement: the first-enumerated optimum
//! in the scratch order, bit-identical objective included. DESIGN.md §3.10
//! derives the bound, argues its admissibility under water-filling, and
//! gives the symmetry and determinism arguments; the
//! `tests/exact_bnb.rs` property suite pins the equivalence on 200 random
//! instances.

use crate::placer::{BatchOutcome, Placer, RunningJob};
use netpack_metrics::{parallel_sweep, PerfCounters, Stopwatch};
use netpack_model::Placement;
use netpack_topology::{Cluster, ServerId};
use netpack_waterfill::{IncrementalEstimator, PlacedJob, WaterfillStats};
use netpack_workload::Job;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};

/// Search strategy of the [`ExactPlacer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExactMode {
    /// Branch-and-bound: incremental objective, admissible pruning,
    /// symmetry breaking, deterministic parallel first level. The default.
    #[default]
    Bnb,
    /// The legacy exhaustive DFS evaluating every leaf from scratch — the
    /// reference the `bnb` mode is checked against.
    Scratch,
}

impl ExactMode {
    /// Read `NETPACK_EXACT` (`"bnb"` or `"scratch"`); anything else —
    /// including unset — selects [`ExactMode::Bnb`].
    pub fn from_env() -> Self {
        match std::env::var("NETPACK_EXACT").as_deref() {
            Ok("scratch") => ExactMode::Scratch,
            _ => ExactMode::Bnb,
        }
    }
}

/// Exhaustive-search placer for toy instances.
#[derive(Debug, Clone)]
pub struct ExactPlacer {
    max_evaluations: u64,
    enumerate_ina: bool,
    evaluations: u64,
    mode: ExactMode,
    perf: PerfCounters,
}

impl ExactPlacer {
    /// Exact placer that gives up (deferring the whole batch) after
    /// `max_evaluations` candidate assignments. The search strategy
    /// defaults to [`ExactMode::from_env`].
    pub fn new(max_evaluations: u64) -> Self {
        ExactPlacer {
            max_evaluations,
            enumerate_ina: false,
            evaluations: 0,
            mode: ExactMode::from_env(),
            perf: PerfCounters::new(),
        }
    }

    /// Also branch on each job's INA flag (doubles the space per job;
    /// off by default because INA-on dominates whenever PAT is plentiful).
    pub fn enumerate_ina(mut self, yes: bool) -> Self {
        self.enumerate_ina = yes;
        self
    }

    /// Override the search strategy (builder style), e.g. to force the
    /// scratch reference in equivalence tests regardless of the env var.
    pub fn mode(mut self, mode: ExactMode) -> Self {
        self.mode = mode;
        self
    }

    /// Number of complete assignments evaluated by the last
    /// [`Placer::place_batch`] call. Under [`ExactMode::Bnb`] pruned
    /// subtrees never reach a leaf, so this is typically orders of
    /// magnitude below the scratch count for the same instance.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Perf counters accumulated across `place_batch` calls: search nodes
    /// visited (`exact_nodes`), leaves evaluated (`exact_leaf_evals`),
    /// subtrees cut by the bound (`exact_pruned_subtrees`), symmetric PS
    /// candidates skipped (`exact_sym_ps_skips`), and the water-filling
    /// work counters, plus the `place_batch` wall-clock timer.
    pub fn perf(&self) -> &PerfCounters {
        &self.perf
    }

    /// Take ownership of the accumulated perf counters, resetting them.
    pub fn take_perf(&mut self) -> PerfCounters {
        std::mem::take(&mut self.perf)
    }

    fn place_scratch(
        &mut self,
        cluster: &Cluster,
        running: &[RunningJob],
        batch: &[Job],
    ) -> Option<(f64, Vec<(Job, Placement)>)> {
        let mut search = ScratchSearch {
            cluster,
            running,
            batch,
            enumerate_ina: self.enumerate_ina,
            max_evaluations: self.max_evaluations,
            evaluations: 0,
            best: None,
        };
        let mut free: Vec<usize> = cluster.servers().iter().map(|s| s.gpus_free()).collect();
        let mut current = Vec::new();
        search.search(&mut free, &mut current, 0);
        self.evaluations = search.evaluations;
        search.best
    }

    fn place_bnb(
        &mut self,
        cluster: &Cluster,
        running: &[RunningJob],
        batch: &[Job],
    ) -> Option<(f64, Vec<(Job, Placement)>)> {
        let free: Vec<usize> = cluster.servers().iter().map(|s| s.gpus_free()).collect();
        let mut touched = vec![0u32; free.len()];
        // Cache the RunningJob -> PlacedJob conversions once per batch; the
        // scratch path re-does them at every leaf.
        let running_placed: Vec<PlacedJob> = running.iter().map(|r| r.to_placed(cluster)).collect();
        for r in running {
            for &(s, _) in r.placement.workers() {
                touched[s.0] += 1;
            }
            for &s in r.placement.pses() {
                touched[s.0] += 1;
            }
        }
        if batch.is_empty() {
            // Mirror the scratch search: the empty assignment is one leaf.
            if self.max_evaluations > 0 {
                self.evaluations = 1;
            }
            return Some((0.0, Vec::new()));
        }
        let ctx = BnbContext {
            cluster,
            batch,
            enumerate_ina: self.enumerate_ina,
            max_evaluations: self.max_evaluations,
            evaluations: AtomicU64::new(0),
            best_bound_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            link_gbps: cluster.spec().server_link_gbps,
            rack_of: cluster.servers().iter().map(|s| s.rack().0).collect(),
        };
        let base = IncrementalEstimator::new(cluster, &running_placed);
        let base_stats = *base.stats();

        // Materialize the first decision level (job 0's canonical
        // candidates) and fan it out; deeper levels stay sequential within
        // each branch.
        let mut root_stats = BnbStats {
            nodes: 1,
            ..BnbStats::default()
        };
        let classes = symmetry_classes(&ctx.rack_of, &free, &touched);
        let mut candidates: Vec<Placement> = Vec::new();
        let job0 = &batch[0];
        let _ = for_each_split(&free, Some(&classes), job0.gpus, &mut |split| {
            for ps in ps_candidates(split, &classes, free.len(), &mut root_stats) {
                for &ina in ina_options(self.enumerate_ina, split.len()) {
                    let mut p = Placement::new(split.to_vec(), ps);
                    p.set_ina_enabled(ina);
                    candidates.push(p);
                }
            }
            ControlFlow::Continue(())
        });

        let results = parallel_sweep(&candidates, |cand| {
            run_branch(&ctx, &base, &free, &touched, cand)
        });

        // Deterministic merge: branches are visited in enumeration order and
        // an incumbent is only replaced by a strictly better objective, so
        // the winner is the first-enumerated optimum regardless of how the
        // branches interleaved at runtime.
        let mut best: Option<(f64, Vec<(Job, Placement)>)> = None;
        let mut stats = root_stats;
        let mut wf = WaterfillStats::default();
        for (branch_best, branch_stats, branch_wf) in results {
            stats.merge(&branch_stats);
            wf = wf_sum(&wf, &branch_wf);
            if let Some((obj, placed)) = branch_best {
                if best.as_ref().is_none_or(|(cur, _)| obj < *cur) {
                    best = Some((obj, placed));
                }
            }
        }
        self.evaluations = stats.leaves;
        self.perf.incr("exact_nodes", stats.nodes);
        self.perf.incr("exact_leaf_evals", stats.leaves);
        self.perf.incr("exact_pruned_subtrees", stats.pruned);
        self.perf.incr("exact_sym_ps_skips", stats.sym_ps_skips);
        self.perf.incr(
            "waterfill_jobs_resolved",
            base_stats.jobs_resolved + wf.jobs_resolved,
        );
        self.perf.incr("waterfill_jobs_reused", wf.jobs_reused);
        self.perf.incr(
            "waterfill_components_solved",
            base_stats.components_solved + wf.components_solved,
        );
        best
    }
}

impl Default for ExactPlacer {
    fn default() -> Self {
        ExactPlacer::new(2_000_000)
    }
}

impl Placer for ExactPlacer {
    fn name(&self) -> &'static str {
        "Exact"
    }

    fn place_batch(
        &mut self,
        cluster: &Cluster,
        running: &[RunningJob],
        batch: &[Job],
    ) -> BatchOutcome {
        let watch = Stopwatch::start();
        self.evaluations = 0;
        let best = match self.mode {
            ExactMode::Scratch => self.place_scratch(cluster, running, batch),
            ExactMode::Bnb => self.place_bnb(cluster, running, batch),
        };
        self.perf.record("place_batch", watch.elapsed());
        match best {
            Some((_, placed)) => BatchOutcome {
                placed,
                deferred: Vec::new(),
            },
            None => BatchOutcome {
                placed: Vec::new(),
                deferred: batch.to_vec(),
            },
        }
    }
}

/// The INA flags to branch on for a split of `num_servers` servers.
fn ina_options(enumerate_ina: bool, num_servers: usize) -> &'static [bool] {
    if enumerate_ina && num_servers > 1 {
        &[true, false]
    } else {
        &[true]
    }
}

/// Enumerate worker distributions of `gpus` workers over servers with
/// `free` capacities (the scratch reference; eager, like the legacy code).
fn worker_splits(free: &[usize], gpus: usize) -> Vec<Vec<(ServerId, usize)>> {
    let mut out = Vec::new();
    let _ = for_each_split(free, None, gpus, &mut |split| {
        out.push(split.to_vec());
        ControlFlow::Continue(())
    });
    out
}

/// Callback enumeration of worker splits of `gpus` over `free` capacities:
/// servers ascend, take counts descend per server, with a suffix-capacity
/// feasibility prune — exactly the legacy `worker_splits` order, but
/// allocation-free for the branch-and-bound hot loop.
///
/// With `class` set (`class[s]` = the smallest earlier server
/// interchangeable with `s`, or `s` itself), only canonical splits are
/// yielded: within a symmetry class, take counts must be non-increasing in
/// server order. Every suppressed split is a within-class permutation of a
/// canonical one, and because takes descend, the canonical member is the
/// first of its orbit in the unrestricted enumeration order (DESIGN.md
/// §3.10).
/// Visitor over one worker split: return `Break` to stop the enumeration.
type SplitVisitor<'v> = dyn FnMut(&[(ServerId, usize)]) -> ControlFlow<()> + 'v;

fn for_each_split(
    free: &[usize],
    class: Option<&[usize]>,
    gpus: usize,
    f: &mut SplitVisitor<'_>,
) -> ControlFlow<()> {
    // suffix[i] = total free GPUs on servers i.. (feasibility prune).
    let mut suffix = vec![0usize; free.len() + 1];
    for i in (0..free.len()).rev() {
        suffix[i] = suffix[i + 1] + free[i];
    }
    let mut current: Vec<(ServerId, usize)> = Vec::new();
    let mut last_take = vec![usize::MAX; free.len()];
    split_rec(free, class, &suffix, 0, gpus, &mut current, &mut last_take, f)
}

#[allow(clippy::too_many_arguments)]
fn split_rec(
    free: &[usize],
    class: Option<&[usize]>,
    suffix: &[usize],
    idx: usize,
    remaining: usize,
    current: &mut Vec<(ServerId, usize)>,
    last_take: &mut [usize],
    f: &mut SplitVisitor<'_>,
) -> ControlFlow<()> {
    if remaining == 0 {
        return f(current);
    }
    if idx == free.len() || suffix[idx] < remaining {
        return ControlFlow::Continue(());
    }
    let rep = class.map_or(idx, |c| c[idx]);
    let mut cap = free[idx].min(remaining);
    if rep != idx {
        // Canonical form: never take more than the previous member of the
        // same symmetry class.
        cap = cap.min(last_take[rep]);
    }
    for take in (0..=cap).rev() {
        if take > 0 {
            current.push((ServerId(idx), take));
        }
        let saved = last_take[rep];
        last_take[rep] = take;
        let flow = split_rec(free, class, suffix, idx + 1, remaining - take, current, last_take, f);
        last_take[rep] = saved;
        if take > 0 {
            current.pop();
        }
        flow?;
    }
    ControlFlow::Continue(())
}

/// Group servers into interchangeability classes for the current residual
/// state: `class[s]` is the smallest server in the same rack with the same
/// free-GPU count that no running or committed placement touches (or `s`
/// itself). Two such servers are related by a topology automorphism that
/// fixes every placed job, so swapping them permutes assignments without
/// changing any water-filled number — the symmetry the canonical-split and
/// PS-dedup rules exploit.
fn symmetry_classes(rack_of: &[usize], free: &[usize], touched: &[u32]) -> Vec<usize> {
    let n = free.len();
    let mut class: Vec<usize> = (0..n).collect();
    for i in 0..n {
        if touched[i] != 0 {
            continue;
        }
        for j in 0..i {
            if touched[j] == 0 && rack_of[j] == rack_of[i] && free[j] == free[i] {
                class[i] = j;
                break;
            }
        }
    }
    class
}

/// PS candidates for `split`, in server order, with symmetric duplicates
/// removed: a server is skipped when an earlier server of the same class
/// hosts the same worker take (0 for non-workers), because swapping the
/// two maps the candidate onto the earlier, already-enumerated one.
fn ps_candidates(
    split: &[(ServerId, usize)],
    classes: &[usize],
    num_servers: usize,
    stats: &mut BnbStats,
) -> Vec<Option<ServerId>> {
    if split.len() == 1 {
        return vec![None];
    }
    let mut take = vec![0usize; num_servers];
    for &(s, w) in split {
        take[s.0] = w;
    }
    let mut out = Vec::with_capacity(num_servers);
    let mut seen: Vec<(usize, usize)> = Vec::with_capacity(num_servers);
    for s in 0..num_servers {
        let key = (classes[s], take[s]);
        if seen.contains(&key) {
            stats.sym_ps_skips += 1;
            continue;
        }
        seen.push(key);
        out.push(Some(ServerId(s)));
    }
    out
}

/// Search-work counters for one branch (merged across branches afterwards).
#[derive(Debug, Clone, Copy, Default)]
struct BnbStats {
    nodes: u64,
    leaves: u64,
    pruned: u64,
    sym_ps_skips: u64,
}

impl BnbStats {
    fn merge(&mut self, other: &BnbStats) {
        self.nodes += other.nodes;
        self.leaves += other.leaves;
        self.pruned += other.pruned;
        self.sym_ps_skips += other.sym_ps_skips;
    }
}

fn wf_sum(a: &WaterfillStats, b: &WaterfillStats) -> WaterfillStats {
    WaterfillStats {
        pushes: a.pushes + b.pushes,
        removes: a.removes + b.removes,
        jobs_resolved: a.jobs_resolved + b.jobs_resolved,
        jobs_reused: a.jobs_reused + b.jobs_reused,
        components_solved: a.components_solved + b.components_solved,
    }
}

/// Per-branch water-filling work: the branch estimator's lifetime counters
/// minus the cloned base's share.
fn wf_delta(after: &WaterfillStats, before: &WaterfillStats) -> WaterfillStats {
    WaterfillStats {
        pushes: after.pushes - before.pushes,
        removes: after.removes - before.removes,
        jobs_resolved: after.jobs_resolved - before.jobs_resolved,
        jobs_reused: after.jobs_reused - before.jobs_reused,
        components_solved: after.components_solved - before.components_solved,
    }
}

/// Read-only state shared by every branch of one `place_batch` call.
struct BnbContext<'a> {
    cluster: &'a Cluster,
    batch: &'a [Job],
    enumerate_ina: bool,
    max_evaluations: u64,
    /// Leaf-evaluation budget ticket counter (shared across branches).
    evaluations: AtomicU64,
    /// Bits of the best objective found by any branch so far. Non-negative
    /// f64 bit patterns order like the floats, so `fetch_min` maintains the
    /// true minimum; stale reads only weaken pruning, never correctness.
    best_bound_bits: AtomicU64,
    link_gbps: f64,
    rack_of: Vec<usize>,
}

type BranchResult = (Option<(f64, Vec<(Job, Placement)>)>, BnbStats, WaterfillStats);

fn run_branch(
    ctx: &BnbContext<'_>,
    base: &IncrementalEstimator,
    free: &[usize],
    touched: &[u32],
    candidate: &Placement,
) -> BranchResult {
    let base_stats = *base.stats();
    let mut branch = BnbBranch {
        ctx,
        free: free.to_vec(),
        touched: touched.to_vec(),
        inc: base.clone(),
        current: Vec::with_capacity(ctx.batch.len()),
        best: None,
        stats: BnbStats::default(),
    };
    branch.apply(&ctx.batch[0], candidate.clone());
    let _ = branch.dfs(1);
    let wf = wf_delta(branch.inc.stats(), &base_stats);
    (branch.best, branch.stats, wf)
}

/// One branch's mutable search state: a free-GPU ledger (no panicking
/// `Cluster` allocate/release round-trips), touch counts for symmetry
/// detection, and the live incremental estimator.
struct BnbBranch<'a, 'b> {
    ctx: &'a BnbContext<'b>,
    free: Vec<usize>,
    touched: Vec<u32>,
    inc: IncrementalEstimator,
    current: Vec<(Job, Placement)>,
    best: Option<(f64, Vec<(Job, Placement)>)>,
    stats: BnbStats,
}

impl BnbBranch<'_, '_> {
    /// Committed jobs' objective from the live estimator — the same value,
    /// to the bit, as the scratch leaf's `batch_comm_time_s`, because the
    /// incremental state is bit-identical to a from-scratch solve and the
    /// sum runs in the same (placement) order.
    fn partial_objective(&self) -> f64 {
        let state = self.inc.state();
        let mut total = 0.0;
        for (job, _) in &self.current {
            total += state
                .comm_time_s(job.id, job.gradient_gbits())
                .unwrap_or(f64::INFINITY);
        }
        total
    }

    /// Admissible lower bound for completing the assignment from job `idx`:
    /// the committed jobs' current objective (which only grows as more jobs
    /// contend — water-filled rates are monotone non-increasing in the job
    /// set) plus each unplaced job's zero-contention best case — 0 if it
    /// could still fit on one server, else one access-link traversal.
    fn bound_from(&self, idx: usize, partial: f64) -> f64 {
        let max_free = self.free.iter().copied().max().unwrap_or(0);
        let mut bound = partial;
        for job in &self.ctx.batch[idx..] {
            if job.gpus > max_free {
                bound += job.gradient_gbits() / self.ctx.link_gbps;
            }
        }
        bound
    }

    fn dfs(&mut self, idx: usize) -> ControlFlow<()> {
        self.stats.nodes += 1;
        let partial = self.partial_objective();
        if idx == self.ctx.batch.len() {
            return self.leaf(partial);
        }
        let bound = self.bound_from(idx, partial);
        // Against the branch-local incumbent `>=` is safe: an equal-bound
        // subtree cannot contain a *strictly* better leaf, and ties keep
        // the first-enumerated incumbent. Against the cross-branch bound
        // only `>` is safe — an equal-objective optimum found earlier in
        // wall-time by a *later* branch must not cut the subtree holding
        // the first-in-order optimum.
        let local_cut = self.best.as_ref().is_some_and(|(b, _)| bound >= *b);
        // netpack-lint: allow(C2): the shared bound is a monotone advisory — a stale read only prunes less, and the strict `>` cut keeps the first-in-order optimum regardless of which thread published the bound
        let shared = f64::from_bits(self.ctx.best_bound_bits.load(Ordering::Relaxed));
        if local_cut || bound > shared {
            self.stats.pruned += 1;
            return ControlFlow::Continue(());
        }
        // netpack-lint: allow(C2): advisory early-exit only — the authoritative budget check is the per-leaf fetch_add ticket, so a stale count merely delays the abort by a few nodes
        if self.ctx.evaluations.load(Ordering::Relaxed) >= self.ctx.max_evaluations {
            return ControlFlow::Break(());
        }
        let job = self.ctx.batch[idx].clone();
        let snapshot = self.free.clone();
        let classes = symmetry_classes(&self.ctx.rack_of, &snapshot, &self.touched);
        for_each_split(&snapshot, Some(&classes), job.gpus, &mut |split| {
            let candidates = ps_candidates(split, &classes, snapshot.len(), &mut self.stats);
            for ps in candidates {
                for &ina in ina_options(self.ctx.enumerate_ina, split.len()) {
                    let mut placement = Placement::new(split.to_vec(), ps);
                    placement.set_ina_enabled(ina);
                    self.apply(&job, placement);
                    let flow = self.dfs(idx + 1);
                    self.unapply();
                    flow?;
                }
            }
            ControlFlow::Continue(())
        })
    }

    fn leaf(&mut self, obj: f64) -> ControlFlow<()> {
        // One budget ticket per leaf; tickets past the budget abort the
        // branch with the incumbent intact.
        // netpack-lint: allow(C2): only the ticket *count* gates the budget, never its order, and budget-abort determinism is pinned by the bnb-vs-scratch check.sh smoke
        let ticket = self.ctx.evaluations.fetch_add(1, Ordering::Relaxed);
        if ticket >= self.ctx.max_evaluations {
            return ControlFlow::Break(());
        }
        self.stats.leaves += 1;
        if self.best.as_ref().is_none_or(|(b, _)| obj < *b) {
            self.best = Some((obj, self.current.clone()));
            self.ctx
                .best_bound_bits
                // netpack-lint: allow(C2): fetch_min on non-negative objective bits is monotone — losing a race publishes a weaker bound, which can only reduce pruning, not change the committed result
                .fetch_min(obj.to_bits(), Ordering::Relaxed);
        }
        ControlFlow::Continue(())
    }

    fn apply(&mut self, job: &Job, placement: Placement) {
        for &(s, w) in placement.workers() {
            self.free[s.0] -= w;
            self.touched[s.0] += 1;
        }
        for &s in placement.pses() {
            self.touched[s.0] += 1;
        }
        self.inc.push(
            self.ctx.cluster,
            PlacedJob::new(job.id, self.ctx.cluster, &placement),
        );
        self.current.push((job.clone(), placement));
    }

    fn unapply(&mut self) {
        if let Some((_, placement)) = self.current.pop() {
            self.inc.pop(self.ctx.cluster);
            for &(s, w) in placement.workers() {
                self.free[s.0] += w;
                self.touched[s.0] -= 1;
            }
            for &s in placement.pses() {
                self.touched[s.0] -= 1;
            }
        }
    }
}

/// The legacy exhaustive DFS, verbatim semantics: full enumeration (no
/// symmetry, no bound), each leaf re-evaluated from scratch. Kept as the
/// reference the branch-and-bound is diffed against.
struct ScratchSearch<'a> {
    cluster: &'a Cluster,
    running: &'a [RunningJob],
    batch: &'a [Job],
    enumerate_ina: bool,
    max_evaluations: u64,
    evaluations: u64,
    best: Option<(f64, Vec<(Job, Placement)>)>,
}

impl ScratchSearch<'_> {
    fn search(&mut self, free: &mut Vec<usize>, current: &mut Vec<(Job, Placement)>, idx: usize) {
        if self.evaluations >= self.max_evaluations {
            return;
        }
        if idx == self.batch.len() {
            self.evaluations += 1;
            let obj = crate::placer::batch_comm_time_s(self.cluster, self.running, current);
            if self.best.as_ref().is_none_or(|(b, _)| obj < *b) {
                self.best = Some((obj, current.clone()));
            }
            return;
        }
        let job = &self.batch[idx];
        for split in worker_splits(free, job.gpus) {
            // PS candidates: every server for spanning placements, or the
            // lone worker server / no PS for single-server placements.
            let ps_list: Vec<Option<ServerId>> = if split.len() == 1 {
                vec![None]
            } else {
                (0..self.cluster.num_servers())
                    .map(|s| Some(ServerId(s)))
                    .collect()
            };
            for ps in ps_list {
                for &ina in ina_options(self.enumerate_ina, split.len()) {
                    let mut placement = Placement::new(split.clone(), ps);
                    placement.set_ina_enabled(ina);
                    for &(s, w) in placement.workers() {
                        free[s.0] -= w;
                    }
                    current.push((job.clone(), placement));
                    self.search(free, current, idx + 1);
                    if let Some((_, placement)) = current.pop() {
                        for &(s, w) in placement.workers() {
                            free[s.0] += w;
                        }
                    }
                    if self.evaluations >= self.max_evaluations {
                        return;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpack_topology::{ClusterSpec, JobId};
    use netpack_workload::ModelKind;

    fn cluster(servers: usize, gpus: usize) -> Cluster {
        Cluster::new(ClusterSpec {
            racks: 1,
            servers_per_rack: servers,
            gpus_per_server: gpus,
            ..ClusterSpec::paper_default()
        })
    }

    fn job(id: u64, gpus: usize) -> Job {
        Job::builder(JobId(id), ModelKind::Vgg16, gpus).build()
    }

    fn both_modes() -> [ExactMode; 2] {
        [ExactMode::Bnb, ExactMode::Scratch]
    }

    #[test]
    fn exact_prefers_local_placement_when_possible() {
        let c = cluster(3, 4);
        for mode in both_modes() {
            let mut p = ExactPlacer::default().mode(mode);
            let out = p.place_batch(&c, &[], &[job(0, 4)]);
            assert_eq!(out.placed.len(), 1);
            // A local placement has zero communication time: strictly optimal.
            assert!(out.placed[0].1.is_local());
            assert!(p.evaluations() > 0);
        }
    }

    #[test]
    fn exact_separates_two_jobs_onto_disjoint_bottlenecks() {
        let c = cluster(4, 1);
        for mode in both_modes() {
            let mut p = ExactPlacer::default().mode(mode);
            // Two 2-GPU jobs on four 1-GPU servers: each must span two servers
            // with a PS; the optimum avoids stacking both PSes on one link.
            let out = p.place_batch(&c, &[], &[job(0, 2), job(1, 2)]);
            assert_eq!(out.placed.len(), 2);
            let ps0 = out.placed[0].1.ps().unwrap();
            let ps1 = out.placed[1].1.ps().unwrap();
            assert_ne!(ps0, ps1, "optimal plan spreads PS load");
            for (j, placement) in &out.placed {
                placement.validate(&c, j.gpus).unwrap();
            }
        }
    }

    #[test]
    fn exact_keeps_the_first_enumerated_optimum() {
        // Many placements tie at 0 s on an empty symmetric cluster; the
        // documented tie-break (first-found in scratch enumeration order)
        // pins all GPUs on server 0 — in both modes, pinning the canonical
        // representative choice of the symmetry breaker too.
        let c = cluster(3, 4);
        for mode in both_modes() {
            let mut p = ExactPlacer::default().mode(mode);
            let out = p.place_batch(&c, &[], &[job(0, 2)]);
            assert_eq!(
                out.placed[0].1.workers(),
                &[(ServerId(0), 2)],
                "{mode:?} must keep the first-enumerated optimum"
            );
        }
    }

    #[test]
    fn worker_splits_enumerate_all_compositions() {
        // Compositions of 2 over caps (2,2,2): (2),(1,1) over 3 servers =
        // 3 singles + 3 pairs = 6.
        let splits = worker_splits(&[2, 2, 2], 2);
        assert_eq!(splits.len(), 6);
    }

    #[test]
    fn canonical_splits_collapse_interchangeable_servers() {
        // All three servers are interchangeable (same rack, same free, no
        // placements): the canonical enumeration keeps exactly (2) on
        // server 0 and (1,1) on servers 0+1.
        let classes = symmetry_classes(&[0, 0, 0], &[2, 2, 2], &[0, 0, 0]);
        assert_eq!(classes, vec![0, 0, 0]);
        let mut kept = Vec::new();
        let _ = for_each_split(&[2, 2, 2], Some(&classes), 2, &mut |split| {
            kept.push(split.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(
            kept,
            vec![
                vec![(ServerId(0), 2)],
                vec![(ServerId(0), 1), (ServerId(1), 1)],
            ]
        );
    }

    #[test]
    fn touched_servers_break_symmetry() {
        // Server 1 is touched by a running job: it is not interchangeable
        // with servers 0/2, so splits over it survive.
        let classes = symmetry_classes(&[0, 0, 0], &[2, 2, 2], &[0, 1, 0]);
        assert_eq!(classes, vec![0, 1, 0]);
        let mut kept = 0;
        let _ = for_each_split(&[2, 2, 2], Some(&classes), 2, &mut |_| {
            kept += 1;
            ControlFlow::Continue(())
        });
        // (2@0), (1@0,1@1), (1@0,1@2), (2@1) survive; (2@2) and (1@1,1@2)
        // collapse onto earlier splits via the 0<->2 swap.
        assert_eq!(kept, 4);
    }

    #[test]
    fn evaluation_budget_is_respected() {
        let c = cluster(4, 2);
        for mode in both_modes() {
            let mut p = ExactPlacer::new(10).mode(mode);
            let _ = p.place_batch(&c, &[], &[job(0, 2), job(1, 2)]);
            assert!(p.evaluations() <= 10, "{mode:?}");
        }
    }

    #[test]
    fn infeasible_batch_is_deferred() {
        let c = cluster(2, 1);
        for mode in both_modes() {
            let mut p = ExactPlacer::default().mode(mode);
            let out = p.place_batch(&c, &[], &[job(0, 5)]);
            assert!(out.placed.is_empty(), "{mode:?}");
            assert_eq!(out.deferred.len(), 1, "{mode:?}");
        }
    }

    #[test]
    fn bnb_prunes_and_collapses_work() {
        let c = cluster(4, 2);
        let batch = [job(0, 3), job(1, 3), job(2, 2)];
        let mut scratch = ExactPlacer::default().mode(ExactMode::Scratch);
        let mut bnb = ExactPlacer::default().mode(ExactMode::Bnb);
        scratch.place_batch(&c, &[], &batch);
        bnb.place_batch(&c, &[], &batch);
        assert!(
            bnb.evaluations() < scratch.evaluations(),
            "bnb must evaluate fewer leaves ({} vs {})",
            bnb.evaluations(),
            scratch.evaluations()
        );
        assert!(bnb.perf().counter("exact_pruned_subtrees") > 0);
        assert!(bnb.perf().counter("exact_sym_ps_skips") > 0);
        assert_eq!(bnb.perf().timer_count("place_batch"), 1);
    }

    #[test]
    fn mode_defaults_from_env_convention() {
        // Unset or unknown values select bnb (the same "fast by default,
        // scratch on request" convention as NETPACK_SIM / NETPACK_PKT).
        assert_eq!(ExactMode::default(), ExactMode::Bnb);
    }
}
