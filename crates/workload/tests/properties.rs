//! Property tests for trace synthesis.

use netpack_workload::{TraceKind, TraceSpec};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = TraceKind> {
    prop_oneof![
        Just(TraceKind::Real),
        Just(TraceKind::Poisson),
        Just(TraceKind::Normal),
    ]
}

proptest! {
    /// Every generated trace honours its spec: job count, GPU clamp,
    /// monotone arrivals, positive iterations, unique ids.
    #[test]
    fn generated_traces_are_well_formed(
        kind in arb_kind(),
        jobs in 1usize..200,
        seed in 0u64..1000,
        max_gpus in 1usize..64,
        interarrival in 0.0f64..120.0,
    ) {
        let trace = TraceSpec::new(kind, jobs)
            .seed(seed)
            .max_gpus(max_gpus)
            .mean_interarrival_s(interarrival)
            .generate();
        prop_assert_eq!(trace.jobs().len(), jobs);
        let mut last = 0.0f64;
        let mut ids = std::collections::HashSet::new();
        for j in trace.jobs() {
            prop_assert!(j.gpus >= 1 && j.gpus <= max_gpus);
            prop_assert!(j.iterations >= 1);
            prop_assert!(j.arrival_s >= last);
            prop_assert!(j.value > 0.0);
            prop_assert!(ids.insert(j.id), "duplicate id {:?}", j.id);
            last = j.arrival_s;
        }
    }

    /// Determinism: identical specs generate identical traces.
    #[test]
    fn generation_is_deterministic(kind in arb_kind(), seed in 0u64..1000) {
        let build = || TraceSpec::new(kind, 50).seed(seed).generate();
        prop_assert_eq!(build(), build());
    }

    /// The duration scale shrinks total work roughly proportionally.
    #[test]
    fn duration_scale_is_roughly_linear(seed in 0u64..200) {
        let base = TraceSpec::new(TraceKind::Real, 100).seed(seed).generate();
        let tenth = TraceSpec::new(TraceKind::Real, 100)
            .seed(seed)
            .duration_scale(0.1)
            .generate();
        let sum = |t: &netpack_workload::Trace| -> f64 {
            t.jobs().iter().map(|j| j.iterations as f64).sum()
        };
        let ratio = sum(&tenth) / sum(&base);
        // Floors (minimum duration, ceil to one iteration) make the tail
        // of the shrunken trace relatively heavier, so allow a wide band.
        prop_assert!(ratio < 0.35, "scale 0.1 left ratio {ratio}");
    }
}
