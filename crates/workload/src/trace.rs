//! Job-trace synthesis: the paper's "Real", Poisson, and Normal traces.

use crate::{Job, ModelKind};
use netpack_topology::JobId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which of the three §6.1 trace families to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Production-like trace matching the published Microsoft Philly
    /// characteristics: GPU demands concentrated on small powers of two,
    /// heavy-tailed (log-normal) durations, bursty arrivals. Labelled
    /// "Real" in the paper's figures.
    Real,
    /// GPU demands drawn from a Poisson distribution (mean 4), exponential
    /// arrivals.
    Poisson,
    /// GPU demands drawn from a normal distribution (mean 8, std 4),
    /// exponential arrivals.
    Normal,
}

impl TraceKind {
    /// All trace kinds, in figure order.
    pub const ALL: [TraceKind; 3] = [TraceKind::Real, TraceKind::Poisson, TraceKind::Normal];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Real => "Real",
            TraceKind::Poisson => "Poisson",
            TraceKind::Normal => "Normal",
        }
    }
}

impl std::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How inter-arrival times are drawn (see [`TraceSpec::open_loop`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ArrivalProcess {
    /// The family's own arrival shape: bursty for [`TraceKind::Real`]
    /// (production resubmissions and sweeps), plain exponential for the
    /// synthetic families. The default, and what every closed-batch
    /// experiment uses.
    #[default]
    FamilyDefault,
    /// Memoryless Poisson-process arrivals — i.i.d. exponential
    /// inter-arrival times with the spec's mean — for **every** trace
    /// family. This is the open-loop load the continuous placement
    /// service is benchmarked under: the arrival clock never waits on the
    /// system, so sustained throughput and latency percentiles are
    /// well-defined.
    OpenLoop,
}

/// Configuration for synthesizing a [`Trace`].
///
/// # Example
///
/// ```
/// use netpack_workload::{TraceKind, TraceSpec};
///
/// let trace = TraceSpec::new(TraceKind::Poisson, 50)
///     .seed(42)
///     .mean_interarrival_s(30.0)
///     .max_gpus(16)
///     .generate();
/// assert_eq!(trace.jobs().len(), 50);
/// assert!(trace.jobs().iter().all(|j| j.gpus <= 16));
/// ```
#[derive(Debug, Clone)]
pub struct TraceSpec {
    kind: TraceKind,
    jobs: usize,
    seed: u64,
    mean_interarrival_s: f64,
    duration_scale: f64,
    max_gpus: usize,
    arrivals: ArrivalProcess,
}

impl TraceSpec {
    /// Create a spec for `jobs` jobs of the given trace family.
    pub fn new(kind: TraceKind, jobs: usize) -> Self {
        TraceSpec {
            kind,
            jobs,
            seed: 1,
            mean_interarrival_s: 60.0,
            duration_scale: 1.0,
            max_gpus: 64,
            arrivals: ArrivalProcess::default(),
        }
    }

    /// Draw arrivals as an open-loop Poisson process
    /// ([`ArrivalProcess::OpenLoop`]) instead of the family default.
    /// Demands, models, and durations are unaffected for the synthetic
    /// families (they already use exponential arrivals, so only `Real`'s
    /// burst structure changes — and with it that family's RNG stream).
    pub fn open_loop(mut self) -> Self {
        self.arrivals = ArrivalProcess::OpenLoop;
        self
    }

    /// Seed the deterministic RNG (default 1).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Mean inter-arrival time in seconds (default 60).
    pub fn mean_interarrival_s(mut self, s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "inter-arrival must be >= 0");
        self.mean_interarrival_s = s;
        self
    }

    /// Multiply every job's target duration (and hence iteration count) by
    /// this factor (default 1.0). Useful to shorten experiments.
    pub fn duration_scale(mut self, scale: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        self.duration_scale = scale;
        self
    }

    /// Clamp GPU demands to this maximum (default 64). Set it to the
    /// cluster's largest feasible job to avoid unplaceable requests.
    pub fn max_gpus(mut self, max: usize) -> Self {
        assert!(max >= 1, "max_gpus must be at least 1");
        self.max_gpus = max;
        self
    }

    /// Synthesize the trace. Deterministic for a given spec.
    pub fn generate(&self) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut jobs = Vec::with_capacity(self.jobs);
        let mut clock = 0.0f64;
        let mut burst_left = 0usize;
        for i in 0..self.jobs {
            // Arrivals: Real is bursty (several jobs at nearly the same
            // time, as resubmissions and sweeps do in production); the
            // synthetic traces use plain exponential arrivals.
            if self.mean_interarrival_s > 0.0 {
                match self.kind {
                    _ if self.arrivals == ArrivalProcess::OpenLoop => {
                        clock += sample_exp(&mut rng, self.mean_interarrival_s);
                    }
                    TraceKind::Real => {
                        if burst_left == 0 {
                            burst_left = rng.gen_range(1..=5);
                            clock += sample_exp(&mut rng, self.mean_interarrival_s * 2.0);
                        } else {
                            clock += sample_exp(&mut rng, self.mean_interarrival_s * 0.05);
                        }
                        burst_left -= 1;
                    }
                    _ => clock += sample_exp(&mut rng, self.mean_interarrival_s),
                }
            }
            let gpus = self.sample_gpus(&mut rng);
            let model = ModelKind::ALL[rng.gen_range(0..ModelKind::ALL.len())];
            let duration_s = self.sample_duration_s(&mut rng);
            // Convert the target duration into iterations assuming the
            // ideal (communication-free) iteration time; the realized JCT
            // then depends on placement, which is exactly what we measure.
            let iterations = (duration_s / model.compute_time_s()).ceil().max(1.0) as u64;
            jobs.push(
                Job::builder(JobId(i as u64), model, gpus)
                    .iterations(iterations)
                    .arrival_s(clock)
                    .value(1.0)
                    .build(),
            );
        }
        Trace { jobs }
    }

    fn sample_gpus(&self, rng: &mut StdRng) -> usize {
        let raw = match self.kind {
            TraceKind::Real => {
                // Published Philly demand profile: dominated by 1-8 GPU
                // jobs with a thin tail of large sweeps.
                let p: f64 = rng.gen();
                match p {
                    p if p < 0.45 => 1,
                    p if p < 0.60 => 2,
                    p if p < 0.80 => 4,
                    p if p < 0.92 => 8,
                    p if p < 0.975 => 16,
                    p if p < 0.995 => 32,
                    _ => 64,
                }
            }
            TraceKind::Poisson => sample_poisson(rng, 4.0).max(1) as usize,
            TraceKind::Normal => sample_normal(rng, 8.0, 4.0).round().max(1.0) as usize,
        };
        raw.clamp(1, self.max_gpus)
    }

    fn sample_duration_s(&self, rng: &mut StdRng) -> f64 {
        // Heavy-tailed log-normal durations for all traces (the synthetic
        // traces in the paper vary only the GPU-demand distribution).
        // Median ~= 8 min with a long tail, Philly-like.
        let ln = sample_normal(rng, (480.0f64).ln(), 1.1);
        (ln.exp() * self.duration_scale).clamp(30.0 * self.duration_scale, 86_400.0)
    }
}

/// A synthesized job trace, sorted by arrival time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    jobs: Vec<Job>,
}

impl Trace {
    /// Build a trace directly from jobs (sorted by arrival time).
    pub fn from_jobs(mut jobs: Vec<Job>) -> Self {
        jobs.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
        Trace { jobs }
    }

    /// The jobs, in arrival order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Consume the trace and return its jobs.
    pub fn into_jobs(self) -> Vec<Job> {
        self.jobs
    }

    /// Total GPU demand across all jobs.
    pub fn total_gpu_demand(&self) -> usize {
        self.jobs.iter().map(|j| j.gpus).sum()
    }
}

/// Exponential sample with the given mean.
fn sample_exp(rng: &mut StdRng, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Standard Box-Muller normal sample.
fn sample_normal(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    mean + std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Knuth Poisson sample (fine for the small lambdas we use).
fn sample_poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_per_seed() {
        let a = TraceSpec::new(TraceKind::Real, 200).seed(5).generate();
        let b = TraceSpec::new(TraceKind::Real, 200).seed(5).generate();
        let c = TraceSpec::new(TraceKind::Real, 200).seed(6).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_sorted_and_nonnegative() {
        for kind in TraceKind::ALL {
            let t = TraceSpec::new(kind, 300).seed(3).generate();
            let mut last = 0.0;
            for j in t.jobs() {
                assert!(j.arrival_s >= last, "{kind} arrivals must be monotone");
                last = j.arrival_s;
            }
        }
    }

    #[test]
    fn real_trace_demands_are_powers_of_two() {
        let t = TraceSpec::new(TraceKind::Real, 500).seed(11).generate();
        for j in t.jobs() {
            assert!(j.gpus.is_power_of_two(), "got {}", j.gpus);
        }
    }

    #[test]
    fn real_trace_is_dominated_by_small_jobs() {
        let t = TraceSpec::new(TraceKind::Real, 2000).seed(1).generate();
        let small = t.jobs().iter().filter(|j| j.gpus <= 8).count();
        assert!(small as f64 / 2000.0 > 0.85, "small fraction {small}/2000");
    }

    #[test]
    fn poisson_demands_center_near_lambda() {
        let t = TraceSpec::new(TraceKind::Poisson, 4000).seed(2).generate();
        let mean =
            t.jobs().iter().map(|j| j.gpus as f64).sum::<f64>() / t.jobs().len() as f64;
        assert!((mean - 4.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn normal_demands_center_near_mean() {
        let t = TraceSpec::new(TraceKind::Normal, 4000).seed(2).generate();
        let mean =
            t.jobs().iter().map(|j| j.gpus as f64).sum::<f64>() / t.jobs().len() as f64;
        assert!((mean - 8.0).abs() < 0.8, "mean {mean}");
    }

    #[test]
    fn max_gpus_clamps_demands() {
        let t = TraceSpec::new(TraceKind::Real, 1000)
            .seed(9)
            .max_gpus(8)
            .generate();
        assert!(t.jobs().iter().all(|j| j.gpus <= 8));
    }

    #[test]
    fn duration_scale_shrinks_iterations() {
        let long = TraceSpec::new(TraceKind::Real, 100).seed(4).generate();
        let short = TraceSpec::new(TraceKind::Real, 100)
            .seed(4)
            .duration_scale(0.1)
            .generate();
        let sum_long: u64 = long.jobs().iter().map(|j| j.iterations).sum();
        let sum_short: u64 = short.jobs().iter().map(|j| j.iterations).sum();
        assert!(sum_short < sum_long);
    }

    #[test]
    fn zero_interarrival_packs_all_jobs_at_time_zero() {
        let t = TraceSpec::new(TraceKind::Poisson, 40)
            .seed(2)
            .mean_interarrival_s(0.0)
            .generate();
        assert!(t.jobs().iter().all(|j| j.arrival_s == 0.0));
    }

    /// Regression pin for the open-loop arrival streams: the first 10
    /// arrivals of every family, for three seeds, as exact f64 bit
    /// patterns. Any change to the RNG draw order, the exponential
    /// sampler, or the clock accumulation shows up here — and would
    /// silently shift every service benchmark and its determinism gate.
    #[test]
    fn open_loop_arrivals_are_pinned_per_seed() {
        let pinned: &[(TraceKind, u64, [u64; 10])] = &[
            (TraceKind::Real, 1, [
                0x40410B8AB6026A5D, 0x40492A06164187DA, 0x405A2C02096E2A96, 0x406A81F19AA25818,
                0x407772ED7600E03A, 0x40816BFFC0696AF0, 0x408262EAAB1D2C17, 0x408393E0C5CD19A6,
                0x4083DB40EF3CD2B2, 0x40842F5356221999,
            ]),
            (TraceKind::Real, 7, [
                0x404C42E82EDEAC88, 0x40617AC8653F072C, 0x40713E4AB655755C, 0x40737F35926C9B35,
                0x4074F925855CC583, 0x40752001B9012737, 0x40753C1FC87375EF, 0x40771BBE80253AC2,
                0x4078C262D103D32A, 0x407D0996065F7F48,
            ]),
            (TraceKind::Real, 42, [
                0x4031F086D6B16635, 0x403A6AE857566146, 0x405E61FCF71A973C, 0x406B226AF5CEE563,
                0x406B76272D37AE61, 0x407289801B72147B, 0x40736BE7C4316D1B, 0x40770CBA6D5A9879,
                0x40796DC04C411DC9, 0x407DAF717924057A,
            ]),
            (TraceKind::Poisson, 1, [
                0x40410B8AB6026A5D, 0x40545622178C339A, 0x405EDB976640FAE5, 0x405EE43FCED165EF,
                0x4060F3C2ACC4B5E7, 0x4069EF8B6FB98A0C, 0x406A4142F80BF7A8, 0x407B6FF34600F7E2,
                0x407D92FBC903E784, 0x407EFE16BC750DE1,
            ]),
            (TraceKind::Poisson, 7, [
                0x404C42E82EDEAC88, 0x40617AC8653F072C, 0x4062833AA9E885AF, 0x4062D0F311314918,
                0x406C4B5EC4E5BA3D, 0x4071C177F08CF902, 0x407262C0C1E6870D, 0x4074FED336D25A21,
                0x4078D8300A66C6F7, 0x407913534FB8B6B4,
            ]),
            (TraceKind::Poisson, 42, [
                0x4031F086D6B16635, 0x403F47E2692E6633, 0x4064EA8584EB1E6C, 0x406E875E8E979901,
                0x4071A4B5263251D1, 0x4071C29228CBA19A, 0x40732F930B4FBB24, 0x407ED302AEECE3C7,
                0x4083BFB15A0B88DB, 0x40844EE781788E0B,
            ]),
            (TraceKind::Normal, 1, [
                0x40410B8AB6026A5D, 0x4044F879CD9CAE97, 0x40564C99A35955B7, 0x405C0BED940C3A60,
                0x4067633DCDB50A76, 0x406B3EE978840F13, 0x406FD0FB5A6845FC, 0x4075513126A12EC4,
                0x4075BCD332BA7FAB, 0x40793BCBF5404B79,
            ]),
            (TraceKind::Normal, 7, [
                0x404C42E82EDEAC88, 0x40598580499DC1EE, 0x405ACDF62440DF06, 0x4060FF88E324AC11,
                0x4061C46AA58B44C5, 0x4061FCA6C46FE236, 0x4072AB821CDFAE92, 0x4076474AAAF9CA75,
                0x4076E8937C535880, 0x4078FE4C1A76DD0D,
            ]),
            (TraceKind::Normal, 42, [
                0x4031F086D6B16635, 0x405B4E51F71248E3, 0x4062A73D17052854, 0x4072375D4EBD08A6,
                0x407BF8D2B872FBC8, 0x407CDB3A61325468, 0x40839C7105BC11B0, 0x40860B81194E0704,
                0x4087538FAE5071CA, 0x408E29F71FE80C54,
            ]),
        ];
        for (kind, seed, bits) in pinned {
            let t = TraceSpec::new(*kind, 10).seed(*seed).open_loop().generate();
            let got: Vec<u64> = t.jobs().iter().map(|j| j.arrival_s.to_bits()).collect();
            assert_eq!(got, bits.to_vec(), "{kind} seed {seed}");
        }
    }

    /// The synthetic families already draw exponential inter-arrivals, so
    /// open-loop mode changes nothing for them (same RNG stream); Real's
    /// burst structure is replaced, so its trace must differ.
    #[test]
    fn open_loop_only_reshapes_real_arrivals() {
        for kind in [TraceKind::Poisson, TraceKind::Normal] {
            let closed = TraceSpec::new(kind, 100).seed(3).generate();
            let open = TraceSpec::new(kind, 100).seed(3).open_loop().generate();
            assert_eq!(closed, open, "{kind}");
        }
        let closed = TraceSpec::new(TraceKind::Real, 100).seed(3).generate();
        let open = TraceSpec::new(TraceKind::Real, 100).seed(3).open_loop().generate();
        assert_ne!(closed, open);
    }

    #[test]
    fn from_jobs_sorts_by_arrival() {
        let j1 = Job::builder(JobId(0), ModelKind::AlexNet, 1)
            .arrival_s(10.0)
            .build();
        let j2 = Job::builder(JobId(1), ModelKind::AlexNet, 1)
            .arrival_s(5.0)
            .build();
        let t = Trace::from_jobs(vec![j1, j2]);
        assert_eq!(t.jobs()[0].id, JobId(1));
        assert_eq!(t.total_gpu_demand(), 2);
    }

    #[test]
    fn samplers_produce_reasonable_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let exp_mean: f64 = (0..n).map(|_| sample_exp(&mut rng, 3.0)).sum::<f64>() / n as f64;
        assert!((exp_mean - 3.0).abs() < 0.1, "exp mean {exp_mean}");
        let norm_mean: f64 =
            (0..n).map(|_| sample_normal(&mut rng, 1.0, 2.0)).sum::<f64>() / n as f64;
        assert!((norm_mean - 1.0).abs() < 0.1, "normal mean {norm_mean}");
        let pois_mean: f64 =
            (0..n).map(|_| sample_poisson(&mut rng, 6.0) as f64).sum::<f64>() / n as f64;
        assert!((pois_mean - 6.0).abs() < 0.1, "poisson mean {pois_mean}");
    }
}
