//! Job-trace synthesis: the paper's "Real", Poisson, and Normal traces.

use crate::{Job, ModelKind};
use netpack_topology::JobId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which of the three §6.1 trace families to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Production-like trace matching the published Microsoft Philly
    /// characteristics: GPU demands concentrated on small powers of two,
    /// heavy-tailed (log-normal) durations, bursty arrivals. Labelled
    /// "Real" in the paper's figures.
    Real,
    /// GPU demands drawn from a Poisson distribution (mean 4), exponential
    /// arrivals.
    Poisson,
    /// GPU demands drawn from a normal distribution (mean 8, std 4),
    /// exponential arrivals.
    Normal,
}

impl TraceKind {
    /// All trace kinds, in figure order.
    pub const ALL: [TraceKind; 3] = [TraceKind::Real, TraceKind::Poisson, TraceKind::Normal];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Real => "Real",
            TraceKind::Poisson => "Poisson",
            TraceKind::Normal => "Normal",
        }
    }
}

impl std::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration for synthesizing a [`Trace`].
///
/// # Example
///
/// ```
/// use netpack_workload::{TraceKind, TraceSpec};
///
/// let trace = TraceSpec::new(TraceKind::Poisson, 50)
///     .seed(42)
///     .mean_interarrival_s(30.0)
///     .max_gpus(16)
///     .generate();
/// assert_eq!(trace.jobs().len(), 50);
/// assert!(trace.jobs().iter().all(|j| j.gpus <= 16));
/// ```
#[derive(Debug, Clone)]
pub struct TraceSpec {
    kind: TraceKind,
    jobs: usize,
    seed: u64,
    mean_interarrival_s: f64,
    duration_scale: f64,
    max_gpus: usize,
}

impl TraceSpec {
    /// Create a spec for `jobs` jobs of the given trace family.
    pub fn new(kind: TraceKind, jobs: usize) -> Self {
        TraceSpec {
            kind,
            jobs,
            seed: 1,
            mean_interarrival_s: 60.0,
            duration_scale: 1.0,
            max_gpus: 64,
        }
    }

    /// Seed the deterministic RNG (default 1).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Mean inter-arrival time in seconds (default 60).
    pub fn mean_interarrival_s(mut self, s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "inter-arrival must be >= 0");
        self.mean_interarrival_s = s;
        self
    }

    /// Multiply every job's target duration (and hence iteration count) by
    /// this factor (default 1.0). Useful to shorten experiments.
    pub fn duration_scale(mut self, scale: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        self.duration_scale = scale;
        self
    }

    /// Clamp GPU demands to this maximum (default 64). Set it to the
    /// cluster's largest feasible job to avoid unplaceable requests.
    pub fn max_gpus(mut self, max: usize) -> Self {
        assert!(max >= 1, "max_gpus must be at least 1");
        self.max_gpus = max;
        self
    }

    /// Synthesize the trace. Deterministic for a given spec.
    pub fn generate(&self) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut jobs = Vec::with_capacity(self.jobs);
        let mut clock = 0.0f64;
        let mut burst_left = 0usize;
        for i in 0..self.jobs {
            // Arrivals: Real is bursty (several jobs at nearly the same
            // time, as resubmissions and sweeps do in production); the
            // synthetic traces use plain exponential arrivals.
            if self.mean_interarrival_s > 0.0 {
                match self.kind {
                    TraceKind::Real => {
                        if burst_left == 0 {
                            burst_left = rng.gen_range(1..=5);
                            clock += sample_exp(&mut rng, self.mean_interarrival_s * 2.0);
                        } else {
                            clock += sample_exp(&mut rng, self.mean_interarrival_s * 0.05);
                        }
                        burst_left -= 1;
                    }
                    _ => clock += sample_exp(&mut rng, self.mean_interarrival_s),
                }
            }
            let gpus = self.sample_gpus(&mut rng);
            let model = ModelKind::ALL[rng.gen_range(0..ModelKind::ALL.len())];
            let duration_s = self.sample_duration_s(&mut rng);
            // Convert the target duration into iterations assuming the
            // ideal (communication-free) iteration time; the realized JCT
            // then depends on placement, which is exactly what we measure.
            let iterations = (duration_s / model.compute_time_s()).ceil().max(1.0) as u64;
            jobs.push(
                Job::builder(JobId(i as u64), model, gpus)
                    .iterations(iterations)
                    .arrival_s(clock)
                    .value(1.0)
                    .build(),
            );
        }
        Trace { jobs }
    }

    fn sample_gpus(&self, rng: &mut StdRng) -> usize {
        let raw = match self.kind {
            TraceKind::Real => {
                // Published Philly demand profile: dominated by 1-8 GPU
                // jobs with a thin tail of large sweeps.
                let p: f64 = rng.gen();
                match p {
                    p if p < 0.45 => 1,
                    p if p < 0.60 => 2,
                    p if p < 0.80 => 4,
                    p if p < 0.92 => 8,
                    p if p < 0.975 => 16,
                    p if p < 0.995 => 32,
                    _ => 64,
                }
            }
            TraceKind::Poisson => sample_poisson(rng, 4.0).max(1) as usize,
            TraceKind::Normal => sample_normal(rng, 8.0, 4.0).round().max(1.0) as usize,
        };
        raw.clamp(1, self.max_gpus)
    }

    fn sample_duration_s(&self, rng: &mut StdRng) -> f64 {
        // Heavy-tailed log-normal durations for all traces (the synthetic
        // traces in the paper vary only the GPU-demand distribution).
        // Median ~= 8 min with a long tail, Philly-like.
        let ln = sample_normal(rng, (480.0f64).ln(), 1.1);
        (ln.exp() * self.duration_scale).clamp(30.0 * self.duration_scale, 86_400.0)
    }
}

/// A synthesized job trace, sorted by arrival time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    jobs: Vec<Job>,
}

impl Trace {
    /// Build a trace directly from jobs (sorted by arrival time).
    pub fn from_jobs(mut jobs: Vec<Job>) -> Self {
        jobs.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
        Trace { jobs }
    }

    /// The jobs, in arrival order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Consume the trace and return its jobs.
    pub fn into_jobs(self) -> Vec<Job> {
        self.jobs
    }

    /// Total GPU demand across all jobs.
    pub fn total_gpu_demand(&self) -> usize {
        self.jobs.iter().map(|j| j.gpus).sum()
    }
}

/// Exponential sample with the given mean.
fn sample_exp(rng: &mut StdRng, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Standard Box-Muller normal sample.
fn sample_normal(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    mean + std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Knuth Poisson sample (fine for the small lambdas we use).
fn sample_poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_per_seed() {
        let a = TraceSpec::new(TraceKind::Real, 200).seed(5).generate();
        let b = TraceSpec::new(TraceKind::Real, 200).seed(5).generate();
        let c = TraceSpec::new(TraceKind::Real, 200).seed(6).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_sorted_and_nonnegative() {
        for kind in TraceKind::ALL {
            let t = TraceSpec::new(kind, 300).seed(3).generate();
            let mut last = 0.0;
            for j in t.jobs() {
                assert!(j.arrival_s >= last, "{kind} arrivals must be monotone");
                last = j.arrival_s;
            }
        }
    }

    #[test]
    fn real_trace_demands_are_powers_of_two() {
        let t = TraceSpec::new(TraceKind::Real, 500).seed(11).generate();
        for j in t.jobs() {
            assert!(j.gpus.is_power_of_two(), "got {}", j.gpus);
        }
    }

    #[test]
    fn real_trace_is_dominated_by_small_jobs() {
        let t = TraceSpec::new(TraceKind::Real, 2000).seed(1).generate();
        let small = t.jobs().iter().filter(|j| j.gpus <= 8).count();
        assert!(small as f64 / 2000.0 > 0.85, "small fraction {small}/2000");
    }

    #[test]
    fn poisson_demands_center_near_lambda() {
        let t = TraceSpec::new(TraceKind::Poisson, 4000).seed(2).generate();
        let mean =
            t.jobs().iter().map(|j| j.gpus as f64).sum::<f64>() / t.jobs().len() as f64;
        assert!((mean - 4.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn normal_demands_center_near_mean() {
        let t = TraceSpec::new(TraceKind::Normal, 4000).seed(2).generate();
        let mean =
            t.jobs().iter().map(|j| j.gpus as f64).sum::<f64>() / t.jobs().len() as f64;
        assert!((mean - 8.0).abs() < 0.8, "mean {mean}");
    }

    #[test]
    fn max_gpus_clamps_demands() {
        let t = TraceSpec::new(TraceKind::Real, 1000)
            .seed(9)
            .max_gpus(8)
            .generate();
        assert!(t.jobs().iter().all(|j| j.gpus <= 8));
    }

    #[test]
    fn duration_scale_shrinks_iterations() {
        let long = TraceSpec::new(TraceKind::Real, 100).seed(4).generate();
        let short = TraceSpec::new(TraceKind::Real, 100)
            .seed(4)
            .duration_scale(0.1)
            .generate();
        let sum_long: u64 = long.jobs().iter().map(|j| j.iterations).sum();
        let sum_short: u64 = short.jobs().iter().map(|j| j.iterations).sum();
        assert!(sum_short < sum_long);
    }

    #[test]
    fn zero_interarrival_packs_all_jobs_at_time_zero() {
        let t = TraceSpec::new(TraceKind::Poisson, 40)
            .seed(2)
            .mean_interarrival_s(0.0)
            .generate();
        assert!(t.jobs().iter().all(|j| j.arrival_s == 0.0));
    }

    #[test]
    fn from_jobs_sorts_by_arrival() {
        let j1 = Job::builder(JobId(0), ModelKind::AlexNet, 1)
            .arrival_s(10.0)
            .build();
        let j2 = Job::builder(JobId(1), ModelKind::AlexNet, 1)
            .arrival_s(5.0)
            .build();
        let t = Trace::from_jobs(vec![j1, j2]);
        assert_eq!(t.jobs()[0].id, JobId(1));
        assert_eq!(t.total_gpu_demand(), 2);
    }

    #[test]
    fn samplers_produce_reasonable_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let exp_mean: f64 = (0..n).map(|_| sample_exp(&mut rng, 3.0)).sum::<f64>() / n as f64;
        assert!((exp_mean - 3.0).abs() < 0.1, "exp mean {exp_mean}");
        let norm_mean: f64 =
            (0..n).map(|_| sample_normal(&mut rng, 1.0, 2.0)).sum::<f64>() / n as f64;
        assert!((norm_mean - 1.0).abs() < 0.1, "normal mean {norm_mean}");
        let pois_mean: f64 =
            (0..n).map(|_| sample_poisson(&mut rng, 6.0) as f64).sum::<f64>() / n as f64;
        assert!((pois_mean - 6.0).abs() < 0.1, "poisson mean {pois_mean}");
    }
}
