//! The distributed-training job abstraction.

use crate::ModelKind;
use netpack_topology::JobId;

/// A distributed-training job as submitted to the NetPack job manager
/// (Fig. 4 step 1): a model, a dataset (implied by the model's calibration),
/// and a GPU requirement.
///
/// Each GPU hosts one worker (the paper's testbed runs one worker per GPU),
/// so `gpus` doubles as the worker count `n^(j)` of the formulation in
/// Table 2. `value` is the user-specified importance consumed by NetPack's
/// knapsack job-subset selection (Algorithm 2 step 1); the job manager ages
/// it to prevent starvation.
///
/// # Example
///
/// ```
/// use netpack_workload::{Job, ModelKind};
/// use netpack_topology::JobId;
///
/// let job = Job::builder(JobId(1), ModelKind::Vgg16, 8)
///     .iterations(500)
///     .arrival_s(12.0)
///     .value(2.0)
///     .build();
/// assert_eq!(job.gpus, 8);
/// assert!(job.serial_time_s() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Unique identifier.
    pub id: JobId,
    /// The DNN model being trained.
    pub model: ModelKind,
    /// GPU requirement (= worker count, `g^(j)` in Table 2).
    pub gpus: usize,
    /// Total training iterations.
    pub iterations: u64,
    /// Submission time in seconds from trace start.
    pub arrival_s: f64,
    /// User-specified importance for the knapsack subset selection.
    pub value: f64,
}

impl Job {
    /// Start building a job with the three mandatory fields.
    pub fn builder(id: JobId, model: ModelKind, gpus: usize) -> JobBuilder {
        JobBuilder {
            job: Job {
                id,
                model,
                gpus,
                iterations: 100,
                arrival_s: 0.0,
                value: 1.0,
            },
        }
    }

    /// Gradient volume each worker streams per iteration, in gigabits
    /// (`d^(j)` in Table 2).
    pub fn gradient_gbits(&self) -> f64 {
        self.model.gradient_gbits()
    }

    /// Per-iteration computation time on each worker, in seconds.
    ///
    /// Data parallelism splits the global batch across workers, so the
    /// per-worker compute time is the single-GPU time regardless of scale;
    /// what scaling buys is fewer samples per worker per iteration, i.e.
    /// wall-clock progress `gpus`-times faster when communication is free.
    pub fn compute_time_s(&self) -> f64 {
        self.model.compute_time_s()
    }

    /// Wall-clock time this job would need on a single GPU with no
    /// communication at all: the numerator of the paper's Distribution
    /// Efficiency metric (§6.1).
    pub fn serial_time_s(&self) -> f64 {
        self.iterations as f64 * self.gpus as f64 * self.compute_time_s()
    }

    /// Ideal (communication-free) distributed runtime in seconds.
    pub fn ideal_time_s(&self) -> f64 {
        self.iterations as f64 * self.compute_time_s()
    }

    /// Whether this job generates AllReduce network traffic: single-worker
    /// jobs train locally and need no PS (Table 3, constraint 6).
    pub fn is_distributed(&self) -> bool {
        self.gpus > 1
    }
}

/// Builder for [`Job`] (guideline C-BUILDER).
#[derive(Debug, Clone)]
pub struct JobBuilder {
    job: Job,
}

impl JobBuilder {
    /// Set the total number of training iterations (default 100).
    pub fn iterations(mut self, iterations: u64) -> Self {
        self.job.iterations = iterations;
        self
    }

    /// Set the arrival time in seconds from trace start (default 0).
    pub fn arrival_s(mut self, arrival_s: f64) -> Self {
        self.job.arrival_s = arrival_s;
        self
    }

    /// Set the user-specified importance (default 1.0).
    pub fn value(mut self, value: f64) -> Self {
        self.job.value = value;
        self
    }

    /// Finish building the job.
    ///
    /// # Panics
    ///
    /// Panics if the GPU requirement or iteration count is zero, or if
    /// arrival time or value is negative or non-finite.
    pub fn build(self) -> Job {
        assert!(self.job.gpus >= 1, "job needs at least one GPU");
        assert!(self.job.iterations >= 1, "job needs at least one iteration");
        assert!(
            self.job.arrival_s.is_finite() && self.job.arrival_s >= 0.0,
            "arrival time must be non-negative and finite"
        );
        assert!(
            self.job.value.is_finite() && self.job.value > 0.0,
            "job value must be positive and finite"
        );
        self.job
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(gpus: usize) -> Job {
        Job::builder(JobId(1), ModelKind::ResNet50, gpus)
            .iterations(10)
            .build()
    }

    #[test]
    fn serial_time_scales_with_gpus_and_iterations() {
        let j = job(4);
        let expected = 10.0 * 4.0 * ModelKind::ResNet50.compute_time_s();
        assert!((j.serial_time_s() - expected).abs() < 1e-12);
        assert!((j.ideal_time_s() - expected / 4.0).abs() < 1e-12);
    }

    #[test]
    fn single_gpu_jobs_are_not_distributed() {
        assert!(!job(1).is_distributed());
        assert!(job(2).is_distributed());
    }

    #[test]
    fn builder_defaults_are_sane() {
        let j = Job::builder(JobId(9), ModelKind::AlexNet, 2).build();
        assert_eq!(j.iterations, 100);
        assert_eq!(j.arrival_s, 0.0);
        assert_eq!(j.value, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpu_jobs_are_rejected() {
        let _ = Job::builder(JobId(1), ModelKind::AlexNet, 0).build();
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iteration_jobs_are_rejected() {
        let _ = Job::builder(JobId(1), ModelKind::AlexNet, 1)
            .iterations(0)
            .build();
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_arrival_is_rejected() {
        let _ = Job::builder(JobId(1), ModelKind::AlexNet, 1)
            .arrival_s(-1.0)
            .build();
    }

    #[test]
    fn gradient_matches_model() {
        let j = job(2);
        assert_eq!(j.gradient_gbits(), ModelKind::ResNet50.gradient_gbits());
    }
}
