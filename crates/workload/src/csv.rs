//! CSV import/export for job traces.
//!
//! The paper replays production logs; users with their own cluster logs
//! can bring them as CSV with the header
//! `id,model,gpus,iterations,arrival_s,value` and replay them against any
//! placer. Export is the exact inverse, so round-tripping is lossless up
//! to float formatting.

use crate::{Job, ModelKind, Trace};
use netpack_topology::JobId;
use std::error::Error;
use std::fmt;

/// The column header written and expected by the CSV codec.
pub const TRACE_CSV_HEADER: &str = "id,model,gpus,iterations,arrival_s,value";

/// Errors raised when parsing a trace CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseTraceError {
    /// The first line did not match [`TRACE_CSV_HEADER`].
    BadHeader(String),
    /// A data row had the wrong number of columns.
    BadColumnCount {
        /// 1-based line number.
        line: usize,
        /// Columns found.
        found: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Column name.
        column: &'static str,
        /// Offending text.
        value: String,
    },
    /// Two rows share a job id.
    DuplicateId(u64),
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::BadHeader(h) => {
                write!(f, "expected header '{TRACE_CSV_HEADER}', got '{h}'")
            }
            ParseTraceError::BadColumnCount { line, found } => {
                write!(f, "line {line}: expected 6 columns, found {found}")
            }
            ParseTraceError::BadField {
                line,
                column,
                value,
            } => write!(f, "line {line}: cannot parse {column} from '{value}'"),
            ParseTraceError::DuplicateId(id) => write!(f, "duplicate job id {id}"),
        }
    }
}

impl Error for ParseTraceError {}

impl Trace {
    /// Render this trace as CSV (header + one row per job).
    ///
    /// # Example
    ///
    /// ```
    /// use netpack_workload::{TraceKind, TraceSpec, Trace};
    /// let trace = TraceSpec::new(TraceKind::Real, 5).seed(3).generate();
    /// let csv = trace.to_csv_string();
    /// let back = Trace::from_csv_str(&csv)?;
    /// assert_eq!(trace, back);
    /// # Ok::<(), netpack_workload::ParseTraceError>(())
    /// ```
    pub fn to_csv_string(&self) -> String {
        let mut out = String::from(TRACE_CSV_HEADER);
        out.push('\n');
        for j in self.jobs() {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                j.id.0, j.model, j.gpus, j.iterations, j.arrival_s, j.value
            ));
        }
        out
    }

    /// Parse a trace from CSV text (jobs are re-sorted by arrival time).
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] on a malformed header, row, or field,
    /// or on duplicate job ids. Model names are matched case-insensitively
    /// against the six-model pool.
    pub fn from_csv_str(text: &str) -> Result<Trace, ParseTraceError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| ParseTraceError::BadHeader(String::new()))?;
        if header.trim() != TRACE_CSV_HEADER {
            return Err(ParseTraceError::BadHeader(header.trim().to_string()));
        }
        let mut jobs = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (i, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let lineno = i + 1;
            let cols: Vec<&str> = line.split(',').collect();
            if cols.len() != 6 {
                return Err(ParseTraceError::BadColumnCount {
                    line: lineno,
                    found: cols.len(),
                });
            }
            let field = |column: &'static str, value: &str| ParseTraceError::BadField {
                line: lineno,
                column,
                value: value.to_string(),
            };
            let id: u64 = cols[0].parse().map_err(|_| field("id", cols[0]))?;
            if !seen.insert(id) {
                return Err(ParseTraceError::DuplicateId(id));
            }
            let model = ModelKind::ALL
                .into_iter()
                .find(|m| m.name() == cols[1].to_ascii_lowercase())
                .ok_or_else(|| field("model", cols[1]))?;
            let gpus: usize = cols[2].parse().map_err(|_| field("gpus", cols[2]))?;
            let iterations: u64 =
                cols[3].parse().map_err(|_| field("iterations", cols[3]))?;
            let arrival_s: f64 =
                cols[4].parse().map_err(|_| field("arrival_s", cols[4]))?;
            let value: f64 = cols[5].parse().map_err(|_| field("value", cols[5]))?;
            if gpus == 0
                || iterations == 0
                || !arrival_s.is_finite()
                || arrival_s < 0.0
                || !value.is_finite()
                || value <= 0.0
            {
                return Err(field("row", line));
            }
            jobs.push(
                Job::builder(JobId(id), model, gpus)
                    .iterations(iterations)
                    .arrival_s(arrival_s)
                    .value(value)
                    .build(),
            );
        }
        Ok(Trace::from_jobs(jobs))
    }

    /// Write the CSV rendering to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv_string())
    }

    /// Read a trace from a CSV file.
    ///
    /// # Errors
    ///
    /// Returns the I/O error or the parse error, boxed.
    pub fn read_csv(path: impl AsRef<std::path::Path>) -> Result<Trace, Box<dyn Error>> {
        let text = std::fs::read_to_string(path)?;
        Ok(Trace::from_csv_str(&text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceKind, TraceSpec};

    #[test]
    fn round_trip_preserves_every_job() {
        let trace = TraceSpec::new(TraceKind::Poisson, 40).seed(9).generate();
        let back = Trace::from_csv_str(&trace.to_csv_string()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("netpack-trace-csv");
        let path = dir.join("t.csv");
        let trace = TraceSpec::new(TraceKind::Real, 10).seed(2).generate();
        trace.write_csv(&path).unwrap();
        let back = Trace::read_csv(&path).unwrap();
        assert_eq!(trace, back);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn header_is_validated() {
        let err = Trace::from_csv_str("nope\n1,vgg16,2,10,0,1\n").unwrap_err();
        assert!(matches!(err, ParseTraceError::BadHeader(_)));
        assert!(err.to_string().contains("expected header"));
    }

    #[test]
    fn column_count_is_validated() {
        let csv = format!("{TRACE_CSV_HEADER}\n1,vgg16,2\n");
        let err = Trace::from_csv_str(&csv).unwrap_err();
        assert_eq!(
            err,
            ParseTraceError::BadColumnCount { line: 2, found: 3 }
        );
    }

    #[test]
    fn fields_are_validated() {
        for bad in [
            "x,vgg16,2,10,0,1",     // id
            "1,nosuchmodel,2,10,0,1", // model
            "1,vgg16,zero,10,0,1",  // gpus
            "1,vgg16,2,ten,0,1",    // iterations
            "1,vgg16,2,10,minus,1", // arrival
            "1,vgg16,2,10,0,zero",  // value
            "1,vgg16,0,10,0,1",     // zero gpus
            "1,vgg16,2,10,-5,1",    // negative arrival
        ] {
            let csv = format!("{TRACE_CSV_HEADER}\n{bad}\n");
            assert!(
                Trace::from_csv_str(&csv).is_err(),
                "should reject row: {bad}"
            );
        }
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let csv = format!("{TRACE_CSV_HEADER}\n1,vgg16,2,10,0,1\n1,alexnet,1,5,2,1\n");
        assert_eq!(
            Trace::from_csv_str(&csv).unwrap_err(),
            ParseTraceError::DuplicateId(1)
        );
    }

    #[test]
    fn blank_lines_and_case_insensitive_models_are_accepted() {
        let csv = format!("{TRACE_CSV_HEADER}\n\n1,VGG16,2,10,0.5,1\n\n");
        let trace = Trace::from_csv_str(&csv).unwrap();
        assert_eq!(trace.jobs().len(), 1);
        assert_eq!(trace.jobs()[0].model, ModelKind::Vgg16);
    }

    #[test]
    fn rows_are_sorted_by_arrival_after_parse() {
        let csv = format!(
            "{TRACE_CSV_HEADER}\n1,vgg16,2,10,9.0,1\n2,alexnet,1,5,1.0,1\n"
        );
        let trace = Trace::from_csv_str(&csv).unwrap();
        assert_eq!(trace.jobs()[0].id, JobId(2));
    }
}
