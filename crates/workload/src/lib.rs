#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Distributed-training workload model and trace synthesis for NetPack.
//!
//! The paper evaluates NetPack with six DNN models (VGG11/16/19, AlexNet,
//! ResNet50/101) trained on ImageNet, driven by three job traces (§6.1):
//!
//! * **Real** — job durations and GPU demands drawn from the Microsoft
//!   Philly production logs. We do not ship the proprietary logs; instead
//!   [`TraceKind::Real`] synthesizes a trace matching the published Philly
//!   characteristics (heavy-tailed durations, power-of-two GPU demands
//!   dominated by small jobs, bursty arrivals). The paper itself only uses
//!   the logs' (start, end, #GPUs) triples and assigns model types randomly
//!   from the same pool, so this reproduces all the information the
//!   pipeline consumes.
//! * **Poisson** — GPU demands follow a Poisson distribution.
//! * **Normal** — GPU demands follow a normal distribution.
//!
//! # Example
//!
//! ```
//! use netpack_workload::{TraceKind, TraceSpec};
//!
//! let trace = TraceSpec::new(TraceKind::Real, 100).seed(7).generate();
//! assert_eq!(trace.jobs().len(), 100);
//! assert!(trace.jobs().iter().all(|j| j.gpus >= 1));
//! ```

mod csv;
mod job;
mod model;
mod trace;

pub use csv::{ParseTraceError, TRACE_CSV_HEADER};
pub use job::{Job, JobBuilder};
pub use model::ModelKind;
pub use trace::{ArrivalProcess, Trace, TraceKind, TraceSpec};
