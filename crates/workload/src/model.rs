//! The six-model DNN pool used by the paper's evaluation (§6.1).

use std::fmt;

/// One of the six deep-learning models in the paper's workload pool.
///
/// The pool spans communication-intensive models (the VGG family, whose
/// dense classifier layers dominate gradient volume) and computation-
/// intensive ones (the ResNet family). Gradient sizes follow the models'
/// published fp32 parameter counts; per-iteration compute times are
/// calibrated to an RTX 2080Ti at batch size 32 per GPU, matching the
/// paper's testbed hardware class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelKind {
    /// VGG-11: 132.9 M parameters.
    Vgg11,
    /// VGG-16: 138.4 M parameters (the paper's communication-intensive pick).
    Vgg16,
    /// VGG-19: 143.7 M parameters.
    Vgg19,
    /// AlexNet: 61.1 M parameters, very fast per iteration.
    AlexNet,
    /// ResNet-50: 25.6 M parameters (the paper's computation-intensive pick).
    ResNet50,
    /// ResNet-101: 44.5 M parameters.
    ResNet101,
}

impl ModelKind {
    /// All six models, in a stable order.
    pub const ALL: [ModelKind; 6] = [
        ModelKind::Vgg11,
        ModelKind::Vgg16,
        ModelKind::Vgg19,
        ModelKind::AlexNet,
        ModelKind::ResNet50,
        ModelKind::ResNet101,
    ];

    /// Number of fp32 parameters, in millions.
    pub fn params_millions(self) -> f64 {
        match self {
            ModelKind::Vgg11 => 132.9,
            ModelKind::Vgg16 => 138.4,
            ModelKind::Vgg19 => 143.7,
            ModelKind::AlexNet => 61.1,
            ModelKind::ResNet50 => 25.6,
            ModelKind::ResNet101 => 44.5,
        }
    }

    /// Size of one full gradient exchange in gigabits (fp32).
    ///
    /// This is the `d^(j)` ("model size") of the paper's MIP formulation
    /// (Table 2): every worker sends this much per iteration.
    pub fn gradient_gbits(self) -> f64 {
        // params * 4 bytes * 8 bits / 1e9
        self.params_millions() * 1e6 * 32.0 / 1e9
    }

    /// Per-GPU computation time of one iteration, in seconds, at batch
    /// size 32 on an RTX 2080Ti-class GPU.
    pub fn compute_time_s(self) -> f64 {
        match self {
            ModelKind::Vgg11 => 0.175,
            ModelKind::Vgg16 => 0.255,
            ModelKind::Vgg19 => 0.310,
            ModelKind::AlexNet => 0.032,
            ModelKind::ResNet50 => 0.205,
            ModelKind::ResNet101 => 0.360,
        }
    }

    /// Communication-to-computation pressure: gradient gigabits per second
    /// of compute. Higher values benefit more from INA.
    pub fn comm_intensity(self) -> f64 {
        self.gradient_gbits() / self.compute_time_s()
    }

    /// Short lowercase name (matches the figures' x-axis labels).
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Vgg11 => "vgg11",
            ModelKind::Vgg16 => "vgg16",
            ModelKind::Vgg19 => "vgg19",
            ModelKind::AlexNet => "alexnet",
            ModelKind::ResNet50 => "resnet50",
            ModelKind::ResNet101 => "resnet101",
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_size_matches_parameter_count() {
        // VGG16: 138.4M params * 4B = 553.6 MB = 4.4288 Gbit.
        let g = ModelKind::Vgg16.gradient_gbits();
        assert!((g - 4.4288).abs() < 1e-9, "got {g}");
    }

    #[test]
    fn vgg16_is_more_comm_intensive_than_resnet50() {
        assert!(ModelKind::Vgg16.comm_intensity() > ModelKind::ResNet50.comm_intensity());
    }

    #[test]
    fn all_models_have_positive_calibration() {
        for m in ModelKind::ALL {
            assert!(m.gradient_gbits() > 0.0);
            assert!(m.compute_time_s() > 0.0);
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = ModelKind::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ModelKind::ALL.len());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(ModelKind::AlexNet.to_string(), "alexnet");
    }
}
