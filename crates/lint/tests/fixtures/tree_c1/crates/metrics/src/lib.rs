// C1 positive fixture: RefCell state and an outer &mut borrow both
// crossing into a parallel closure.
use std::cell::RefCell;

pub fn sweep(xs: &[u64]) -> u64 {
    let shared = RefCell::new(0u64);
    let mut total = 0u64;
    parallel_sweep(xs, |x| {
        *shared.borrow_mut() += x;
        bump(&mut total);
    });
    total
}
