// N1 positive fixture: float accumulation inside a parallel closure and
// inside a batched-round function, neither routed through add_cycle.
pub fn sweep(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    parallel_sweep(xs, |x| {
        acc += x;
        xs.iter().map(|v| *v).sum::<f64>()
    });
    acc
}

fn apply_batch(goodput: &mut f64, deltas: &[f64]) {
    for d in deltas {
        *goodput += *d;
    }
}
