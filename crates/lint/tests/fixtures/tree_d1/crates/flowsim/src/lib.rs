// D1 positive fixture: hash-ordered iteration in a sim crate.
use std::collections::{HashMap, HashSet};

pub fn order_sensitive(map: HashMap<u64, f64>, set: HashSet<u64>) -> f64 {
    let mut total = 0.0;
    for (_k, v) in map.iter() {
        total += v;
    }
    for x in &set {
        total += *x as f64;
    }
    let keys: Vec<u64> = map.keys().copied().collect();
    total + keys.len() as f64
}
