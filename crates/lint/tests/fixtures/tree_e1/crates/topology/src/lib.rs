// E1 positive fixture: panics in library-crate non-test code.
pub fn brittle(v: &[u32]) -> u32 {
    let first = v.first().unwrap();
    let second = v.get(1).expect("second element");
    if *first > *second {
        panic!("unsorted input");
    }
    *first
}
