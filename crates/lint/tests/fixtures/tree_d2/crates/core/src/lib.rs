// D2 positive fixture: wall-clock reads outside metrics::perf.
pub fn stamp() -> std::time::Duration {
    let t0 = std::time::Instant::now();
    t0.elapsed()
}

pub fn wall_secs() -> u64 {
    match std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
