// D1 strings: mentions of iteration inside literals and comments must
// not fire even though `map` is genuinely hash-bound.
use std::collections::HashMap;

pub fn docs(map: &HashMap<u64, u64>) -> String {
    // map.iter() and map.keys() in a comment are not code.
    let msg = format!("try map.iter() or map.keys(), len={}", map.len());
    let raw = r#"for k in map.drain() { map.values() }"#;
    format!("{msg} {raw}")
}
