// N1 suppressed: a justified in-closure float accumulation.
pub fn chunked(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    parallel_sweep(xs, |x| {
        acc += x; // netpack-lint: allow(N1): per-chunk partials merged in fixed chunk order downstream
    });
    acc
}
