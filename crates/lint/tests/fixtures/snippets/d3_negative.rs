// D3 negative: explicit seeds everywhere.
pub fn seeded_stream(seed: u64) -> u64 {
    // xorshift* step, the repo's idiom for cheap deterministic streams.
    let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
    s ^= s >> 30;
    s = s.wrapping_mul(0xBF58476D1CE4E5B9);
    s ^ (s >> 31)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_entropy() {
        let _rng = rand::rngs::SmallRng::from_entropy();
        let _x: u64 = rand::random();
    }
}
