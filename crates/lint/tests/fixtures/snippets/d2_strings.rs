// D2 strings: clock names inside literals and comments are not reads.
pub fn describe() -> String {
    // Instant::now() belongs in metrics::perf only.
    let a = "Instant::now and SystemTime belong in metrics::perf";
    let b = r#"let t = Instant::now(); SystemTime::now()"#;
    format!("{a} {b}")
}
