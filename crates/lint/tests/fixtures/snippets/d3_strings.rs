// D3 strings: RNG names inside literals and comments are not draws.
pub fn describe() -> String {
    // thread_rng and from_entropy are banned outside tests.
    let a = "never call thread_rng or from_entropy in sim code";
    let b = r#"let x: u64 = rand::random();"#;
    format!("{a} {b}")
}
