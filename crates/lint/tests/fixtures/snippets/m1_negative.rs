// M1 negative: reads of registered variables are the sanctioned pattern,
// and prose mentions of the NETPACK_ prefix in comments never count.
pub fn quick() -> bool {
    std::env::var("NETPACK_QUICK").is_ok()
}
