// C2 suppressed: a Relaxed site carrying its per-site proof.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn tick(total: &AtomicU64) -> u64 {
    // netpack-lint: allow(C2): monotone counter — only the total matters, never the order
    total.fetch_add(1, Ordering::Relaxed)
}
