// E1 strings: panic vocabulary inside literals and comments is fine.
pub fn describe() -> String {
    // .unwrap() and panic!() in comments are not calls.
    let a = "never .unwrap() or .expect(..) or panic!(..) in library code";
    let b = r#"v.first().unwrap(); panic!("boom")"#;
    format!("{a} {b}")
}
