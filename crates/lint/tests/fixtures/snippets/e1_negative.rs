// E1 negative: typed errors and infallible alternatives.
pub fn careful(v: &[u32]) -> Result<u32, String> {
    let first = v.first().ok_or("empty input")?;
    let second = v.get(1).copied().unwrap_or(0);
    Ok(first.saturating_add(second))
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v = vec![1u32, 2];
        assert_eq!(v.first().unwrap(), &1);
        let _second = v.get(1).expect("second");
    }
}
