// D1 negative: keyed lookup on hash maps and iteration over BTreeMap
// are both allowed.
use std::collections::{BTreeMap, HashMap};

pub fn keyed_lookup(map: &HashMap<u64, f64>, sorted: &BTreeMap<u64, f64>) -> f64 {
    let mut total = map.get(&3).copied().unwrap_or(0.0);
    for (_k, v) in sorted.iter() {
        total += v;
    }
    if map.contains_key(&7) {
        total += 1.0;
    }
    total
}
