// D3 suppressed: an acknowledged entropy draw.
pub fn session_nonce() -> u64 {
    // netpack-lint: allow(D3): nonce only names an output file, never enters simulation
    let nonce: u64 = rand::random();
    nonce
}
