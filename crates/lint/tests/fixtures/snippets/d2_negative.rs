// D2 negative: timing through the sanctioned Stopwatch API, plus a test
// region where raw clock reads are allowed.
use netpack_metrics::Stopwatch;

pub fn timed_phase() -> f64 {
    let watch = Stopwatch::start();
    watch.elapsed_s()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_read_the_clock() {
        let _t0 = std::time::Instant::now();
        let _w = std::time::SystemTime::now();
    }
}
