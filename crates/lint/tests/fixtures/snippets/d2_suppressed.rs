// D2 suppressed: a justified wall-clock read.
pub fn logged() -> f64 {
    let t = std::time::Instant::now(); // netpack-lint: allow(D2): report-only timestamp, never enters sim state
    t.elapsed().as_secs_f64()
}
