// E1 suppressed: an expect whose invariant is proven at the call site.
pub fn head(v: &[u32]) -> u32 {
    assert!(!v.is_empty(), "validated by the caller contract");
    *v.first().expect("non-empty checked above") // netpack-lint: allow(E1): emptiness asserted on the previous line
}
