// N1 negative: exact accumulation via add_cycle, integer accumulation,
// and float folds outside any parallel region.
pub fn exact(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    parallel_sweep(xs, |x| {
        acc = add_cycle(acc, *x, 4);
        let mut count = 0usize;
        count += 1;
        count
    });
    // Outside the parallel region: sequential float folds are fine.
    let mut total = 0.0;
    for x in xs {
        total += x;
    }
    acc + total
}
