// D1 suppressed: iteration acknowledged and justified with a pragma.
use std::collections::HashMap;

pub fn sorted_keys(map: &HashMap<u64, u64>) -> Vec<u64> {
    let mut ids: Vec<u64> = Vec::new();
    // netpack-lint: allow(D1): keys are sorted immediately below
    for k in map.keys() {
        ids.push(*k);
    }
    ids.sort_unstable();
    ids
}
