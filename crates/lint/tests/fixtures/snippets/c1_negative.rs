// C1 negative: per-cell state declared *inside* the closure is the
// sanctioned pattern — nothing crosses the region boundary.
use std::cell::RefCell;

pub fn sweep(xs: &[u64]) -> u64 {
    parallel_sweep(xs, |x| {
        let local = RefCell::new(0u64);
        *local.borrow_mut() += x;
        let mut acc = 0u64;
        bump(&mut acc);
        local.into_inner() + acc
    })
}
