// N1 strings: accumulation spelled inside literals within a real
// parallel region is not accumulation.
pub fn logs(xs: &[f64]) -> Vec<String> {
    parallel_sweep(xs, |x| {
        // acc += x and .sum::<f64>() in comments are not code.
        format!("would be acc += {x} then .sum::<f64>()")
    })
}
