// M1 positive fixture: an env read whose name is not in the mode-gate
// registry.
pub fn mode() -> bool {
    std::env::var("NETPACK_UNREGISTERED_MODE").is_ok()
}
