// D3 positive fixture: unseeded randomness in non-test code.
pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    let x: u64 = rand::random();
    let _fresh = rand::rngs::SmallRng::from_entropy();
    let _ = &mut rng;
    x
}
