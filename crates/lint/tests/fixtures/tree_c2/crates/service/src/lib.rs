// C2 positive fixture: a static mut global and an unjustified
// Ordering::Relaxed with no per-site proof pragma.
use std::sync::atomic::{AtomicU64, Ordering};

static mut COUNTER: u64 = 0;

pub fn tick(total: &AtomicU64) -> u64 {
    total.fetch_add(1, Ordering::Relaxed)
}
