// Clean fixture: deterministic containers, no clocks, no panics.
use std::collections::BTreeMap;

pub fn deterministic(map: &BTreeMap<u64, f64>) -> f64 {
    let mut total = 0.0;
    for (_k, v) in map.iter() {
        total += v;
    }
    total
}

#[cfg(test)]
mod tests {
    // Test code may do anything: hash iteration, clocks, unwraps.
    use std::collections::HashMap;

    #[test]
    fn scratch_map_is_fine() {
        let m: HashMap<u32, u32> = HashMap::new();
        for (_k, _v) in m.iter() {}
        let _t = std::time::Instant::now();
        assert!(m.is_empty());
    }
}
