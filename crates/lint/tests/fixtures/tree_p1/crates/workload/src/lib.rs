// P1 positive fixture: a well-formed pragma with nothing left to
// suppress — the hazard it excused was deleted.
pub fn hello() -> u32 {
    // netpack-lint: allow(D2): the Instant::now below was removed long ago
    41 + 1
}
