//! Fixture tests for the lint engine: every rule gets a positive tree
//! (seeded violations that must fail), plus negative / suppressed /
//! string-and-comment snippets that must stay quiet. The positive trees
//! are also driven through the real `netpack-lint` binary to pin the
//! exit-code contract `scripts/check.sh` relies on.

use netpack_lint::{analyze_source, Finding};
use std::path::PathBuf;
use std::process::Command;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn findings(virtual_path: &str, source: &str) -> Vec<Finding> {
    analyze_source(virtual_path, source).findings
}

fn rule_lines(fs: &[Finding], rule: &str) -> Vec<usize> {
    fs.iter().filter(|f| f.rule == rule).map(|f| f.line).collect()
}

// ---------------------------------------------------------------- positives

#[test]
fn d1_positive_flags_every_iteration_form() {
    let src = include_str!("fixtures/tree_d1/crates/flowsim/src/lib.rs");
    let fs = findings("crates/flowsim/src/lib.rs", src);
    assert_eq!(rule_lines(&fs, "D1"), vec![6, 9, 12], "{fs:#?}");
    assert_eq!(fs.len(), 3, "no other rule should fire: {fs:#?}");
}

#[test]
fn d1_ignores_non_target_crates() {
    let src = include_str!("fixtures/tree_d1/crates/flowsim/src/lib.rs");
    let fs = findings("crates/cli/src/lib.rs", src);
    assert!(rule_lines(&fs, "D1").is_empty(), "{fs:#?}");
}

#[test]
fn d2_positive_flags_instant_and_system_time() {
    let src = include_str!("fixtures/tree_d2/crates/core/src/lib.rs");
    let fs = findings("crates/core/src/lib.rs", src);
    assert_eq!(rule_lines(&fs, "D2"), vec![3, 8], "{fs:#?}");
}

#[test]
fn d2_exempts_metrics_perf() {
    let src = include_str!("fixtures/tree_d2/crates/core/src/lib.rs");
    let fs = findings("crates/metrics/src/perf.rs", src);
    assert!(rule_lines(&fs, "D2").is_empty(), "{fs:#?}");
}

#[test]
fn d3_positive_flags_all_three_entropy_sources() {
    let src = include_str!("fixtures/tree_d3/crates/workload/src/lib.rs");
    let fs = findings("crates/workload/src/lib.rs", src);
    assert_eq!(rule_lines(&fs, "D3"), vec![3, 4, 5], "{fs:#?}");
}

#[test]
fn n1_positive_flags_closure_and_batch_accumulation() {
    let src = include_str!("fixtures/tree_n1/crates/packetsim/src/lib.rs");
    let fs = findings("crates/packetsim/src/lib.rs", src);
    assert_eq!(rule_lines(&fs, "N1"), vec![6, 7, 14], "{fs:#?}");
}

#[test]
fn e1_positive_flags_unwrap_expect_panic() {
    let src = include_str!("fixtures/tree_e1/crates/topology/src/lib.rs");
    let fs = findings("crates/topology/src/lib.rs", src);
    assert_eq!(rule_lines(&fs, "E1"), vec![3, 4, 6], "{fs:#?}");
}

#[test]
fn e1_ignores_driver_crates() {
    let src = include_str!("fixtures/tree_e1/crates/topology/src/lib.rs");
    let fs = findings("crates/bench/src/lib.rs", src);
    assert!(rule_lines(&fs, "E1").is_empty(), "{fs:#?}");
}

#[test]
fn c1_positive_flags_refcell_and_outer_mut_borrow() {
    let src = include_str!("fixtures/tree_c1/crates/metrics/src/lib.rs");
    let fs = findings("crates/metrics/src/lib.rs", src);
    assert_eq!(rule_lines(&fs, "C1"), vec![9, 10], "{fs:#?}");
    assert_eq!(fs.len(), 2, "no other rule should fire: {fs:#?}");
}

#[test]
fn findings_are_attributed_to_their_enclosing_fn() {
    let src = include_str!("fixtures/tree_c1/crates/metrics/src/lib.rs");
    let fs = findings("crates/metrics/src/lib.rs", src);
    assert!(
        fs.iter().all(|f| f.func.as_deref() == Some("sweep")),
        "scope attribution must name the fn: {fs:#?}"
    );
}

#[test]
fn c2_positive_flags_static_mut_and_relaxed() {
    let src = include_str!("fixtures/tree_c2/crates/service/src/lib.rs");
    let fs = findings("crates/service/src/lib.rs", src);
    assert_eq!(rule_lines(&fs, "C2"), vec![5, 8], "{fs:#?}");
}

#[test]
fn m1_positive_flags_unregistered_read() {
    let src = include_str!("fixtures/tree_m1/crates/core/src/lib.rs");
    let fs = findings("crates/core/src/lib.rs", src);
    assert_eq!(rule_lines(&fs, "M1"), vec![4], "{fs:#?}");
}

#[test]
fn m1_exempts_the_lint_crate_itself() {
    let src = include_str!("fixtures/tree_m1/crates/core/src/lib.rs");
    let fs = findings("crates/lint/src/registry.rs", src);
    assert!(rule_lines(&fs, "M1").is_empty(), "{fs:#?}");
}

#[test]
fn p1_positive_flags_stale_pragma() {
    let src = include_str!("fixtures/tree_p1/crates/workload/src/lib.rs");
    let fs = findings("crates/workload/src/lib.rs", src);
    assert_eq!(rule_lines(&fs, "P1"), vec![4], "{fs:#?}");
}

#[test]
fn p1_cannot_be_suppressed() {
    // An allow(P1) pragma suppresses nothing, so it is itself stale.
    let src = "pub fn f() -> u32 {\n    // netpack-lint: allow(P1): trying to silence the silencer\n    1\n}\n";
    let fs = findings("crates/workload/src/fix.rs", src);
    assert_eq!(rule_lines(&fs, "P1"), vec![2], "{fs:#?}");
}

// ---------------------------------------------------------------- negatives

#[test]
fn negatives_stay_quiet() {
    for (path, src) in [
        (
            "crates/flowsim/src/fix.rs",
            include_str!("fixtures/snippets/d1_negative.rs"),
        ),
        (
            "crates/core/src/fix.rs",
            include_str!("fixtures/snippets/d2_negative.rs"),
        ),
        (
            "crates/workload/src/fix.rs",
            include_str!("fixtures/snippets/d3_negative.rs"),
        ),
        (
            "crates/packetsim/src/fix.rs",
            include_str!("fixtures/snippets/n1_negative.rs"),
        ),
        (
            "crates/topology/src/fix.rs",
            include_str!("fixtures/snippets/e1_negative.rs"),
        ),
        (
            "crates/metrics/src/fix.rs",
            include_str!("fixtures/snippets/c1_negative.rs"),
        ),
        (
            "crates/core/src/fix.rs",
            include_str!("fixtures/snippets/m1_negative.rs"),
        ),
    ] {
        let fs = findings(path, src);
        assert!(fs.is_empty(), "{path} should be clean: {fs:#?}");
    }
}

// ------------------------------------------------------------- suppressions

#[test]
fn pragmas_suppress_with_reason() {
    for (path, src) in [
        (
            "crates/flowsim/src/fix.rs",
            include_str!("fixtures/snippets/d1_suppressed.rs"),
        ),
        (
            "crates/core/src/fix.rs",
            include_str!("fixtures/snippets/d2_suppressed.rs"),
        ),
        (
            "crates/workload/src/fix.rs",
            include_str!("fixtures/snippets/d3_suppressed.rs"),
        ),
        (
            "crates/packetsim/src/fix.rs",
            include_str!("fixtures/snippets/n1_suppressed.rs"),
        ),
        (
            "crates/topology/src/fix.rs",
            include_str!("fixtures/snippets/e1_suppressed.rs"),
        ),
        (
            "crates/service/src/fix.rs",
            include_str!("fixtures/snippets/c2_suppressed.rs"),
        ),
    ] {
        let report = analyze_source(path, src);
        assert!(
            report.findings.is_empty(),
            "{path}: pragma should silence the finding: {:#?}",
            report.findings
        );
        assert_eq!(report.suppressed, 1, "{path}: exactly one suppression");
    }
}

#[test]
fn pragma_without_reason_is_its_own_finding() {
    let src = "pub fn f() -> u32 {\n    [1u32].first().copied().unwrap() // netpack-lint: allow(E1)\n}\n";
    let report = analyze_source("crates/topology/src/fix.rs", src);
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&"pragma"), "{:#?}", report.findings);
    assert!(rules.contains(&"E1"), "malformed pragma must not suppress");
}

// ------------------------------------------------- string/comment immunity

#[test]
fn literals_and_comments_never_fire() {
    for (path, src) in [
        (
            "crates/flowsim/src/fix.rs",
            include_str!("fixtures/snippets/d1_strings.rs"),
        ),
        (
            "crates/core/src/fix.rs",
            include_str!("fixtures/snippets/d2_strings.rs"),
        ),
        (
            "crates/workload/src/fix.rs",
            include_str!("fixtures/snippets/d3_strings.rs"),
        ),
        (
            "crates/packetsim/src/fix.rs",
            include_str!("fixtures/snippets/n1_strings.rs"),
        ),
        (
            "crates/topology/src/fix.rs",
            include_str!("fixtures/snippets/e1_strings.rs"),
        ),
    ] {
        let fs = findings(path, src);
        assert!(fs.is_empty(), "{path} literal text fired a rule: {fs:#?}");
    }
}

// ----------------------------------------------------- binary exit contract

fn run_binary_on(tree: &str) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_netpack-lint"))
        .arg("--root")
        .arg(fixture_dir().join(tree))
        .output()
        .expect("spawn netpack-lint");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn binary_exits_nonzero_on_each_seeded_rule() {
    for (tree, rule) in [
        ("tree_d1", "[D1]"),
        ("tree_d2", "[D2]"),
        ("tree_d3", "[D3]"),
        ("tree_n1", "[N1]"),
        ("tree_e1", "[E1]"),
        ("tree_c1", "[C1]"),
        ("tree_c2", "[C2]"),
        ("tree_m1", "[M1]"),
        ("tree_p1", "[P1]"),
    ] {
        let (code, stdout) = run_binary_on(tree);
        assert_eq!(code, Some(1), "{tree} must fail: {stdout}");
        assert!(stdout.contains(rule), "{tree} must report {rule}: {stdout}");
    }
}

#[test]
fn binary_exits_zero_on_clean_tree() {
    let (code, stdout) = run_binary_on("tree_clean");
    assert_eq!(code, Some(0), "clean tree must pass: {stdout}");
    assert!(stdout.contains("clean"), "{stdout}");
}

fn run_binary(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_netpack-lint"))
        .args(args)
        .output()
        .expect("spawn netpack-lint");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn json_format_keeps_the_exit_contract_and_emits_findings() {
    let root = fixture_dir().join("tree_c1");
    let (code, stdout, _) =
        run_binary(&["--root", root.to_str().unwrap(), "--format=json"]);
    assert_eq!(code, Some(1), "seeded tree must still fail in json: {stdout}");
    assert!(stdout.contains("\"rule\": \"C1\""), "{stdout}");
    assert!(stdout.contains("\"func\": \"sweep\""), "{stdout}");
    assert!(stdout.trim_start().starts_with('{') && stdout.trim_end().ends_with('}'));

    let root = fixture_dir().join("tree_clean");
    let (code, stdout, _) =
        run_binary(&["--root", root.to_str().unwrap(), "--format=json"]);
    assert_eq!(code, Some(0), "clean tree must pass in json: {stdout}");
    assert!(stdout.contains("\"findings\": []"), "{stdout}");
}

#[test]
fn explain_prints_rationale_and_rejects_unknown_rules() {
    for rule in netpack_lint::RULES {
        let (code, stdout, _) = run_binary(&["--explain", rule]);
        assert_eq!(code, Some(0), "--explain {rule} must succeed");
        assert!(stdout.contains(rule), "--explain {rule}: {stdout}");
    }
    let (code, stdout, _) = run_binary(&["--explain", "M1"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("NETPACK_SIM"), "M1 lists the registry: {stdout}");
    let (code, _, stderr) = run_binary(&["--explain", "Z9"]);
    assert_eq!(code, Some(2), "unknown rule must exit 2: {stderr}");
}
