//! Workspace self-test: the scope parser must consume every `.rs` file in
//! the repository — including test code and the lint fixtures — without a
//! single brace-balance diagnostic, and every parsed tree must satisfy the
//! span invariants (children nest inside parents, in order). This is the
//! guarantee that lets the C1/P1 rules trust scope spans on real code.

use netpack_lint::{lexer, scopes};
use std::path::{Path, PathBuf};

/// Every `.rs` file under the workspace root, skipping only build output
/// and VCS internals — unlike the lint walk, test trees and fixtures are
/// *included*: the parser must survive all of them.
fn all_rs_files(root: &Path) -> Vec<PathBuf> {
    const SKIP_DIRS: [&str; 3] = ["target", "vendor", ".git"];
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir).expect("read workspace dir");
        for entry in entries {
            let path = entry.expect("dir entry").path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

#[test]
fn scope_parser_consumes_every_workspace_source_file() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let files = all_rs_files(&root);
    assert!(
        files.len() >= 50,
        "workspace walk looks broken: only {} .rs files under {}",
        files.len(),
        root.display()
    );
    let mut fn_scopes = 0usize;
    for path in &files {
        let source = std::fs::read_to_string(path).expect("read source");
        let lines = lexer::scan(&source);
        let tree = scopes::parse(&lines);
        assert!(
            tree.diagnostics.is_empty(),
            "{}: brace imbalance: {:?}",
            path.display(),
            tree.diagnostics
        );
        let problems = tree.span_problems();
        assert!(
            problems.is_empty(),
            "{}: span invariants violated: {:?}",
            path.display(),
            problems
        );
        // Spans must stay within the file.
        let last = lines.len().max(1);
        for scope in tree.iter() {
            assert!(
                scope.start >= 1 && scope.end <= last,
                "{}: scope `{}` out of range {}..{} (file has {last} lines)",
                path.display(),
                scope.name,
                scope.start,
                scope.end
            );
        }
        fn_scopes += tree
            .iter()
            .iter()
            .filter(|s| s.kind == scopes::ScopeKind::Fn)
            .count();
    }
    // A workspace this size has thousands of functions; a parser that
    // silently classified them all as plain blocks would pass the
    // balance checks while breaking attribution.
    assert!(
        fn_scopes >= 500,
        "only {fn_scopes} fn scopes across the workspace — classifier regressed"
    );
}
