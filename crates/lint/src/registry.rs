//! The declared registry of `NETPACK_*` environment variables (rule M1).
//!
//! Every env-gated behavior in this workspace — the two-mode bit-identity
//! gates (`NETPACK_SIM`, `NETPACK_PKT`, …), the knobs, the output
//! redirects — is part of the repo's reproducibility contract: README.md
//! documents it, and for mode gates `scripts/check.sh` (or a named
//! property test) pins the two modes byte-identical. Before this module
//! that contract lived in reviewer memory across 25+ variables. Now it is
//! *declared* here and cross-checked mechanically:
//!
//! * an `env::var("NETPACK_…")` read anywhere in workspace code whose
//!   name is not registered → M1 at the read site;
//! * a registered variable no source file reads → M1 (dead entry);
//! * a registered variable missing from the README env table → M1;
//! * a `NETPACK_*` name in README that is not registered → M1;
//! * a mode gate whose declared enforcement point (`scripts/check.sh`
//!   line or a named test) no longer mentions it → M1.
//!
//! The lint crate itself is exempt from read collection — this file
//! *names* every variable without reading any.

use crate::lexer::Line;
use crate::rules::Finding;
use std::path::Path;

/// How a variable's contract is enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// The variable must appear in `scripts/check.sh` — the two-mode
    /// smoke diff is the enforcement point.
    CheckSh,
    /// The bit-identity contract is pinned by a named test: the file
    /// (workspace-relative) must exist and contain the needle.
    Test {
        /// Workspace-relative test file.
        file: &'static str,
        /// Identifier the file must contain (usually the test fn name).
        needle: &'static str,
    },
    /// A knob or output path with no two-mode contract to enforce.
    None,
}

/// What kind of behavior the variable controls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Selects between implementations that must stay bit-identical.
    ModeGate,
    /// Tunes sizes, budgets, or thread counts.
    Knob,
    /// Redirects or enables an output artifact.
    Output,
}

/// One registered environment variable.
#[derive(Debug, Clone, Copy)]
pub struct EnvVar {
    /// The full variable name.
    pub name: &'static str,
    /// Behavior class.
    pub kind: VarKind,
    /// Where the contract is enforced.
    pub gate: Gate,
    /// One-line purpose, shown by `--explain M1`.
    pub desc: &'static str,
}

/// Every `NETPACK_*` variable the workspace may read. Keep sorted by
/// name; M1 cross-checks this table against the code, README.md, and
/// scripts/check.sh on every lint run.
pub const REGISTRY: &[EnvVar] = &[
    EnvVar {
        name: "NETPACK_BATCH",
        kind: VarKind::ModeGate,
        gate: Gate::CheckSh,
        desc: "intra-batch engine: speculative parallel scoring (spec) or sequential reference (seq)",
    },
    EnvVar {
        name: "NETPACK_BENCH_JSON",
        kind: VarKind::Output,
        gate: Gate::None,
        desc: "append machine-readable benchmark rows to this file",
    },
    EnvVar {
        name: "NETPACK_CSV_DIR",
        kind: VarKind::Output,
        gate: Gate::None,
        desc: "also write each printed table as CSV under this directory",
    },
    EnvVar {
        name: "NETPACK_EXACT",
        kind: VarKind::ModeGate,
        gate: Gate::CheckSh,
        desc: "exact placer search: branch-and-bound (bnb) or exhaustive DFS (scratch)",
    },
    EnvVar {
        name: "NETPACK_PERF",
        kind: VarKind::Output,
        gate: Gate::None,
        desc: "print merged perf counters after a sweep",
    },
    EnvVar {
        name: "NETPACK_PKT",
        kind: VarKind::ModeGate,
        gate: Gate::CheckSh,
        desc: "packet-simulator round loop: fast or scratch",
    },
    EnvVar {
        name: "NETPACK_QUICK",
        kind: VarKind::Knob,
        gate: Gate::None,
        desc: "shrunken smoke runs (smaller clusters/traces)",
    },
    EnvVar {
        name: "NETPACK_REPEATS",
        kind: VarKind::Knob,
        gate: Gate::None,
        desc: "trace seeds per data point",
    },
    EnvVar {
        name: "NETPACK_SCORING",
        kind: VarKind::ModeGate,
        gate: Gate::Test {
            file: "crates/placement/tests/properties.rs",
            needle: "fast_and_sequential_scoring_agree",
        },
        desc: "placement scoring path: fast (memoized incremental) or sequential reference",
    },
    EnvVar {
        name: "NETPACK_SERVICE_BATCH_MAX",
        kind: VarKind::Knob,
        gate: Gate::None,
        desc: "service: adaptive batch-size upper clamp",
    },
    EnvVar {
        name: "NETPACK_SERVICE_BATCH_MIN",
        kind: VarKind::Knob,
        gate: Gate::None,
        desc: "service: adaptive batch-size lower clamp",
    },
    EnvVar {
        name: "NETPACK_SERVICE_CHANNEL_CAP",
        kind: VarKind::Knob,
        gate: Gate::None,
        desc: "service: command-channel depth in threaded mode",
    },
    EnvVar {
        name: "NETPACK_SERVICE_EVENT_LOG",
        kind: VarKind::Output,
        gate: Gate::None,
        desc: "bench_service: write the per-operation event log here",
    },
    EnvVar {
        name: "NETPACK_SERVICE_GATHER_US",
        kind: VarKind::Knob,
        gate: Gate::None,
        desc: "service: threaded drain's command-coalescing window",
    },
    EnvVar {
        name: "NETPACK_SERVICE_JOBS",
        kind: VarKind::Knob,
        gate: Gate::None,
        desc: "bench_service: replay length override",
    },
    EnvVar {
        name: "NETPACK_SERVICE_LATENCY_BUDGET_US",
        kind: VarKind::Knob,
        gate: Gate::None,
        desc: "service: per-batch placement-latency budget",
    },
    EnvVar {
        name: "NETPACK_SERVICE_MODE",
        kind: VarKind::ModeGate,
        gate: Gate::CheckSh,
        desc: "service driver: deterministic byte-reproducible loop vs threaded",
    },
    EnvVar {
        name: "NETPACK_SERVICE_PERF",
        kind: VarKind::Output,
        gate: Gate::None,
        desc: "bench_service: dump merged service perf counters",
    },
    EnvVar {
        name: "NETPACK_SERVICE_QUEUE_CAP",
        kind: VarKind::Knob,
        gate: Gate::None,
        desc: "service: pending-queue backpressure bound",
    },
    EnvVar {
        name: "NETPACK_SIM",
        kind: VarKind::ModeGate,
        gate: Gate::CheckSh,
        desc: "flow-simulator steady-state path: incremental or scratch",
    },
    EnvVar {
        name: "NETPACK_SMOKE",
        kind: VarKind::Knob,
        gate: Gate::None,
        desc: "single tiny cell (the scripts/check.sh gates)",
    },
    EnvVar {
        name: "NETPACK_THREADS",
        kind: VarKind::Knob,
        gate: Gate::None,
        desc: "worker threads for sweeps and the speculative batch engine",
    },
    EnvVar {
        name: "NETPACK_TOPO",
        kind: VarKind::ModeGate,
        gate: Gate::CheckSh,
        desc: "placement topology path: flat indexed SoA or struct reference",
    },
];

/// Look a variable up by exact name.
pub fn find(name: &str) -> Option<&'static EnvVar> {
    REGISTRY.iter().find(|v| v.name == name)
}

/// Extract `NETPACK_*` tokens from a text fragment. A token is a maximal
/// `[A-Z0-9_]+` run starting with `NETPACK_`; runs ending in `_` are
/// prefix mentions (`NETPACK_SERVICE_*` prose), not variable names.
pub fn env_tokens(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0usize;
    let is_tok = |b: u8| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_';
    while i < bytes.len() {
        if !is_tok(bytes[i]) || (i > 0 && is_tok(bytes[i - 1])) {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && is_tok(bytes[i]) {
            i += 1;
        }
        let tok = &text[start..i];
        if tok.starts_with("NETPACK_") && tok.len() > "NETPACK_".len() && !tok.ends_with('_') {
            out.push((start, tok.to_string()));
        }
    }
    out
}

/// `NETPACK_*` variable reads in one file's code literals (non-test
/// lines). Returns `(line_index_0_based, name)` pairs.
pub fn reads_in(lines: &[Line], is_test: &[bool]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if is_test[idx] || line.literal.is_empty() {
            continue;
        }
        for (_, name) in env_tokens(&line.literal) {
            out.push((idx, name));
        }
    }
    out
}

/// Workspace-level cross-checks: registry vs collected reads, README.md,
/// and the declared gates. Only meaningful at the real workspace root —
/// the engine calls this when `README.md` and `scripts/check.sh` both
/// exist under `root`.
pub fn cross_check(root: &Path, reads: &[(String, usize, String)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let m1 = |path: &str, line: usize, message: String| Finding {
        rule: "M1",
        path: path.to_string(),
        line,
        message,
        func: None,
    };

    // Dead registry entries: no non-test code read anywhere.
    for var in REGISTRY {
        if !reads.iter().any(|(_, _, name)| name == var.name) {
            findings.push(m1(
                "crates/lint/src/registry.rs",
                1,
                format!(
                    "registry entry `{}` is dead — no workspace code reads it; delete the entry or the feature it described",
                    var.name
                ),
            ));
        }
    }

    // README coverage, both directions.
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap_or_default();
    let mut readme_names: Vec<(usize, String)> = Vec::new();
    for (n, line) in readme.lines().enumerate() {
        for (_, name) in env_tokens(line) {
            readme_names.push((n + 1, name));
        }
    }
    for var in REGISTRY {
        if !readme_names.iter().any(|(_, name)| name == var.name) {
            findings.push(m1(
                "README.md",
                1,
                format!(
                    "registered variable `{}` is missing from the README environment table",
                    var.name
                ),
            ));
        }
    }
    let mut reported_unknown: Vec<&str> = Vec::new();
    for (line, name) in &readme_names {
        if find(name).is_none() && !reported_unknown.contains(&name.as_str()) {
            reported_unknown.push(name);
            findings.push(m1(
                "README.md",
                *line,
                format!("`{name}` is documented but not in the mode-gate registry — register it or drop the doc"),
            ));
        }
    }

    // Declared gates still hold.
    let check_sh = std::fs::read_to_string(root.join("scripts/check.sh")).unwrap_or_default();
    for var in REGISTRY {
        match var.gate {
            Gate::CheckSh => {
                if !check_sh.contains(var.name) {
                    findings.push(m1(
                        "scripts/check.sh",
                        1,
                        format!(
                            "mode gate `{}` is not exercised by scripts/check.sh — add a two-mode smoke or change its registry gate",
                            var.name
                        ),
                    ));
                }
            }
            Gate::Test { file, needle } => match std::fs::read_to_string(root.join(file)) {
                Ok(text) if text.contains(needle) => {}
                Ok(_) => findings.push(m1(
                    file,
                    1,
                    format!(
                        "gate for `{}` points at `{needle}` in {file}, which no longer contains it",
                        var.name
                    ),
                )),
                Err(_) => findings.push(m1(
                    "crates/lint/src/registry.rs",
                    1,
                    format!("gate for `{}` points at missing file {file}", var.name),
                )),
            },
            Gate::None => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for pair in REGISTRY.windows(2) {
            assert!(
                pair[0].name < pair[1].name,
                "registry must stay sorted: {} >= {}",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn tokens_require_full_names() {
        let toks = env_tokens("reads NETPACK_SIM and the NETPACK_SERVICE_ prefix, not NETPACK_");
        let names: Vec<&str> = toks.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(names, vec!["NETPACK_SIM"]);
    }

    #[test]
    fn reads_skip_comments_and_tests() {
        let src = "\
// NETPACK_COMMENTED is prose, not a read
fn f() { let v = std::env::var(\"NETPACK_SIM\"); }
#[cfg(test)]
mod tests {
    fn t() { std::env::set_var(\"NETPACK_PKT\", \"fast\"); }
}
";
        let lines = crate::lexer::scan(src);
        let is_test = [false, false, true, true, true, true, false];
        let reads = reads_in(&lines, &is_test[..lines.len()]);
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].1, "NETPACK_SIM");
    }

    #[test]
    fn every_mode_gate_declares_an_enforcement_point() {
        for var in REGISTRY {
            if var.kind == VarKind::ModeGate {
                assert!(
                    var.gate != Gate::None,
                    "{} is a mode gate without a gate declaration",
                    var.name
                );
            }
        }
    }
}
