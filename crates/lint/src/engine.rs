//! File analysis and workspace walking: test-region detection,
//! suppression pragmas, and the baseline-aware report.

use crate::baseline::{self, Baseline};
use crate::lexer::{self, Line};
use crate::registry;
use crate::rules::{self, Finding, FileContext, RULES};
use crate::scopes;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// A parsed `// netpack-lint: allow(<rule>): <reason>` pragma.
#[derive(Debug, Clone)]
struct Pragma {
    rule: String,
    /// `Err(message)` when the pragma is malformed (missing reason,
    /// unknown rule) — reported as a finding of rule `pragma`.
    problem: Option<String>,
}

/// Parse the pragma in a comment, if any. Doc comments (`///`, `//!`)
/// never carry pragmas — they *describe* the syntax without invoking it.
fn parse_pragma(comment: &str) -> Option<Pragma> {
    if comment.starts_with('/') || comment.starts_with('!') {
        return None;
    }
    let rest = comment.split("netpack-lint:").nth(1)?.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Some(Pragma {
            rule: String::new(),
            problem: Some("expected `allow(<rule>)` after `netpack-lint:`".to_string()),
        });
    };
    let Some(close) = rest.find(')') else {
        return Some(Pragma {
            rule: String::new(),
            problem: Some("unclosed `allow(`".to_string()),
        });
    };
    let rule = rest[..close].trim().to_string();
    if !RULES.contains(&rule.as_str()) {
        return Some(Pragma {
            problem: Some(format!("unknown rule `{rule}`")),
            rule,
        });
    }
    let reason = rest[close + 1..]
        .trim_start()
        .trim_start_matches([':', '-', '—'])
        .trim();
    if reason.is_empty() {
        return Some(Pragma {
            problem: Some(format!(
                "suppression of {rule} needs a reason: `// netpack-lint: allow({rule}): <why>`"
            )),
            rule,
        });
    }
    Some(Pragma { rule, problem: None })
}

/// Mark every line covered by a `#[cfg(test)]` or `#[test]` item.
///
/// From each attribute, the item's extent is the first balanced `{…}`
/// block (or a plain `;` for declarations) that follows — matched on
/// blanked code, so braces in strings or comments can't derail it.
fn test_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    for start in 0..lines.len() {
        let code = &lines[start].code;
        let attr = ["#[cfg(test)]", "#[cfg(all(test", "#[test]"]
            .iter()
            .filter_map(|a| code.find(a).map(|p| p + a.len()))
            .min();
        let Some(after_attr) = attr else { continue };
        let mut depth = 0i32;
        let mut entered = false;
        'scan: for idx in start..lines.len() {
            let code = &lines[idx].code;
            let from = if idx == start { after_attr } else { 0 };
            for c in code[from.min(code.len())..].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => {
                        depth -= 1;
                        if entered && depth == 0 {
                            for m in &mut mask[start..=idx] {
                                *m = true;
                            }
                            break 'scan;
                        }
                    }
                    ';' if !entered => {
                        for m in &mut mask[start..=idx] {
                            *m = true;
                        }
                        break 'scan;
                    }
                    _ => {}
                }
            }
            if idx + 1 == lines.len() {
                // Unterminated item (fixture snippets): mark to EOF.
                for m in &mut mask[start..] {
                    *m = true;
                }
            }
        }
    }
    mask
}

/// Crate name for a workspace-relative path (`crates/<name>/src/…`).
fn crate_of(rel_path: &str) -> &str {
    let rel = rel_path.trim_start_matches("./");
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            if parts.next() == Some("src") {
                return name;
            }
        }
    }
    ""
}

/// Outcome of analyzing one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings that survived pragma suppression (baseline not applied).
    pub findings: Vec<Finding>,
    /// Number of findings silenced by a valid pragma.
    pub suppressed: usize,
    /// `NETPACK_*` reads in this file as `(line, name)` — fed into the
    /// workspace-level registry cross-check.
    pub env_reads: Vec<(usize, String)>,
}

/// Analyze one file's source. `rel_path` is workspace-relative and drives
/// crate attribution (`crates/<name>/src/…`) and path-based exemptions.
pub fn analyze_source(rel_path: &str, source: &str) -> FileReport {
    let lines = lexer::scan(source);
    let is_test = test_mask(&lines);
    let scope_tree = scopes::parse(&lines);
    let ctx = FileContext {
        path: rel_path,
        crate_name: crate_of(rel_path),
        lines: &lines,
        is_test: &is_test,
        scopes: &scope_tree,
    };
    let raw = rules::check_file(&ctx);

    // Valid pragmas allow (line, rule); a comment-only pragma line also
    // covers the next line. Malformed pragmas become findings themselves,
    // and so does a valid pragma that ends up suppressing nothing (P1).
    let mut allowed: BTreeMap<(usize, String), usize> = BTreeMap::new();
    let mut valid_pragmas: Vec<(usize, String, bool)> = Vec::new(); // (line, rule, used)
    let mut report = FileReport::default();
    for (idx, line) in lines.iter().enumerate() {
        let Some(pragma) = parse_pragma(&line.comment) else {
            continue;
        };
        if let Some(problem) = pragma.problem {
            report.findings.push(Finding {
                rule: "pragma",
                path: rel_path.to_string(),
                line: idx + 1,
                message: problem,
                func: None,
            });
            continue;
        }
        let pragma_idx = valid_pragmas.len();
        valid_pragmas.push((idx + 1, pragma.rule.clone(), false));
        allowed.insert((idx + 1, pragma.rule.clone()), pragma_idx);
        if line.is_comment_only() {
            allowed.insert((idx + 2, pragma.rule), pragma_idx);
        }
    }
    for f in raw {
        if let Some(&pragma_idx) = allowed.get(&(f.line, f.rule.to_string())) {
            report.suppressed += 1;
            valid_pragmas[pragma_idx].2 = true;
        } else {
            report.findings.push(f);
        }
    }
    // P1 — stale pragmas. Reported after suppression so P1 itself can
    // never be suppressed: the suppression set only shrinks.
    for (line, rule, used) in valid_pragmas {
        if !used {
            report.findings.push(Finding {
                rule: "P1",
                path: rel_path.to_string(),
                line,
                message: format!(
                    "stale pragma: `allow({rule})` suppresses nothing — the hazard is gone, delete the excuse"
                ),
                func: scope_tree.enclosing_fn(line).map(|s| s.name.clone()),
            });
        }
    }
    report.findings.sort_by_key(|f| f.line);
    report.env_reads = registry::reads_in(&lines, &is_test);
    report
}

/// Recursively collect `.rs` files under `root`, skipping build output,
/// vendored code, and test trees (test code is exempt from every rule, and
/// the lint's own fixtures contain violations on purpose).
fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    const SKIP_DIRS: [&str; 6] = ["target", "vendor", ".git", "tests", "benches", ".github"];
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// A full workspace run, before baseline comparison.
#[derive(Debug, Default)]
pub struct RunReport {
    /// Surviving findings across all files, in path order.
    pub findings: Vec<Finding>,
    /// Total pragma-suppressed findings.
    pub suppressed: usize,
    /// Files analyzed.
    pub files: usize,
}

impl RunReport {
    /// Finding counts keyed like the baseline file.
    pub fn counts(&self) -> Baseline {
        let mut counts = Baseline::new();
        for f in &self.findings {
            *counts
                .entry((f.rule.to_string(), f.path.clone()))
                .or_insert(0) += 1;
        }
        counts
    }
}

/// Analyze every eligible file under `root`.
pub fn run_root(root: &Path) -> io::Result<RunReport> {
    let mut report = RunReport::default();
    let mut reads: Vec<(String, usize, String)> = Vec::new();
    for path in collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&path)?;
        let file = analyze_source(&rel, &source);
        report.findings.extend(file.findings);
        report.suppressed += file.suppressed;
        report.files += 1;
        for (idx, name) in file.env_reads {
            reads.push((rel.clone(), idx + 1, name));
        }
    }
    // The registry cross-check (dead entries, README table, declared
    // gates) only makes sense at the real workspace root; fixture trees
    // have neither README.md nor scripts/check.sh.
    if root.join("README.md").is_file() && root.join("scripts/check.sh").is_file() {
        report.findings.extend(registry::cross_check(root, &reads));
    }
    Ok(report)
}

/// Compare a run against the baseline: returns the keys whose current
/// count exceeds their grandfathered allowance (missing key = 0).
pub fn over_baseline(report: &RunReport, baseline: &Baseline) -> Vec<((String, String), usize, usize)> {
    report
        .counts()
        .into_iter()
        .filter_map(|(key, count)| {
            let allowed = baseline.get(&key).copied().unwrap_or(0);
            (count > allowed).then_some((key, count, allowed))
        })
        .collect()
}

/// Output format for [`run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Human-readable lines (the default).
    Text,
    /// One machine-readable JSON object on stdout (`--format=json`);
    /// CI uploads it as the findings artifact.
    Json,
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the actionable (above-baseline) findings as one JSON object.
fn render_json(
    report: &RunReport,
    over: &[((String, String), usize, usize)],
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"files\": {},\n  \"grandfathered\": {},\n  \"suppressed\": {},\n",
        report.files,
        report.findings.len(),
        report.suppressed
    ));
    out.push_str("  \"findings\": [");
    let mut first = true;
    for ((rule, path), _, _) in over {
        for f in report.findings.iter().filter(|f| f.rule == *rule && &f.path == path) {
            if !first {
                out.push(',');
            }
            first = false;
            let func = match &f.func {
                Some(name) => format!("\"{}\"", json_escape(name)),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"func\": {}, \"message\": \"{}\"}}",
                json_escape(f.rule),
                json_escape(&f.path),
                f.line,
                func,
                json_escape(&f.message)
            ));
        }
    }
    if !first {
        out.push('\n');
        out.push_str("  ");
    }
    out.push_str("]\n}");
    out
}

/// Entry point shared by `main` and the fixture tests: lint `root`
/// against `baseline_path`, print findings to stdout, and return the
/// process exit code (0 = clean, 1 = new findings, 2 = I/O error is
/// raised as `Err`).
pub fn run(
    root: &Path,
    baseline_path: &Path,
    update_baseline: bool,
    format: OutputFormat,
) -> io::Result<i32> {
    let report = run_root(root)?;
    if update_baseline {
        let rendered = baseline::render(&report.counts());
        std::fs::write(baseline_path, rendered)?;
        println!(
            "netpack-lint: baseline updated ({} findings across {} files)",
            report.findings.len(),
            report.files
        );
        return Ok(0);
    }
    let baseline = baseline::load(baseline_path)?;
    let over = over_baseline(&report, &baseline);
    if format == OutputFormat::Json {
        println!("{}", render_json(&report, &over));
        return Ok(i32::from(!over.is_empty()));
    }
    if over.is_empty() {
        println!(
            "netpack-lint: clean ({} files, {} grandfathered, {} suppressed)",
            report.files,
            report.findings.len(),
            report.suppressed
        );
        return Ok(0);
    }
    for ((rule, path), count, allowed) in &over {
        println!("{path}: {rule}: {count} finding(s), baseline allows {allowed}:");
        for f in report.findings.iter().filter(|f| f.rule == *rule && &f.path == path) {
            let func = f.func.as_deref().map(|n| format!(" (in fn {n})")).unwrap_or_default();
            println!("  {}:{}: [{}] {}{func}", f.path, f.line, f.rule, f.message);
        }
    }
    println!(
        "netpack-lint: {} rule/file pair(s) above baseline — fix the findings, \
         suppress with `// netpack-lint: allow(<rule>): <reason>`, or (for \
         pre-existing debt only) run `cargo run -p netpack-lint -- --update-baseline`",
        over.len()
    );
    Ok(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mask_covers_cfg_test_modules() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n}\nfn after() {}\n";
        let lines = lexer::scan(src);
        let mask = test_mask(&lines);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn test_mask_covers_test_fns() {
        let src = "#[test]\nfn t() {\n  body();\n}\nfn real() {}\n";
        let mask = test_mask(&lexer::scan(src));
        assert_eq!(mask, vec![true, true, true, true, false]);
    }

    #[test]
    fn crate_attribution_follows_path() {
        assert_eq!(crate_of("crates/waterfill/src/state.rs"), "waterfill");
        assert_eq!(crate_of("crates/lint/src/lexer.rs"), "lint");
        assert_eq!(crate_of("src/lib.rs"), "");
        assert_eq!(crate_of("examples/demo.rs"), "");
    }

    #[test]
    fn pragma_requires_known_rule_and_reason() {
        assert!(parse_pragma(" just a comment").is_none());
        assert!(
            parse_pragma("/ doc: use `// netpack-lint: allow(D1): why`").is_none(),
            "doc comments describe the syntax, they don't invoke it"
        );
        let ok = parse_pragma(" netpack-lint: allow(D1): keyed scratch map").unwrap();
        assert!(ok.problem.is_none());
        assert_eq!(ok.rule, "D1");
        let no_reason = parse_pragma(" netpack-lint: allow(D1)").unwrap();
        assert!(no_reason.problem.is_some());
        let bad_rule = parse_pragma(" netpack-lint: allow(D9): whatever").unwrap();
        assert!(bad_rule.problem.is_some());
    }

    #[test]
    fn suppression_applies_to_same_and_next_line() {
        let src = "\
use std::time::Instant;
fn f() {
    let a = Instant::now(); // netpack-lint: allow(D2): fixture proves trailing form
    // netpack-lint: allow(D2): fixture proves standalone form
    let b = Instant::now();
    let c = Instant::now();
}
";
        let report = analyze_source("crates/model/src/x.rs", src);
        assert_eq!(report.suppressed, 2);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].line, 6);
    }
}
