//! A minimal comment/string/raw-string-aware scanner for Rust source.
//!
//! The rule engine matches on *code text only*: this module strips comment
//! bodies and the interiors of string/char literals (replacing them with
//! spaces so columns and line numbers stay aligned) while collecting line
//! comments separately for suppression-pragma parsing. It is not a full
//! lexer — it only needs to know, for every byte, whether that byte is
//! code, comment, or literal. Handled: line comments, nested block
//! comments, string literals with escapes, byte strings, raw strings with
//! any number of `#`s, char literals, and the char-vs-lifetime ambiguity
//! (`'a'` is a literal, `<'a>` is not).

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code text with comments and literal interiors blanked to spaces.
    pub code: String,
    /// Concatenated line-comment text on this line (block comments are
    /// dropped entirely — pragmas must be line comments).
    pub comment: String,
    /// Concatenated string/char-literal interiors on this line. Comment
    /// text is *not* included, so a token found here was written in code
    /// (e.g. an `env::var("NETPACK_…")` read) rather than in prose — the
    /// distinction the mode-gate registry check (M1) depends on.
    pub literal: String,
}

impl Line {
    /// True when the line holds no code at all (blank or comment-only),
    /// which lets a pragma on its own line cover the line below.
    pub fn is_comment_only(&self) -> bool {
        self.code.trim().is_empty() && !self.comment.trim().is_empty()
    }
}

/// Split `source` into [`Line`]s with literals and comments blanked.
pub fn scan(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut literal = String::new();
    let mut i = 0;

    // Push the current line and start a new one.
    macro_rules! newline {
        () => {{
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                literal: std::mem::take(&mut literal),
            });
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                newline!();
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                // Line comment: record its text for pragma parsing.
                i += 2;
                while i < chars.len() && chars[i] != '\n' {
                    comment.push(chars[i]);
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Nested block comment; newlines inside keep line count.
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            newline!();
                        }
                        i += 1;
                    }
                }
                code.push(' ');
            }
            '"' => {
                i = consume_string(&chars, i, &mut code, &mut lines, &mut comment, &mut literal);
            }
            'r' | 'b' if starts_literal_prefix(&chars, i) => {
                i = consume_prefixed_literal(
                    &chars,
                    i,
                    &mut code,
                    &mut lines,
                    &mut comment,
                    &mut literal,
                );
            }
            '\'' => {
                // Char literal vs lifetime: `'x'` / `'\n'` are literals,
                // `'static` is a lifetime and stays as code.
                if chars.get(i + 1) == Some(&'\\') {
                    code.push('\'');
                    i += 2; // skip the backslash
                    while i < chars.len() && chars[i] != '\'' {
                        code.push(' ');
                        i += 1;
                    }
                    if i < chars.len() {
                        code.push('\'');
                        i += 1;
                    }
                } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1).is_some() {
                    code.push('\'');
                    code.push(' ');
                    code.push('\'');
                    i += 3;
                } else {
                    code.push('\'');
                    i += 1;
                }
            }
            _ => {
                code.push(c);
                i += 1;
            }
        }
    }
    // Final line without trailing newline.
    if !code.is_empty() || !comment.is_empty() || lines.is_empty() {
        newline!();
    }
    lines
}

/// Does `r` / `b` at `i` start a (raw/byte) string literal rather than an
/// identifier? True for `r"`, `r#`, `b"`, `b'`, `br"`, `br#` when the
/// previous char is not part of an identifier.
fn starts_literal_prefix(chars: &[char], i: usize) -> bool {
    if i > 0 && is_ident_char(chars[i - 1]) {
        return false;
    }
    let rest: String = chars[i..chars.len().min(i + 3)].iter().collect();
    rest.starts_with("r\"")
        || rest.starts_with("r#")
        || rest.starts_with("b\"")
        || rest.starts_with("b'")
        || rest.starts_with("br\"")
        || rest.starts_with("br#")
}

/// Consume a `"…"` string starting at `i`, blanking its interior into
/// `code` while copying it verbatim into `literal`.
fn consume_string(
    chars: &[char],
    mut i: usize,
    code: &mut String,
    lines: &mut Vec<Line>,
    comment: &mut String,
    literal: &mut String,
) -> usize {
    code.push('"');
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                code.push(' ');
                literal.push(' ');
                if i + 1 < chars.len() && chars[i + 1] != '\n' {
                    code.push(' ');
                }
                i += 2;
            }
            '"' => {
                code.push('"');
                literal.push(' ');
                return i + 1;
            }
            '\n' => {
                lines.push(Line {
                    code: std::mem::take(code),
                    comment: std::mem::take(comment),
                    literal: std::mem::take(literal),
                });
                i += 1;
            }
            c => {
                code.push(' ');
                literal.push(c);
                i += 1;
            }
        }
    }
    i
}

/// Consume a literal that starts with `r`/`b`/`br` at `i`: raw strings
/// (`r#"…"#` with any number of `#`s), byte strings, and byte chars.
fn consume_prefixed_literal(
    chars: &[char],
    mut i: usize,
    code: &mut String,
    lines: &mut Vec<Line>,
    comment: &mut String,
    literal: &mut String,
) -> usize {
    // Copy the prefix letters.
    while i < chars.len() && (chars[i] == 'r' || chars[i] == 'b') {
        code.push(chars[i]);
        i += 1;
    }
    if chars.get(i) == Some(&'\'') {
        // Byte char `b'x'` — reuse the simple escape logic.
        code.push('\'');
        i += 1;
        if chars.get(i) == Some(&'\\') {
            i += 2;
            code.push(' ');
        } else if i < chars.len() {
            code.push(' ');
            i += 1;
        }
        if chars.get(i) == Some(&'\'') {
            code.push('\'');
            i += 1;
        }
        return i;
    }
    // Count `#`s (raw string guard), then expect the opening quote.
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        code.push('#');
        hashes += 1;
        i += 1;
    }
    if chars.get(i) != Some(&'"') {
        return i; // Not a literal after all (e.g. `r#ident`).
    }
    code.push('"');
    i += 1;
    // Raw interior: no escapes; closes at `"` followed by `hashes` `#`s.
    while i < chars.len() {
        if chars[i] == '"' && chars[i + 1..].iter().take(hashes).filter(|&&c| c == '#').count() == hashes {
            code.push('"');
            literal.push(' ');
            i += 1;
            for _ in 0..hashes {
                code.push('#');
                i += 1;
            }
            return i;
        }
        if chars[i] == '\n' {
            lines.push(Line {
                code: std::mem::take(code),
                comment: std::mem::take(comment),
                literal: std::mem::take(literal),
            });
        } else {
            code.push(' ');
            literal.push(chars[i]);
        }
        i += 1;
    }
    i
}

/// Identifier continuation character.
pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        scan(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_stripped_but_recorded() {
        let lines = scan("let x = 1; // trailing note\n// full line\nlet y = 2;");
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].code.trim(), "let x = 1;");
        assert_eq!(lines[0].comment.trim(), "trailing note");
        assert!(lines[1].is_comment_only());
        assert_eq!(lines[2].code.trim(), "let y = 2;");
    }

    #[test]
    fn nested_block_comments_blank_out() {
        let c = codes("a /* one /* two */ still */ b");
        assert_eq!(c[0].replace(' ', ""), "ab");
    }

    #[test]
    fn string_interiors_are_blanked() {
        let c = codes(r#"let s = "HashMap iter \" Instant::now";"#);
        assert!(!c[0].contains("HashMap"));
        assert!(!c[0].contains("Instant"));
        assert!(c[0].contains("let s ="));
    }

    #[test]
    fn raw_strings_with_hashes_close_correctly() {
        let c = codes("let s = r#\"uses \"quotes\" and Instant::now\"#; let t = 1;");
        assert!(!c[0].contains("Instant"));
        assert!(c[0].contains("let t = 1;"));
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let c = codes("fn f<'a>(x: &'a str) { let q = 'y'; let nl = '\\n'; }");
        assert!(c[0].contains("<'a>"), "{}", c[0]);
        assert!(c[0].contains("&'a str"));
        assert!(!c[0].contains('y'), "char interior must blank: {}", c[0]);
    }

    #[test]
    fn literal_interiors_are_collected_per_line() {
        let lines = scan("let v = std::env::var(\"NETPACK_SIM\"); // NETPACK_FAKE\nlet w = r#\"NETPACK_PKT\"#;");
        assert!(lines[0].literal.contains("NETPACK_SIM"));
        assert!(
            !lines[0].literal.contains("NETPACK_FAKE"),
            "comment text must not leak into literal text: {:?}",
            lines[0].literal
        );
        assert!(lines[1].literal.contains("NETPACK_PKT"));
    }

    #[test]
    fn adjacent_literals_do_not_merge_tokens() {
        let lines = scan(r#"f("NETPACK_A", "B");"#);
        assert!(lines[0].literal.contains("NETPACK_A"));
        assert!(!lines[0].literal.contains("NETPACK_AB"));
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let c = codes("let s = \"line one\nline two\";\nlet x = 3;");
        assert_eq!(c.len(), 3);
        assert_eq!(c[2].trim(), "let x = 3;");
        assert!(!c[1].contains("line two"));
    }
}
