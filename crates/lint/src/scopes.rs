//! A lightweight block/item scope tree over blanked source lines.
//!
//! PR 4's rules were purely line-oriented: they could say *what* looked
//! hazardous but not *where it sat* — which function a finding belongs
//! to, whether a name used inside a parallel closure was declared outside
//! it, whether a file's braces even balance. This module adds the minimal
//! structure those questions need, still on the dependency-free
//! [`crate::lexer`] output (no `syn`): a tree of `{…}` blocks where each
//! node remembers the *header* that introduced it (`fn name`, `mod name`,
//! `impl Type`, or nothing for a plain block) and its line span.
//!
//! The parser is deliberately forgiving — macro-heavy or truncated
//! fixture snippets must not abort an analysis — so imbalance is reported
//! as [`ScopeTree::diagnostics`] rather than an error, and the workspace
//! self-test (`tests/workspace_self_check.rs`) asserts the diagnostics
//! are empty for every real source file in the repo.

use crate::lexer::{is_ident_char, Line};

/// What introduced a scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// The whole file.
    Root,
    /// `fn name(…) {…}` — the unit findings are attributed to.
    Fn,
    /// A named item that is not a function: `mod`, `impl`, `struct`,
    /// `enum`, `trait`, `union`.
    Item,
    /// Any other `{…}` block: expression blocks, match/if/loop bodies,
    /// struct literals, closures.
    Block,
}

/// One node of the scope tree.
#[derive(Debug, Clone)]
pub struct Scope {
    /// What kind of construct opened this scope.
    pub kind: ScopeKind,
    /// The item's name (`fn foo` → `foo`, `impl Cluster` → `Cluster`);
    /// empty for plain blocks and the root.
    pub name: String,
    /// 1-based line where the scope's header begins (the `fn` line for a
    /// multi-line signature), or the `{` line for plain blocks.
    pub start: usize,
    /// 1-based line of the matching `}` (end of file when unterminated).
    pub end: usize,
    /// Nested scopes, in source order.
    pub children: Vec<Scope>,
}

impl Scope {
    /// Does this scope's span contain `line` (1-based)?
    pub fn contains(&self, line: usize) -> bool {
        self.start <= line && line <= self.end
    }
}

/// The parsed scope structure of one file.
#[derive(Debug, Clone)]
pub struct ScopeTree {
    /// The file-level scope; every other scope is a descendant.
    pub root: Scope,
    /// Structural problems found while parsing (unbalanced braces).
    /// Empty for every well-formed Rust file.
    pub diagnostics: Vec<String>,
}

impl ScopeTree {
    /// The innermost `fn` whose span contains `line`, if any.
    pub fn enclosing_fn(&self, line: usize) -> Option<&Scope> {
        let mut best: Option<&Scope> = None;
        let mut stack: Vec<&Scope> = vec![&self.root];
        while let Some(scope) = stack.pop() {
            if !scope.contains(line) {
                continue;
            }
            if scope.kind == ScopeKind::Fn {
                best = Some(match best {
                    Some(b) if b.start >= scope.start => b,
                    _ => scope,
                });
            }
            stack.extend(scope.children.iter());
        }
        best
    }

    /// Every scope in the tree, preorder, including the root.
    pub fn iter(&self) -> Vec<&Scope> {
        let mut out = Vec::new();
        let mut stack: Vec<&Scope> = vec![&self.root];
        while let Some(scope) = stack.pop() {
            out.push(scope);
            stack.extend(scope.children.iter().rev());
        }
        out
    }

    /// Structural invariants every parse must satisfy, regardless of the
    /// input: child spans nest inside their parent and start in order.
    /// Returns problems as strings; the workspace self-test asserts none.
    pub fn span_problems(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut stack: Vec<&Scope> = vec![&self.root];
        while let Some(scope) = stack.pop() {
            if scope.start > scope.end {
                problems.push(format!(
                    "scope `{}` spans backwards: {}..{}",
                    scope.name, scope.start, scope.end
                ));
            }
            let mut prev_start = 0usize;
            for child in &scope.children {
                if child.start < scope.start || child.end > scope.end {
                    problems.push(format!(
                        "child `{}` ({}..{}) escapes parent `{}` ({}..{})",
                        child.name, child.start, child.end, scope.name, scope.start, scope.end
                    ));
                }
                if child.start < prev_start {
                    problems.push(format!(
                        "children out of order at line {}",
                        child.start
                    ));
                }
                prev_start = child.start;
                stack.push(child);
            }
        }
        problems
    }
}

/// Item keywords that name the scope they introduce.
const ITEM_KEYWORDS: [&str; 6] = ["mod", "impl", "struct", "enum", "trait", "union"];

/// Parse blanked lines into a scope tree.
pub fn parse(lines: &[Line]) -> ScopeTree {
    // Stack of open scopes; index 0 is the root.
    let mut stack: Vec<Scope> = vec![Scope {
        kind: ScopeKind::Root,
        name: String::new(),
        start: 1,
        end: lines.len().max(1),
        children: Vec::new(),
    }];
    let mut diagnostics = Vec::new();
    // Header text accumulated since the last `{`, `}`, or `;`, and the
    // line its first non-blank character appeared on.
    let mut header = String::new();
    let mut header_start: Option<usize> = None;

    for (idx, line) in lines.iter().enumerate() {
        for c in line.code.chars() {
            match c {
                '{' => {
                    let (kind, name) = classify_header(&header);
                    let start = match kind {
                        ScopeKind::Block => idx + 1,
                        _ => header_start.unwrap_or(idx + 1),
                    };
                    stack.push(Scope {
                        kind,
                        name,
                        start,
                        end: idx + 1, // fixed up when the `}` is seen
                        children: Vec::new(),
                    });
                    header.clear();
                    header_start = None;
                }
                '}' => {
                    header.clear();
                    header_start = None;
                    if stack.len() == 1 {
                        diagnostics.push(format!("unmatched `}}` at line {}", idx + 1));
                        continue;
                    }
                    let mut done = stack.pop().unwrap_or_else(|| unreachable!());
                    done.end = idx + 1;
                    if let Some(parent) = stack.last_mut() {
                        parent.children.push(done);
                    }
                }
                ';' => {
                    header.clear();
                    header_start = None;
                }
                c => {
                    if !c.is_whitespace() && header_start.is_none() {
                        header_start = Some(idx + 1);
                    }
                    header.push(c);
                }
            }
        }
        header.push(' ');
    }

    // Close unterminated scopes at EOF (diagnosed: a well-formed file has
    // none) and fold them into the root.
    while stack.len() > 1 {
        let mut open = stack.pop().unwrap_or_else(|| unreachable!());
        diagnostics.push(format!(
            "scope `{}` opened at line {} never closes",
            open.name, open.start
        ));
        open.end = lines.len().max(1);
        if let Some(parent) = stack.last_mut() {
            parent.children.push(open);
        }
    }
    let mut root = stack.pop().unwrap_or_else(|| unreachable!());
    root.end = lines.len().max(1);
    ScopeTree { root, diagnostics }
}

/// Classify the header text preceding a `{`.
fn classify_header(header: &str) -> (ScopeKind, String) {
    // `fn` wins over item keywords so `impl T { fn f() {` attributes the
    // inner scope to the function. The *last* `fn` in the header is the
    // one whose body this brace opens (`fn f(g: fn() -> u32) {`).
    if let Some(name) = ident_after_last_keyword(header, "fn") {
        return (ScopeKind::Fn, name);
    }
    for kw in ITEM_KEYWORDS {
        if let Some(name) = ident_after_last_keyword(header, kw) {
            return (ScopeKind::Item, name);
        }
    }
    (ScopeKind::Block, String::new())
}

/// The identifier following the last whole-word occurrence of `kw`,
/// skipping generics and reference sigils (`impl<'a> Foo` → `Foo`).
fn ident_after_last_keyword(header: &str, kw: &str) -> Option<String> {
    let mut found: Option<String> = None;
    let mut from = 0usize;
    while let Some(pos) = header[from..].find(kw) {
        let start = from + pos;
        let end = start + kw.len();
        let before_ok = start == 0
            || !is_ident_char(header[..start].chars().next_back().unwrap_or(' '));
        let after_ok =
            end >= header.len() || !is_ident_char(header[end..].chars().next().unwrap_or(' '));
        if before_ok && after_ok {
            let rest = header[end..]
                .trim_start()
                .trim_start_matches(['<', '>', '\'', '&']);
            let rest = rest.trim_start();
            let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
            // `fn()` pointer types have no name — they never name scopes,
            // so only a *named* occurrence updates the result.
            if !name.is_empty() {
                found = Some(name);
            }
        }
        from = end;
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn tree(src: &str) -> ScopeTree {
        parse(&lexer::scan(src))
    }

    #[test]
    fn nested_items_and_fns_get_names_and_spans() {
        let src = "\
mod outer {
    impl Cluster {
        pub fn place(
            &self,
        ) -> u32 {
            let x = 1;
            x
        }
    }
}
";
        let t = tree(src);
        assert!(t.diagnostics.is_empty(), "{:?}", t.diagnostics);
        let outer = &t.root.children[0];
        assert_eq!((outer.kind, outer.name.as_str()), (ScopeKind::Item, "outer"));
        assert_eq!((outer.start, outer.end), (1, 10));
        let imp = &outer.children[0];
        assert_eq!((imp.kind, imp.name.as_str()), (ScopeKind::Item, "Cluster"));
        let f = &imp.children[0];
        assert_eq!((f.kind, f.name.as_str()), (ScopeKind::Fn, "place"));
        // Multi-line signature: the span starts at the `pub fn` line.
        assert_eq!((f.start, f.end), (3, 8));
    }

    #[test]
    fn enclosing_fn_picks_the_innermost() {
        let src = "\
fn outer() {
    fn inner() {
        work();
    }
    more();
}
";
        let t = tree(src);
        assert_eq!(t.enclosing_fn(3).map(|s| s.name.as_str()), Some("inner"));
        assert_eq!(t.enclosing_fn(5).map(|s| s.name.as_str()), Some("outer"));
        assert!(t.enclosing_fn(7).is_none());
    }

    #[test]
    fn plain_blocks_and_struct_literals_are_blocks() {
        let src = "fn f() { let c = Config { a: 1 }; match c { _ => {} } }\n";
        let t = tree(src);
        assert!(t.diagnostics.is_empty(), "{:?}", t.diagnostics);
        let f = &t.root.children[0];
        assert_eq!(f.kind, ScopeKind::Fn);
        assert!(f.children.iter().all(|s| s.kind == ScopeKind::Block));
    }

    #[test]
    fn braces_in_strings_and_comments_do_not_derail() {
        let src = "fn f() {\n    let s = \"{{{\"; // }}}\n}\nfn g() {}\n";
        let t = tree(src);
        assert!(t.diagnostics.is_empty(), "{:?}", t.diagnostics);
        assert_eq!(t.root.children.len(), 2);
    }

    #[test]
    fn imbalance_is_diagnosed_not_fatal() {
        let unclosed = tree("fn f() {\n    let x = 1;\n");
        assert_eq!(unclosed.diagnostics.len(), 1);
        assert_eq!(unclosed.root.children[0].name, "f");
        let extra = tree("}\nfn g() {}\n");
        assert_eq!(extra.diagnostics.len(), 1);
    }

    #[test]
    fn span_problems_empty_on_wellformed_input() {
        let t = tree("mod m { fn a() { if x { y(); } } fn b() {} }\n");
        assert!(t.span_problems().is_empty());
    }

    #[test]
    fn fn_pointer_types_do_not_open_fn_scopes() {
        let src = "fn takes(cb: fn() -> u32) {\n    cb();\n}\n";
        let t = tree(src);
        let f = &t.root.children[0];
        // The last named `fn` in the header is `takes`; the unnamed
        // pointer type must not steal the attribution.
        assert_eq!((f.kind, f.name.as_str()), (ScopeKind::Fn, "takes"));
    }
}
