//! The five NetPack lint rules.
//!
//! Every rule operates on blanked code lines (see [`crate::lexer`]) of a
//! single file plus a little per-file context (crate name, test-line
//! mask). Rules are deliberately line-oriented and heuristic: the goal is
//! catching this repo's real determinism hazards with zero dependencies,
//! not a general Rust analyzer. The fixture tests in `tests/` define the
//! contract for each rule.

use crate::lexer::{is_ident_char, Line};

/// A single rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`D1`, `D2`, `D3`, `N1`, `E1`, or `pragma`).
    pub rule: &'static str,
    /// Path as given to the engine (workspace-relative in normal runs).
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// All rule ids, in report order.
pub const RULES: [&str; 5] = ["D1", "D2", "D3", "N1", "E1"];

/// Crates whose non-test code must not iterate hash-ordered containers
/// (rule D1): the simulation / placement / reporting pipeline where
/// iteration order reaches results.
pub const D1_CRATES: [&str; 6] =
    ["waterfill", "flowsim", "packetsim", "placement", "core", "service"];

/// Library crates where new panics are forbidden (rule E1). `bench` and
/// `cli` are driver/report binaries where aborting on a malformed flag or
/// an unwritable CSV directory is the intended behavior.
pub const E1_CRATES: [&str; 10] = [
    "topology", "workload", "model", "waterfill", "placement", "core", "flowsim", "packetsim",
    "metrics", "service",
];

/// Per-file inputs shared by all rules.
pub struct FileContext<'a> {
    /// Workspace-relative path (used for crate attribution and exemptions).
    pub path: &'a str,
    /// Crate name derived from the path (`crates/<name>/src/…`), or `""`.
    pub crate_name: &'a str,
    /// Blanked source lines from [`crate::lexer::scan`].
    pub lines: &'a [Line],
    /// `true` for every line inside a `#[cfg(test)]` / `#[test]` region.
    pub is_test: &'a [bool],
}

impl FileContext<'_> {
    fn code(&self, idx: usize) -> &str {
        &self.lines[idx].code
    }
}

/// Run every rule over one file. Suppression and baselines are applied by
/// the engine afterwards; this returns raw findings.
pub fn check_file(ctx: &FileContext<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    d1_hash_iteration(ctx, &mut findings);
    d2_wall_clock(ctx, &mut findings);
    d3_unseeded_randomness(ctx, &mut findings);
    n1_parallel_float_accumulation(ctx, &mut findings);
    e1_panics(ctx, &mut findings);
    findings
}

fn finding(ctx: &FileContext<'_>, rule: &'static str, idx: usize, message: String) -> Finding {
    Finding {
        rule,
        path: ctx.path.to_string(),
        line: idx + 1,
        message,
    }
}

/// Does `hay` contain `needle` as a whole identifier (not a substring of a
/// longer identifier)?
fn has_ident(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let before_ok = start == 0
            || !is_ident_char(hay[..start].chars().next_back().unwrap_or(' '));
        let after_ok = end >= hay.len() || !is_ident_char(hay[end..].chars().next().unwrap_or(' '));
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// The identifier ending immediately before byte offset `end` in `s`
/// (e.g. the receiver of a `.iter()` call), skipping one `self.` prefix.
fn ident_before(s: &str, end: usize) -> Option<&str> {
    let bytes = s.as_bytes();
    let mut start = end;
    while start > 0 && is_ident_char(bytes[start - 1] as char) {
        start -= 1;
    }
    if start == end {
        return None;
    }
    Some(&s[start..end])
}

/// Names bound to `HashMap`/`HashSet` in this file: `let` bindings,
/// struct fields, and fn params, matched on the blanked code.
fn hash_bound_names(ctx: &FileContext<'_>) -> Vec<String> {
    bound_names(ctx, &["HashMap", "HashSet"])
}

/// Names whose declared type or initializer marks them as floats.
fn float_bound_names(ctx: &FileContext<'_>) -> Vec<String> {
    let mut names = bound_names(ctx, &["f64", "f32"]);
    // `let mut acc = 0.0;` style initializers.
    for line in ctx.lines {
        let code = &line.code;
        if let Some(rest) = code.trim_start().strip_prefix("let ") {
            let rest = rest.trim_start().trim_start_matches("mut ").trim_start();
            let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
            if !name.is_empty() {
                if let Some(eq) = code.find('=') {
                    if looks_like_float_literal(code[eq + 1..].trim()) {
                        names.push(name);
                    }
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

fn looks_like_float_literal(s: &str) -> bool {
    let s = s.trim_end_matches(';').trim();
    let mut chars = s.chars();
    let mut saw_digit = false;
    let mut saw_dot = false;
    for c in chars.by_ref() {
        match c {
            '0'..='9' | '_' => saw_digit = true,
            '.' if saw_digit && !saw_dot => saw_dot = true,
            _ => return false,
        }
    }
    saw_digit && saw_dot
}

/// Collect names declared with any of the marker types: `let x: T<…>`,
/// `let x = T::…`, `field: T<…>`, `param: T<…>`.
fn bound_names(ctx: &FileContext<'_>, markers: &[&str]) -> Vec<String> {
    let mut names = Vec::new();
    for line in ctx.lines {
        let code = &line.code;
        if !markers.iter().any(|m| has_ident(code, m)) {
            continue;
        }
        // `let [mut] NAME …` binding on this line.
        if let Some(pos) = code.find("let ") {
            let rest = code[pos + 4..].trim_start().trim_start_matches("mut ").trim_start();
            let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
            if !name.is_empty() {
                names.push(name);
                continue;
            }
        }
        // `NAME: Marker<…>` — struct fields and fn parameters; a line may
        // declare several, so every colon is examined.
        for (colon, _) in code.match_indices(':') {
            if colon + 1 < code.len() && code[colon + 1..].starts_with(':') {
                continue; // path separator `::`
            }
            if colon > 0 && code[..colon].ends_with(':') {
                continue;
            }
            let after = code[colon + 1..].trim_start();
            let after = after
                .trim_start_matches('&')
                .trim_start_matches("mut ")
                .trim_start_matches("std::collections::");
            if markers.iter().any(|m| after.starts_with(m)) {
                if let Some(name) = ident_before(code, colon) {
                    names.push(name.to_string());
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// D1 — hash-order iteration in sim/placement crates.
fn d1_hash_iteration(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !D1_CRATES.contains(&ctx.crate_name) {
        return;
    }
    let hash_names = hash_bound_names(ctx);
    if hash_names.is_empty() {
        return;
    }
    const ITER_METHODS: [&str; 8] = [
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".drain(",
        ".retain(",
    ];
    for (idx, line) in ctx.lines.iter().enumerate() {
        if ctx.is_test[idx] {
            continue;
        }
        let code = &line.code;
        for method in ITER_METHODS {
            let mut from = 0;
            while let Some(pos) = code[from..].find(method) {
                let at = from + pos;
                if let Some(recv) = ident_before(code, at) {
                    if hash_names.iter().any(|n| n == recv) {
                        out.push(finding(
                            ctx,
                            "D1",
                            idx,
                            format!(
                                "iteration over hash-ordered `{recv}` via `{}` — use BTreeMap or an explicit sort",
                                method.trim_end_matches('(')
                            ),
                        ));
                    }
                }
                from = at + method.len();
            }
        }
        // `for pat in [&[mut]] NAME` — direct IntoIterator use.
        if let Some(for_pos) = find_keyword(code, "for") {
            if let Some(in_rel) = find_keyword(&code[for_pos..], "in") {
                let expr = code[for_pos + in_rel + 2..]
                    .trim_start()
                    .trim_start_matches('&')
                    .trim_start_matches("mut ")
                    .trim_start();
                let head: String = expr.chars().take_while(|&c| is_ident_char(c)).collect();
                if hash_names.contains(&head) && !expr[head.len()..].starts_with('.') {
                    out.push(finding(
                        ctx,
                        "D1",
                        idx,
                        format!("`for … in {head}` iterates a hash-ordered container"),
                    ));
                }
            }
        }
    }
}

/// Byte offset of keyword `kw` in `s` with identifier boundaries.
fn find_keyword(s: &str, kw: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = s[from..].find(kw) {
        let start = from + pos;
        let end = start + kw.len();
        let before_ok =
            start == 0 || !is_ident_char(s[..start].chars().next_back().unwrap_or(' '));
        let after_ok = end >= s.len() || !is_ident_char(s[end..].chars().next().unwrap_or(' '));
        if before_ok && after_ok {
            return Some(start);
        }
        from = end;
    }
    None
}

/// D2 — wall-clock reads outside `metrics::perf`.
fn d2_wall_clock(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if ctx.path.ends_with("crates/metrics/src/perf.rs") || ctx.path == "crates/metrics/src/perf.rs"
    {
        return;
    }
    for (idx, line) in ctx.lines.iter().enumerate() {
        if ctx.is_test[idx] {
            continue;
        }
        let code = &line.code;
        if code.contains("Instant::now") {
            out.push(finding(
                ctx,
                "D2",
                idx,
                "`Instant::now` outside metrics::perf — time via `netpack_metrics::Stopwatch`"
                    .to_string(),
            ));
        }
        if has_ident(code, "SystemTime") {
            out.push(finding(
                ctx,
                "D2",
                idx,
                "`SystemTime` outside metrics::perf — wall-clock reads break replay determinism"
                    .to_string(),
            ));
        }
    }
}

/// D3 — unseeded randomness outside tests.
fn d3_unseeded_randomness(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for (idx, line) in ctx.lines.iter().enumerate() {
        if ctx.is_test[idx] {
            continue;
        }
        let code = &line.code;
        for (pattern, whole_ident) in [
            ("thread_rng", true),
            ("from_entropy", true),
            ("rand::random", false),
        ] {
            let hit = if whole_ident {
                has_ident(code, pattern)
            } else {
                code.contains(pattern)
            };
            if hit {
                out.push(finding(
                    ctx,
                    "D3",
                    idx,
                    format!("`{pattern}` is unseeded randomness — derive every RNG from an explicit seed"),
                ));
            }
        }
    }
}

/// N1 — float accumulation inside parallel or batched-round regions that
/// bypasses exact (`add_cycle`-style) accumulation.
fn n1_parallel_float_accumulation(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let region = n1_regions(ctx);
    if !region.iter().any(|&r| r) {
        return;
    }
    let float_names = float_bound_names(ctx);
    for (idx, line) in ctx.lines.iter().enumerate() {
        if ctx.is_test[idx] || !region[idx] {
            continue;
        }
        let code = &line.code;
        if code.contains("add_cycle") {
            continue;
        }
        if let Some(pos) = code.find("+=") {
            let lhs = code[..pos].trim_end();
            let target = lhs
                .rsplit(|c: char| !is_ident_char(c) && c != '.')
                .next()
                .unwrap_or("");
            let target_last = target.rsplit('.').next().unwrap_or(target);
            let floaty = float_names.iter().any(|n| n == target_last)
                || has_float_evidence(code);
            if floaty {
                out.push(finding(
                    ctx,
                    "N1",
                    idx,
                    format!(
                        "float `+=` on `{target_last}` in a parallel/batched region — route through exact accumulation (add_cycle)"
                    ),
                ));
            }
        }
        if code.contains(".sum::<f64>()")
            || code.contains(".sum::<f32>()")
            || (code.contains(".sum()") && has_float_evidence(code))
        {
            out.push(finding(
                ctx,
                "N1",
                idx,
                "float `.sum()` in a parallel/batched region re-associates — use exact accumulation"
                    .to_string(),
            ));
        }
    }
}

fn has_float_evidence(code: &str) -> bool {
    has_ident(code, "f64") || has_ident(code, "f32") || contains_float_literal(code)
}

fn contains_float_literal(code: &str) -> bool {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'.'
            && i > 0
            && bytes[i - 1].is_ascii_digit()
            && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit())
        {
            return true;
        }
    }
    false
}

/// Lines inside a parallel closure (`parallel_sweep(…)` and its
/// `_with`/`_reduce` variants, rayon adapters, `thread::scope(…)`) or, in
/// `packetsim`, inside a `fn …batch…` body.
fn n1_regions(ctx: &FileContext<'_>) -> Vec<bool> {
    let mut region = vec![false; ctx.lines.len()];
    const TRIGGERS: [&str; 8] = [
        "parallel_sweep(",
        "parallel_sweep_with(",
        "parallel_sweep_reduce(",
        ".par_iter(",
        ".into_par_iter(",
        ".par_chunks(",
        "rayon::scope(",
        "thread::scope(",
    ];
    for (idx, line) in ctx.lines.iter().enumerate() {
        for trigger in TRIGGERS {
            if let Some(pos) = line.code.find(trigger) {
                let open = pos + trigger.len() - 1;
                mark_balanced(ctx, idx, open, '(', ')', &mut region);
            }
        }
    }
    if ctx.crate_name == "packetsim" {
        for (idx, line) in ctx.lines.iter().enumerate() {
            if let Some(pos) = find_keyword(&line.code, "fn") {
                let name: String = line.code[pos + 2..]
                    .trim_start()
                    .chars()
                    .take_while(|&c| is_ident_char(c))
                    .collect();
                if name.contains("batch") {
                    if let Some((l, c)) = next_char_from(ctx, idx, pos, '{') {
                        mark_balanced(ctx, l, c, '{', '}', &mut region);
                    }
                }
            }
        }
    }
    region
}

/// First position of `want` at or after (`line`, `col`), scanning forward.
fn next_char_from(
    ctx: &FileContext<'_>,
    line: usize,
    col: usize,
    want: char,
) -> Option<(usize, usize)> {
    for idx in line..ctx.lines.len() {
        let start = if idx == line { col } else { 0 };
        if let Some(pos) = ctx.code(idx)[start.min(ctx.code(idx).len())..].find(want) {
            return Some((idx, start + pos));
        }
    }
    None
}

/// Mark every line from the `open` delimiter at (`line`, `col`) through
/// its balanced close as in-region.
fn mark_balanced(
    ctx: &FileContext<'_>,
    line: usize,
    col: usize,
    open: char,
    close: char,
    region: &mut [bool],
) {
    let mut depth = 0i32;
    for (idx, in_region) in region.iter_mut().enumerate().skip(line) {
        *in_region = true;
        let code = ctx.code(idx);
        let start = if idx == line { col } else { 0 };
        for c in code[start.min(code.len())..].chars() {
            if c == open {
                depth += 1;
            } else if c == close {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }
}

/// E1 — panics in library-crate non-test code.
fn e1_panics(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !E1_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for (idx, line) in ctx.lines.iter().enumerate() {
        if ctx.is_test[idx] {
            continue;
        }
        let code = &line.code;
        for pattern in [".unwrap()", ".expect(", "panic!("] {
            if code.contains(pattern) {
                out.push(finding(
                    ctx,
                    "E1",
                    idx,
                    format!(
                        "`{}` in library code — return a typed error or prove the invariant in an `expect` message and suppress",
                        pattern.trim_end_matches('(')
                    ),
                ));
            }
        }
    }
}
