//! The NetPack lint rules.
//!
//! Every rule operates on blanked code lines (see [`crate::lexer`]) of a
//! single file plus per-file context: crate name, test-line mask, and —
//! since v2 — the block/item scope tree from [`crate::scopes`], which
//! lets the concurrency rules reason about what a parallel closure
//! captures and lets every finding name its enclosing function. Rules
//! are deliberately heuristic: the goal is catching this repo's real
//! determinism hazards with zero dependencies, not a general Rust
//! analyzer. The fixture tests in `tests/` define the contract for each
//! rule.

use crate::lexer::{is_ident_char, Line};
use crate::registry;
use crate::scopes::ScopeTree;

/// A single rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`D1`…`P1`, or `pragma` for a malformed pragma).
    pub rule: &'static str,
    /// Path as given to the engine (workspace-relative in normal runs).
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// Name of the enclosing `fn`, when the scope tree resolves one.
    pub func: Option<String>,
}

/// All rule ids, in report order.
pub const RULES: [&str; 9] = ["D1", "D2", "D3", "N1", "E1", "C1", "C2", "M1", "P1"];

/// Long-form rationale per rule, printed by `--explain <rule>`.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "D1" => "D1 — hash-order iteration in sim/placement crates.\n\n\
            HashMap/HashSet iteration order changes across runs and Rust\n\
            versions. Any such iteration that reaches simulation results,\n\
            placements, or printed output silently breaks the bit-identity\n\
            contract between fast paths and their scratch references.\n\
            Fix: BTreeMap/BTreeSet, or collect-and-sort before iterating.",
        "D2" => "D2 — wall-clock reads outside metrics::perf.\n\n\
            Instant::now / SystemTime in simulation or placement state makes\n\
            replays irreproducible. All timing goes through\n\
            netpack_metrics::Stopwatch, the one sanctioned clock site.",
        "D3" => "D3 — unseeded randomness.\n\n\
            thread_rng / from_entropy / rand::random draw from OS entropy,\n\
            so two runs of the same experiment disagree. Every RNG must be\n\
            derived from an explicit seed that the caller controls.",
        "N1" => "N1 — float accumulation inside parallel or batched regions.\n\n\
            Float addition is not associative: a += over a parallel fold or\n\
            a batched round loop re-associates the sum and the result\n\
            depends on chunking. Route through exact accumulation\n\
            (add_cycle-style integer/exact paths) or an ordered reduce\n\
            (parallel_sweep_reduce merges in cell order).",
        "E1" => "E1 — unwrap/expect/panic! in library crates.\n\n\
            Library code returns typed errors; aborting is the caller's\n\
            decision. Grandfathered debt lives in lint-baseline.txt and\n\
            only shrinks. A panic that asserts a proven invariant may stay,\n\
            with the proof in the expect message and an allow(E1) pragma.",
        "C1" => "C1 — shared mutable state captured by a parallel closure.\n\n\
            The deterministic-parallelism contract (parallel_sweep and its\n\
            _with/_reduce variants, thread::spawn) is that every cell is\n\
            independent: results are merged in cell order, so any cell\n\
            writing state another cell can see makes the merge order\n\
            observable. The rule flags RefCell/Cell-typed bindings and &mut\n\
            borrows/aliases that originate OUTSIDE a parallel region but\n\
            are used inside its closure. Fix: give each cell its own state\n\
            and commit deterministically after the join.",
        "C2" => "C2 — unjustified static mut / Ordering::Relaxed.\n\n\
            static mut is a data race waiting to happen (and unsafe, which\n\
            the workspace forbids). Ordering::Relaxed is sometimes correct —\n\
            the exact placer's monotone shared best-bound, a sender\n\
            refcount — but each site must say WHY relaxed ordering cannot\n\
            reach results: every use carries a per-site\n\
            `// netpack-lint: allow(C2): <proof>` pragma. An allowlist that\n\
            must be argued for is the point.",
        "M1" => "M1 — the NETPACK_* mode-gate registry.\n\n\
            Every env-gated behavior is declared once, in\n\
            crates/lint/src/registry.rs, and cross-checked on every run:\n\
            an env::var read of an unregistered name, a registered name no\n\
            code reads, a name missing from the README env table, and a\n\
            mode gate whose check.sh smoke or named property test\n\
            disappeared are all findings. A new mode switch cannot ship\n\
            undocumented or ungated.",
        "P1" => "P1 — stale suppression pragmas.\n\n\
            An `allow(<rule>)` pragma that no longer suppresses any finding\n\
            is debt pretending to be justification: the hazard it excused\n\
            is gone, but the excuse invites the next one. Stale pragmas are\n\
            findings themselves, so the suppression set can only shrink.\n\
            P1 cannot be suppressed.",
        _ => return None,
    })
}

/// Crates whose non-test code must not iterate hash-ordered containers
/// (rule D1): the simulation / placement / reporting pipeline where
/// iteration order reaches results.
pub const D1_CRATES: [&str; 6] =
    ["waterfill", "flowsim", "packetsim", "placement", "core", "service"];

/// Library crates where new panics are forbidden (rule E1). `bench` and
/// `cli` are driver/report binaries where aborting on a malformed flag or
/// an unwritable CSV directory is the intended behavior.
pub const E1_CRATES: [&str; 10] = [
    "topology", "workload", "model", "waterfill", "placement", "core", "flowsim", "packetsim",
    "metrics", "service",
];

/// Per-file inputs shared by all rules.
pub struct FileContext<'a> {
    /// Workspace-relative path (used for crate attribution and exemptions).
    pub path: &'a str,
    /// Crate name derived from the path (`crates/<name>/src/…`), or `""`.
    pub crate_name: &'a str,
    /// Blanked source lines from [`crate::lexer::scan`].
    pub lines: &'a [Line],
    /// `true` for every line inside a `#[cfg(test)]` / `#[test]` region.
    pub is_test: &'a [bool],
    /// Block/item structure from [`crate::scopes::parse`].
    pub scopes: &'a ScopeTree,
}

impl FileContext<'_> {
    fn code(&self, idx: usize) -> &str {
        &self.lines[idx].code
    }
}

/// Run every rule over one file. Suppression and baselines are applied by
/// the engine afterwards; this returns raw findings.
pub fn check_file(ctx: &FileContext<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    d1_hash_iteration(ctx, &mut findings);
    d2_wall_clock(ctx, &mut findings);
    d3_unseeded_randomness(ctx, &mut findings);
    n1_parallel_float_accumulation(ctx, &mut findings);
    e1_panics(ctx, &mut findings);
    c1_captured_mutable_state(ctx, &mut findings);
    c2_relaxed_and_static_mut(ctx, &mut findings);
    m1_unregistered_env_reads(ctx, &mut findings);
    findings
}

fn finding(ctx: &FileContext<'_>, rule: &'static str, idx: usize, message: String) -> Finding {
    Finding {
        rule,
        path: ctx.path.to_string(),
        line: idx + 1,
        message,
        func: ctx
            .scopes
            .enclosing_fn(idx + 1)
            .map(|s| s.name.clone()),
    }
}

/// Does `hay` contain `needle` as a whole identifier (not a substring of a
/// longer identifier)?
fn has_ident(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let before_ok = start == 0
            || !is_ident_char(hay[..start].chars().next_back().unwrap_or(' '));
        let after_ok = end >= hay.len() || !is_ident_char(hay[end..].chars().next().unwrap_or(' '));
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// The identifier ending immediately before byte offset `end` in `s`
/// (e.g. the receiver of a `.iter()` call), skipping one `self.` prefix.
fn ident_before(s: &str, end: usize) -> Option<&str> {
    let bytes = s.as_bytes();
    let mut start = end;
    while start > 0 && is_ident_char(bytes[start - 1] as char) {
        start -= 1;
    }
    if start == end {
        return None;
    }
    Some(&s[start..end])
}

/// Names bound to `HashMap`/`HashSet` in this file: `let` bindings,
/// struct fields, and fn params, matched on the blanked code.
fn hash_bound_names(ctx: &FileContext<'_>) -> Vec<String> {
    bound_names(ctx, &["HashMap", "HashSet"])
}

/// Names whose declared type or initializer marks them as floats.
fn float_bound_names(ctx: &FileContext<'_>) -> Vec<String> {
    let mut names = bound_names(ctx, &["f64", "f32"]);
    // `let mut acc = 0.0;` style initializers.
    for line in ctx.lines {
        let code = &line.code;
        if let Some(rest) = code.trim_start().strip_prefix("let ") {
            let rest = rest.trim_start().trim_start_matches("mut ").trim_start();
            let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
            if !name.is_empty() {
                if let Some(eq) = code.find('=') {
                    if looks_like_float_literal(code[eq + 1..].trim()) {
                        names.push(name);
                    }
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

fn looks_like_float_literal(s: &str) -> bool {
    let s = s.trim_end_matches(';').trim();
    let mut chars = s.chars();
    let mut saw_digit = false;
    let mut saw_dot = false;
    for c in chars.by_ref() {
        match c {
            '0'..='9' | '_' => saw_digit = true,
            '.' if saw_digit && !saw_dot => saw_dot = true,
            _ => return false,
        }
    }
    saw_digit && saw_dot
}

/// Collect names declared with any of the marker types: `let x: T<…>`,
/// `let x = T::…`, `field: T<…>`, `param: T<…>`.
fn bound_names(ctx: &FileContext<'_>, markers: &[&str]) -> Vec<String> {
    let mut names = Vec::new();
    for line in ctx.lines {
        let code = &line.code;
        if !markers.iter().any(|m| has_ident(code, m)) {
            continue;
        }
        // `let [mut] NAME …` binding on this line.
        if let Some(pos) = code.find("let ") {
            let rest = code[pos + 4..].trim_start().trim_start_matches("mut ").trim_start();
            let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
            if !name.is_empty() {
                names.push(name);
                continue;
            }
        }
        // `NAME: Marker<…>` — struct fields and fn parameters; a line may
        // declare several, so every colon is examined.
        for (colon, _) in code.match_indices(':') {
            if colon + 1 < code.len() && code[colon + 1..].starts_with(':') {
                continue; // path separator `::`
            }
            if colon > 0 && code[..colon].ends_with(':') {
                continue;
            }
            let after = code[colon + 1..].trim_start();
            let after = after
                .trim_start_matches('&')
                .trim_start_matches("mut ")
                .trim_start_matches("std::collections::");
            if markers.iter().any(|m| after.starts_with(m)) {
                if let Some(name) = ident_before(code, colon) {
                    names.push(name.to_string());
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// D1 — hash-order iteration in sim/placement crates.
fn d1_hash_iteration(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !D1_CRATES.contains(&ctx.crate_name) {
        return;
    }
    let hash_names = hash_bound_names(ctx);
    if hash_names.is_empty() {
        return;
    }
    const ITER_METHODS: [&str; 8] = [
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".drain(",
        ".retain(",
    ];
    for (idx, line) in ctx.lines.iter().enumerate() {
        if ctx.is_test[idx] {
            continue;
        }
        let code = &line.code;
        for method in ITER_METHODS {
            let mut from = 0;
            while let Some(pos) = code[from..].find(method) {
                let at = from + pos;
                if let Some(recv) = ident_before(code, at) {
                    if hash_names.iter().any(|n| n == recv) {
                        out.push(finding(
                            ctx,
                            "D1",
                            idx,
                            format!(
                                "iteration over hash-ordered `{recv}` via `{}` — use BTreeMap or an explicit sort",
                                method.trim_end_matches('(')
                            ),
                        ));
                    }
                }
                from = at + method.len();
            }
        }
        // `for pat in [&[mut]] NAME` — direct IntoIterator use.
        if let Some(for_pos) = find_keyword(code, "for") {
            if let Some(in_rel) = find_keyword(&code[for_pos..], "in") {
                let expr = code[for_pos + in_rel + 2..]
                    .trim_start()
                    .trim_start_matches('&')
                    .trim_start_matches("mut ")
                    .trim_start();
                let head: String = expr.chars().take_while(|&c| is_ident_char(c)).collect();
                if hash_names.contains(&head) && !expr[head.len()..].starts_with('.') {
                    out.push(finding(
                        ctx,
                        "D1",
                        idx,
                        format!("`for … in {head}` iterates a hash-ordered container"),
                    ));
                }
            }
        }
    }
}

/// Byte offset of keyword `kw` in `s` with identifier boundaries.
fn find_keyword(s: &str, kw: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = s[from..].find(kw) {
        let start = from + pos;
        let end = start + kw.len();
        let before_ok =
            start == 0 || !is_ident_char(s[..start].chars().next_back().unwrap_or(' '));
        let after_ok = end >= s.len() || !is_ident_char(s[end..].chars().next().unwrap_or(' '));
        if before_ok && after_ok {
            return Some(start);
        }
        from = end;
    }
    None
}

/// D2 — wall-clock reads outside `metrics::perf`.
fn d2_wall_clock(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if ctx.path.ends_with("crates/metrics/src/perf.rs") || ctx.path == "crates/metrics/src/perf.rs"
    {
        return;
    }
    for (idx, line) in ctx.lines.iter().enumerate() {
        if ctx.is_test[idx] {
            continue;
        }
        let code = &line.code;
        if code.contains("Instant::now") {
            out.push(finding(
                ctx,
                "D2",
                idx,
                "`Instant::now` outside metrics::perf — time via `netpack_metrics::Stopwatch`"
                    .to_string(),
            ));
        }
        if has_ident(code, "SystemTime") {
            out.push(finding(
                ctx,
                "D2",
                idx,
                "`SystemTime` outside metrics::perf — wall-clock reads break replay determinism"
                    .to_string(),
            ));
        }
    }
}

/// D3 — unseeded randomness outside tests.
fn d3_unseeded_randomness(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for (idx, line) in ctx.lines.iter().enumerate() {
        if ctx.is_test[idx] {
            continue;
        }
        let code = &line.code;
        for (pattern, whole_ident) in [
            ("thread_rng", true),
            ("from_entropy", true),
            ("rand::random", false),
        ] {
            let hit = if whole_ident {
                has_ident(code, pattern)
            } else {
                code.contains(pattern)
            };
            if hit {
                out.push(finding(
                    ctx,
                    "D3",
                    idx,
                    format!("`{pattern}` is unseeded randomness — derive every RNG from an explicit seed"),
                ));
            }
        }
    }
}

/// N1 — float accumulation inside parallel or batched-round regions that
/// bypasses exact (`add_cycle`-style) accumulation.
fn n1_parallel_float_accumulation(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let region = n1_regions(ctx);
    if !region.iter().any(|&r| r) {
        return;
    }
    let float_names = float_bound_names(ctx);
    for (idx, line) in ctx.lines.iter().enumerate() {
        if ctx.is_test[idx] || !region[idx] {
            continue;
        }
        let code = &line.code;
        if code.contains("add_cycle") {
            continue;
        }
        if let Some(pos) = code.find("+=") {
            let lhs = code[..pos].trim_end();
            let target = lhs
                .rsplit(|c: char| !is_ident_char(c) && c != '.')
                .next()
                .unwrap_or("");
            let target_last = target.rsplit('.').next().unwrap_or(target);
            let floaty = float_names.iter().any(|n| n == target_last)
                || has_float_evidence(code);
            if floaty {
                out.push(finding(
                    ctx,
                    "N1",
                    idx,
                    format!(
                        "float `+=` on `{target_last}` in a parallel/batched region — route through exact accumulation (add_cycle)"
                    ),
                ));
            }
        }
        if code.contains(".sum::<f64>()")
            || code.contains(".sum::<f32>()")
            || (code.contains(".sum()") && has_float_evidence(code))
        {
            out.push(finding(
                ctx,
                "N1",
                idx,
                "float `.sum()` in a parallel/batched region re-associates — use exact accumulation"
                    .to_string(),
            ));
        }
    }
}

fn has_float_evidence(code: &str) -> bool {
    has_ident(code, "f64") || has_ident(code, "f32") || contains_float_literal(code)
}

fn contains_float_literal(code: &str) -> bool {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'.'
            && i > 0
            && bytes[i - 1].is_ascii_digit()
            && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit())
        {
            return true;
        }
    }
    false
}

/// Call expressions that hand a closure to concurrent workers. The
/// region of interest spans the call's argument list, which contains the
/// closure body whether or not it is braced.
const PARALLEL_TRIGGERS: [&str; 9] = [
    "parallel_sweep(",
    "parallel_sweep_with(",
    "parallel_sweep_reduce(",
    ".par_iter(",
    ".into_par_iter(",
    ".par_chunks(",
    "rayon::scope(",
    "thread::scope(",
    "thread::spawn(",
];

/// A parallel region: the argument-list extent of one trigger call,
/// inclusive line span (0-based indices).
struct Region {
    start: usize,
    end: usize,
}

/// Every parallel-trigger region in the file.
fn parallel_regions(ctx: &FileContext<'_>) -> Vec<Region> {
    let mut regions = Vec::new();
    for (idx, line) in ctx.lines.iter().enumerate() {
        for trigger in PARALLEL_TRIGGERS {
            if let Some(pos) = line.code.find(trigger) {
                let open = pos + trigger.len() - 1;
                regions.push(Region {
                    start: idx,
                    end: balanced_end(ctx, idx, open, '(', ')'),
                });
            }
        }
    }
    regions
}

/// Lines inside a parallel closure (see [`PARALLEL_TRIGGERS`]) or, in
/// `packetsim`, inside a `fn …batch…` body.
fn n1_regions(ctx: &FileContext<'_>) -> Vec<bool> {
    let mut region = vec![false; ctx.lines.len()];
    for r in parallel_regions(ctx) {
        for m in &mut region[r.start..=r.end.min(ctx.lines.len() - 1)] {
            *m = true;
        }
    }
    if ctx.crate_name == "packetsim" {
        for (idx, line) in ctx.lines.iter().enumerate() {
            if let Some(pos) = find_keyword(&line.code, "fn") {
                let name: String = line.code[pos + 2..]
                    .trim_start()
                    .chars()
                    .take_while(|&c| is_ident_char(c))
                    .collect();
                if name.contains("batch") {
                    if let Some((l, c)) = next_char_from(ctx, idx, pos, '{') {
                        mark_balanced(ctx, l, c, '{', '}', &mut region);
                    }
                }
            }
        }
    }
    region
}

/// First position of `want` at or after (`line`, `col`), scanning forward.
fn next_char_from(
    ctx: &FileContext<'_>,
    line: usize,
    col: usize,
    want: char,
) -> Option<(usize, usize)> {
    for idx in line..ctx.lines.len() {
        let start = if idx == line { col } else { 0 };
        if let Some(pos) = ctx.code(idx)[start.min(ctx.code(idx).len())..].find(want) {
            return Some((idx, start + pos));
        }
    }
    None
}

/// Mark every line from the `open` delimiter at (`line`, `col`) through
/// its balanced close as in-region.
fn mark_balanced(
    ctx: &FileContext<'_>,
    line: usize,
    col: usize,
    open: char,
    close: char,
    region: &mut [bool],
) {
    let mut depth = 0i32;
    for (idx, in_region) in region.iter_mut().enumerate().skip(line) {
        *in_region = true;
        let code = ctx.code(idx);
        let start = if idx == line { col } else { 0 };
        for c in code[start.min(code.len())..].chars() {
            if c == open {
                depth += 1;
            } else if c == close {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }
}

/// 0-based index of the line holding the delimiter that balances `open`
/// at (`line`, `col`); the last line when the file ends first.
fn balanced_end(ctx: &FileContext<'_>, line: usize, col: usize, open: char, close: char) -> usize {
    let mut depth = 0i32;
    for idx in line..ctx.lines.len() {
        let code = ctx.code(idx);
        let start = if idx == line { col } else { 0 };
        for c in code[start.min(code.len())..].chars() {
            if c == open {
                depth += 1;
            } else if c == close {
                depth -= 1;
                if depth == 0 {
                    return idx;
                }
            }
        }
    }
    ctx.lines.len().saturating_sub(1)
}

/// All `let` bindings in the file as `(name, line_index)` pairs, with no
/// type filter. Used to decide where a borrowed name originates.
fn let_binding_lines(ctx: &FileContext<'_>) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (idx, line) in ctx.lines.iter().enumerate() {
        let code = &line.code;
        if let Some(pos) = find_keyword(code, "let") {
            let rest = code[pos + 3..].trim_start().trim_start_matches("mut ").trim_start();
            let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
            if !name.is_empty() {
                out.push((name, idx));
            }
        }
    }
    out
}

/// Bindings whose declared type or initializer names one of `markers`,
/// as `(name, line_index)` pairs: `let x: T`, `let x = T::…`, `field: T`,
/// `param: T`.
fn typed_binding_lines(ctx: &FileContext<'_>, markers: &[&str]) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (idx, line) in ctx.lines.iter().enumerate() {
        let code = &line.code;
        if !markers.iter().any(|m| has_ident(code, m)) {
            continue;
        }
        if let Some(pos) = find_keyword(code, "let") {
            let rest = code[pos + 3..].trim_start().trim_start_matches("mut ").trim_start();
            let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
            if !name.is_empty() {
                out.push((name, idx));
                continue;
            }
        }
        for (colon, _) in code.match_indices(':') {
            if colon + 1 < code.len() && code[colon + 1..].starts_with(':') {
                continue;
            }
            if colon > 0 && code[..colon].ends_with(':') {
                continue;
            }
            let after = code[colon + 1..]
                .trim_start()
                .trim_start_matches('&')
                .trim_start_matches("mut ")
                .trim_start_matches("std::cell::");
            if markers.iter().any(|m| after.starts_with(m)) {
                if let Some(name) = ident_before(code, colon) {
                    out.push((name.to_string(), idx));
                }
            }
        }
    }
    out
}

/// C1 — shared mutable state originating outside a parallel region but
/// used inside its closure: `RefCell`/`Cell`-typed bindings, and `&mut`
/// borrows of names `let`-bound outside the region.
fn c1_captured_mutable_state(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let regions = parallel_regions(ctx);
    if regions.is_empty() {
        return;
    }
    let cell_bindings = typed_binding_lines(ctx, &["RefCell", "Cell"]);
    let let_bindings = let_binding_lines(ctx);
    for region in &regions {
        let inside = |decl: usize| region.start <= decl && decl <= region.end;
        // Interior-mutable bindings declared outside, touched inside.
        let mut flagged: Vec<&str> = Vec::new();
        for (name, decl) in &cell_bindings {
            if inside(*decl) || flagged.contains(&name.as_str()) {
                continue;
            }
            for idx in region.start..=region.end.min(ctx.lines.len() - 1) {
                if ctx.is_test[idx] || idx == *decl {
                    continue;
                }
                if has_ident(ctx.code(idx), name) {
                    flagged.push(name);
                    out.push(finding(
                        ctx,
                        "C1",
                        idx,
                        format!(
                            "`{name}` is RefCell/Cell state declared outside this parallel region — interior mutation makes the merge order observable; give each cell its own state"
                        ),
                    ));
                    break;
                }
            }
        }
        // `&mut name` borrows of names bound outside the region (and not
        // rebound inside it — per-cell locals are fine).
        let mut mut_flagged: Vec<String> = Vec::new();
        for idx in region.start..=region.end.min(ctx.lines.len() - 1) {
            if ctx.is_test[idx] {
                continue;
            }
            let code = ctx.code(idx);
            let mut from = 0usize;
            while let Some(pos) = code[from..].find("&mut ") {
                let at = from + pos + "&mut ".len();
                let name: String =
                    code[at..].chars().take_while(|&c| is_ident_char(c)).collect();
                from = at;
                if name.is_empty() || mut_flagged.contains(&name) {
                    continue;
                }
                let outside_decl = let_bindings
                    .iter()
                    .any(|(n, decl)| n == &name && !inside(*decl));
                let inside_decl = let_bindings
                    .iter()
                    .any(|(n, decl)| n == &name && inside(*decl));
                if outside_decl && !inside_decl {
                    mut_flagged.push(name.clone());
                    out.push(finding(
                        ctx,
                        "C1",
                        idx,
                        format!(
                            "`&mut {name}` borrows state declared outside this parallel region — cells must not share mutable state"
                        ),
                    ));
                }
            }
        }
    }
}

/// C2 — `static mut` or `Ordering::Relaxed` anywhere in non-test code.
/// Each legitimate site carries a per-line `allow(C2)` pragma arguing why
/// relaxed ordering cannot reach results.
fn c2_relaxed_and_static_mut(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for (idx, line) in ctx.lines.iter().enumerate() {
        if ctx.is_test[idx] {
            continue;
        }
        let code = &line.code;
        if code.contains("Ordering::Relaxed") {
            out.push(finding(
                ctx,
                "C2",
                idx,
                "`Ordering::Relaxed` — justify why reordering cannot reach results (allow(C2) with the proof) or strengthen the ordering"
                    .to_string(),
            ));
        }
        if let Some(pos) = find_keyword(code, "static") {
            if code[pos + "static".len()..].trim_start().starts_with("mut ") {
                out.push(finding(
                    ctx,
                    "C2",
                    idx,
                    "`static mut` is an un-synchronized global — use an atomic or a passed-in &mut"
                        .to_string(),
                ));
            }
        }
    }
}

/// M1 (per-file half) — `NETPACK_*` reads whose name is not in the
/// registry. The lint crate itself is exempt: it names every variable
/// without reading any. The workspace-level cross-checks (dead entries,
/// README, gates) run in [`crate::registry::cross_check`].
fn m1_unregistered_env_reads(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if ctx.path.starts_with("crates/lint/") {
        return;
    }
    for (idx, name) in registry::reads_in(ctx.lines, ctx.is_test) {
        if registry::find(&name).is_none() {
            out.push(finding(
                ctx,
                "M1",
                idx,
                format!(
                    "`{name}` is read but not in the mode-gate registry (crates/lint/src/registry.rs) — register it with kind, gate, and README row"
                ),
            ));
        }
    }
}

/// E1 — panics in library-crate non-test code.
fn e1_panics(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !E1_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for (idx, line) in ctx.lines.iter().enumerate() {
        if ctx.is_test[idx] {
            continue;
        }
        let code = &line.code;
        for pattern in [".unwrap()", ".expect(", "panic!("] {
            if code.contains(pattern) {
                out.push(finding(
                    ctx,
                    "E1",
                    idx,
                    format!(
                        "`{}` in library code — return a typed error or prove the invariant in an `expect` message and suppress",
                        pattern.trim_end_matches('(')
                    ),
                ));
            }
        }
    }
}
