#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `netpack-lint` — determinism & numeric-safety static analysis for the
//! NetPack workspace.
//!
//! Every fast path in this repo (incremental water-filling, the flow- and
//! packet-level simulator fast modes) carries a bit-identity contract with
//! its from-scratch reference. That contract dies quietly the moment code
//! iterates a hash-ordered container, reads the wall clock into simulation
//! state, draws unseeded randomness, or re-associates a float reduction
//! inside a parallel fold. The property tests sample those hazards; this
//! crate forbids them *statically*, before a single simulation runs.
//!
//! Five rules (fixture-tested in `tests/`):
//!
//! | rule | hazard |
//! |------|--------|
//! | `D1` | `HashMap`/`HashSet` iteration in sim/placement crates |
//! | `D2` | `Instant::now` / `SystemTime` outside `metrics::perf` |
//! | `D3` | unseeded randomness (`thread_rng`, `from_entropy`, `rand::random`) |
//! | `N1` | float `+=` / `.sum()` inside parallel or batched-round regions |
//! | `E1` | `.unwrap()` / `.expect()` / `panic!` in library-crate code |
//!
//! Test code is exempt from every rule. Individual findings are silenced
//! with `// netpack-lint: allow(<rule>): <reason>` (the reason is
//! mandatory); pre-existing debt is grandfathered in `lint-baseline.txt`
//! as per-file counts, so only *new* findings fail the build. The tool is
//! std-only — no `syn`, no proc-macro machinery — built on a small
//! comment/string/raw-string-aware scanner ([`lexer`]).

pub mod baseline;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{analyze_source, over_baseline, run, run_root, FileReport, RunReport};
pub use rules::{Finding, D1_CRATES, E1_CRATES, RULES};
