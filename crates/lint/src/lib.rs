#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `netpack-lint` — determinism, concurrency & mode-gate static analysis
//! for the NetPack workspace.
//!
//! Every fast path in this repo (incremental water-filling, the flow- and
//! packet-level simulator fast modes, the speculative batch engine)
//! carries a bit-identity contract with its from-scratch reference. That
//! contract dies quietly the moment code iterates a hash-ordered
//! container, reads the wall clock into simulation state, draws unseeded
//! randomness, re-associates a float reduction inside a parallel fold,
//! shares mutable state across parallel cells, or ships a mode switch
//! nobody documented or gated. The property tests sample those hazards;
//! this crate forbids them *statically*, before a single simulation runs.
//!
//! Nine rules (fixture-tested in `tests/`; `--explain <rule>` prints the
//! full rationale):
//!
//! | rule | hazard |
//! |------|--------|
//! | `D1` | `HashMap`/`HashSet` iteration in sim/placement crates |
//! | `D2` | `Instant::now` / `SystemTime` outside `metrics::perf` |
//! | `D3` | unseeded randomness (`thread_rng`, `from_entropy`, `rand::random`) |
//! | `N1` | float `+=` / `.sum()` inside parallel or batched-round regions |
//! | `E1` | `.unwrap()` / `.expect()` / `panic!` in library-crate code |
//! | `C1` | shared mutable state captured by a parallel closure |
//! | `C2` | `static mut` / `Ordering::Relaxed` without a per-site proof |
//! | `M1` | `NETPACK_*` env reads outside the declared mode-gate registry |
//! | `P1` | suppression pragmas that no longer suppress anything |
//!
//! Since v2 the analysis is scope-aware: a block/item tree ([`scopes`])
//! built on the same dependency-free scanner ([`lexer`]) attributes every
//! finding to its enclosing function and lets the concurrency rules
//! distinguish state declared inside a parallel closure from state
//! captured across it. The [`registry`] module declares every `NETPACK_*`
//! variable once and cross-checks it against workspace reads, the README
//! env table, and `scripts/check.sh` gates.
//!
//! Test code is exempt from every rule. Individual findings are silenced
//! with `// netpack-lint: allow(<rule>): <reason>` (the reason is
//! mandatory, and a pragma that suppresses nothing is itself a P1
//! finding); pre-existing debt is grandfathered in `lint-baseline.txt`
//! as per-file counts, so only *new* findings fail the build. The tool is
//! std-only — no `syn`, no proc-macro machinery.

pub mod baseline;
pub mod engine;
pub mod lexer;
pub mod registry;
pub mod rules;
pub mod scopes;

pub use engine::{analyze_source, over_baseline, run, run_root, FileReport, OutputFormat, RunReport};
pub use rules::{explain, Finding, D1_CRATES, E1_CRATES, RULES};
