//! CLI for `netpack-lint`. Run from the workspace root:
//!
//! ```text
//! cargo run -p netpack-lint                      # lint, exit 1 on new findings
//! cargo run -p netpack-lint -- --format=json     # machine-readable findings
//! cargo run -p netpack-lint -- --explain C1      # long-form rule rationale
//! cargo run -p netpack-lint -- --update-baseline # re-grandfather current state
//! cargo run -p netpack-lint -- --root DIR --baseline FILE
//! ```

use netpack_lint::engine::OutputFormat;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline: Option<PathBuf> = None;
    let mut update = false;
    let mut format = OutputFormat::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => return usage("--baseline needs a file path"),
            },
            "--update-baseline" => update = true,
            "--format=json" => format = OutputFormat::Json,
            "--format=text" => format = OutputFormat::Text,
            "--format" => match args.next().as_deref() {
                Some("json") => format = OutputFormat::Json,
                Some("text") => format = OutputFormat::Text,
                _ => return usage("--format needs `json` or `text`"),
            },
            "--explain" => {
                return match args.next() {
                    Some(rule) => explain(&rule),
                    None => usage("--explain needs a rule id (try D1, C1, M1, P1)"),
                };
            }
            "--help" | "-h" => {
                println!(
                    "netpack-lint: determinism, concurrency & mode-gate checks\n\
                     options: [--root DIR] [--baseline FILE] [--update-baseline]\n\
                     \x20        [--format=json|text] [--explain RULE]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let baseline = baseline.unwrap_or_else(|| root.join("lint-baseline.txt"));
    match netpack_lint::run(&root, &baseline, update, format) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("netpack-lint: i/o error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Print the long-form rationale for one rule; exit 2 on unknown ids so
/// scripts can distinguish "explained" from "no such rule".
fn explain(rule: &str) -> ExitCode {
    match netpack_lint::rules::explain(rule) {
        Some(text) => {
            println!("{text}");
            if rule == "M1" {
                println!("\nRegistered variables:");
                for var in netpack_lint::registry::REGISTRY {
                    println!("  {:<34} {}", var.name, var.desc);
                }
            }
            ExitCode::SUCCESS
        }
        None => usage(&format!(
            "unknown rule `{rule}` — rules are {}",
            netpack_lint::RULES.join(", ")
        )),
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("netpack-lint: {problem} (see --help)");
    ExitCode::from(2)
}
