//! CLI for `netpack-lint`. Run from the workspace root:
//!
//! ```text
//! cargo run -p netpack-lint                      # lint, exit 1 on new findings
//! cargo run -p netpack-lint -- --update-baseline # re-grandfather current state
//! cargo run -p netpack-lint -- --root DIR --baseline FILE
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline: Option<PathBuf> = None;
    let mut update = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => return usage("--baseline needs a file path"),
            },
            "--update-baseline" => update = true,
            "--help" | "-h" => {
                println!(
                    "netpack-lint: determinism & numeric-safety checks\n\
                     options: [--root DIR] [--baseline FILE] [--update-baseline]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let baseline = baseline.unwrap_or_else(|| root.join("lint-baseline.txt"));
    match netpack_lint::run(&root, &baseline, update) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("netpack-lint: i/o error: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("netpack-lint: {problem} (see --help)");
    ExitCode::from(2)
}
