//! The committed findings baseline.
//!
//! Grandfathered findings live in `lint-baseline.txt` at the workspace
//! root as `RULE path count` lines. Counts (rather than line numbers)
//! keep the file stable under unrelated edits that move code around: a
//! file is only flagged when its per-rule finding count *exceeds* the
//! recorded count. Shrinking a count below the baseline is rewarded the
//! next time someone runs `--update-baseline`, which rewrites the file
//! from the current tree.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// `(rule, path) → allowed finding count`.
pub type Baseline = BTreeMap<(String, String), usize>;

/// Parse a baseline file. A missing file is an empty baseline.
pub fn load(path: &Path) -> io::Result<Baseline> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Baseline::new()),
        Err(e) => return Err(e),
    };
    let mut baseline = Baseline::new();
    for (n, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (rule, file, count) = match (parts.next(), parts.next(), parts.next()) {
            (Some(r), Some(f), Some(c)) => (r, f, c),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{}: expected `RULE path count`", path.display(), n + 1),
                ))
            }
        };
        let count: usize = count.parse().map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}:{}: bad count `{count}`", path.display(), n + 1),
            )
        })?;
        baseline.insert((rule.to_string(), file.to_string()), count);
    }
    Ok(baseline)
}

/// Serialize `counts` in the committed format (sorted, commented header).
pub fn render(counts: &Baseline) -> String {
    let mut out = String::from(
        "# netpack-lint baseline: grandfathered findings as `RULE path count`.\n\
         # Regenerate with `cargo run -p netpack-lint -- --update-baseline`.\n\
         # New findings (counts above these) fail scripts/check.sh.\n",
    );
    for ((rule, file), count) in counts {
        out.push_str(&format!("{rule} {file} {count}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_render_and_load() {
        let mut b = Baseline::new();
        b.insert(("E1".into(), "crates/topology/src/cluster.rs".into()), 4);
        b.insert(("E1".into(), "crates/model/src/ring.rs".into()), 2);
        let rendered = render(&b);
        let dir = std::env::temp_dir().join("netpack-lint-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.txt");
        std::fs::write(&path, &rendered).unwrap();
        assert_eq!(load(&path).unwrap(), b);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_empty() {
        let path = Path::new("/nonexistent/netpack-lint-baseline");
        assert!(load(path).unwrap().is_empty());
    }

    #[test]
    fn malformed_lines_error() {
        let dir = std::env::temp_dir().join("netpack-lint-baseline-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.txt");
        std::fs::write(&path, "E1 only-two-fields\n").unwrap();
        assert!(load(&path).is_err());
        std::fs::write(&path, "E1 file not-a-number\n").unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
