//! Property tests for the flow-level simulator: accounting invariants that
//! must hold for any trace and any placer.

use netpack_flowsim::{InaMode, SimConfig, Simulation, SteadyMode};
use netpack_placement::{GpuBalance, NetPackPlacer, Placer, RandomPlacer};
use netpack_topology::{Cluster, ClusterSpec, JobId};
use netpack_workload::{Job, ModelKind, Trace};
use proptest::prelude::*;

fn arb_trace(max_gpus: usize) -> impl Strategy<Value = Trace> {
    proptest::collection::vec(
        (1usize..9, 1u64..60, 0u32..200, 0usize..6),
        1..12,
    )
    .prop_map(move |raw| {
        let jobs: Vec<Job> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (gpus, iters, arrival_ds, model))| {
                Job::builder(
                    JobId(i as u64),
                    ModelKind::ALL[model],
                    gpus.min(max_gpus.max(1)),
                )
                .iterations(iters)
                .arrival_s(arrival_ds as f64 / 10.0)
                .build()
            })
            .collect();
        Trace::from_jobs(jobs)
    })
}

fn placers() -> Vec<Box<dyn Placer>> {
    vec![
        Box::new(NetPackPlacer::default()),
        Box::new(GpuBalance),
        Box::new(RandomPlacer::new(5)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every job is accounted for exactly once; completion times are
    /// ordered sanely; no job beats the laws of physics.
    #[test]
    fn accounting_invariants(trace in arb_trace(16)) {
        let spec = ClusterSpec {
            racks: 2,
            servers_per_rack: 4,
            gpus_per_server: 2,
            ..ClusterSpec::paper_default()
        };
        for placer in placers() {
            let name = placer.name();
            let result = Simulation::new(
                Cluster::new(spec.clone()),
                placer,
                SimConfig::default(),
            )
            .run(&trace);
            prop_assert_eq!(
                result.outcomes.len() + result.unfinished.len(),
                trace.jobs().len(),
                "{} lost a job",
                name
            );
            for o in &result.outcomes {
                let job = trace.jobs().iter().find(|j| j.id == o.id).expect("known job");
                prop_assert!(o.start_s + 1e-9 >= o.arrival_s, "{name}: started before arrival");
                prop_assert!(o.finish_s >= o.start_s, "{name}: finished before start");
                // Can't finish faster than the communication-free ideal.
                let ideal = job.ideal_time_s();
                prop_assert!(
                    o.finish_s - o.start_s + 1e-6 >= ideal,
                    "{name}: ran faster than ideal ({} < {ideal})",
                    o.finish_s - o.start_s
                );
                prop_assert!(o.finish_s <= result.makespan_s + 1e-6);
            }
        }
    }

    /// Determinism: the same trace and placer produce identical results.
    #[test]
    fn replay_is_deterministic(trace in arb_trace(8)) {
        let spec = ClusterSpec {
            racks: 1,
            servers_per_rack: 4,
            gpus_per_server: 2,
            ..ClusterSpec::paper_default()
        };
        let run = || {
            Simulation::new(
                Cluster::new(spec.clone()),
                Box::new(NetPackPlacer::default()),
                SimConfig::default(),
            )
            .run(&trace)
        };
        prop_assert_eq!(run(), run());
    }

    /// Raising cluster capacity never loses jobs, and total GPU-seconds of
    /// finished jobs are identical across placers (work conservation).
    #[test]
    fn work_is_conserved_across_placers(trace in arb_trace(8)) {
        let spec = ClusterSpec {
            racks: 2,
            servers_per_rack: 4,
            gpus_per_server: 4,
            ..ClusterSpec::paper_default()
        };
        let mut serial_sums = Vec::new();
        for placer in placers() {
            let result = Simulation::new(
                Cluster::new(spec.clone()),
                placer,
                SimConfig::default(),
            )
            .run(&trace);
            prop_assert!(result.unfinished.is_empty());
            let sum: f64 = result.outcomes.iter().map(|o| o.serial_time_s).sum();
            serial_sums.push(sum);
        }
        for w in serial_sums.windows(2) {
            prop_assert!((w[0] - w[1]).abs() < 1e-6);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The incremental steady-state path replays any trace with a
    /// *bit-identical* `SimResult` — outcomes, unfinished set, makespan,
    /// telemetry, and GPU-seconds — to the from-scratch reference path,
    /// across random clusters, INA modes (including synchronous), and
    /// placers. Exact equality is deliberate: the warm estimator must
    /// replay the very same float-op sequence, not merely approximate it.
    #[test]
    fn incremental_replay_is_bit_identical_to_scratch(
        (trace, racks, sync_mode, telemetry, placer_pick) in (
            arb_trace(8),
            1usize..3,
            any::<bool>(),
            any::<bool>(),
            0usize..3,
        )
    ) {
        let spec = ClusterSpec {
            racks,
            servers_per_rack: 4,
            gpus_per_server: 2,
            ..ClusterSpec::paper_default()
        };
        let ina_mode = if sync_mode { InaMode::Synchronous } else { InaMode::Statistical };
        let run = |steady| {
            let config = SimConfig {
                steady,
                ina_mode,
                telemetry_interval_s: telemetry.then_some(20.0),
                ..SimConfig::default()
            };
            let placer: Box<dyn Placer> = match placer_pick {
                0 => Box::new(NetPackPlacer::default()),
                1 => Box::new(GpuBalance),
                _ => Box::new(RandomPlacer::new(5)),
            };
            Simulation::new(Cluster::new(spec.clone()), placer, config).run(&trace)
        };
        prop_assert_eq!(run(SteadyMode::Incremental), run(SteadyMode::Scratch));
    }
}
