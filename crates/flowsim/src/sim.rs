//! The event loop of the flow-level simulator.
//!
//! # Fast path
//!
//! The loop's per-event cost is proportional to what changed, not to the
//! cluster:
//!
//! - **Steady state** — in [`SteadyMode::Incremental`] (the default) the
//!   manager keeps one warm water-filling estimator across the whole run
//!   and re-solves only the resource-connected components touched by an
//!   arrival batch or completion. The result is bit-identical to a
//!   from-scratch solve ([`SteadyMode::Scratch`]), which is what the
//!   `NETPACK_SIM` equivalence gate in `scripts/check.sh` checks.
//! - **Completions** — rather than scanning every running job per event,
//!   predicted finish times live in a lazy-invalidation min-heap. A
//!   job's fluid progress is anchored at the last rate change
//!   (`remaining_at_anchor` at `anchor_s`), so its predicted absolute
//!   finish time is constant while its rate is constant and heap entries
//!   stay valid without re-keying. When a rate *does* change, the job's
//!   generation counter is bumped and a fresh entry pushed; entries with
//!   stale generations are discarded when they surface at the top.
//! - **Epoch grid** — the next scheduling-epoch time is computed in
//!   closed form (no stepping loop), so a huge gap between the last
//!   epoch and the next arrival costs O(1).
//!
//! [`SimResult::perf`] records the work: `sim_events`, `heap_pushes`,
//! `heap_stale_pops` counters and `events`, `resolve_component`,
//! `resolve_full`, `heap_ops` phase timers, plus the warm estimator's
//! own counters (`wf_*`).

use crate::{JobOutcome, SimResult, TelemetrySample};
use netpack_core::{JobManager, ManagerConfig};
use netpack_metrics::PerfCounters;
use netpack_placement::Placer;
use netpack_topology::{Cluster, JobId, LinkId};
use netpack_waterfill::SteadyState;
use netpack_workload::{Job, Trace};
use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeMap, BinaryHeap};
use netpack_metrics::Stopwatch;

/// Which INA memory-multiplexing mode the cluster's switches run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InaMode {
    /// Statistical multiplexing (the paper's setting): switch memory is a
    /// shared pool, estimated by Algorithm 1.
    #[default]
    Statistical,
    /// Synchronous multiplexing (SwitchML-style equal static partitions):
    /// the comparison substrate for the §2.2 claims at cluster scale.
    Synchronous,
}

/// How the event loop obtains the steady state after the running set
/// changes. Both paths produce bit-identical results; `Scratch` exists as
/// the reference for equivalence tests and before/after benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SteadyMode {
    /// Maintain one warm incremental estimator across the run, re-solving
    /// only the components touched by each event (the fast default).
    #[default]
    Incremental,
    /// Re-run Algorithm 1 from scratch over all running jobs per event.
    Scratch,
}

impl SteadyMode {
    /// Read the mode from the `NETPACK_SIM` environment variable:
    /// `scratch` selects [`SteadyMode::Scratch`], anything else (or
    /// unset) selects [`SteadyMode::Incremental`].
    pub fn from_env() -> Self {
        match std::env::var("NETPACK_SIM").as_deref() {
            Ok("scratch") => SteadyMode::Scratch,
            _ => SteadyMode::Incremental,
        }
    }
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Scheduling configuration forwarded to the job manager.
    pub manager: ManagerConfig,
    /// Hard cap on simulated time; jobs still running at the cap are
    /// reported in [`SimResult::unfinished`]. Default: 90 days.
    pub max_sim_time_s: f64,
    /// When set, sample per-link bandwidth usage and per-job rates at
    /// every event and at this fixed interval (Fig. 15 telemetry).
    pub telemetry_interval_s: Option<f64>,
    /// Switch memory-multiplexing mode (default statistical).
    pub ina_mode: InaMode,
    /// Steady-state recomputation strategy (default: `NETPACK_SIM` env,
    /// falling back to incremental).
    pub steady: SteadyMode,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            manager: ManagerConfig::default(),
            max_sim_time_s: 90.0 * 86_400.0,
            telemetry_interval_s: None,
            ina_mode: InaMode::default(),
            steady: SteadyMode::from_env(),
        }
    }
}

/// Per-running-job fluid state, anchored at the last rate change.
///
/// Progress is *lazy*: nothing is updated per event. The remaining
/// iteration count at time `t` is derived from the anchor, and the
/// predicted absolute finish time is constant while `iter_time_s` is
/// constant — that invariant is what keeps completion-heap entries valid
/// without per-event re-keying.
#[derive(Debug, Clone, Copy)]
struct Progress {
    /// Compute phase seconds per iteration (constant per job).
    compute_time_s: f64,
    /// Gradient size in gigabits (constant per job).
    gradient_gbits: f64,
    /// Time the placement was enforced and training began.
    start_s: f64,
    /// Seconds per iteration under the current steady state.
    iter_time_s: f64,
    /// Remaining iterations at `anchor_s`.
    remaining_at_anchor: f64,
    /// Time of the last rate change (or the start).
    anchor_s: f64,
    /// Bumped on every rate change; completion-heap entries carrying an
    /// older generation are stale.
    generation: u64,
}

impl Progress {
    /// Remaining iterations at absolute time `t` under the current rate.
    fn remaining_at(&self, t: f64) -> f64 {
        if self.iter_time_s.is_finite() && self.iter_time_s > 0.0 {
            self.remaining_at_anchor - (t - self.anchor_s) / self.iter_time_s
        } else {
            self.remaining_at_anchor
        }
    }

    /// Predicted absolute finish time (infinite while the job has no
    /// finite rate yet).
    fn predicted_finish_s(&self) -> f64 {
        if self.iter_time_s.is_finite() && self.iter_time_s > 0.0 {
            self.anchor_s + self.remaining_at_anchor.max(0.0) * self.iter_time_s
        } else {
            f64::INFINITY
        }
    }
}

/// A completion-heap entry. Compared by finish time (then id, then
/// generation, for deterministic ordering under ties).
#[derive(Debug, Clone, Copy)]
struct Completion {
    finish_s: f64,
    id: JobId,
    generation: u64,
}

impl PartialEq for Completion {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Completion {}

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> Ordering {
        self.finish_s
            .total_cmp(&other.finish_s)
            .then(self.id.cmp(&other.id))
            .then(self.generation.cmp(&other.generation))
    }
}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Next epoch-grid point at or after `clock` and strictly after
/// `last_epoch_run`, in closed form. Returns infinity when the grid can
/// no longer advance in f64 (adding `epoch` saturates), so callers treat
/// the epoch as unreachable instead of spinning.
fn next_epoch_after(clock: f64, last_epoch_run: f64, epoch: f64) -> f64 {
    let mut t = (clock / epoch).floor() * epoch;
    if t < clock - 1e-9 {
        t += epoch;
    }
    if t <= last_epoch_run + 1e-9 {
        // Jump the whole gap at once instead of stepping epoch by epoch.
        let steps = ((last_epoch_run + 1e-9 - t) / epoch).floor() + 1.0;
        t += steps * epoch;
        if t <= last_epoch_run + 1e-9 {
            t += epoch;
        }
    }
    if t <= last_epoch_run + 1e-9 || t < clock - 1e-9 {
        f64::INFINITY
    } else {
        t
    }
}

/// A trace-replay simulation over one cluster and one placer.
pub struct Simulation {
    cluster: Cluster,
    placer: Box<dyn Placer>,
    config: SimConfig,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("placer", &self.placer.name())
            .field("servers", &self.cluster.num_servers())
            .finish()
    }
}

impl Simulation {
    /// Build a simulation.
    pub fn new(cluster: Cluster, placer: Box<dyn Placer>, config: SimConfig) -> Self {
        Simulation {
            cluster,
            placer,
            config,
        }
    }

    /// Replay `trace` to completion (or the time cap) and return the
    /// per-job outcomes.
    pub fn run(self, trace: &Trace) -> SimResult {
        let Simulation {
            cluster,
            placer,
            config,
        } = self;
        let epoch = config.manager.epoch_s.max(1e-6);
        let total_gpus = cluster.total_gpus();
        // The warm estimator models statistical multiplexing (Algorithm 1);
        // synchronous mode always solves from scratch.
        let use_incremental =
            config.steady == SteadyMode::Incremental && config.ina_mode == InaMode::Statistical;
        let mut manager = JobManager::new(cluster, placer, config.manager);
        let mut result = SimResult::default();
        let mut perf = PerfCounters::new();

        // Arrival queue (trace is sorted by arrival time).
        let mut arrivals: std::collections::VecDeque<Job> = trace
            .jobs()
            .iter()
            .filter(|j| {
                if j.gpus > total_gpus {
                    // Unplaceable in this cluster: report, don't deadlock.
                    result.unfinished.push(j.id);
                    false
                } else {
                    true
                }
            })
            .cloned()
            .collect();

        let mut running: BTreeMap<JobId, Progress> = BTreeMap::new();
        let mut heap: BinaryHeap<Reverse<Completion>> = BinaryHeap::new();
        let mut used_gpus: usize = 0;
        let mut clock = 0.0f64;
        let mut last_epoch_run = f64::NEG_INFINITY;
        // Scratch-mode state cache; incremental mode reads the manager's.
        let mut state: Option<SteadyState> = None;
        let mut state_ready = false;
        let mut next_telemetry = 0.0f64;

        loop {
            let event_start = Stopwatch::start();
            perf.incr("sim_events", 1);

            // -------- determine the next event time --------
            let next_arrival = arrivals.front().map(|j| j.arrival_s);
            let next_epoch = if manager.pending().is_empty() {
                None
            } else {
                Some(next_epoch_after(clock, last_epoch_run, epoch))
            };
            let heap_start = Stopwatch::start();
            let next_completion = loop {
                match heap.peek() {
                    None => break f64::INFINITY,
                    Some(&Reverse(c)) => {
                        let live = running
                            .get(&c.id)
                            .is_some_and(|p| p.generation == c.generation);
                        if live {
                            break c.finish_s;
                        }
                        heap.pop();
                        perf.incr("heap_stale_pops", 1);
                    }
                }
            };
            perf.record("heap_ops", heap_start.elapsed());
            let next_tele = config
                .telemetry_interval_s
                .map(|_| next_telemetry)
                .unwrap_or(f64::INFINITY);

            let mut t = f64::INFINITY;
            for cand in [
                next_arrival.unwrap_or(f64::INFINITY),
                next_epoch.unwrap_or(f64::INFINITY),
                next_completion,
                next_tele,
            ] {
                t = t.min(cand);
            }
            if !t.is_finite() {
                // No arrivals, no reachable epoch, no finite completions:
                // drain everything still in flight as unfinished.
                result.unfinished.extend(running.keys().copied());
                result.unfinished.extend(arrivals.iter().map(|j| j.id));
                result.unfinished.extend(manager.pending().iter().map(|j| j.id));
                break;
            }
            let t = t.clamp(clock, config.max_sim_time_s);

            // -------- account GPU time to t --------
            let dt = t - clock;
            if dt > 0.0 {
                result.gpu_seconds += used_gpus as f64 * dt;
            }
            clock = t;
            if clock >= config.max_sim_time_s {
                result.unfinished.extend(running.keys().copied());
                result.unfinished.extend(arrivals.iter().map(|j| j.id));
                result.unfinished.extend(manager.pending().iter().map(|j| j.id));
                break;
            }

            let mut rates_dirty = false;

            // -------- arrivals --------
            while arrivals
                .front()
                .is_some_and(|j| j.arrival_s <= clock + 1e-9)
            {
                manager.submit(arrivals.pop_front().expect("peeked"));
            }

            // -------- completions --------
            let heap_start = Stopwatch::start();
            while let Some(&Reverse(c)) = heap.peek() {
                let live = running
                    .get(&c.id)
                    .is_some_and(|p| p.generation == c.generation);
                if !live {
                    heap.pop();
                    perf.incr("heap_stale_pops", 1);
                    continue;
                }
                if c.finish_s > clock + 1e-9 {
                    break;
                }
                heap.pop();
                let p = running.remove(&c.id).expect("live entry");
                let (job, _placement) = manager.finish(c.id).expect("job was running");
                used_gpus -= job.gpus;
                result.outcomes.push(JobOutcome {
                    id: c.id,
                    gpus: job.gpus,
                    arrival_s: job.arrival_s,
                    start_s: p.start_s,
                    finish_s: clock,
                    serial_time_s: job.serial_time_s(),
                });
                rates_dirty = true;
            }
            perf.record("heap_ops", heap_start.elapsed());

            // -------- scheduling epoch --------
            let on_epoch_grid = ((clock / epoch).round() * epoch - clock).abs() < 1e-6;
            if !manager.pending().is_empty() && on_epoch_grid && clock > last_epoch_run + 1e-9 {
                last_epoch_run = clock;
                let placed = perf.time("place", || manager.run_epoch());
                for (job, _) in placed {
                    used_gpus += job.gpus;
                    running.insert(
                        job.id,
                        Progress {
                            compute_time_s: job.compute_time_s(),
                            gradient_gbits: job.gradient_gbits(),
                            start_s: clock,
                            iter_time_s: f64::INFINITY, // set by the re-rate below
                            remaining_at_anchor: job.iterations as f64,
                            anchor_s: clock,
                            generation: 0,
                        },
                    );
                    rates_dirty = true;
                }
            }

            // -------- rate recomputation --------
            if rates_dirty || !state_ready {
                if use_incremental {
                    let solve_start = Stopwatch::start();
                    let _ = manager.steady_state_incremental();
                    perf.record("resolve_component", solve_start.elapsed());
                } else {
                    let s = perf.time("resolve_full", || match config.ina_mode {
                        InaMode::Statistical => manager.steady_state(),
                        InaMode::Synchronous => {
                            let cluster = manager.cluster();
                            let placed: Vec<netpack_waterfill::PlacedJob> = manager
                                .running()
                                .iter()
                                .map(|(j, p)| netpack_waterfill::PlacedJob::new(j.id, cluster, p))
                                .collect();
                            netpack_waterfill::estimate_synchronous(cluster, &placed)
                        }
                    });
                    state = Some(s);
                }
                state_ready = true;
                let s = if use_incremental {
                    manager.incremental_state().expect("just resolved")
                } else {
                    state.as_ref().expect("just solved")
                };
                for (id, p) in running.iter_mut() {
                    let comm = s
                        .comm_time_s(*id, p.gradient_gbits)
                        .unwrap_or(f64::INFINITY);
                    let iter_time = p.compute_time_s + comm;
                    // Re-anchor (and re-key the heap) only on an actual
                    // change: an unchanged rate keeps the existing entry's
                    // predicted finish time exactly valid.
                    if iter_time != p.iter_time_s {
                        p.remaining_at_anchor = p.remaining_at(clock);
                        p.anchor_s = clock;
                        p.iter_time_s = iter_time;
                        p.generation += 1;
                        let finish = p.predicted_finish_s();
                        if finish.is_finite() {
                            heap.push(Reverse(Completion {
                                finish_s: finish,
                                id: *id,
                                generation: p.generation,
                            }));
                            perf.incr("heap_pushes", 1);
                        }
                    }
                }
            }

            // -------- telemetry --------
            if let Some(interval) = config.telemetry_interval_s {
                if clock + 1e-9 >= next_telemetry {
                    next_telemetry = clock + interval;
                }
                let view = if use_incremental {
                    manager.incremental_state()
                } else {
                    state.as_ref()
                };
                if let Some(s) = view {
                    let cluster = manager.cluster();
                    let link_used: Vec<f64> = (0..cluster.num_links())
                        .map(|i| {
                            let link = LinkId::from_index(i, cluster);
                            link.capacity_gbps(cluster) - s.link_residual_gbps(link, cluster)
                        })
                        .collect();
                    let mut job_rates: Vec<(JobId, f64)> = running
                        .keys()
                        .filter_map(|&id| {
                            s.job_rate_gbps(id)
                                .filter(|r| r.is_finite())
                                .map(|r| (id, r))
                        })
                        .collect();
                    job_rates.sort_by_key(|&(id, _)| id);
                    result.telemetry.push(TelemetrySample {
                        time_s: clock,
                        link_used_gbps: link_used,
                        job_rates,
                    });
                }
            }

            perf.record("events", event_start.elapsed());

            // -------- termination --------
            if arrivals.is_empty() && manager.pending().is_empty() && running.is_empty() {
                break;
            }
        }
        result.makespan_s = clock;
        result.outcomes.sort_by(|a, b| a.finish_s.total_cmp(&b.finish_s));
        result.unfinished.sort_unstable();
        for w in result.unfinished.windows(2) {
            assert!(w[0] != w[1], "job {} reported unfinished twice", w[0]);
        }
        if let Some(stats) = manager.waterfill_stats() {
            perf.incr("wf_pushes", stats.pushes);
            perf.incr("wf_removes", stats.removes);
            perf.incr("wf_components_solved", stats.components_solved);
            perf.incr("wf_jobs_resolved", stats.jobs_resolved);
            perf.incr("wf_jobs_reused", stats.jobs_reused);
        }
        result.perf = perf;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpack_placement::{GpuBalance, NetPackPlacer};
    use netpack_topology::ClusterSpec;
    use netpack_workload::{ModelKind, TraceKind, TraceSpec};

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec {
            racks: 1,
            servers_per_rack: 4,
            gpus_per_server: 4,
            ..ClusterSpec::paper_default()
        })
    }

    fn quick_config() -> SimConfig {
        SimConfig::default()
    }

    #[test]
    fn single_local_job_finishes_in_ideal_time() {
        let trace = Trace::from_jobs(vec![Job::builder(JobId(0), ModelKind::ResNet50, 4)
            .iterations(100)
            .build()]);
        let sim = Simulation::new(cluster(), Box::new(NetPackPlacer::default()), quick_config());
        let result = sim.run(&trace);
        assert_eq!(result.outcomes.len(), 1);
        let o = &result.outcomes[0];
        // Placed at t=0 (epoch grid) on one server: no communication.
        let ideal = 100.0 * ModelKind::ResNet50.compute_time_s();
        assert!((o.jct_s() - ideal).abs() < 1e-6, "jct {}", o.jct_s());
        assert!(result.unfinished.is_empty());
        assert!(result.perf.counter("sim_events") > 0);
    }

    #[test]
    fn spanning_job_pays_communication_time() {
        let trace = Trace::from_jobs(vec![Job::builder(JobId(0), ModelKind::Vgg16, 8)
            .iterations(50)
            .build()]);
        let sim = Simulation::new(cluster(), Box::new(NetPackPlacer::default()), quick_config());
        let result = sim.run(&trace);
        let o = &result.outcomes[0];
        let ideal = 50.0 * ModelKind::Vgg16.compute_time_s();
        assert!(o.jct_s() > ideal, "communication must cost time");
        // DE < 1 because of that overhead.
        assert!(result.distribution_efficiency().unwrap() < 1.0);
    }

    #[test]
    fn queued_jobs_wait_for_capacity() {
        // Two 16-GPU jobs on a 16-GPU cluster: strictly serialized.
        let mk = |id: u64| {
            Job::builder(JobId(id), ModelKind::AlexNet, 16)
                .iterations(100)
                .build()
        };
        let trace = Trace::from_jobs(vec![mk(0), mk(1)]);
        let sim = Simulation::new(cluster(), Box::new(NetPackPlacer::default()), quick_config());
        let result = sim.run(&trace);
        assert_eq!(result.outcomes.len(), 2);
        let first = result.outcomes.iter().find(|o| o.id == JobId(0)).unwrap();
        let second = result.outcomes.iter().find(|o| o.id == JobId(1)).unwrap();
        assert!(second.start_s >= first.finish_s - 1e-6);
        assert!(second.wait_s() > 0.0);
    }

    #[test]
    fn oversized_jobs_are_reported_unfinished() {
        let trace = Trace::from_jobs(vec![Job::builder(JobId(0), ModelKind::AlexNet, 999).build()]);
        let sim = Simulation::new(cluster(), Box::new(GpuBalance), quick_config());
        let result = sim.run(&trace);
        assert!(result.outcomes.is_empty());
        assert_eq!(result.unfinished, vec![JobId(0)]);
    }

    #[test]
    fn trace_replay_completes_for_all_placers() {
        let trace = TraceSpec::new(TraceKind::Real, 30)
            .seed(3)
            .duration_scale(0.02)
            .max_gpus(16)
            .generate();
        for placer in [
            Box::new(NetPackPlacer::default()) as Box<dyn Placer>,
            Box::new(GpuBalance),
        ] {
            let sim = Simulation::new(cluster(), placer, quick_config());
            let result = sim.run(&trace);
            assert_eq!(result.outcomes.len(), 30, "all jobs finish");
            assert!(result.unfinished.is_empty());
            assert!(result.average_jct_s().unwrap() > 0.0);
            let de = result.distribution_efficiency().unwrap();
            assert!(de > 0.0 && de <= 1.0 + 1e-9, "de {de}");
        }
    }

    #[test]
    fn shuffled_insertion_order_yields_identical_result() {
        // Same-arrival jobs with identical values are the adversarial
        // case: the stable arrival sort preserves insertion order, so
        // only the manager's canonical batch ordering keeps knapsack
        // tie-breaks submission-order independent.
        let mk = |id: u64, model: ModelKind, gpus: usize| {
            Job::builder(JobId(id), model, gpus).iterations(200).build()
        };
        let jobs = [
            mk(0, ModelKind::Vgg16, 4),
            mk(1, ModelKind::ResNet50, 4),
            mk(2, ModelKind::AlexNet, 8),
            mk(3, ModelKind::Vgg16, 2),
            mk(4, ModelKind::ResNet50, 8),
            mk(5, ModelKind::AlexNet, 4),
            mk(6, ModelKind::Vgg16, 8),
            mk(7, ModelKind::ResNet50, 2),
        ];
        let run = |order: &[usize]| {
            let shuffled: Vec<Job> = order.iter().map(|&i| jobs[i].clone()).collect();
            let sim =
                Simulation::new(cluster(), Box::new(NetPackPlacer::default()), quick_config());
            sim.run(&Trace::from_jobs(shuffled))
        };
        let reference = run(&[0, 1, 2, 3, 4, 5, 6, 7]);
        // A seeded Fisher-Yates permutation plus a plain reversal.
        for order in [
            [7usize, 6, 5, 4, 3, 2, 1, 0],
            [3, 0, 6, 2, 7, 5, 1, 4],
            [5, 2, 7, 0, 4, 6, 3, 1],
        ] {
            let shuffled = run(&order);
            assert_eq!(
                shuffled, reference,
                "SimResult must not depend on job insertion order ({order:?})"
            );
        }
    }

    #[test]
    fn telemetry_sampling_produces_snapshots() {
        let trace = Trace::from_jobs(vec![Job::builder(JobId(0), ModelKind::Vgg16, 8)
            .iterations(2000)
            .build()]);
        let config = SimConfig {
            telemetry_interval_s: Some(10.0),
            ..quick_config()
        };
        let c = cluster();
        let n_links = c.num_links();
        let sim = Simulation::new(c, Box::new(NetPackPlacer::default()), config);
        let result = sim.run(&trace);
        assert!(result.telemetry.len() >= 3);
        for sample in &result.telemetry {
            assert_eq!(sample.link_used_gbps.len(), n_links);
            assert!(sample.link_used_gbps.iter().all(|&u| u >= -1e-9));
        }
        // While the spanning job runs, some link must be carrying traffic.
        let busiest: f64 = result
            .telemetry
            .iter()
            .flat_map(|s| s.link_used_gbps.iter().copied())
            .fold(0.0, f64::max);
        assert!(busiest > 0.0);
    }

    #[test]
    fn makespan_covers_the_last_finish() {
        let trace = TraceSpec::new(TraceKind::Poisson, 10)
            .seed(5)
            .duration_scale(0.05)
            .max_gpus(8)
            .generate();
        let sim = Simulation::new(cluster(), Box::new(GpuBalance), quick_config());
        let result = sim.run(&trace);
        let last = result
            .outcomes
            .iter()
            .map(|o| o.finish_s)
            .fold(0.0, f64::max);
        assert!(result.makespan_s >= last - 1e-6);
    }

    #[test]
    fn incremental_and_scratch_modes_agree_exactly() {
        let trace = TraceSpec::new(TraceKind::Real, 20)
            .seed(11)
            .duration_scale(0.03)
            .max_gpus(12)
            .generate();
        let run = |steady| {
            let config = SimConfig {
                steady,
                telemetry_interval_s: Some(50.0),
                ..SimConfig::default()
            };
            Simulation::new(cluster(), Box::new(NetPackPlacer::default()), config).run(&trace)
        };
        let inc = run(SteadyMode::Incremental);
        let scratch = run(SteadyMode::Scratch);
        assert_eq!(inc, scratch);
        // The fast path actually took the incremental branch…
        assert!(inc.perf.timer_count("resolve_component") > 0);
        assert_eq!(inc.perf.timer_count("resolve_full"), 0);
        // …and reused far more job solves than it redid.
        assert!(inc.perf.counter("wf_jobs_reused") > inc.perf.counter("wf_jobs_resolved") / 2);
    }

    #[test]
    fn time_cap_reports_running_and_queued_jobs_sorted() {
        // One hog that cannot finish before the cap, one job queued behind
        // it, and one arrival after the cap: all three must be reported,
        // sorted, exactly once.
        let hog = Job::builder(JobId(2), ModelKind::AlexNet, 16)
            .iterations(u64::MAX)
            .build();
        let queued = Job::builder(JobId(0), ModelKind::AlexNet, 16)
            .arrival_s(10.0)
            .build();
        let late = Job::builder(JobId(1), ModelKind::AlexNet, 4)
            .arrival_s(1e7)
            .build();
        let config = SimConfig {
            max_sim_time_s: 500.0,
            ..SimConfig::default()
        };
        let sim = Simulation::new(cluster(), Box::new(GpuBalance), config);
        let result = sim.run(&Trace::from_jobs(vec![hog, queued, late]));
        assert!(result.outcomes.is_empty());
        assert_eq!(result.unfinished, vec![JobId(0), JobId(1), JobId(2)]);
        assert!(result.makespan_s <= 500.0 + 1e-6);
    }
}

#[cfg(test)]
mod epoch_grid_tests {
    use super::*;
    use netpack_placement::GpuBalance;
    use netpack_topology::ClusterSpec;
    use netpack_workload::ModelKind;

    #[test]
    fn closed_form_matches_stepping() {
        let reference = |clock: f64, last: f64, epoch: f64| {
            let mut t = (clock / epoch).floor() * epoch;
            if t < clock - 1e-9 {
                t += epoch;
            }
            while t <= last + 1e-9 {
                t += epoch;
            }
            t
        };
        for &(clock, last, epoch) in &[
            (0.0, f64::NEG_INFINITY, 60.0),
            (59.0, 0.0, 60.0),
            (60.0, 60.0, 60.0),
            (61.0, 60.0, 60.0),
            (1234.5, 1200.0, 60.0),
            (0.0, 600.0, 60.0),
            (100.0, 100.0, 7.5),
        ] {
            let got = next_epoch_after(clock, last, epoch);
            let want = reference(clock, last, epoch);
            assert!(
                (got - want).abs() < 1e-6,
                "clock {clock} last {last} epoch {epoch}: {got} vs {want}"
            );
            assert!(got >= clock - 1e-9 && got > last + 1e-9);
        }
    }

    #[test]
    fn saturated_grid_returns_infinity() {
        // At magnitudes where adding one epoch is a float no-op, the grid
        // cannot advance past `last` — report unreachable, don't spin.
        let t = next_epoch_after(1e18, 1e18, 60.0);
        assert!(t.is_infinite());
    }

    #[test]
    fn huge_gap_to_next_arrival_is_cheap_and_correct() {
        // Job 0 runs for a long time; job 1 arrives ~10^7 s later, far
        // past the last-run epoch. The old stepping loop walked the whole
        // gap epoch by epoch on every event; the closed form must land
        // job 1 on the first grid point at/after its arrival.
        let cluster = Cluster::new(ClusterSpec {
            racks: 1,
            servers_per_rack: 4,
            gpus_per_server: 4,
            ..ClusterSpec::paper_default()
        });
        let arrival = 1.0e7 + 1.0;
        let jobs = vec![
            Job::builder(JobId(0), ModelKind::AlexNet, 16)
                .iterations(2_000_000)
                .build(),
            Job::builder(JobId(1), ModelKind::AlexNet, 4)
                .arrival_s(arrival)
                .build(),
        ];
        let config = SimConfig {
            max_sim_time_s: 1.0e9,
            ..SimConfig::default()
        };
        let sim = Simulation::new(cluster, Box::new(GpuBalance), config);
        let result = sim.run(&Trace::from_jobs(jobs));
        assert_eq!(result.outcomes.len(), 2);
        let second = result.outcomes.iter().find(|o| o.id == JobId(1)).unwrap();
        let epoch = ManagerConfig::default().epoch_s;
        assert!(second.start_s >= arrival - 1e-6);
        let on_grid = ((second.start_s / epoch).round() * epoch - second.start_s).abs() < 1e-6;
        assert!(on_grid, "start {} not on the epoch grid", second.start_s);
    }
}

#[cfg(test)]
mod ina_mode_tests {
    use super::*;
    use netpack_placement::NetPackPlacer;
    use netpack_topology::ClusterSpec;
    use netpack_workload::{ModelKind, TraceKind, TraceSpec};

    #[test]
    fn synchronous_mode_is_never_faster_than_statistical() {
        let spec = ClusterSpec {
            racks: 2,
            servers_per_rack: 4,
            gpus_per_server: 2,
            pat_gbps: 50.0,
            ..ClusterSpec::paper_default()
        };
        let trace = TraceSpec::new(TraceKind::Real, 25)
            .seed(8)
            .duration_scale(0.05)
            .max_gpus(8)
            .generate();
        let run = |mode| {
            let config = SimConfig {
                ina_mode: mode,
                ..SimConfig::default()
            };
            Simulation::new(
                Cluster::new(spec.clone()),
                Box::new(NetPackPlacer::default()),
                config,
            )
            .run(&trace)
            .average_jct_s()
            .expect("jobs finished")
        };
        let stat = run(InaMode::Statistical);
        let sync = run(InaMode::Synchronous);
        assert!(
            stat <= sync + 1e-6,
            "statistical {stat} should not lose to synchronous {sync}"
        );
    }

    #[test]
    fn synchronous_zero_pat_still_completes_jobs() {
        let spec = ClusterSpec {
            racks: 1,
            servers_per_rack: 4,
            gpus_per_server: 2,
            pat_gbps: 0.0,
            ..ClusterSpec::paper_default()
        };
        let jobs = vec![Job::builder(JobId(0), ModelKind::Vgg16, 6)
            .iterations(20)
            .build()];
        let config = SimConfig {
            ina_mode: InaMode::Synchronous,
            ..SimConfig::default()
        };
        let result = Simulation::new(
            Cluster::new(spec),
            Box::new(NetPackPlacer::default()),
            config,
        )
        .run(&Trace::from_jobs(jobs));
        assert_eq!(result.outcomes.len(), 1);
    }
}
