//! The event loop of the flow-level simulator.

use crate::{JobOutcome, SimResult, TelemetrySample};
use netpack_core::{JobManager, ManagerConfig};
use netpack_placement::Placer;
use netpack_topology::{Cluster, JobId, LinkId};
use netpack_waterfill::SteadyState;
use netpack_workload::{Job, Trace};
use std::collections::HashMap;

/// Which INA memory-multiplexing mode the cluster's switches run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InaMode {
    /// Statistical multiplexing (the paper's setting): switch memory is a
    /// shared pool, estimated by Algorithm 1.
    #[default]
    Statistical,
    /// Synchronous multiplexing (SwitchML-style equal static partitions):
    /// the comparison substrate for the §2.2 claims at cluster scale.
    Synchronous,
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Scheduling configuration forwarded to the job manager.
    pub manager: ManagerConfig,
    /// Hard cap on simulated time; jobs still running at the cap are
    /// reported in [`SimResult::unfinished`]. Default: 90 days.
    pub max_sim_time_s: f64,
    /// When set, sample per-link bandwidth usage and per-job rates at
    /// every event and at this fixed interval (Fig. 15 telemetry).
    pub telemetry_interval_s: Option<f64>,
    /// Switch memory-multiplexing mode (default statistical).
    pub ina_mode: InaMode,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            manager: ManagerConfig::default(),
            max_sim_time_s: 90.0 * 86_400.0,
            telemetry_interval_s: None,
            ina_mode: InaMode::default(),
        }
    }
}

/// Per-running-job fluid state.
#[derive(Debug, Clone)]
struct Progress {
    job: Job,
    remaining_iters: f64,
    /// Seconds per iteration under the current steady state.
    iter_time_s: f64,
    start_s: f64,
}

/// A trace-replay simulation over one cluster and one placer.
pub struct Simulation {
    cluster: Cluster,
    placer: Box<dyn Placer>,
    config: SimConfig,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("placer", &self.placer.name())
            .field("servers", &self.cluster.num_servers())
            .finish()
    }
}

impl Simulation {
    /// Build a simulation.
    pub fn new(cluster: Cluster, placer: Box<dyn Placer>, config: SimConfig) -> Self {
        Simulation {
            cluster,
            placer,
            config,
        }
    }

    /// Replay `trace` to completion (or the time cap) and return the
    /// per-job outcomes.
    pub fn run(self, trace: &Trace) -> SimResult {
        let Simulation {
            cluster,
            placer,
            config,
        } = self;
        let epoch = config.manager.epoch_s.max(1e-6);
        let total_gpus = cluster.total_gpus();
        let mut manager = JobManager::new(cluster, placer, config.manager);
        let mut result = SimResult::default();

        // Arrival queue (trace is sorted by arrival time).
        let mut arrivals: std::collections::VecDeque<Job> = trace
            .jobs()
            .iter()
            .filter(|j| {
                if j.gpus > total_gpus {
                    // Unplaceable in this cluster: report, don't deadlock.
                    result.unfinished.push(j.id);
                    false
                } else {
                    true
                }
            })
            .cloned()
            .collect();

        let mut running: HashMap<JobId, Progress> = HashMap::new();
        let mut clock = 0.0f64;
        let mut last_epoch_run = f64::NEG_INFINITY;
        let mut state: Option<SteadyState> = None;
        let mut next_telemetry = 0.0f64;

        loop {
            // -------- determine the next event time --------
            let next_arrival = arrivals.front().map(|j| j.arrival_s);
            let next_epoch = if manager.pending().is_empty() {
                None
            } else {
                // Next grid point at or after the clock, strictly after the
                // last epoch we already ran.
                let mut t = (clock / epoch).floor() * epoch;
                if t < clock - 1e-9 {
                    t += epoch;
                }
                while t <= last_epoch_run + 1e-9 {
                    t += epoch;
                }
                Some(t)
            };
            let next_completion = running
                .values()
                .map(|p| {
                    if p.iter_time_s.is_finite() && p.iter_time_s > 0.0 {
                        clock + p.remaining_iters.max(0.0) * p.iter_time_s
                    } else {
                        f64::INFINITY
                    }
                })
                .fold(f64::INFINITY, f64::min);
            let next_tele = config
                .telemetry_interval_s
                .map(|_| next_telemetry)
                .unwrap_or(f64::INFINITY);

            let mut t = f64::INFINITY;
            for cand in [
                next_arrival.unwrap_or(f64::INFINITY),
                next_epoch.unwrap_or(f64::INFINITY),
                next_completion,
                next_tele,
            ] {
                t = t.min(cand);
            }
            if !t.is_finite() {
                // No arrivals, no placeable pending work, no finite
                // completions: drain what's left as unfinished.
                for id in running.keys() {
                    result.unfinished.push(*id);
                }
                break;
            }
            let t = t.clamp(clock, config.max_sim_time_s);

            // -------- advance fluid progress to t --------
            let dt = t - clock;
            if dt > 0.0 {
                let used: usize = running.values().map(|p| p.job.gpus).sum();
                result.gpu_seconds += used as f64 * dt;
                for p in running.values_mut() {
                    if p.iter_time_s.is_finite() && p.iter_time_s > 0.0 {
                        p.remaining_iters -= dt / p.iter_time_s;
                    }
                }
            }
            clock = t;
            if clock >= config.max_sim_time_s {
                for id in running.keys() {
                    result.unfinished.push(*id);
                }
                break;
            }

            let mut rates_dirty = false;

            // -------- arrivals --------
            while arrivals
                .front()
                .is_some_and(|j| j.arrival_s <= clock + 1e-9)
            {
                manager.submit(arrivals.pop_front().expect("peeked"));
            }

            // -------- completions --------
            let done: Vec<JobId> = running
                .iter()
                .filter(|(_, p)| p.remaining_iters <= 1e-6)
                .map(|(&id, _)| id)
                .collect();
            for id in done {
                let p = running.remove(&id).expect("listed above");
                manager.finish(id).expect("job was running");
                result.outcomes.push(JobOutcome {
                    id,
                    gpus: p.job.gpus,
                    arrival_s: p.job.arrival_s,
                    start_s: p.start_s,
                    finish_s: clock,
                    serial_time_s: p.job.serial_time_s(),
                });
                rates_dirty = true;
            }

            // -------- scheduling epoch --------
            let on_epoch_grid = ((clock / epoch).round() * epoch - clock).abs() < 1e-6;
            if !manager.pending().is_empty() && on_epoch_grid && clock > last_epoch_run + 1e-9 {
                last_epoch_run = clock;
                let placed = manager.run_epoch();
                for (job, _) in placed {
                    running.insert(
                        job.id,
                        Progress {
                            remaining_iters: job.iterations as f64,
                            iter_time_s: f64::INFINITY, // set below
                            start_s: clock,
                            job,
                        },
                    );
                    rates_dirty = true;
                }
            }

            // -------- rate recomputation --------
            if rates_dirty || state.is_none() {
                let s = match config.ina_mode {
                    InaMode::Statistical => manager.steady_state(),
                    InaMode::Synchronous => {
                        let cluster = manager.cluster();
                        let placed: Vec<netpack_waterfill::PlacedJob> = manager
                            .running()
                            .iter()
                            .map(|(j, p)| {
                                netpack_waterfill::PlacedJob::new(j.id, cluster, p)
                            })
                            .collect();
                        netpack_waterfill::estimate_synchronous(cluster, &placed)
                    }
                };
                for (id, p) in running.iter_mut() {
                    let comm = s
                        .comm_time_s(*id, p.job.gradient_gbits())
                        .unwrap_or(f64::INFINITY);
                    p.iter_time_s = p.job.compute_time_s() + comm;
                }
                state = Some(s);
            }

            // -------- telemetry --------
            if let Some(interval) = config.telemetry_interval_s {
                if clock + 1e-9 >= next_telemetry {
                    next_telemetry = clock + interval;
                }
                if let Some(s) = &state {
                    let cluster = manager.cluster();
                    let link_used: Vec<f64> = (0..cluster.num_links())
                        .map(|i| {
                            let link = LinkId::from_index(i, cluster);
                            link.capacity_gbps(cluster) - s.link_residual_gbps(link, cluster)
                        })
                        .collect();
                    let mut job_rates: Vec<(JobId, f64)> = running
                        .keys()
                        .filter_map(|&id| {
                            s.job_rate_gbps(id)
                                .filter(|r| r.is_finite())
                                .map(|r| (id, r))
                        })
                        .collect();
                    job_rates.sort_by_key(|&(id, _)| id);
                    result.telemetry.push(TelemetrySample {
                        time_s: clock,
                        link_used_gbps: link_used,
                        job_rates,
                    });
                }
            }

            // -------- termination --------
            if arrivals.is_empty() && manager.pending().is_empty() && running.is_empty() {
                break;
            }
        }
        result.makespan_s = clock;
        result.outcomes.sort_by(|a, b| a.finish_s.total_cmp(&b.finish_s));
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpack_placement::{GpuBalance, NetPackPlacer};
    use netpack_topology::ClusterSpec;
    use netpack_workload::{ModelKind, TraceKind, TraceSpec};

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec {
            racks: 1,
            servers_per_rack: 4,
            gpus_per_server: 4,
            ..ClusterSpec::paper_default()
        })
    }

    fn quick_config() -> SimConfig {
        SimConfig::default()
    }

    #[test]
    fn single_local_job_finishes_in_ideal_time() {
        let trace = Trace::from_jobs(vec![Job::builder(JobId(0), ModelKind::ResNet50, 4)
            .iterations(100)
            .build()]);
        let sim = Simulation::new(cluster(), Box::new(NetPackPlacer::default()), quick_config());
        let result = sim.run(&trace);
        assert_eq!(result.outcomes.len(), 1);
        let o = &result.outcomes[0];
        // Placed at t=0 (epoch grid) on one server: no communication.
        let ideal = 100.0 * ModelKind::ResNet50.compute_time_s();
        assert!((o.jct_s() - ideal).abs() < 1e-6, "jct {}", o.jct_s());
        assert!(result.unfinished.is_empty());
    }

    #[test]
    fn spanning_job_pays_communication_time() {
        let trace = Trace::from_jobs(vec![Job::builder(JobId(0), ModelKind::Vgg16, 8)
            .iterations(50)
            .build()]);
        let sim = Simulation::new(cluster(), Box::new(NetPackPlacer::default()), quick_config());
        let result = sim.run(&trace);
        let o = &result.outcomes[0];
        let ideal = 50.0 * ModelKind::Vgg16.compute_time_s();
        assert!(o.jct_s() > ideal, "communication must cost time");
        // DE < 1 because of that overhead.
        assert!(result.distribution_efficiency().unwrap() < 1.0);
    }

    #[test]
    fn queued_jobs_wait_for_capacity() {
        // Two 16-GPU jobs on a 16-GPU cluster: strictly serialized.
        let mk = |id: u64| {
            Job::builder(JobId(id), ModelKind::AlexNet, 16)
                .iterations(100)
                .build()
        };
        let trace = Trace::from_jobs(vec![mk(0), mk(1)]);
        let sim = Simulation::new(cluster(), Box::new(NetPackPlacer::default()), quick_config());
        let result = sim.run(&trace);
        assert_eq!(result.outcomes.len(), 2);
        let first = result.outcomes.iter().find(|o| o.id == JobId(0)).unwrap();
        let second = result.outcomes.iter().find(|o| o.id == JobId(1)).unwrap();
        assert!(second.start_s >= first.finish_s - 1e-6);
        assert!(second.wait_s() > 0.0);
    }

    #[test]
    fn oversized_jobs_are_reported_unfinished() {
        let trace = Trace::from_jobs(vec![Job::builder(JobId(0), ModelKind::AlexNet, 999).build()]);
        let sim = Simulation::new(cluster(), Box::new(GpuBalance), quick_config());
        let result = sim.run(&trace);
        assert!(result.outcomes.is_empty());
        assert_eq!(result.unfinished, vec![JobId(0)]);
    }

    #[test]
    fn trace_replay_completes_for_all_placers() {
        let trace = TraceSpec::new(TraceKind::Real, 30)
            .seed(3)
            .duration_scale(0.02)
            .max_gpus(16)
            .generate();
        for placer in [
            Box::new(NetPackPlacer::default()) as Box<dyn Placer>,
            Box::new(GpuBalance),
        ] {
            let sim = Simulation::new(cluster(), placer, quick_config());
            let result = sim.run(&trace);
            assert_eq!(result.outcomes.len(), 30, "all jobs finish");
            assert!(result.unfinished.is_empty());
            assert!(result.average_jct_s().unwrap() > 0.0);
            let de = result.distribution_efficiency().unwrap();
            assert!(de > 0.0 && de <= 1.0 + 1e-9, "de {de}");
        }
    }

    #[test]
    fn telemetry_sampling_produces_snapshots() {
        let trace = Trace::from_jobs(vec![Job::builder(JobId(0), ModelKind::Vgg16, 8)
            .iterations(2000)
            .build()]);
        let config = SimConfig {
            telemetry_interval_s: Some(10.0),
            ..quick_config()
        };
        let c = cluster();
        let n_links = c.num_links();
        let sim = Simulation::new(c, Box::new(NetPackPlacer::default()), config);
        let result = sim.run(&trace);
        assert!(result.telemetry.len() >= 3);
        for sample in &result.telemetry {
            assert_eq!(sample.link_used_gbps.len(), n_links);
            assert!(sample.link_used_gbps.iter().all(|&u| u >= -1e-9));
        }
        // While the spanning job runs, some link must be carrying traffic.
        let busiest: f64 = result
            .telemetry
            .iter()
            .flat_map(|s| s.link_used_gbps.iter().copied())
            .fold(0.0, f64::max);
        assert!(busiest > 0.0);
    }

    #[test]
    fn makespan_covers_the_last_finish() {
        let trace = TraceSpec::new(TraceKind::Poisson, 10)
            .seed(5)
            .duration_scale(0.05)
            .max_gpus(8)
            .generate();
        let sim = Simulation::new(cluster(), Box::new(GpuBalance), quick_config());
        let result = sim.run(&trace);
        let last = result
            .outcomes
            .iter()
            .map(|o| o.finish_s)
            .fold(0.0, f64::max);
        assert!(result.makespan_s >= last - 1e-6);
    }
}

#[cfg(test)]
mod ina_mode_tests {
    use super::*;
    use netpack_placement::NetPackPlacer;
    use netpack_topology::ClusterSpec;
    use netpack_workload::{ModelKind, TraceKind, TraceSpec};

    #[test]
    fn synchronous_mode_is_never_faster_than_statistical() {
        let spec = ClusterSpec {
            racks: 2,
            servers_per_rack: 4,
            gpus_per_server: 2,
            pat_gbps: 50.0,
            ..ClusterSpec::paper_default()
        };
        let trace = TraceSpec::new(TraceKind::Real, 25)
            .seed(8)
            .duration_scale(0.05)
            .max_gpus(8)
            .generate();
        let run = |mode| {
            let config = SimConfig {
                ina_mode: mode,
                ..SimConfig::default()
            };
            Simulation::new(
                Cluster::new(spec.clone()),
                Box::new(NetPackPlacer::default()),
                config,
            )
            .run(&trace)
            .average_jct_s()
            .expect("jobs finished")
        };
        let stat = run(InaMode::Statistical);
        let sync = run(InaMode::Synchronous);
        assert!(
            stat <= sync + 1e-6,
            "statistical {stat} should not lose to synchronous {sync}"
        );
    }

    #[test]
    fn synchronous_zero_pat_still_completes_jobs() {
        let spec = ClusterSpec {
            racks: 1,
            servers_per_rack: 4,
            gpus_per_server: 2,
            pat_gbps: 0.0,
            ..ClusterSpec::paper_default()
        };
        let jobs = vec![Job::builder(JobId(0), ModelKind::Vgg16, 6)
            .iterations(20)
            .build()];
        let config = SimConfig {
            ina_mode: InaMode::Synchronous,
            ..SimConfig::default()
        };
        let result = Simulation::new(
            Cluster::new(spec),
            Box::new(NetPackPlacer::default()),
            config,
        )
        .run(&Trace::from_jobs(jobs));
        assert_eq!(result.outcomes.len(), 1);
    }
}
