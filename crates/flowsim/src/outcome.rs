//! Simulation results and per-job accounting.

use netpack_metrics::{JobRecord, PerfCounters};
use netpack_topology::JobId;

/// One job's lifecycle through the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobOutcome {
    /// The job.
    pub id: JobId,
    /// GPUs the job occupied.
    pub gpus: usize,
    /// Submission time (seconds from trace start).
    pub arrival_s: f64,
    /// Time the placement was enforced and training began.
    pub start_s: f64,
    /// Completion time.
    pub finish_s: f64,
    /// Hypothetical single-GPU, zero-communication runtime (DE numerator).
    pub serial_time_s: f64,
}

impl JobOutcome {
    /// Job completion time: finish minus submission.
    pub fn jct_s(&self) -> f64 {
        self.finish_s - self.arrival_s
    }

    /// Queueing delay before the job started.
    pub fn wait_s(&self) -> f64 {
        self.start_s - self.arrival_s
    }

    /// Convert to the metric crate's record form.
    pub fn to_record(self) -> JobRecord {
        JobRecord {
            gpus: self.gpus,
            jct_s: self.jct_s(),
            serial_time_s: self.serial_time_s,
        }
    }
}

/// A telemetry snapshot of per-link bandwidth usage at one sim time.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySample {
    /// Simulation time of the sample.
    pub time_s: f64,
    /// Used bandwidth per link, in Gbps, indexed by `LinkId::index`.
    pub link_used_gbps: Vec<f64>,
    /// Per-job per-worker steady rates at this instant (finite jobs only),
    /// as `(job, rate_gbps)` pairs sorted by job id.
    pub job_rates: Vec<(JobId, f64)>,
}

/// The full result of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimResult {
    /// Per-job outcomes for all finished jobs, in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Jobs that never finished: oversized for the cluster, still running
    /// or queued at the time cap, or stalled with no finite event left.
    /// Sorted by id; each id appears at most once.
    pub unfinished: Vec<JobId>,
    /// Time the last event was processed.
    pub makespan_s: f64,
    /// Telemetry samples (only when enabled in the config).
    pub telemetry: Vec<TelemetrySample>,
    /// Integral of allocated GPUs over time, in GPU-seconds.
    pub gpu_seconds: f64,
    /// Event-loop work counters and phase timers for this run.
    pub perf: PerfCounters,
}

/// Equality covers the simulation *outputs* only — `perf` holds
/// wall-clock timers, which are nondeterministic by nature and must not
/// break replay-determinism or mode-equivalence comparisons.
impl PartialEq for SimResult {
    fn eq(&self, other: &Self) -> bool {
        self.outcomes == other.outcomes
            && self.unfinished == other.unfinished
            && self.makespan_s == other.makespan_s
            && self.telemetry == other.telemetry
            && self.gpu_seconds == other.gpu_seconds
    }
}

impl SimResult {
    /// Average JCT over finished jobs (`None` if nothing finished).
    pub fn average_jct_s(&self) -> Option<f64> {
        netpack_metrics::average_jct_s(&self.records())
    }

    /// The paper's distribution-efficiency metric over finished jobs.
    pub fn distribution_efficiency(&self) -> Option<f64> {
        netpack_metrics::distribution_efficiency(&self.records())
    }

    /// Metric records for all finished jobs.
    pub fn records(&self) -> Vec<JobRecord> {
        self.outcomes.iter().map(|o| o.to_record()).collect()
    }

    /// Mean cluster GPU utilization over the makespan, given the cluster's
    /// total GPU count. `None` when nothing ran.
    pub fn gpu_utilization(&self, total_gpus: usize) -> Option<f64> {
        if self.makespan_s <= 0.0 || total_gpus == 0 {
            return None;
        }
        Some(self.gpu_seconds / (self.makespan_s * total_gpus as f64))
    }

    /// 95th-percentile JCT over finished jobs (`None` if nothing finished).
    pub fn p95_jct_s(&self) -> Option<f64> {
        if self.outcomes.is_empty() {
            return None;
        }
        let jcts: Vec<f64> = self.outcomes.iter().map(|o| o.jct_s()).collect();
        Some(netpack_metrics::Summary::of(&jcts).p95)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors_compute_intervals() {
        let o = JobOutcome {
            id: JobId(1),
            gpus: 4,
            arrival_s: 10.0,
            start_s: 60.0,
            finish_s: 110.0,
            serial_time_s: 160.0,
        };
        assert_eq!(o.jct_s(), 100.0);
        assert_eq!(o.wait_s(), 50.0);
        let r = o.to_record();
        assert_eq!(r.gpus, 4);
        assert_eq!(r.jct_s, 100.0);
    }

    #[test]
    fn empty_result_has_no_metrics() {
        let r = SimResult::default();
        assert_eq!(r.average_jct_s(), None);
        assert_eq!(r.distribution_efficiency(), None);
    }
}

#[cfg(test)]
mod utilization_tests {
    use super::*;

    #[test]
    fn utilization_divides_gpu_seconds_by_capacity_time() {
        let r = SimResult {
            makespan_s: 100.0,
            gpu_seconds: 400.0,
            ..SimResult::default()
        };
        assert_eq!(r.gpu_utilization(8), Some(0.5));
        assert_eq!(r.gpu_utilization(0), None);
        assert_eq!(SimResult::default().gpu_utilization(8), None);
    }

    #[test]
    fn p95_jct_uses_the_jct_distribution() {
        let mk = |jct: f64| JobOutcome {
            id: JobId(0),
            gpus: 1,
            arrival_s: 0.0,
            start_s: 0.0,
            finish_s: jct,
            serial_time_s: jct,
        };
        let r = SimResult {
            outcomes: (1..=100).map(|i| mk(i as f64)).collect(),
            ..SimResult::default()
        };
        let p95 = r.p95_jct_s().unwrap();
        assert!((p95 - 95.05).abs() < 0.1, "p95 {p95}");
        assert_eq!(SimResult::default().p95_jct_s(), None);
    }
}
