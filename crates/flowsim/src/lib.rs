#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Discrete-event flow-level cluster simulator — the paper's evaluation
//! vehicle (§6.1 "Simulator").
//!
//! The simulator replays a job trace against a cluster managed by any
//! [`Placer`]. Job rates are fluid: between events every running job's
//! per-worker rate is the water-filled max-min steady state, so an
//! iteration takes `compute_time + gradient / rate` seconds and progress
//! accumulates linearly. Events — arrivals, scheduling epochs, and job
//! completions — trigger a rate recomputation, exactly as real statistical
//! INA re-converges when the competing flow set changes.
//!
//! Recomputation is incremental by default: a warm water-filling
//! estimator re-solves only the resource-connected components an event
//! touched, and completions come off a lazy-invalidation min-heap instead
//! of a per-event scan (see [`sim`](self) internals and `SteadyMode`).
//! Set `NETPACK_SIM=scratch` to force the from-scratch reference path —
//! both produce bit-identical results.
//!
//! The fluid model assumes every job communicates continuously. Real
//! iterative jobs interleave compute and communication and can take turns
//! in the switch memory (the paper observes this in Fig. 14b); the fluid
//! view is therefore conservative about INA's benefit for *every* placer
//! equally, preserving the comparisons the figures make.
//!
//! [`Placer`]: netpack_placement::Placer
//!
//! # Example
//!
//! ```
//! use netpack_flowsim::{Simulation, SimConfig};
//! use netpack_placement::NetPackPlacer;
//! use netpack_topology::{Cluster, ClusterSpec};
//! use netpack_workload::{TraceKind, TraceSpec};
//!
//! let cluster = Cluster::new(ClusterSpec::paper_testbed());
//! let trace = TraceSpec::new(TraceKind::Real, 20)
//!     .seed(1)
//!     .duration_scale(0.02)
//!     .max_gpus(8)
//!     .generate();
//! let result = Simulation::new(cluster, Box::new(NetPackPlacer::default()),
//!     SimConfig::default()).run(&trace);
//! assert_eq!(result.outcomes.len(), 20);
//! assert!(result.average_jct_s().unwrap() > 0.0);
//! ```

mod outcome;
mod sim;

pub use outcome::{JobOutcome, SimResult, TelemetrySample};
pub use sim::{InaMode, SimConfig, Simulation, SteadyMode};
