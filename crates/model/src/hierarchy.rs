//! The two-level aggregation hierarchy induced by a placement (§4.1).

use crate::Placement;
use netpack_topology::{Cluster, LinkId, RackId, ServerId};

/// A job's aggregation hierarchy: worker ToR switches (leaves) feeding the
/// PS's ToR switch (root) feeding the PS, in the one-big-switch view.
///
/// The hierarchy exists only for jobs that actually generate network
/// traffic; [`JobHierarchy::from_placement`] returns `None` for local
/// (single-server) placements.
///
/// The flow-counting methods take an `aggregating` predicate saying whether
/// a given ToR switch currently aggregates *for this job*. During
/// water-filling a switch aggregates while it still has residual PAT; once
/// the PAT is exhausted its unaggregated flows pass through individually
/// (Algorithm 1, `UpdateFlows`). The job's own INA flag is applied on top:
/// a job with INA disabled never aggregates anywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobHierarchy {
    ps_server: ServerId,
    ps_rack: RackId,
    worker_servers: Vec<(ServerId, usize)>,
    /// Racks other than the PS rack that host workers, with worker counts.
    remote_racks: Vec<(RackId, usize)>,
    /// Workers hosted inside the PS rack (they feed the root directly).
    local_workers: usize,
    ina_enabled: bool,
}

impl JobHierarchy {
    /// Derive the hierarchy from a placement.
    ///
    /// Returns `None` when the placement is local (no network traffic) or
    /// when a distributed placement has no PS (such placements are invalid;
    /// run [`Placement::validate`] first for a proper error). For a
    /// sharded (multi-PS) placement this returns the first shard's tree;
    /// use [`JobHierarchy::components_from_placement`] to get all of them.
    pub fn from_placement(cluster: &Cluster, placement: &Placement) -> Option<Self> {
        if placement.is_local() {
            return None;
        }
        let ps_server = placement.ps()?;
        Self::for_ps(cluster, placement, ps_server)
    }

    /// One aggregation tree per parameter server of a (possibly sharded)
    /// placement — the paper's composition of multi-PS AllReduce from
    /// one-PS AllReduces (§4.1). Every worker streams `1/k` of the
    /// gradient to each of the `k` PSes, so the trees all carry the same
    /// per-shard rate and the estimator fills them in lock-step.
    ///
    /// Returns an empty vector for local placements.
    pub fn components_from_placement(cluster: &Cluster, placement: &Placement) -> Vec<Self> {
        if placement.is_local() {
            return Vec::new();
        }
        placement
            .pses()
            .iter()
            .filter_map(|&ps| Self::for_ps(cluster, placement, ps))
            .collect()
    }

    fn for_ps(cluster: &Cluster, placement: &Placement, ps_server: ServerId) -> Option<Self> {
        // A shard whose PS shares the single worker server stays on-host.
        if placement.num_servers() == 1 && placement.workers()[0].0 == ps_server {
            return None;
        }
        let ps_rack = cluster.rack_of(ps_server);
        let mut remote: Vec<(RackId, usize)> = Vec::new();
        let mut local_workers = 0usize;
        for &(s, w) in placement.workers() {
            let rack = cluster.rack_of(s);
            if rack == ps_rack {
                local_workers += w;
            } else if let Some(entry) = remote.iter_mut().find(|(r, _)| *r == rack) {
                entry.1 += w;
            } else {
                remote.push((rack, w));
            }
        }
        remote.sort_by_key(|&(r, _)| r);
        Some(JobHierarchy {
            ps_server,
            ps_rack,
            worker_servers: placement.workers().to_vec(),
            remote_racks: remote,
            local_workers,
            ina_enabled: placement.ina_enabled(),
        })
    }

    /// The server hosting the parameter server.
    pub fn ps_server(&self) -> ServerId {
        self.ps_server
    }

    /// The rack (root switch) of the parameter server.
    pub fn ps_rack(&self) -> RackId {
        self.ps_rack
    }

    /// Whether this job participates in INA at all.
    pub fn ina_enabled(&self) -> bool {
        self.ina_enabled
    }

    /// Set the INA participation flag (used by Algorithm 2 step 4 when it
    /// revokes INA from low-efficiency jobs).
    pub fn set_ina_enabled(&mut self, enabled: bool) {
        self.ina_enabled = enabled;
    }

    /// Worker counts per server, sorted by server id.
    pub fn worker_servers(&self) -> &[(ServerId, usize)] {
        &self.worker_servers
    }

    /// Workers hosted inside the PS rack (they feed the root switch
    /// directly, without crossing an uplink).
    pub fn local_workers(&self) -> usize {
        self.local_workers
    }

    /// Total workers.
    pub fn total_workers(&self) -> usize {
        self.worker_servers.iter().map(|&(_, w)| w).sum()
    }

    /// Whether the job crosses rack boundaries (uses rack uplinks).
    pub fn is_cross_rack(&self) -> bool {
        !self.remote_racks.is_empty()
    }

    /// The ToR switches in this hierarchy: every remote worker rack plus
    /// the PS rack (root), in ascending rack order with the root last.
    pub fn switches(&self) -> Vec<RackId> {
        let mut racks: Vec<RackId> = self.remote_racks.iter().map(|&(r, _)| r).collect();
        racks.push(self.ps_rack);
        racks
    }

    /// The remote (non-PS) racks with their worker counts, sorted by rack
    /// id. Iterating this directly gives callers the per-rack flow count
    /// without the `Option` of [`Self::incoming_flows`].
    pub fn remote_racks(&self) -> &[(RackId, usize)] {
        &self.remote_racks
    }

    /// Number of flows entering a switch of this hierarchy from below,
    /// given the current `aggregating` predicate. Returns `None` for racks
    /// outside the hierarchy.
    ///
    /// This is the `incoming_flows` of the paper's aggregation-efficiency
    /// metric (Algorithm 2 step 4).
    pub fn incoming_flows<F: Fn(RackId) -> bool>(&self, rack: RackId, aggregating: F) -> Option<u32> {
        if rack == self.ps_rack {
            let from_core: u32 = self
                .remote_racks
                .iter()
                .map(|&(r, w)| self.rack_output_flows(r, w, &aggregating))
                .sum();
            Some(from_core + self.local_workers as u32)
        } else {
            self.remote_racks
                .iter()
                .find(|&&(r, _)| r == rack)
                .map(|&(_, w)| w as u32)
        }
    }

    /// Flow counts on every link this job uses, given the current
    /// `aggregating` predicate (Algorithm 1 `UpdateFlows`, flattened onto
    /// the one-big-switch link set).
    ///
    /// Links are reported at most once each; a PS colocated with workers
    /// contributes the sum of both roles to its access link.
    pub fn link_flows<F: Fn(RackId) -> bool>(&self, aggregating: F) -> Vec<(LinkId, u32)> {
        let mut flows: Vec<(LinkId, u32)> = Vec::with_capacity(self.worker_servers.len() + 4);
        // Worker gradient streams on their server access links.
        for &(s, w) in &self.worker_servers {
            flows.push((LinkId::ServerAccess(s), w as u32));
        }
        // Remote racks: leaf switch output crosses its own uplink and the
        // PS rack's uplink.
        let mut into_root_from_core = 0u32;
        for &(r, w) in &self.remote_racks {
            let out = self.rack_output_flows(r, w, &aggregating);
            flows.push((LinkId::RackUplink(r), out));
            into_root_from_core += out;
        }
        if into_root_from_core > 0 {
            flows.push((LinkId::RackUplink(self.ps_rack), into_root_from_core));
        }
        // Root switch output onto the PS's access link.
        let root_in = into_root_from_core + self.local_workers as u32;
        let root_out = if self.aggregates_at(self.ps_rack, &aggregating) {
            1
        } else {
            root_in
        };
        // Merge with an existing entry if the PS shares a worker server.
        let ps_link = LinkId::ServerAccess(self.ps_server);
        if let Some(entry) = flows.iter_mut().find(|(l, _)| *l == ps_link) {
            entry.1 += root_out;
        } else {
            flows.push((ps_link, root_out));
        }
        flows
    }

    /// Largest per-link flow count this job induces (feeds the hot-spot
    /// term of the PS-placement score).
    pub fn max_link_flows<F: Fn(RackId) -> bool>(&self, aggregating: F) -> u32 {
        self.link_flows(aggregating)
            .into_iter()
            .map(|(_, f)| f)
            .max()
            .unwrap_or(0)
    }

    fn aggregates_at<F: Fn(RackId) -> bool>(&self, rack: RackId, aggregating: &F) -> bool {
        self.ina_enabled && aggregating(rack)
    }

    fn rack_output_flows<F: Fn(RackId) -> bool>(
        &self,
        rack: RackId,
        workers: usize,
        aggregating: &F,
    ) -> u32 {
        if self.aggregates_at(rack, aggregating) {
            1
        } else {
            workers as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpack_topology::ClusterSpec;

    /// 4 racks x 2 servers x 4 GPUs.
    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec {
            racks: 4,
            servers_per_rack: 2,
            gpus_per_server: 4,
            ..ClusterSpec::paper_default()
        })
    }

    /// The Fig. 5 topology: 2 workers in each of racks 0..4, PS in rack 1.
    fn fig5(cluster: &Cluster) -> JobHierarchy {
        let placement = Placement::new(
            vec![
                (ServerId(0), 2),
                (ServerId(2), 2),
                (ServerId(4), 2),
                (ServerId(6), 2),
            ],
            Some(ServerId(3)),
        );
        JobHierarchy::from_placement(cluster, &placement).unwrap()
    }

    fn flows_map(h: &JobHierarchy, agg: impl Fn(RackId) -> bool) -> Vec<(LinkId, u32)> {
        let mut v = h.link_flows(agg);
        v.sort();
        v
    }

    #[test]
    fn local_placements_have_no_hierarchy() {
        let c = cluster();
        assert!(JobHierarchy::from_placement(&c, &Placement::local(ServerId(0), 4)).is_none());
        let colocated = Placement::new(vec![(ServerId(0), 4)], Some(ServerId(0)));
        assert!(JobHierarchy::from_placement(&c, &colocated).is_none());
    }

    #[test]
    fn fig5_full_aggregation_flow_counts() {
        let c = cluster();
        let h = fig5(&c);
        // Every switch aggregates: each remote uplink carries 1 flow, the
        // PS uplink carries 3 inbound, the PS access link carries 1.
        let flows = flows_map(&h, |_| true);
        assert!(flows.contains(&(LinkId::RackUplink(RackId(0)), 1)));
        assert!(flows.contains(&(LinkId::RackUplink(RackId(2)), 1)));
        assert!(flows.contains(&(LinkId::RackUplink(RackId(3)), 1)));
        assert!(flows.contains(&(LinkId::RackUplink(RackId(1)), 3)));
        assert!(flows.contains(&(LinkId::ServerAccess(ServerId(3)), 1)));
        // Worker access links carry their two workers each.
        assert!(flows.contains(&(LinkId::ServerAccess(ServerId(0)), 2)));
    }

    #[test]
    fn fig5_no_aggregation_flow_counts() {
        let c = cluster();
        let h = fig5(&c);
        let flows = flows_map(&h, |_| false);
        // FC = 6 unaggregated remote flows converge on the PS rack uplink;
        // FS = 8 (6 remote + 2 local) on the PS access link.
        assert!(flows.contains(&(LinkId::RackUplink(RackId(1)), 6)));
        assert!(flows.contains(&(LinkId::ServerAccess(ServerId(3)), 8)));
        assert_eq!(h.max_link_flows(|_| false), 8);
    }

    #[test]
    fn ina_disabled_overrides_aggregating_predicate() {
        let c = cluster();
        let mut h = fig5(&c);
        h.set_ina_enabled(false);
        assert!(!h.ina_enabled());
        let flows = flows_map(&h, |_| true);
        assert!(flows.contains(&(LinkId::ServerAccess(ServerId(3)), 8)));
    }

    #[test]
    fn incoming_flows_match_paper_definitions() {
        let c = cluster();
        let h = fig5(&c);
        // Leaf rack 0 hosts 2 workers.
        assert_eq!(h.incoming_flows(RackId(0), |_| true), Some(2));
        // Root: 3 aggregated remote flows + 2 local workers.
        assert_eq!(h.incoming_flows(RackId(1), |_| true), Some(5));
        // Root with no leaf aggregation: 6 remote + 2 local.
        assert_eq!(h.incoming_flows(RackId(1), |_| false), Some(8));
        // Rack outside the hierarchy (all four racks host workers here, so
        // fabricate one by rebuilding on a bigger cluster).
        let big = Cluster::new(ClusterSpec {
            racks: 5,
            servers_per_rack: 2,
            ..ClusterSpec::paper_default()
        });
        let h2 = fig5(&big);
        assert_eq!(h2.incoming_flows(RackId(4), |_| true), None);
    }

    #[test]
    fn ps_colocated_with_workers_merges_access_link_flows() {
        let c = cluster();
        // 2 workers on server 0, 2 on server 1 (same rack), PS on server 0.
        let p = Placement::new(vec![(ServerId(0), 2), (ServerId(1), 2)], Some(ServerId(0)));
        let h = JobHierarchy::from_placement(&c, &p).unwrap();
        assert!(!h.is_cross_rack());
        let flows = flows_map(&h, |_| false);
        // Server 0 access link: 2 worker flows + 4 unaggregated inbound.
        assert!(flows.contains(&(LinkId::ServerAccess(ServerId(0)), 6)));
        // With root aggregation: 2 worker flows + 1 aggregated inbound.
        let flows = flows_map(&h, |_| true);
        assert!(flows.contains(&(LinkId::ServerAccess(ServerId(0)), 3)));
        // No uplinks involved in a single-rack job.
        assert!(flows.iter().all(|(l, _)| matches!(l, LinkId::ServerAccess(_))));
    }

    #[test]
    fn switches_list_root_last() {
        let c = cluster();
        let h = fig5(&c);
        assert_eq!(
            h.switches(),
            vec![RackId(0), RackId(2), RackId(3), RackId(1)]
        );
        assert!(h.is_cross_rack());
        assert_eq!(h.total_workers(), 8);
        assert_eq!(h.ps_server(), ServerId(3));
        assert_eq!(h.ps_rack(), RackId(1));
    }

    #[test]
    fn partial_aggregation_mixes_outputs() {
        let c = cluster();
        let h = fig5(&c);
        // Only rack 0 has run out of PAT.
        let flows = flows_map(&h, |r| r != RackId(0));
        assert!(flows.contains(&(LinkId::RackUplink(RackId(0)), 2)));
        assert!(flows.contains(&(LinkId::RackUplink(RackId(2)), 1)));
        // Root inbound: 2 + 1 + 1 = 4 on the PS rack uplink.
        assert!(flows.contains(&(LinkId::RackUplink(RackId(1)), 4)));
        // Root still aggregates: PS access link carries 1.
        assert!(flows.contains(&(LinkId::ServerAccess(ServerId(3)), 1)));
    }
}

#[cfg(test)]
mod sharded_tests {
    use super::*;
    use netpack_topology::ClusterSpec;

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec {
            racks: 2,
            servers_per_rack: 3,
            gpus_per_server: 4,
            ..ClusterSpec::paper_default()
        })
    }

    #[test]
    fn components_build_one_tree_per_ps() {
        let c = cluster();
        let p = Placement::new_sharded(
            vec![(ServerId(0), 2), (ServerId(1), 2)],
            vec![ServerId(2), ServerId(4)],
        );
        let comps = JobHierarchy::components_from_placement(&c, &p);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].ps_server(), ServerId(2));
        assert_eq!(comps[1].ps_server(), ServerId(4));
        // Second shard's PS sits in rack 1: that tree crosses racks.
        assert!(!comps[0].is_cross_rack());
        assert!(comps[1].is_cross_rack());
    }

    #[test]
    fn components_skip_on_host_shards() {
        let c = cluster();
        // Single worker server; one PS colocated, one remote.
        let p = Placement::new_sharded(vec![(ServerId(0), 4)], vec![ServerId(0), ServerId(1)]);
        let comps = JobHierarchy::components_from_placement(&c, &p);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].ps_server(), ServerId(1));
    }

    #[test]
    fn components_empty_for_local_placements() {
        let c = cluster();
        assert!(JobHierarchy::components_from_placement(&c, &Placement::local(ServerId(0), 4))
            .is_empty());
    }
}
