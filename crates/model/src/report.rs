//! Closed-form single-job aggregation report (Table 1, Fig. 5, Fig. 14a).

use crate::JobHierarchy;
use netpack_topology::{Cluster, LinkId, RackId};

/// The Table-1 model evaluated for one job at a fixed per-worker rate.
///
/// Produced by [`single_job_report`]. `fs` and `fc` are the two series of
/// the paper's Fig. 5b: the number of flows on the `ToR^PS → PS` link and
/// on the `core → ToR^PS` uplink respectively.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregationReport {
    /// Flows on the root-switch-to-PS link (`FS` in Fig. 5).
    pub fs: u32,
    /// Total flows entering the PS rack from the core (`FC` in Fig. 5);
    /// zero for single-rack jobs.
    pub fc: u32,
    /// Traffic on every link the job uses, in Gbps.
    pub link_traffic: Vec<(LinkId, f64)>,
    /// Throughput aggregated at each switch of the hierarchy, in Gbps
    /// (`min(A, C)` per Table 1 when INA is on, else 0).
    pub switch_aggregated: Vec<(RackId, f64)>,
    /// The per-worker streaming rate `C` the report was evaluated at.
    pub rate_gbps: f64,
}

impl AggregationReport {
    /// Portion of the job throughput aggregated at the root (PS-side)
    /// switch — the y-axis of Fig. 14. Equals `min(A_root, C) / C`, so with
    /// PAT ratio `x = A/C ≤ 1` the theoretical curve is `y = x`.
    pub fn aggregation_ratio(&self) -> f64 {
        if self.rate_gbps <= 0.0 {
            return 0.0;
        }
        self.switch_aggregated
            .last()
            .map(|&(_, a)| a / self.rate_gbps)
            .unwrap_or(0.0)
    }

    /// Traffic on one link, in Gbps (0 if the job does not use it).
    pub fn traffic_on(&self, link: LinkId) -> f64 {
        self.link_traffic
            .iter()
            .find(|&&(l, _)| l == link)
            .map(|&(_, t)| t)
            .unwrap_or(0.0)
    }
}

/// Evaluate the paper's per-switch aggregation model (Table 1) bottom-up
/// for a single job streaming at `rate_gbps` per worker, with per-switch
/// PAT given by `pat_of`.
///
/// Per switch with PAT `A`, incoming subtree flows `Σnᵢ`, and rate `C`:
///
/// * `A ≥ C` — everything aggregates: 1 output flow carrying `C`;
/// * `A < C` — `A` aggregates, `(C − A)·Σnᵢ` passes through: `Σnᵢ` output
///   flows carrying `A + (C − A)·Σnᵢ`.
///
/// A switch aggregates only if the job has INA enabled.
///
/// # Example
///
/// See the crate-level example, which reproduces the Fig. 5 flow leaps.
pub fn single_job_report<F: Fn(RackId) -> f64>(
    cluster: &Cluster,
    hierarchy: &JobHierarchy,
    rate_gbps: f64,
    pat_of: F,
) -> AggregationReport {
    assert!(
        rate_gbps.is_finite() && rate_gbps >= 0.0,
        "rate must be non-negative and finite"
    );
    let ina = hierarchy.ina_enabled();
    let aggregates = |r: RackId| ina && pat_of(r) >= rate_gbps;

    let mut link_traffic: Vec<(LinkId, f64)> = Vec::new();
    let mut switch_aggregated: Vec<(RackId, f64)> = Vec::new();
    let push = |link: LinkId, t: f64, acc: &mut Vec<(LinkId, f64)>| {
        if let Some(e) = acc.iter_mut().find(|(l, _)| *l == link) {
            e.1 += t;
        } else {
            acc.push((link, t));
        }
    };

    // Worker access links.
    for &(s, w) in hierarchy.worker_servers() {
        push(
            LinkId::ServerAccess(s),
            w as f64 * rate_gbps,
            &mut link_traffic,
        );
    }

    // Leaf (remote-rack) switches.
    let ps_rack = hierarchy.ps_rack();
    let mut fc = 0u32;
    let mut core_traffic = 0.0f64;
    for &(rack, workers) in hierarchy.remote_racks() {
        let n = workers as u32;
        let a = if ina { pat_of(rack).min(rate_gbps) } else { 0.0 };
        switch_aggregated.push((rack, a));
        let (out_flows, out_traffic) = if aggregates(rack) {
            (1u32, rate_gbps)
        } else {
            (n, a + (rate_gbps - a) * n as f64)
        };
        fc += out_flows;
        core_traffic += out_traffic;
        push(LinkId::RackUplink(rack), out_traffic, &mut link_traffic);
    }
    if fc > 0 {
        push(LinkId::RackUplink(ps_rack), core_traffic, &mut link_traffic);
    }

    // Root switch (PS rack). Its subtree flows are whatever arrives from
    // the core plus the local workers (Table 1 with the current flow set).
    let root_in_flows = fc + hierarchy.local_workers() as u32;
    let a_root = if ina { pat_of(ps_rack).min(rate_gbps) } else { 0.0 };
    switch_aggregated.push((ps_rack, a_root));
    let (fs, root_traffic) = if aggregates(ps_rack) {
        (1u32, rate_gbps)
    } else {
        (
            root_in_flows,
            a_root + (rate_gbps - a_root) * root_in_flows as f64,
        )
    };
    push(
        LinkId::ServerAccess(hierarchy.ps_server()),
        root_traffic,
        &mut link_traffic,
    );

    debug_assert!(link_traffic
        .iter()
        .all(|&(l, _)| l.index(cluster) < cluster.num_links()));

    AggregationReport {
        fs,
        fc,
        link_traffic,
        switch_aggregated,
        rate_gbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Placement;
    use netpack_topology::{ClusterSpec, ServerId};

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec {
            racks: 4,
            servers_per_rack: 2,
            gpus_per_server: 4,
            ..ClusterSpec::paper_default()
        })
    }

    /// Fig. 5: 2 workers in each of 4 racks, PS in rack 1, PATs
    /// A1 < Ap < A3 < A4.
    fn fig5(c: &Cluster) -> JobHierarchy {
        let p = Placement::new(
            vec![
                (ServerId(0), 2),
                (ServerId(2), 2),
                (ServerId(4), 2),
                (ServerId(6), 2),
            ],
            Some(ServerId(3)),
        );
        JobHierarchy::from_placement(c, &p).unwrap()
    }

    fn fig5_pats(r: RackId) -> f64 {
        match r.0 {
            0 => 10.0, // A1
            1 => 20.0, // Ap
            2 => 30.0, // A3
            _ => 40.0, // A4
        }
    }

    #[test]
    fn fig5_flow_series_reproduces_paper_leaps() {
        let c = cluster();
        let h = fig5(&c);
        // (rate, expected FC, expected FS) following Fig. 5b.
        let cases = [
            (5.0, 3, 1),  // below every PAT
            (15.0, 4, 1), // above A1 only: rack0 emits 2, root still aggregates
            (25.0, 4, 6), // above A1 and Ap: root passes 4 + 2 local through
            (35.0, 5, 7), // above A1, Ap, A3
            (45.0, 6, 8), // above everything
        ];
        for (rate, fc, fs) in cases {
            let rep = single_job_report(&c, &h, rate, fig5_pats);
            assert_eq!(rep.fc, fc, "FC at rate {rate}");
            assert_eq!(rep.fs, fs, "FS at rate {rate}");
        }
    }

    #[test]
    fn fig5_rate_between_a1_and_ap_keeps_root_aggregating_only_if_pat_covers_rate() {
        // At rate 15, Ap = 20 >= 15 so the root *does* aggregate: FS = 1.
        // The previous test assumed the root loses aggregation; check the
        // actual Table-1 semantics here explicitly.
        let c = cluster();
        let h = fig5(&c);
        let rep = single_job_report(&c, &h, 15.0, fig5_pats);
        // rack0 stops aggregating (A1=10 < 15): FC = 2+1+1 = 4.
        assert_eq!(rep.fc, 4);
        // root PAT 20 >= 15: FS = 1.
        assert_eq!(rep.fs, 1);
    }

    #[test]
    fn full_aggregation_traffic_is_one_rate_per_link() {
        let c = cluster();
        let h = fig5(&c);
        let rep = single_job_report(&c, &h, 5.0, |_| 1000.0);
        assert_eq!(rep.traffic_on(LinkId::ServerAccess(ServerId(0))), 10.0);
        assert_eq!(rep.traffic_on(LinkId::RackUplink(RackId(0))), 5.0);
        // PS rack uplink: three aggregated streams inbound.
        assert_eq!(rep.traffic_on(LinkId::RackUplink(RackId(1))), 15.0);
        // PS access link: one aggregated stream.
        assert_eq!(rep.traffic_on(LinkId::ServerAccess(ServerId(3))), 5.0);
        assert_eq!(rep.aggregation_ratio(), 1.0);
    }

    #[test]
    fn no_aggregation_traffic_multiplies_by_flows() {
        let c = cluster();
        let h = fig5(&c);
        let rate = 10.0;
        let rep = single_job_report(&c, &h, rate, |_| 0.0);
        // Leaf uplink: 2 unaggregated flows (PAT 0 => a = 0).
        assert_eq!(rep.traffic_on(LinkId::RackUplink(RackId(0))), 20.0);
        // PS access link: 8 flows x rate.
        assert_eq!(rep.traffic_on(LinkId::ServerAccess(ServerId(3))), 80.0);
        assert_eq!(rep.aggregation_ratio(), 0.0);
    }

    #[test]
    fn partial_aggregation_splits_traffic_per_table1() {
        let c = cluster();
        let h = fig5(&c);
        // Rate 15, PAT 10 everywhere: every switch is partial.
        let rep = single_job_report(&c, &h, 15.0, |_| 10.0);
        // Leaf: A + (C-A)*n = 10 + 5*2 = 20.
        assert_eq!(rep.traffic_on(LinkId::RackUplink(RackId(0))), 20.0);
        assert_eq!(rep.fc, 6);
        // Root: inbound 6 + 2 local = 8 flows; 10 + 5*8 = 50.
        assert_eq!(rep.fs, 8);
        assert_eq!(rep.traffic_on(LinkId::ServerAccess(ServerId(3))), 50.0);
        // Fig. 14 ratio: 10/15.
        assert!((rep.aggregation_ratio() - 10.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn ina_disabled_jobs_never_aggregate() {
        let c = cluster();
        let mut h = fig5(&c);
        h.set_ina_enabled(false);
        let rep = single_job_report(&c, &h, 5.0, |_| 1000.0);
        assert_eq!(rep.fs, 8);
        assert!(rep.switch_aggregated.iter().all(|&(_, a)| a == 0.0));
    }

    #[test]
    fn single_rack_job_has_zero_fc() {
        let c = cluster();
        let p = Placement::new(vec![(ServerId(0), 2), (ServerId(1), 2)], Some(ServerId(1)));
        let h = JobHierarchy::from_placement(&c, &p).unwrap();
        let rep = single_job_report(&c, &h, 10.0, |_| 1000.0);
        assert_eq!(rep.fc, 0);
        assert_eq!(rep.fs, 1);
        // PS link carries its 2 worker flows + 1 aggregated stream.
        assert_eq!(rep.traffic_on(LinkId::ServerAccess(ServerId(1))), 30.0);
        assert_eq!(rep.traffic_on(LinkId::RackUplink(RackId(0))), 0.0);
    }

    #[test]
    fn zero_rate_report_is_all_zero() {
        let c = cluster();
        let h = fig5(&c);
        let rep = single_job_report(&c, &h, 0.0, |_| 100.0);
        assert!(rep.link_traffic.iter().all(|&(_, t)| t == 0.0));
        assert_eq!(rep.aggregation_ratio(), 0.0);
    }
}
