//! Job placements: the decision every placer produces.

use netpack_topology::{Cluster, ServerId};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Where a job's workers and parameter server run.
///
/// A placement assigns `count` workers (one per GPU) to each listed server
/// and, for distributed jobs, one parameter server to `ps`. `ina_enabled`
/// records NetPack's *selective INA* decision (Algorithm 2, step 4): only
/// INA-enabled jobs contend for switch memory.
///
/// # Example
///
/// ```
/// use netpack_model::Placement;
/// use netpack_topology::ServerId;
///
/// let p = Placement::new(vec![(ServerId(0), 2), (ServerId(1), 2)], Some(ServerId(1)));
/// assert_eq!(p.total_workers(), 4);
/// assert!(!p.is_local());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    workers: Vec<(ServerId, usize)>,
    pses: Vec<ServerId>,
    ina_enabled: bool,
}

impl Placement {
    /// Build a placement from per-server worker counts and a PS location.
    /// INA starts enabled; [`Placement::set_ina_enabled`] can revoke it.
    ///
    /// Worker entries are merged per server and sorted; zero-count entries
    /// are dropped.
    pub fn new(workers: Vec<(ServerId, usize)>, ps: Option<ServerId>) -> Self {
        Self::new_sharded(workers, ps.into_iter().collect())
    }

    /// Build a placement whose gradient is sharded over several parameter
    /// servers (§4.1: "AllReduce with multiple PSes is composed of
    /// multiple one-PS AllReduces"). Each PS handles `1/k` of the model;
    /// every worker streams to every PS. Duplicate PS entries are merged.
    pub fn new_sharded(workers: Vec<(ServerId, usize)>, pses: Vec<ServerId>) -> Self {
        let mut merged: BTreeMap<ServerId, usize> = BTreeMap::new();
        for (s, w) in workers {
            if w > 0 {
                *merged.entry(s).or_insert(0) += w;
            }
        }
        let mut pses = pses;
        pses.sort_unstable();
        pses.dedup();
        Placement {
            workers: merged.into_iter().collect(),
            pses,
            ina_enabled: true,
        }
    }

    /// Convenience constructor for a job fully contained in one server
    /// (no PS, no network traffic).
    pub fn local(server: ServerId, workers: usize) -> Self {
        Placement::new(vec![(server, workers)], None)
    }

    /// Per-server worker counts, sorted by server id.
    pub fn workers(&self) -> &[(ServerId, usize)] {
        &self.workers
    }

    /// The (first) parameter-server location, if the job has one.
    pub fn ps(&self) -> Option<ServerId> {
        self.pses.first().copied()
    }

    /// All parameter servers of a sharded placement, sorted (empty for
    /// jobs without a PS).
    pub fn pses(&self) -> &[ServerId] {
        &self.pses
    }

    /// Number of gradient shards (= number of PSes, at least 1 for
    /// accounting purposes even when the job has no PS).
    pub fn shards(&self) -> usize {
        self.pses.len().max(1)
    }

    /// Whether NetPack enabled INA for this job.
    pub fn ina_enabled(&self) -> bool {
        self.ina_enabled
    }

    /// Enable or disable INA for this job (Algorithm 2, step 4).
    pub fn set_ina_enabled(&mut self, enabled: bool) {
        self.ina_enabled = enabled;
    }

    /// Total workers across all servers.
    pub fn total_workers(&self) -> usize {
        self.workers.iter().map(|&(_, w)| w).sum()
    }

    /// Number of distinct servers hosting workers.
    pub fn num_servers(&self) -> usize {
        self.workers.len()
    }

    /// Whether the job runs entirely inside one server and therefore
    /// generates no network traffic (Algorithm 2 lines 4-6).
    pub fn is_local(&self) -> bool {
        match self.workers.len() {
            0 => true,
            1 => self.pses.iter().all(|&ps| ps == self.workers[0].0),
            _ => false,
        }
    }

    /// Check this placement against a cluster and the job's GPU demand.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule: unknown servers, worker-count
    /// mismatch against `required_gpus`, a missing PS for a multi-server
    /// job (Table 3, constraint 6), or per-server GPU over-commitment
    /// relative to the cluster's *free* GPUs.
    pub fn validate(&self, cluster: &Cluster, required_gpus: usize) -> Result<(), PlacementError> {
        for &(s, w) in &self.workers {
            let server = cluster
                .server(s)
                .ok_or(PlacementError::UnknownServer(s))?;
            if w > server.gpus_free() {
                return Err(PlacementError::GpuOverCommit {
                    server: s,
                    requested: w,
                    available: server.gpus_free(),
                });
            }
        }
        for &ps in &self.pses {
            if cluster.server(ps).is_none() {
                return Err(PlacementError::UnknownServer(ps));
            }
        }
        if self.total_workers() != required_gpus {
            return Err(PlacementError::WorkerCountMismatch {
                placed: self.total_workers(),
                required: required_gpus,
            });
        }
        if self.workers.len() > 1 && self.pses.is_empty() {
            return Err(PlacementError::MissingPs);
        }
        Ok(())
    }
}

/// Errors raised by [`Placement::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlacementError {
    /// A referenced server does not exist.
    UnknownServer(ServerId),
    /// The placement's total workers differ from the job's GPU demand.
    WorkerCountMismatch {
        /// Workers in the placement.
        placed: usize,
        /// The job's demand.
        required: usize,
    },
    /// A server was assigned more workers than it has free GPUs.
    GpuOverCommit {
        /// The over-committed server.
        server: ServerId,
        /// Workers assigned.
        requested: usize,
        /// Free GPUs available.
        available: usize,
    },
    /// A multi-server job has no parameter server (Table 3, Eq. 6).
    MissingPs,
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::UnknownServer(s) => write!(f, "unknown server {s}"),
            PlacementError::WorkerCountMismatch { placed, required } => {
                write!(f, "placement has {placed} workers, job requires {required}")
            }
            PlacementError::GpuOverCommit {
                server,
                requested,
                available,
            } => write!(
                f,
                "server {server} has {available} free GPUs, {requested} workers assigned"
            ),
            PlacementError::MissingPs => write!(f, "multi-server job placed without a PS"),
        }
    }
}

impl Error for PlacementError {}

#[cfg(test)]
mod tests {
    use super::*;
    use netpack_topology::ClusterSpec;

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec {
            racks: 2,
            servers_per_rack: 2,
            gpus_per_server: 4,
            ..ClusterSpec::paper_default()
        })
    }

    #[test]
    fn new_merges_and_sorts_worker_entries() {
        let p = Placement::new(
            vec![(ServerId(2), 1), (ServerId(0), 2), (ServerId(2), 1), (ServerId(1), 0)],
            None,
        );
        assert_eq!(p.workers(), &[(ServerId(0), 2), (ServerId(2), 2)]);
        assert_eq!(p.total_workers(), 4);
        assert_eq!(p.num_servers(), 2);
    }

    #[test]
    fn local_placements_are_detected() {
        assert!(Placement::local(ServerId(0), 4).is_local());
        let colocated_ps = Placement::new(vec![(ServerId(0), 4)], Some(ServerId(0)));
        assert!(colocated_ps.is_local());
        let remote_ps = Placement::new(vec![(ServerId(0), 4)], Some(ServerId(1)));
        assert!(!remote_ps.is_local());
        let spanning = Placement::new(vec![(ServerId(0), 2), (ServerId(1), 2)], Some(ServerId(0)));
        assert!(!spanning.is_local());
    }

    #[test]
    fn validate_accepts_a_correct_placement() {
        let c = cluster();
        let p = Placement::new(vec![(ServerId(0), 4), (ServerId(1), 4)], Some(ServerId(2)));
        p.validate(&c, 8).unwrap();
    }

    #[test]
    fn validate_rejects_worker_count_mismatch() {
        let c = cluster();
        let p = Placement::new(vec![(ServerId(0), 4)], None);
        assert_eq!(
            p.validate(&c, 6),
            Err(PlacementError::WorkerCountMismatch {
                placed: 4,
                required: 6
            })
        );
    }

    #[test]
    fn validate_rejects_missing_ps() {
        let c = cluster();
        let p = Placement::new(vec![(ServerId(0), 2), (ServerId(1), 2)], None);
        assert_eq!(p.validate(&c, 4), Err(PlacementError::MissingPs));
    }

    #[test]
    fn validate_rejects_over_commit() {
        let mut c = cluster();
        c.allocate_gpus(ServerId(0), 2).unwrap();
        let p = Placement::new(vec![(ServerId(0), 3)], None);
        assert_eq!(
            p.validate(&c, 3),
            Err(PlacementError::GpuOverCommit {
                server: ServerId(0),
                requested: 3,
                available: 2
            })
        );
    }

    #[test]
    fn validate_rejects_unknown_servers() {
        let c = cluster();
        let p = Placement::new(vec![(ServerId(99), 1)], None);
        assert_eq!(
            p.validate(&c, 1),
            Err(PlacementError::UnknownServer(ServerId(99)))
        );
        let p = Placement::new(vec![(ServerId(0), 1)], Some(ServerId(77)));
        assert_eq!(
            p.validate(&c, 1),
            Err(PlacementError::UnknownServer(ServerId(77)))
        );
    }

    #[test]
    fn ina_flag_round_trips() {
        let mut p = Placement::local(ServerId(0), 1);
        assert!(p.ina_enabled());
        p.set_ina_enabled(false);
        assert!(!p.ina_enabled());
    }
}

#[cfg(test)]
mod sharded_tests {
    use super::*;
    use netpack_topology::ClusterSpec;

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec {
            racks: 2,
            servers_per_rack: 3,
            gpus_per_server: 4,
            ..ClusterSpec::paper_default()
        })
    }

    #[test]
    fn sharded_placement_merges_and_sorts_pses() {
        let p = Placement::new_sharded(
            vec![(ServerId(0), 2), (ServerId(1), 2)],
            vec![ServerId(4), ServerId(2), ServerId(4)],
        );
        assert_eq!(p.pses(), &[ServerId(2), ServerId(4)]);
        assert_eq!(p.ps(), Some(ServerId(2)));
        assert_eq!(p.shards(), 2);
    }

    #[test]
    fn single_ps_placement_has_one_shard() {
        let p = Placement::new(vec![(ServerId(0), 2)], Some(ServerId(1)));
        assert_eq!(p.shards(), 1);
        let no_ps = Placement::local(ServerId(0), 2);
        assert_eq!(no_ps.shards(), 1);
        assert!(no_ps.pses().is_empty());
    }

    #[test]
    fn sharded_local_detection_requires_all_pses_on_the_worker_server() {
        let local = Placement::new_sharded(vec![(ServerId(0), 4)], vec![ServerId(0)]);
        assert!(local.is_local());
        let remote = Placement::new_sharded(vec![(ServerId(0), 4)], vec![ServerId(0), ServerId(1)]);
        assert!(!remote.is_local());
    }

    #[test]
    fn sharded_placement_validates() {
        let c = cluster();
        let p = Placement::new_sharded(
            vec![(ServerId(0), 2), (ServerId(1), 2)],
            vec![ServerId(2), ServerId(3)],
        );
        p.validate(&c, 4).unwrap();
        let bad = Placement::new_sharded(vec![(ServerId(0), 2), (ServerId(1), 2)], vec![ServerId(99)]);
        assert_eq!(bad.validate(&c, 4), Err(PlacementError::UnknownServer(ServerId(99))));
    }
}
