#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! The statistical-INA aggregation model (paper §4.1, Table 1, Fig. 5).
//!
//! This crate answers the question NetPack's estimator and placement
//! algorithms keep asking: *given a job placement, which links does the job
//! use, with how many flows, and how much of its traffic do the ToR switches
//! aggregate?*
//!
//! Core concepts:
//!
//! * [`Placement`] — where a job's workers and parameter server (PS) sit.
//! * [`JobHierarchy`] — the two-level aggregation hierarchy a placement
//!   induces (worker ToR switches → PS ToR switch → PS). INA is deployed on
//!   ToR switches only, following the paper's observation that multi-path
//!   ECMP makes core-switch aggregation impractical.
//! * [`single_job_report`] — the closed-form Table-1 model: per-switch, if
//!   the switch's Peak Aggregation Throughput (PAT) covers the per-worker
//!   rate `C`, everything aggregates into one output flow; otherwise `A` is
//!   aggregated and `(C − A) · Σnᵢ` passes through unaggregated.
//!
//! # Example — the paper's Fig. 5 flow-count leaps
//!
//! ```
//! use netpack_topology::{Cluster, ClusterSpec, ServerId};
//! use netpack_model::{Placement, JobHierarchy, single_job_report};
//!
//! let cluster = Cluster::new(ClusterSpec { racks: 4, servers_per_rack: 2,
//!     ..ClusterSpec::paper_default() });
//! // Two workers in each of four racks; PS in rack 1.
//! let placement = Placement::new(
//!     vec![(ServerId(0), 2), (ServerId(2), 2), (ServerId(4), 2), (ServerId(6), 2)],
//!     Some(ServerId(3)),
//! );
//! let h = JobHierarchy::from_placement(&cluster, &placement).unwrap();
//! // Tiny sending rate: every switch aggregates -> FS = 1, FC = 3.
//! let report = single_job_report(&cluster, &h, 1.0, |_| 1000.0);
//! assert_eq!(report.fs, 1);
//! assert_eq!(report.fc, 3);
//! // Huge sending rate: nothing aggregates -> FC = 6, FS = 8.
//! let report = single_job_report(&cluster, &h, 1000.0, |_| 0.5);
//! assert_eq!(report.fc, 6);
//! assert_eq!(report.fs, 8);
//! ```

mod hierarchy;
mod placement;
mod report;

pub use hierarchy::JobHierarchy;
pub use placement::{Placement, PlacementError};
pub use report::{single_job_report, AggregationReport};
