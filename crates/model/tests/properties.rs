//! Property tests for the aggregation model's conservation laws.

use netpack_model::{single_job_report, JobHierarchy, Placement};
use netpack_topology::{Cluster, ClusterSpec, LinkId, RackId, ServerId};
use proptest::prelude::*;

fn arb_setup() -> impl Strategy<Value = (Cluster, Placement)> {
    (2usize..5, 2usize..5).prop_flat_map(|(racks, spr)| {
        let cluster = Cluster::new(ClusterSpec {
            racks,
            servers_per_rack: spr,
            gpus_per_server: 4,
            ..ClusterSpec::paper_default()
        });
        let ns = cluster.num_servers();
        (
            Just(cluster),
            proptest::collection::btree_map(0..ns, 1usize..4, 2..5.min(ns + 1)),
            0..ns,
            any::<bool>(),
        )
            .prop_map(|(cluster, workers, ps, ina)| {
                let mut p = Placement::new(
                    workers.into_iter().map(|(s, w)| (ServerId(s), w)).collect(),
                    Some(ServerId(ps)),
                );
                p.set_ina_enabled(ina);
                (cluster, p)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Flow-count conservation: the flows entering the root switch equal
    /// the sum of the remote racks' outputs plus the local workers, and
    /// the root's output equals either 1 (aggregating) or its input.
    #[test]
    fn root_flow_conservation(((cluster, placement), agg_mask) in (arb_setup(), any::<u64>())) {
        let Some(h) = JobHierarchy::from_placement(&cluster, &placement) else {
            return Ok(());
        };
        let agg = |r: RackId| (agg_mask >> (r.0 % 64)) & 1 == 1;
        let flows = h.link_flows(agg);
        let find = |l: LinkId| flows.iter().find(|&&(fl, _)| fl == l).map(|&(_, f)| f);

        let root_in = h.incoming_flows(h.ps_rack(), agg).expect("root is in hierarchy");
        let ps_link = find(LinkId::ServerAccess(h.ps_server())).expect("ps link used");
        // PS link may also carry local worker flows if colocated.
        let colocated: u32 = h
            .worker_servers()
            .iter()
            .filter(|&&(s, _)| s == h.ps_server())
            .map(|&(_, w)| w as u32)
            .sum();
        let root_out = ps_link - colocated;
        if h.ina_enabled() && agg(h.ps_rack()) {
            prop_assert_eq!(root_out, 1);
        } else {
            prop_assert_eq!(root_out, root_in);
        }

        // Total worker flows on access links must equal total workers.
        let worker_flows: u32 = h
            .worker_servers()
            .iter()
            .map(|&(s, w)| {
                let _ = s;
                w as u32
            })
            .sum();
        prop_assert_eq!(worker_flows as usize, h.total_workers());
    }

    /// Traffic conservation in the closed-form report: the PS rack uplink
    /// carries exactly the sum of the remote racks' output traffic, and
    /// traffic is monotone in the rate.
    #[test]
    fn report_traffic_conservation(((cluster, placement), rate) in (arb_setup(), 1.0f64..200.0)) {
        let Some(h) = JobHierarchy::from_placement(&cluster, &placement) else {
            return Ok(());
        };
        let report = single_job_report(&cluster, &h, rate, |_| 30.0);
        let remote_total: f64 = h
            .switches()
            .iter()
            .filter(|&&r| r != h.ps_rack())
            .map(|&r| report.traffic_on(LinkId::RackUplink(r)))
            .sum();
        let inbound = report.traffic_on(LinkId::RackUplink(h.ps_rack()));
        prop_assert!((inbound - remote_total).abs() < 1e-9);

        // Doubling the rate never decreases any link's traffic.
        let report2 = single_job_report(&cluster, &h, rate * 2.0, |_| 30.0);
        for &(l, t) in &report.link_traffic {
            prop_assert!(report2.traffic_on(l) >= t - 1e-9, "traffic fell on {l}");
        }
    }

    /// Aggregation never increases traffic: the INA-enabled report carries
    /// at most the INA-disabled traffic on every link.
    #[test]
    fn aggregation_only_reduces_traffic(((cluster, placement), rate) in (arb_setup(), 1.0f64..100.0)) {
        let Some(h_on) = JobHierarchy::from_placement(&cluster, &placement) else {
            return Ok(());
        };
        let mut h_off = h_on.clone();
        h_off.set_ina_enabled(false);
        let on = single_job_report(&cluster, &h_on, rate, |_| 1e6);
        let off = single_job_report(&cluster, &h_off, rate, |_| 1e6);
        for &(l, t_off) in &off.link_traffic {
            prop_assert!(
                on.traffic_on(l) <= t_off + 1e-9,
                "INA increased traffic on {l}"
            );
        }
        prop_assert!(on.fs <= off.fs);
        prop_assert!(on.fc <= off.fc);
    }
}
