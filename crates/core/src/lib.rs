#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! The NetPack job manager — the control loop of Fig. 4.
//!
//! The manager is the cluster-wide component users submit jobs to
//! (step 1). Each scheduling epoch it batches the pending queue, consults
//! the network information base (the [`Cluster`]), lets its [`Placer`]
//! propose placements (steps 2-4), validates and enforces them on the GPU
//! ledger, and hands the decisions to the caller's enforcement hook
//! (step 5 — in this reproduction, the flow-level simulator's job table).
//!
//! Deferred jobs age: their knapsack value grows every epoch they wait,
//! which is the paper's starvation-avoidance rule for FindSubset.
//!
//! [`Cluster`]: netpack_topology::Cluster
//! [`Placer`]: netpack_placement::Placer
//!
//! # Example
//!
//! ```
//! use netpack_core::{JobManager, ManagerConfig};
//! use netpack_placement::NetPackPlacer;
//! use netpack_topology::{Cluster, ClusterSpec, JobId};
//! use netpack_workload::{Job, ModelKind};
//!
//! let cluster = Cluster::new(ClusterSpec::paper_testbed());
//! let mut manager = JobManager::new(cluster, Box::new(NetPackPlacer::default()),
//!     ManagerConfig::default());
//! manager.submit(Job::builder(JobId(0), ModelKind::ResNet50, 4).build());
//! let decisions = manager.run_epoch();
//! assert_eq!(decisions.len(), 1);
//! assert_eq!(manager.running().len(), 1);
//! manager.finish(JobId(0))?;
//! assert!(manager.running().is_empty());
//! # Ok::<(), netpack_core::ManagerError>(())
//! ```

mod manager;

pub use manager::{Cancelled, JobManager, ManagerConfig, ManagerError};
