//! Job-manager implementation.

use netpack_model::Placement;
use netpack_placement::{Placer, RunningJob};
use netpack_topology::{Cluster, JobId, TopologyError};
use netpack_waterfill::{estimate, IncrementalEstimator, PlacedJob, SteadyState, WaterfillStats};
use netpack_workload::Job;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Manager tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManagerConfig {
    /// Scheduling period in seconds (the paper batches arrivals and places
    /// them periodically; job lifetimes are hours, so 60 s is the default).
    pub epoch_s: f64,
    /// Additive value bump applied to every job that fails to be selected
    /// or placed in an epoch — the starvation-avoidance aging of step 1.
    pub aging_value_bump: f64,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            epoch_s: 60.0,
            aging_value_bump: 0.5,
        }
    }
}

/// Where [`JobManager::cancel`] found the job it removed.
#[derive(Debug, Clone, PartialEq)]
pub enum Cancelled {
    /// The job was still queued; nothing had been allocated.
    Pending(Job),
    /// The job was running; its GPUs have been released.
    Running(Job, Placement),
}

/// Errors from the manager's bookkeeping API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ManagerError {
    /// [`JobManager::finish`] was called for a job that is not running.
    UnknownJob(JobId),
    /// The GPU ledger rejected an operation (internal inconsistency).
    Ledger(TopologyError),
}

impl fmt::Display for ManagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagerError::UnknownJob(id) => write!(f, "job {id} is not running"),
            ManagerError::Ledger(e) => write!(f, "gpu ledger error: {e}"),
        }
    }
}

impl Error for ManagerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ManagerError::Ledger(e) => Some(e),
            ManagerError::UnknownJob(_) => None,
        }
    }
}

impl From<TopologyError> for ManagerError {
    fn from(e: TopologyError) -> Self {
        ManagerError::Ledger(e)
    }
}

/// A deferred mutation to the warm steady-state tracker. Ops are queued
/// where the running set changes and drained inside
/// [`JobManager::steady_state_incremental`], so all water-filling work is
/// attributable to that one call (clean phase timing for the simulator).
enum TrackerOp {
    Add(PlacedJob),
    Remove(JobId),
}

/// The cluster-wide DT job manager (Fig. 4).
pub struct JobManager {
    cluster: Cluster,
    placer: Box<dyn Placer>,
    config: ManagerConfig,
    pending: Vec<Job>,
    running: Vec<(Job, Placement)>,
    /// Id → position in `running` for O(1) [`finish`](Self::finish) lookup.
    index: BTreeMap<JobId, usize>,
    /// Warm incremental estimator, lazily created by the first
    /// [`steady_state_incremental`](Self::steady_state_incremental) call.
    /// Its insertion order always mirrors `running` — the bit-identity
    /// contract with from-scratch [`estimate`] depends on it.
    tracker: Option<IncrementalEstimator>,
    tracker_ops: Vec<TrackerOp>,
    /// Arena for the per-epoch running-jobs view handed to the placer,
    /// reused across epochs (placements are cloned into it; the epoch
    /// loop itself allocates no fresh vector).
    running_view: Vec<RunningJob>,
}

impl fmt::Debug for JobManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobManager")
            .field("placer", &self.placer.name())
            .field("pending", &self.pending.len())
            .field("running", &self.running.len())
            .field("free_gpus", &self.cluster.free_gpus())
            .finish()
    }
}

impl JobManager {
    /// Create a manager over a cluster with the given placement strategy.
    pub fn new(cluster: Cluster, placer: Box<dyn Placer>, config: ManagerConfig) -> Self {
        JobManager {
            cluster,
            placer,
            config,
            pending: Vec::new(),
            running: Vec::new(),
            index: BTreeMap::new(),
            tracker: None,
            tracker_ops: Vec::new(),
            running_view: Vec::new(),
        }
    }

    /// Submit a job to the pending queue (Fig. 4, step 1).
    pub fn submit(&mut self, job: Job) {
        self.pending.push(job);
    }

    /// The scheduling period in seconds.
    pub fn epoch_s(&self) -> f64 {
        self.config.epoch_s
    }

    /// The placer's display name.
    pub fn placer_name(&self) -> &'static str {
        self.placer.name()
    }

    /// The cluster (GPU ledger reflects running jobs).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Jobs currently running, with their placements.
    pub fn running(&self) -> &[(Job, Placement)] {
        &self.running
    }

    /// Jobs waiting to be placed.
    pub fn pending(&self) -> &[Job] {
        &self.pending
    }

    /// Run one scheduling epoch: batch the pending queue, place it,
    /// enforce the accepted placements on the GPU ledger, and age the
    /// deferred jobs. Returns the decisions made this epoch.
    ///
    /// # Panics
    ///
    /// Panics if the placer proposes a placement that fails validation —
    /// that is a bug in the placer, not a runtime condition.
    pub fn run_epoch(&mut self) -> Vec<(Job, Placement)> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let mut batch = std::mem::take(&mut self.pending);
        // Canonical batch order: value-descending, ties by id. The placers
        // are free to reorder internally, but hand them a submission-order-
        // independent batch so a shuffled submit sequence cannot leak into
        // tie-breaks (the knapsack subset selection is order-sensitive
        // under exact value ties).
        batch.sort_by(|a, b| b.value.total_cmp(&a.value).then(a.id.cmp(&b.id)));
        let mut running_view = std::mem::take(&mut self.running_view);
        running_view.clear();
        running_view.extend(self.running.iter().map(|(j, p)| RunningJob {
            id: j.id,
            gradient_gbits: j.gradient_gbits(),
            placement: p.clone(),
        }));
        let outcome = self
            .placer
            .place_batch(&self.cluster, &running_view, &batch);
        self.running_view = running_view;
        for (job, placement) in &outcome.placed {
            placement
                .validate(&self.cluster, job.gpus)
                .unwrap_or_else(|e| {
                    // netpack-lint: allow(E1): documented `# Panics` contract — a placer returning an invalid placement is a bug in the placer, not a recoverable condition for the epoch loop
                    panic!("placer {} proposed invalid placement: {e}", self.placer.name())
                });
            for &(s, w) in placement.workers() {
                self.cluster
                    .allocate_gpus(s, w)
                    // netpack-lint: allow(E1): the line above validated this placement against the same ledger, so the allocation cannot fail
                    .expect("validated placement fits the ledger");
            }
            self.index.insert(job.id, self.running.len());
            self.running.push((job.clone(), placement.clone()));
            if self.tracker.is_some() {
                self.tracker_ops
                    .push(TrackerOp::Add(PlacedJob::new(job.id, &self.cluster, placement)));
            }
        }
        for mut job in outcome.deferred {
            job.value += self.config.aging_value_bump;
            self.pending.push(job);
        }
        outcome.placed
    }

    /// Mark a running job finished, releasing its GPUs, and return the
    /// removed `(Job, Placement)` so callers need not keep their own copy.
    ///
    /// Lookup is O(1) via the id → index map; the removal itself is an
    /// order-preserving `Vec::remove` (not `swap_remove`) because the
    /// running order doubles as the warm estimator's insertion order, and
    /// bit-identity with from-scratch [`estimate`] depends on replaying
    /// the same float-op sequence.
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError::UnknownJob`] if the job is not running.
    pub fn finish(&mut self, id: JobId) -> Result<(Job, Placement), ManagerError> {
        let idx = self
            .index
            .remove(&id)
            .ok_or(ManagerError::UnknownJob(id))?;
        let (job, placement) = self.running.remove(idx);
        for (i, (j, _)) in self.running.iter().enumerate().skip(idx) {
            self.index.insert(j.id, i);
        }
        if self.tracker.is_some() {
            self.tracker_ops.push(TrackerOp::Remove(id));
        }
        for &(s, w) in placement.workers() {
            self.cluster.release_gpus(s, w)?;
        }
        Ok((job, placement))
    }

    /// Cancel a job wherever it stands: a queued job is removed from the
    /// pending queue (nothing was allocated); a running job is torn down
    /// exactly like [`finish`](Self::finish). The service's `Cancel` path
    /// and its `Complete`-while-still-queued race both land here.
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError::UnknownJob`] if the id is neither pending
    /// nor running (already finished, already cancelled, or never
    /// submitted) — callers that treat cancellation as idempotent can
    /// ignore that case.
    pub fn cancel(&mut self, id: JobId) -> Result<Cancelled, ManagerError> {
        if let Some(pos) = self.pending.iter().position(|j| j.id == id) {
            return Ok(Cancelled::Pending(self.pending.remove(pos)));
        }
        self.finish(id).map(|(job, p)| Cancelled::Running(job, p))
    }

    /// Estimate the current steady state of all running jobs from scratch.
    pub fn steady_state(&self) -> SteadyState {
        let placed: Vec<PlacedJob> = self
            .running
            .iter()
            .map(|(j, p)| PlacedJob::new(j.id, &self.cluster, p))
            .collect();
        estimate(&self.cluster, &placed)
    }

    /// Steady state of all running jobs from the warm incremental
    /// estimator — bit-identical to [`steady_state`](Self::steady_state)
    /// but re-solving only the resource-connected components touched since
    /// the last call.
    ///
    /// The first call builds the tracker from the current running set;
    /// later calls drain the add/remove ops queued by
    /// [`run_epoch`](Self::run_epoch) and [`finish`](Self::finish), so the
    /// water-filling cost lands entirely inside this method (convenient
    /// for phase timing).
    pub fn steady_state_incremental(&mut self) -> &SteadyState {
        match self.tracker {
            None => {
                let placed: Vec<PlacedJob> = self
                    .running
                    .iter()
                    .map(|(j, p)| PlacedJob::new(j.id, &self.cluster, p))
                    .collect();
                self.tracker_ops.clear();
                self.tracker
                    .insert(IncrementalEstimator::new(&self.cluster, &placed))
                    .state()
            }
            Some(ref mut tracker) => {
                for op in self.tracker_ops.drain(..) {
                    match op {
                        TrackerOp::Add(job) => tracker.push(&self.cluster, job),
                        TrackerOp::Remove(id) => {
                            tracker.remove(&self.cluster, id);
                        }
                    }
                }
                tracker.state()
            }
        }
    }

    /// The warm estimator's current state, if
    /// [`steady_state_incremental`](Self::steady_state_incremental) has
    /// run and no ops are pending. Borrows `self` immutably so callers can
    /// read the state alongside [`cluster`](Self::cluster).
    pub fn incremental_state(&self) -> Option<&SteadyState> {
        if self.tracker_ops.is_empty() {
            self.tracker.as_ref().map(|t| t.state())
        } else {
            None
        }
    }

    /// Work counters from the warm estimator, if it exists.
    pub fn waterfill_stats(&self) -> Option<WaterfillStats> {
        self.tracker.as_ref().map(|t| *t.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpack_placement::{GpuBalance, NetPackPlacer};
    use netpack_topology::ClusterSpec;
    use netpack_workload::ModelKind;

    fn manager(placer: Box<dyn Placer>) -> JobManager {
        let cluster = Cluster::new(ClusterSpec {
            racks: 1,
            servers_per_rack: 4,
            gpus_per_server: 4,
            ..ClusterSpec::paper_default()
        });
        JobManager::new(cluster, placer, ManagerConfig::default())
    }

    fn job(id: u64, gpus: usize) -> Job {
        Job::builder(JobId(id), ModelKind::Vgg16, gpus).build()
    }

    #[test]
    fn epoch_places_and_allocates() {
        let mut m = manager(Box::new(NetPackPlacer::default()));
        m.submit(job(0, 4));
        m.submit(job(1, 8));
        let placed = m.run_epoch();
        assert_eq!(placed.len(), 2);
        assert_eq!(m.cluster().free_gpus(), 4);
        assert!(m.pending().is_empty());
    }

    #[test]
    fn finish_releases_gpus() {
        let mut m = manager(Box::new(GpuBalance));
        m.submit(job(0, 4));
        m.run_epoch();
        assert_eq!(m.cluster().free_gpus(), 12);
        m.finish(JobId(0)).unwrap();
        assert_eq!(m.cluster().free_gpus(), 16);
        assert_eq!(m.finish(JobId(0)), Err(ManagerError::UnknownJob(JobId(0))));
    }

    #[test]
    fn deferred_jobs_age_and_retry() {
        let mut m = manager(Box::new(NetPackPlacer::default()));
        // Fill the cluster, then submit one more job than fits.
        m.submit(job(0, 16));
        m.run_epoch();
        m.submit(job(1, 4));
        let placed = m.run_epoch();
        assert!(placed.is_empty());
        assert_eq!(m.pending().len(), 1);
        let aged = m.pending()[0].value;
        assert!(aged > 1.0, "value should age, got {aged}");
        // Finishing the hog frees capacity; the aged job lands next epoch.
        m.finish(JobId(0)).unwrap();
        let placed = m.run_epoch();
        assert_eq!(placed.len(), 1);
        assert_eq!(placed[0].0.id, JobId(1));
    }

    #[test]
    fn empty_epoch_is_a_noop() {
        let mut m = manager(Box::new(GpuBalance));
        assert!(m.run_epoch().is_empty());
    }

    #[test]
    fn steady_state_reflects_running_jobs() {
        let mut m = manager(Box::new(GpuBalance));
        m.submit(job(0, 6));
        m.run_epoch();
        let state = m.steady_state();
        let rate = state.job_rate_gbps(JobId(0)).unwrap();
        assert!(rate.is_finite() && rate > 0.0);
    }

    #[test]
    fn finish_returns_the_removed_job_and_placement() {
        let mut m = manager(Box::new(GpuBalance));
        m.submit(job(3, 6));
        let placed = m.run_epoch();
        let (fj, fp) = m.finish(JobId(3)).unwrap();
        assert_eq!(fj.id, JobId(3));
        assert_eq!((fj, fp), placed.into_iter().next().unwrap());
    }

    #[test]
    fn finish_out_of_order_keeps_lookup_consistent() {
        let mut m = manager(Box::new(GpuBalance));
        for id in 0..4 {
            m.submit(job(id, 2));
        }
        m.run_epoch();
        // Remove from the middle, then the ends — every lookup must
        // still resolve after the index fix-ups.
        for id in [1u64, 3, 0, 2] {
            let (fj, _) = m.finish(JobId(id)).unwrap();
            assert_eq!(fj.id, JobId(id));
        }
        assert_eq!(m.cluster().free_gpus(), 16);
        assert!(m.running().is_empty());
    }

    #[test]
    fn incremental_steady_state_matches_scratch_across_churn() {
        let mut m = manager(Box::new(NetPackPlacer::default()));
        m.submit(job(0, 6));
        m.submit(job(1, 4));
        m.run_epoch();
        // First call builds the tracker; compare bitwise against scratch.
        let scratch = m.steady_state();
        let inc = m.steady_state_incremental().clone();
        assert_eq!(inc.job_rate_gbps(JobId(0)), scratch.job_rate_gbps(JobId(0)));
        assert_eq!(inc.job_rate_gbps(JobId(1)), scratch.job_rate_gbps(JobId(1)));
        // Churn: finish one, admit another, and re-check.
        m.finish(JobId(0)).unwrap();
        m.submit(job(2, 6));
        m.run_epoch();
        assert!(m.incremental_state().is_none(), "ops pending → no stale view");
        let scratch = m.steady_state();
        let inc = m.steady_state_incremental().clone();
        for id in [1u64, 2] {
            assert_eq!(inc.job_rate_gbps(JobId(id)), scratch.job_rate_gbps(JobId(id)));
        }
        assert!(m.incremental_state().is_some());
        let stats = m.waterfill_stats().unwrap();
        assert_eq!(stats.removes, 1);
        assert!(stats.pushes >= 1);
    }

    #[test]
    fn epoch_batch_order_is_submission_order_independent() {
        // Equal-value jobs are the tie-break stress case: without the
        // canonical batch sort, knapsack subset selection could pick a
        // different subset per submission order.
        let sizes = [4usize, 2, 8, 2, 4, 8];
        let run = |order: &[usize]| {
            let mut m = manager(Box::new(NetPackPlacer::default()));
            for &i in order {
                m.submit(job(i as u64, sizes[i]));
            }
            let mut placed = m.run_epoch();
            placed.sort_by_key(|(j, _)| j.id);
            placed
        };
        let reference = run(&[0, 1, 2, 3, 4, 5]);
        for order in [[5usize, 4, 3, 2, 1, 0], [2, 5, 0, 3, 1, 4]] {
            assert_eq!(run(&order), reference, "order {order:?}");
        }
    }

    #[test]
    fn cancel_removes_a_queued_job_before_any_allocation() {
        let mut m = manager(Box::new(NetPackPlacer::default()));
        m.submit(job(0, 4));
        m.submit(job(1, 2));
        match m.cancel(JobId(0)) {
            Ok(Cancelled::Pending(j)) => assert_eq!(j.id, JobId(0)),
            other => panic!("expected pending cancellation, got {other:?}"),
        }
        assert_eq!(m.pending().len(), 1);
        assert_eq!(m.cluster().free_gpus(), 16, "nothing was allocated");
        // The surviving job places normally.
        let placed = m.run_epoch();
        assert_eq!(placed.len(), 1);
        assert_eq!(placed[0].0.id, JobId(1));
    }

    #[test]
    fn cancel_tears_down_a_running_job_like_finish() {
        let mut m = manager(Box::new(GpuBalance));
        m.submit(job(0, 4));
        m.run_epoch();
        assert_eq!(m.cluster().free_gpus(), 12);
        match m.cancel(JobId(0)) {
            Ok(Cancelled::Running(j, _)) => assert_eq!(j.id, JobId(0)),
            other => panic!("expected running cancellation, got {other:?}"),
        }
        assert_eq!(m.cluster().free_gpus(), 16);
        assert!(m.running().is_empty());
        // Cancel is not idempotent: the second attempt reports the miss.
        assert_eq!(m.cancel(JobId(0)), Err(ManagerError::UnknownJob(JobId(0))));
    }

    #[test]
    fn cancel_of_a_deferred_job_finds_it_in_the_queue() {
        let mut m = manager(Box::new(NetPackPlacer::default()));
        m.submit(job(0, 16));
        m.run_epoch();
        // Deferred by a full cluster, the job sits aged in the queue —
        // cancel must find it there, not report UnknownJob.
        m.submit(job(1, 4));
        assert!(m.run_epoch().is_empty());
        match m.cancel(JobId(1)) {
            Ok(Cancelled::Pending(j)) => {
                assert_eq!(j.id, JobId(1));
                assert!(j.value > 1.0, "deferred job kept its aged value");
            }
            other => panic!("expected pending cancellation, got {other:?}"),
        }
        assert!(m.pending().is_empty());
    }

    #[test]
    fn finish_of_an_unknown_id_reports_and_mutates_nothing() {
        let mut m = manager(Box::new(GpuBalance));
        m.submit(job(0, 4));
        m.run_epoch();
        assert_eq!(m.finish(JobId(99)), Err(ManagerError::UnknownJob(JobId(99))));
        // A pending (never placed) job is not "running" either.
        m.submit(job(7, 2));
        assert_eq!(m.finish(JobId(7)), Err(ManagerError::UnknownJob(JobId(7))));
        assert_eq!(m.cluster().free_gpus(), 12, "ledger untouched");
        assert_eq!(m.running().len(), 1);
        assert_eq!(m.pending().len(), 1);
    }

    #[test]
    fn double_finish_fails_cleanly_and_keeps_the_index_consistent() {
        let mut m = manager(Box::new(GpuBalance));
        for id in 0..3 {
            m.submit(job(id, 2));
        }
        m.run_epoch();
        m.finish(JobId(1)).unwrap();
        assert_eq!(m.finish(JobId(1)), Err(ManagerError::UnknownJob(JobId(1))));
        // The failed second finish must not have disturbed the index
        // fix-ups: the remaining jobs still resolve.
        for id in [0u64, 2] {
            let (fj, _) = m.finish(JobId(id)).unwrap();
            assert_eq!(fj.id, JobId(id));
        }
        assert_eq!(m.cluster().free_gpus(), 16);
    }

    #[test]
    fn debug_format_is_informative() {
        let m = manager(Box::new(GpuBalance));
        let s = format!("{m:?}");
        assert!(s.contains("GB"));
        assert!(s.contains("free_gpus"));
    }
}
