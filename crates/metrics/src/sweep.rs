//! Deterministic fan-out over independent work cells.
//!
//! Lives here (rather than in `netpack-bench`) so that library crates —
//! notably the placement scorer and the exact branch-and-bound — can share
//! one audited parallelism primitive without depending on the benchmark
//! driver crate. `netpack-bench` re-exports it unchanged.

/// Effective worker count for a sweep: `NETPACK_THREADS` (0 or unset →
/// all available cores), clamped to the hardware parallelism actually
/// present. Oversubscribing a core never speeds a CPU-bound sweep up —
/// it only adds spawn and scheduling overhead — so a request for more
/// workers than cores is treated as "all cores".
pub fn sweep_threads() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    std::env::var("NETPACK_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(cores)
        .min(cores)
}

/// Run one closure per sweep cell across `std::thread::scope` workers and
/// return the results in cell order.
///
/// The deterministic ordered merge (chunk `i`'s results land before chunk
/// `i+1`'s, same as a sequential loop) is what lets the figure binaries
/// and the exact placer parallelize without changing a single printed
/// byte. Each cell must be independent; all callers' sweeps are.
///
/// Honors `NETPACK_THREADS` via [`sweep_threads`] so perf comparisons can
/// pin a worker count. A panicking worker is resumed on the caller's
/// thread, so a cell failure surfaces exactly as it would in the
/// sequential loop.
pub fn parallel_sweep<T, R, F>(cells: &[T], run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_sweep_with(sweep_threads(), cells, run)
}

/// [`parallel_sweep`] with an explicit worker count instead of the
/// `NETPACK_THREADS` environment lookup.
///
/// Unlike the environment path this does NOT clamp to the hardware core
/// count: equivalence tests sweep worker counts {1, 2, 4, …} to exercise
/// every chunking of the cells, and they must do so even on a one-core
/// CI box. Results are identical for any `threads` by construction.
pub fn parallel_sweep_with<T, R, F>(threads: usize, cells: &[T], run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(cells.len().max(1));
    if threads <= 1 || cells.len() <= 1 {
        return cells.iter().map(&run).collect();
    }
    let chunk = cells.len().div_ceil(threads);
    let run = &run;
    std::thread::scope(|scope| {
        let handles: Vec<_> = cells
            .chunks(chunk)
            .map(|cell_chunk| scope.spawn(move || cell_chunk.iter().map(run).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(results) => results,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// Parallel map over `cells` followed by a deterministic ordered fold:
/// cell `i`'s result is merged strictly before cell `i+1`'s, exactly as a
/// sequential `for` loop would, regardless of which worker produced it.
///
/// This is the primitive behind ordered reductions such as the per-plan
/// PS-scoring argmax in the flat placer: workers score disjoint plan
/// ranges concurrently, and the fold re-applies the sequential tie-break
/// ("strictly greater wins, first seen keeps ties") in plan order, so the
/// winner is bit-identical to the single-threaded loop for any worker
/// count.
pub fn parallel_sweep_reduce<T, R, A, F, M>(threads: usize, cells: &[T], run: F, init: A, merge: M) -> A
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    M: FnMut(A, R) -> A,
{
    parallel_sweep_with(threads, cells, run)
        .into_iter()
        .fold(init, merge)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_cell_order() {
        let cells: Vec<usize> = (0..37).collect();
        let got = parallel_sweep(&cells, |&c| c * 2);
        let want: Vec<usize> = cells.iter().map(|&c| c * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn handles_degenerate_sizes() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_sweep(&empty, |&c| c).is_empty());
        assert_eq!(parallel_sweep(&[7u32], |&c| c + 1), vec![8]);
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let cells: Vec<usize> = (0..101).collect();
        let want: Vec<usize> = cells.iter().map(|&c| c * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 8, 101, 500] {
            let got = parallel_sweep_with(threads, &cells, |&c| c * 3 + 1);
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn reduce_is_a_sequential_fold_in_cell_order() {
        // A non-commutative fold (string concat) detects any merge-order
        // deviation from the sequential loop.
        let cells: Vec<u32> = (0..23).collect();
        let want = cells.iter().fold(String::new(), |acc, c| format!("{acc},{c}"));
        for threads in [1, 2, 4, 7] {
            let got = parallel_sweep_reduce(
                threads,
                &cells,
                |&c| c,
                String::new(),
                |acc, c| format!("{acc},{c}"),
            );
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn sweep_threads_is_positive() {
        assert!(sweep_threads() >= 1);
    }
}
