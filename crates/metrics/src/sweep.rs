//! Deterministic fan-out over independent work cells.
//!
//! Lives here (rather than in `netpack-bench`) so that library crates —
//! notably the placement scorer and the exact branch-and-bound — can share
//! one audited parallelism primitive without depending on the benchmark
//! driver crate. `netpack-bench` re-exports it unchanged.

/// Run one closure per sweep cell across `std::thread::scope` workers and
/// return the results in cell order.
///
/// The deterministic ordered merge (chunk `i`'s results land before chunk
/// `i+1`'s, same as a sequential loop) is what lets the figure binaries
/// and the exact placer parallelize without changing a single printed
/// byte. Each cell must be independent; all callers' sweeps are.
///
/// Honors `NETPACK_THREADS` (0 or unset → all available cores) so perf
/// comparisons can pin a worker count. A panicking worker is resumed on
/// the caller's thread, so a cell failure surfaces exactly as it would in
/// the sequential loop.
pub fn parallel_sweep<T, R, F>(cells: &[T], run: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::env::var("NETPACK_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .min(cells.len().max(1));
    if threads <= 1 || cells.len() <= 1 {
        return cells.iter().map(&run).collect();
    }
    let chunk = cells.len().div_ceil(threads);
    let run = &run;
    std::thread::scope(|scope| {
        let handles: Vec<_> = cells
            .chunks(chunk)
            .map(|cell_chunk| scope.spawn(move || cell_chunk.iter().map(run).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(results) => results,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_cell_order() {
        let cells: Vec<usize> = (0..37).collect();
        let got = parallel_sweep(&cells, |&c| c * 2);
        let want: Vec<usize> = cells.iter().map(|&c| c * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn handles_degenerate_sizes() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_sweep(&empty, |&c| c).is_empty());
        assert_eq!(parallel_sweep(&[7u32], |&c| c + 1), vec![8]);
    }
}
