//! Fixed-bucket latency histogram with bounded relative error.
//!
//! The service bench wants p50/p99/p999 placement latency over millions of
//! samples without keeping them. [`LatencyHistogram`] is the classic
//! HdrHistogram bucket layout specialised to `u64` nanoseconds: values
//! below [`SUB_BUCKETS`] land in exact unit buckets; above that, each
//! power-of-two tier is split into [`SUB_BUCKETS`] linear sub-buckets, so
//! every bucket spans at most `1/SUB_BUCKETS` of its value — quantiles are
//! exact to ~3% all the way up to `u64::MAX`, from a flat 15 KiB array.
//!
//! Recording is a handful of integer ops (no floats, no allocation), so
//! the histogram is safe to keep on the hot path, and the struct is plain
//! data: `Eq` + [`merge`](LatencyHistogram::merge) let per-thread
//! histograms fold deterministically.
//!
//! # Example
//!
//! ```
//! use netpack_metrics::LatencyHistogram;
//!
//! let mut h = LatencyHistogram::new();
//! for v in [10u64, 20, 30, 1_000, 100_000] {
//!     h.record(v);
//! }
//! assert_eq!(h.count(), 5);
//! assert_eq!(h.quantile(0.5), 30); // exact below SUB_BUCKETS
//! assert!(h.quantile(1.0) >= 100_000);
//! ```

use std::time::Duration;

/// Linear sub-buckets per power-of-two tier (and the width of the exact
/// unit-bucket region at the bottom). 32 bounds the relative quantile
/// error at `1/32` ≈ 3.1%.
pub const SUB_BUCKETS: u64 = 32;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
/// Tiers above the linear region: msb can be `SUB_BITS..=63`.
const NUM_BUCKETS: usize = (SUB_BUCKETS as usize) * (64 - SUB_BITS as usize + 1);

/// Index of the bucket covering `v`. Total order preserving: monotone in
/// `v`, exact (one value per bucket) below [`SUB_BUCKETS`].
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let tier = msb - SUB_BITS;
    let offset = (v >> tier) - SUB_BUCKETS;
    SUB_BUCKETS as usize + (tier as usize) * SUB_BUCKETS as usize + offset as usize
}

/// Highest value mapping to bucket `idx` — what quantile queries report,
/// so the answer never understates the sample it stands for.
fn bucket_high(idx: usize) -> u64 {
    let i = idx as u64;
    if i < SUB_BUCKETS {
        return i;
    }
    let tier = (i / SUB_BUCKETS) - 1;
    let offset = i % SUB_BUCKETS;
    ((SUB_BUCKETS + offset + 1) << tier) - 1
}

/// Fixed-memory histogram of `u64` values (nanoseconds by convention) with
/// ≤ `1/`[`SUB_BUCKETS`] relative quantile error. See the [module
/// docs](self) for the layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record a [`Duration`] as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&mut self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the recorded values (0.0 when empty). The sum saturates at
    /// `u64::MAX`, unreachable for realistic latency streams.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the `⌈q·count⌉`-th smallest sample (so the answer is ≥ that
    /// sample, within `1/`[`SUB_BUCKETS`] relative). Out-of-range `q` is
    /// clamped; an empty histogram reports 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil();
        let rank = if target.is_nan() || target < 1.0 {
            1
        } else if target >= self.count as f64 {
            self.count
        } else {
            target as u64
        };
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Never report past the exact max (the top bucket's upper
                // bound can overshoot it by the bucket width).
                return bucket_high(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`quantile`](Self::quantile)).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Fold `other` into `self` (exact: bucket-wise addition).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        // One value per bucket below SUB_BUCKETS: index and upper bound
        // are the value itself.
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_high(v as usize), v);
        }
        let mut h = LatencyHistogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        for v in 0..SUB_BUCKETS {
            let q = (v as f64 + 1.0) / SUB_BUCKETS as f64;
            assert_eq!(h.quantile(q), v, "quantile {q}");
        }
    }

    #[test]
    fn bucket_boundaries_at_tier_edges() {
        // First tier starts exactly at SUB_BUCKETS with unit-width buckets.
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(63), 63);
        // Second tier: width-2 buckets, 64 and 65 collapse; 63/64 split.
        assert_eq!(bucket_index(64), 64);
        assert_eq!(bucket_index(65), 64);
        assert_eq!(bucket_index(66), 65);
        assert_eq!(bucket_high(64), 65);
        // Bucket ranges tile the line: every bucket's high + 1 is the next
        // bucket's first value.
        for idx in 0..NUM_BUCKETS - 1 {
            let high = bucket_high(idx);
            if high == u64::MAX {
                break;
            }
            assert_eq!(bucket_index(high), idx, "high of {idx}");
            assert_eq!(bucket_index(high + 1), idx + 1, "next after {idx}");
        }
    }

    #[test]
    fn index_is_monotone_and_covers_u64() {
        let probes = [
            0u64,
            1,
            31,
            32,
            63,
            64,
            1_000,
            1_000_000,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut last = 0usize;
        for &v in &probes {
            let idx = bucket_index(v);
            assert!(idx >= last, "monotone at {v}");
            assert!(idx < NUM_BUCKETS, "in range at {v}");
            last = idx;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn quantile_error_is_bounded() {
        // Every bucket's upper bound overshoots any value it holds by at
        // most 1/SUB_BUCKETS of that value — the histogram's accuracy
        // contract.
        for v in [1u64, 33, 100, 4_097, 1 << 20, (1 << 40) + 12345] {
            let high = bucket_high(bucket_index(v));
            assert!(high >= v, "never understates: {v} -> {high}");
            assert!(high - v <= v / SUB_BUCKETS + 1, "bounded error: {v} -> {high}");
        }
        // With the exact-max clamp, a single-value histogram reports the
        // value itself at every quantile.
        let mut h = LatencyHistogram::new();
        h.record(4_097);
        assert_eq!(h.quantile(0.5), 4_097);
        assert_eq!(h.p999(), 4_097);
    }

    #[test]
    fn percentiles_order_and_clamp() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram reports 0");
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert!(h.p50() <= h.p99());
        assert!(h.p99() <= h.p999());
        assert!(h.p999() <= h.max().unwrap());
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.max().unwrap());
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        let mean = h.mean();
        assert!((mean - 500.5).abs() < 1e-9, "mean {mean}");
    }

    #[test]
    fn merge_matches_single_stream() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in 0..500u64 {
            a.record(v * 7 + 3);
            all.record(v * 7 + 3);
        }
        for v in 0..500u64 {
            b.record(v * 13 + 1);
            all.record(v * 13 + 1);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn record_duration_uses_nanos() {
        let mut h = LatencyHistogram::new();
        h.record_duration(Duration::from_micros(5));
        assert_eq!(h.min(), Some(5_000));
    }
}
