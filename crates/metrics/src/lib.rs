#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Evaluation metrics and small statistics helpers for NetPack experiments.
//!
//! Implements the paper's two headline metrics (§6.1):
//!
//! * **Average job completion time (JCT)** — wall-clock from submission to
//!   finish, normalized so that NetPack's value reads 1.0 in each group;
//! * **Distribution efficiency (DE)** —
//!   `(1/|Jobs|) Σ JCT_with_1_GPU / (Real_JCT × No_of_GPUs)`, which isolates
//!   the placement effect from model size: a linearly-scaling system with
//!   zero network overhead would score 1.0.
//!
//! Also provides the summary statistics (mean/std for the paper's error
//! bars), the linear regression used by the Fig. 6 simulator-validation
//! plot, and a plain-text table renderer shared by all figure binaries.

//!
//! Since the placement fast path landed, the crate also hosts the
//! [`PerfCounters`] profiling surface: named counters and phase timers the
//! placer fills while scoring candidates, rendered through the same
//! [`TextTable`] as everything else.

mod hist;
mod perf;
mod regression;
mod stats;
mod sweep;
mod table;

pub use hist::{LatencyHistogram, SUB_BUCKETS};
pub use perf::{PerfCounters, Stopwatch};
pub use regression::{linear_fit, LinearFit};
pub use stats::{normalize_to, Summary};
pub use sweep::{parallel_sweep, parallel_sweep_reduce, parallel_sweep_with, sweep_threads};
pub use table::TextTable;

/// One finished job's accounting record, the unit every metric consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobRecord {
    /// GPUs the job occupied.
    pub gpus: usize,
    /// Wall-clock completion time (finish − submission), in seconds.
    pub jct_s: f64,
    /// Hypothetical single-GPU, zero-communication runtime in seconds
    /// (the DE numerator).
    pub serial_time_s: f64,
}

/// Average JCT in seconds over a set of records.
///
/// Returns `None` for an empty set (an empty experiment has no JCT, and
/// silently returning 0.0 would corrupt normalized comparisons).
///
/// # Example
///
/// ```
/// use netpack_metrics::{average_jct_s, JobRecord};
/// let records = [
///     JobRecord { gpus: 1, jct_s: 10.0, serial_time_s: 10.0 },
///     JobRecord { gpus: 2, jct_s: 30.0, serial_time_s: 40.0 },
/// ];
/// assert_eq!(average_jct_s(&records), Some(20.0));
/// assert_eq!(average_jct_s(&[]), None);
/// ```
pub fn average_jct_s(records: &[JobRecord]) -> Option<f64> {
    if records.is_empty() {
        return None;
    }
    Some(records.iter().map(|r| r.jct_s).sum::<f64>() / records.len() as f64)
}

/// Distribution efficiency (§6.1):
/// `(1/|Jobs|) Σ serial_time / (jct × gpus)`.
///
/// Returns `None` for an empty set or if any record has a non-positive JCT.
///
/// # Example
///
/// ```
/// use netpack_metrics::{distribution_efficiency, JobRecord};
/// // Perfect linear scaling: serial = jct * gpus => DE = 1.
/// let perfect = [JobRecord { gpus: 4, jct_s: 25.0, serial_time_s: 100.0 }];
/// assert_eq!(distribution_efficiency(&perfect), Some(1.0));
/// ```
pub fn distribution_efficiency(records: &[JobRecord]) -> Option<f64> {
    if records.is_empty() {
        return None;
    }
    let mut sum = 0.0;
    for r in records {
        if r.jct_s <= 0.0 || r.gpus == 0 {
            return None;
        }
        sum += r.serial_time_s / (r.jct_s * r.gpus as f64);
    }
    Some(sum / records.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn de_penalizes_communication_overhead() {
        // Communication doubles the runtime => DE = 0.5.
        let rec = [JobRecord {
            gpus: 4,
            jct_s: 50.0,
            serial_time_s: 100.0,
        }];
        assert!((distribution_efficiency(&rec).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn de_rejects_degenerate_records() {
        let rec = [JobRecord {
            gpus: 4,
            jct_s: 0.0,
            serial_time_s: 100.0,
        }];
        assert_eq!(distribution_efficiency(&rec), None);
    }

    #[test]
    fn jct_averages_plainly() {
        let rec = [
            JobRecord {
                gpus: 1,
                jct_s: 5.0,
                serial_time_s: 5.0,
            },
            JobRecord {
                gpus: 1,
                jct_s: 15.0,
                serial_time_s: 15.0,
            },
        ];
        assert_eq!(average_jct_s(&rec), Some(10.0));
    }
}
