//! Lightweight perf counters and phase timers for placement-time profiling.
//!
//! The placement fast path (incremental water-filling + parallel candidate
//! scoring) is justified by numbers, so the scorer records how much work it
//! did — water-fill invocations, cache hits, candidate plans scored — and
//! how long each phase took. [`PerfCounters`] is that recording surface:
//! a set of named monotonic counters plus named wall-clock timers, rendered
//! through the same [`TextTable`](crate::TextTable) the figure binaries
//! already use so before/after numbers land next to the benchmark output.
//!
//! Names are free-form `&'static str`s; `BTreeMap` storage keeps render
//! order deterministic. The struct is plain data — cloning snapshots it,
//! [`merge`](PerfCounters::merge) folds one snapshot into another (used to
//! aggregate per-batch counters into a run total).
//!
//! # Example
//!
//! ```
//! use netpack_metrics::PerfCounters;
//! use std::time::Duration;
//!
//! let mut perf = PerfCounters::new();
//! perf.incr("waterfill_solves", 3);
//! perf.incr("cache_hits", 5);
//! let answer = perf.time("scoring", || 6 * 7);
//! assert_eq!(answer, 42);
//! assert_eq!(perf.counter("waterfill_solves"), 3);
//! assert_eq!(perf.timer_count("scoring"), 1);
//! let rendered = perf.to_table().render();
//! assert!(rendered.contains("cache_hits"));
//! assert!(rendered.contains("scoring"));
//! ```

use crate::hist::LatencyHistogram;
use crate::TextTable;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// A started wall-clock timer.
///
/// This is the single sanctioned way to read the monotonic clock in this
/// workspace: `netpack-lint` rule D2 forbids `Instant::now`/`SystemTime`
/// everywhere outside this module, so perf-timer blocks in the simulators
/// and the placer go through [`Stopwatch::start`] instead. Keeping every
/// clock read behind one type makes the determinism audit trivial — wall
/// time may only ever feed [`PerfCounters`]-style reporting, never
/// simulation state.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    #[must_use]
    pub fn start() -> Self {
        Self { start: Instant::now() }
    }

    /// Wall-clock time elapsed since [`start`](Self::start).
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in seconds as `f64` (convenience for report tables).
    #[must_use]
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Named monotonic counters and wall-clock phase timers.
///
/// See the [module docs](self) for the intended use. All operations are
/// infallible; reading a name that was never written returns zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PerfCounters {
    counters: BTreeMap<&'static str, u64>,
    timers: BTreeMap<&'static str, TimerSlot>,
    /// Named latency distributions (p50/p99/p999), fed by
    /// [`record_latency`](Self::record_latency). Unlike timers, which
    /// keep only totals, these answer percentile queries.
    hists: BTreeMap<&'static str, LatencyHistogram>,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct TimerSlot {
    total: Duration,
    count: u64,
}

impl PerfCounters {
    /// An empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to the counter `name` (creating it at zero).
    pub fn incr(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Current value of counter `name` (zero if never incremented).
    pub fn counter(&self, name: &'static str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Run `f`, recording its wall-clock time under the timer `name`.
    pub fn time<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let watch = Stopwatch::start();
        let out = f();
        self.record(name, watch.elapsed());
        out
    }

    /// Fold an externally-measured duration into the timer `name`.
    pub fn record(&mut self, name: &'static str, elapsed: Duration) {
        let slot = self.timers.entry(name).or_default();
        slot.total += elapsed;
        slot.count += 1;
    }

    /// Total wall-clock accumulated under the timer `name`.
    pub fn timer_total(&self, name: &'static str) -> Duration {
        self.timers.get(name).map(|s| s.total).unwrap_or_default()
    }

    /// Number of intervals recorded under the timer `name`.
    pub fn timer_count(&self, name: &'static str) -> u64 {
        self.timers.get(name).map(|s| s.count).unwrap_or(0)
    }

    /// Record one latency sample into the histogram `name` (creating it
    /// empty). Durations are bucketed in nanoseconds with ~3% relative
    /// error — see [`LatencyHistogram`].
    pub fn record_latency(&mut self, name: &'static str, elapsed: Duration) {
        self.hists.entry(name).or_default().record_duration(elapsed);
    }

    /// The latency histogram `name`, if any sample was recorded under it.
    pub fn latency(&self, name: &'static str) -> Option<&LatencyHistogram> {
        self.hists.get(name)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.timers.is_empty() && self.hists.is_empty()
    }

    /// Reset every counter, timer, and histogram while keeping the instance.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.timers.clear();
        self.hists.clear();
    }

    /// Fold `other`'s counters, timers, and histograms into `self`.
    pub fn merge(&mut self, other: &PerfCounters) {
        for (name, v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, slot) in &other.timers {
            let mine = self.timers.entry(name).or_default();
            mine.total += slot.total;
            mine.count += slot.count;
        }
        for (name, hist) in &other.hists {
            self.hists.entry(name).or_default().merge(hist);
        }
    }

    /// Render every counter and timer as a [`TextTable`] with columns
    /// `metric | value | count | mean`. Counters fill only `value`;
    /// timers report total milliseconds, interval count, and mean
    /// microseconds per interval.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(vec!["metric", "value", "count", "mean"]);
        for (name, v) in &self.counters {
            t.row(vec![(*name).to_string(), v.to_string(), String::new(), String::new()]);
        }
        for (name, slot) in &self.timers {
            let total_ms = slot.total.as_secs_f64() * 1e3;
            let mean_us = if slot.count == 0 {
                0.0
            } else {
                slot.total.as_secs_f64() * 1e6 / slot.count as f64
            };
            t.row(vec![
                format!("{name} (ms)"),
                format!("{total_ms:.3}"),
                slot.count.to_string(),
                format!("{mean_us:.1} us"),
            ]);
        }
        for (name, h) in &self.hists {
            let us = |ns: u64| ns as f64 / 1e3;
            t.row(vec![
                format!("{name} p50/p99/p999 (us)"),
                format!("{:.1}/{:.1}/{:.1}", us(h.p50()), us(h.p99()), us(h.p999())),
                h.count().to_string(),
                format!("{:.1} us", h.mean() / 1e3),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut p = PerfCounters::new();
        assert!(p.is_empty());
        assert_eq!(p.counter("x"), 0);
        p.incr("x", 2);
        p.incr("x", 3);
        assert_eq!(p.counter("x"), 5);
        assert!(!p.is_empty());
        p.clear();
        assert!(p.is_empty());
    }

    #[test]
    fn timers_record_count_and_total() {
        let mut p = PerfCounters::new();
        let out = p.time("phase", || 7);
        assert_eq!(out, 7);
        p.record("phase", Duration::from_millis(2));
        assert_eq!(p.timer_count("phase"), 2);
        assert!(p.timer_total("phase") >= Duration::from_millis(2));
        assert_eq!(p.timer_count("absent"), 0);
        assert_eq!(p.timer_total("absent"), Duration::ZERO);
    }

    #[test]
    fn merge_folds_both_kinds() {
        let mut a = PerfCounters::new();
        a.incr("hits", 1);
        a.record("solve", Duration::from_millis(1));
        let mut b = PerfCounters::new();
        b.incr("hits", 4);
        b.incr("misses", 2);
        b.record("solve", Duration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.counter("hits"), 5);
        assert_eq!(a.counter("misses"), 2);
        assert_eq!(a.timer_count("solve"), 2);
        assert_eq!(a.timer_total("solve"), Duration::from_millis(4));
    }

    #[test]
    fn stopwatch_measures_monotonic_time() {
        let w = Stopwatch::start();
        let a = w.elapsed();
        let b = w.elapsed();
        assert!(b >= a);
        assert!(w.elapsed_s() >= 0.0);
    }

    #[test]
    fn latency_histograms_record_merge_and_render() {
        let mut p = PerfCounters::new();
        assert!(p.latency("place").is_none());
        p.record_latency("place", Duration::from_micros(100));
        p.record_latency("place", Duration::from_micros(300));
        let h = p.latency("place").unwrap();
        assert_eq!(h.count(), 2);
        assert!(h.min().unwrap() >= 100_000);
        let mut q = PerfCounters::new();
        q.record_latency("place", Duration::from_micros(200));
        p.merge(&q);
        assert_eq!(p.latency("place").unwrap().count(), 3);
        let rendered = p.to_table().render();
        assert!(rendered.contains("place p50/p99/p999 (us)"));
        p.clear();
        assert!(p.is_empty());
    }

    #[test]
    fn table_renders_counters_and_timers() {
        let mut p = PerfCounters::new();
        p.incr("plans_scored", 12);
        p.record("scoring", Duration::from_micros(1500));
        let rendered = p.to_table().render();
        assert!(rendered.contains("plans_scored"));
        assert!(rendered.contains("12"));
        assert!(rendered.contains("scoring (ms)"));
    }
}
